#include "env/catch_game.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

CatchGame::CatchGame()
    : obsSpace_(Space::box(static_cast<size_t>(width) * height, 0.0,
                           1.0)),
      actSpace_(Space::discrete(3))
{
}

void
CatchGame::spawnBall()
{
    ballX_ = static_cast<int>(spawnRng_.uniformInt(
        static_cast<uint64_t>(width)));
    ballY_ = 0;
    drift_ = static_cast<int>(spawnRng_.uniformInt(int64_t{-1},
                                                   int64_t{1}));
}

Observation
CatchGame::reset(Rng &rng)
{
    spawnRng_ = rng.split();
    paddleX_ = (width - paddleWidth) / 2;
    ballsPlayed_ = 0;
    done_ = false;
    spawnBall();
    return observe();
}

StepResult
CatchGame::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished catch episode");
    e3_assert(!action.empty(), "catch expects one action element");

    const int a = std::clamp(static_cast<int>(action[0]), 0, 2);
    paddleX_ = std::clamp(paddleX_ + (a - 1), 0,
                          width - paddleWidth);

    // Ball falls one row and drifts, bouncing off the side walls.
    ballY_ += 1;
    ballX_ += drift_;
    if (ballX_ < 0) {
        ballX_ = 0;
        drift_ = -drift_;
    } else if (ballX_ >= width) {
        ballX_ = width - 1;
        drift_ = -drift_;
    }

    double reward = 0.0;
    if (ballY_ >= height - 1) {
        const bool caught = ballX_ >= paddleX_ &&
                            ballX_ < paddleX_ + paddleWidth;
        reward = caught ? 1.0 : -1.0;
        ++ballsPlayed_;
        if (ballsPlayed_ >= ballsPerEpisode)
            done_ = true;
        else
            spawnBall();
    }

    StepResult result;
    result.observation = observe();
    result.reward = reward;
    result.done = done_;
    return result;
}

Observation
CatchGame::observe() const
{
    Observation pixels(static_cast<size_t>(width) * height, 0.0);
    const int by = std::min(ballY_, height - 1);
    pixels[static_cast<size_t>(by * width + ballX_)] = 1.0;
    for (int p = 0; p < paddleWidth; ++p) {
        pixels[static_cast<size_t>((height - 1) * width + paddleX_ +
                                   p)] = 1.0;
    }
    return pixels;
}

} // namespace e3
