/**
 * @file
 * CartPole balancing task (gym CartPole-v1 dynamics).
 *
 * A pole is attached by an unactuated joint to a cart on a frictionless
 * track; the agent pushes the cart left or right. Reward is +1 for every
 * step the pole stays within +/-12 degrees and the cart within +/-2.4 m.
 */

#ifndef E3_ENV_CARTPOLE_HH
#define E3_ENV_CARTPOLE_HH

#include <array>

#include "env/environment.hh"

namespace e3 {

/** Env1 in the paper's suite. */
class CartPole : public Environment
{
  public:
    CartPole();

    std::string name() const override { return "cartpole"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 500; }

  private:
    Space obsSpace_;
    Space actSpace_;
    std::array<double, 4> state_{}; ///< x, x_dot, theta, theta_dot
    bool done_ = true;

    Observation observe() const;
};

} // namespace e3

#endif // E3_ENV_CARTPOLE_HH
