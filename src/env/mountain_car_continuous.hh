/**
 * @file
 * Mountain-car task with a continuous throttle action
 * (gym MountainCarContinuous-v0).
 *
 * Same valley as MountainCar, but the action is a real-valued force in
 * [-1, 1] and the reward charges quadratic actuation cost with a +100
 * bonus at the goal, so lazy solutions score higher.
 */

#ifndef E3_ENV_MOUNTAIN_CAR_CONTINUOUS_HH
#define E3_ENV_MOUNTAIN_CAR_CONTINUOUS_HH

#include "env/environment.hh"

namespace e3 {

/** Continuous-control variant used by the continuous-action examples. */
class MountainCarContinuous : public Environment
{
  public:
    MountainCarContinuous();

    std::string name() const override { return "mountain_car_continuous"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 999; }

  private:
    Space obsSpace_;
    Space actSpace_;
    double position_ = 0.0;
    double velocity_ = 0.0;
    bool done_ = true;
};

} // namespace e3

#endif // E3_ENV_MOUNTAIN_CAR_CONTINUOUS_HH
