/**
 * @file
 * A batch of independent environment instances stepped in lockstep.
 *
 * E3 evaluates a whole population per generation: one environment per
 * individual, all advanced together, each terminating on its own schedule
 * ("some bad performance individuals can fail, terminate early, and stay
 * idle while the other populations are still running" — paper Sec. V-B).
 * VectorEnv tracks per-lane episode state so both the software baseline
 * and the INAX model see identical episode-length variance.
 */

#ifndef E3_ENV_VECTOR_ENV_HH
#define E3_ENV_VECTOR_ENV_HH

#include <memory>
#include <vector>

#include "env/env_registry.hh"
#include "env/environment.hh"

namespace e3 {

/** Lockstep batch of environments of one kind. */
class VectorEnv
{
  public:
    /**
     * @param spec environment kind for every lane
     * @param lanes number of parallel episodes (population size)
     * @param seed master seed; each lane derives an independent stream
     */
    VectorEnv(const EnvSpec &spec, size_t lanes, uint64_t seed);

    /** Restart every lane's episode. */
    void resetAll();

    /**
     * Step every live lane with its action; finished lanes ignore their
     * action and stay idle.
     * @param actions one action per lane (size() entries)
     * @return lanes still running after this step (0 = all done)
     */
    size_t stepAll(const std::vector<Action> &actions);

    /**
     * Restart one lane's episode. Lanes are fully independent — each
     * owns its environment and RNG stream — so distinct lanes may be
     * reset and stepped concurrently from different threads, and
     * per-lane stepping out of lockstep produces bit-identical
     * episodes to resetAll()/stepAll().
     */
    void resetLane(size_t lane);

    /**
     * Step one live lane. @pre !done(lane).
     * @return true once the lane's episode has ended
     */
    [[nodiscard]] bool stepLane(size_t lane, const Action &action);

    size_t size() const { return lanes_.size(); }
    const EnvSpec &spec() const { return spec_; }

    /** Latest observation of a lane (valid while the lane is live). */
    const Observation &observation(size_t lane) const;

    /** Whether a lane's episode has ended (terminated or truncated). */
    bool done(size_t lane) const;

    /** Cumulative episode reward of a lane. */
    double fitness(size_t lane) const;

    /** Steps taken in the lane's current episode. */
    int steps(size_t lane) const;

    /** True once every lane is done. */
    bool allDone() const;

    /** Number of lanes still live. */
    size_t liveCount() const;

    /**
     * Determinism-sentinel digest of one lane's RNG stream: raw draws
     * consumed and an FNV-1a hash of the exact sequence. Two runs
     * replayed identical lane randomness iff the digests are equal —
     * the hook the runtime's auditDeterminism() cross-check folds
     * over.
     */
    const RngAudit &laneAudit(size_t lane) const;

  private:
    struct Lane
    {
        std::unique_ptr<Environment> env;
        Rng rng;
        Observation observation;
        double fitness = 0.0;
        int steps = 0;
        bool done = true;

        Lane(std::unique_ptr<Environment> e, Rng r)
            : env(std::move(e)), rng(r)
        {
        }
    };

    EnvSpec spec_;
    std::vector<Lane> lanes_;
};

} // namespace e3

#endif // E3_ENV_VECTOR_ENV_HH
