#include "env/space.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

Space
Space::discrete(int n)
{
    e3_assert(n >= 1, "discrete space needs at least one action");
    Space s;
    s.discrete_ = true;
    s.count_ = n;
    return s;
}

Space
Space::box(size_t dim, double lo, double hi)
{
    return box(std::vector<double>(dim, lo), std::vector<double>(dim, hi));
}

Space
Space::box(std::vector<double> lo, std::vector<double> hi)
{
    e3_assert(lo.size() == hi.size() && !lo.empty(),
              "box bounds must be equal-length and non-empty");
    for (size_t i = 0; i < lo.size(); ++i)
        e3_assert(lo[i] <= hi[i], "box bound ", i, " is inverted");
    Space s;
    s.low_ = std::move(lo);
    s.high_ = std::move(hi);
    return s;
}

int
Space::count() const
{
    e3_assert(discrete_, "count() on a Box space");
    return count_;
}

size_t
Space::size() const
{
    return discrete_ ? 1 : low_.size();
}

const std::vector<double> &
Space::low() const
{
    e3_assert(!discrete_, "low() on a Discrete space");
    return low_;
}

const std::vector<double> &
Space::high() const
{
    e3_assert(!discrete_, "high() on a Discrete space");
    return high_;
}

std::vector<double>
Space::clamp(std::vector<double> v) const
{
    if (discrete_)
        return v;
    e3_assert(v.size() == low_.size(), "clamp dimension mismatch");
    for (size_t i = 0; i < v.size(); ++i)
        v[i] = std::clamp(v[i], low_[i], high_[i]);
    return v;
}

std::string
Space::describe() const
{
    std::ostringstream oss;
    if (discrete_)
        oss << "Discrete(" << count_ << ")";
    else
        oss << "Box(" << low_.size() << ")";
    return oss.str();
}

} // namespace e3
