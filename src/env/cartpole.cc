#include "env/cartpole.hh"

#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

// Physical constants of gym CartPole-v1.
constexpr double gravity = 9.8;
constexpr double massCart = 1.0;
constexpr double massPole = 0.1;
constexpr double totalMass = massCart + massPole;
constexpr double halfPoleLength = 0.5;
constexpr double poleMassLength = massPole * halfPoleLength;
constexpr double forceMag = 10.0;
constexpr double tau = 0.02; // seconds between state updates

constexpr double thetaLimit = 12.0 * 2.0 * M_PI / 360.0;
constexpr double xLimit = 2.4;

} // namespace

CartPole::CartPole()
    : obsSpace_(Space::box(
          {-2 * xLimit, -1e9, -2 * thetaLimit, -1e9},
          {2 * xLimit, 1e9, 2 * thetaLimit, 1e9})),
      actSpace_(Space::discrete(2))
{
}

Observation
CartPole::reset(Rng &rng)
{
    for (auto &s : state_)
        s = rng.uniform(-0.05, 0.05);
    done_ = false;
    return observe();
}

StepResult
CartPole::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished cartpole episode");
    e3_assert(!action.empty(), "cartpole expects one action element");

    const int a = static_cast<int>(action[0]);
    const double force = a == 1 ? forceMag : -forceMag;

    double x = state_[0];
    double x_dot = state_[1];
    double theta = state_[2];
    double theta_dot = state_[3];

    const double cos_t = std::cos(theta);
    const double sin_t = std::sin(theta);

    // Semi-implicit dynamics per Barto, Sutton & Anderson (gym "euler").
    const double temp =
        (force + poleMassLength * theta_dot * theta_dot * sin_t) /
        totalMass;
    const double theta_acc =
        (gravity * sin_t - cos_t * temp) /
        (halfPoleLength *
         (4.0 / 3.0 - massPole * cos_t * cos_t / totalMass));
    const double x_acc =
        temp - poleMassLength * theta_acc * cos_t / totalMass;

    x += tau * x_dot;
    x_dot += tau * x_acc;
    theta += tau * theta_dot;
    theta_dot += tau * theta_acc;

    state_ = {x, x_dot, theta, theta_dot};

    done_ = x < -xLimit || x > xLimit || theta < -thetaLimit ||
            theta > thetaLimit;

    StepResult result;
    result.observation = observe();
    result.reward = 1.0;
    result.done = done_;
    return result;
}

Observation
CartPole::observe() const
{
    return {state_[0], state_[1], state_[2], state_[3]};
}

} // namespace e3
