#include "env/acrobot.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

// Link parameters of gym Acrobot-v1.
constexpr double linkLength1 = 1.0;
constexpr double linkMass1 = 1.0;
constexpr double linkMass2 = 1.0;
constexpr double linkComPos1 = 0.5;
constexpr double linkComPos2 = 0.5;
constexpr double linkMoi = 1.0;
constexpr double g = 9.8;

constexpr double maxVel1 = 4.0 * M_PI;
constexpr double maxVel2 = 9.0 * M_PI;
constexpr double dt = 0.2;

double
wrapAngle(double x)
{
    // Wrap into [-pi, pi).
    const double twoPi = 2.0 * M_PI;
    x = std::fmod(x + M_PI, twoPi);
    if (x < 0)
        x += twoPi;
    return x - M_PI;
}

} // namespace

Acrobot::Acrobot()
    : obsSpace_(Space::box(
          {-1, -1, -1, -1, -maxVel1, -maxVel2},
          {1, 1, 1, 1, maxVel1, maxVel2})),
      actSpace_(Space::discrete(3))
{
}

Observation
Acrobot::reset(Rng &rng)
{
    for (auto &s : state_)
        s = rng.uniform(-0.1, 0.1);
    done_ = false;
    return observe();
}

std::array<double, 4>
Acrobot::dsdt(const std::array<double, 4> &s, double torque)
{
    const double m1 = linkMass1, m2 = linkMass2;
    const double l1 = linkLength1;
    const double lc1 = linkComPos1, lc2 = linkComPos2;
    const double i1 = linkMoi, i2 = linkMoi;

    const double theta1 = s[0], theta2 = s[1];
    const double dtheta1 = s[2], dtheta2 = s[3];

    const double d1 = m1 * lc1 * lc1 +
                      m2 * (l1 * l1 + lc2 * lc2 +
                            2 * l1 * lc2 * std::cos(theta2)) +
                      i1 + i2;
    const double d2 =
        m2 * (lc2 * lc2 + l1 * lc2 * std::cos(theta2)) + i2;
    const double phi2 =
        m2 * lc2 * g * std::cos(theta1 + theta2 - M_PI / 2.0);
    const double phi1 =
        -m2 * l1 * lc2 * dtheta2 * dtheta2 * std::sin(theta2) -
        2 * m2 * l1 * lc2 * dtheta2 * dtheta1 * std::sin(theta2) +
        (m1 * lc1 + m2 * l1) * g * std::cos(theta1 - M_PI / 2.0) + phi2;

    // "Book" (Sutton & Barto) equations of motion.
    const double ddtheta2 =
        (torque + d2 / d1 * phi1 -
         m2 * l1 * lc2 * dtheta1 * dtheta1 * std::sin(theta2) - phi2) /
        (m2 * lc2 * lc2 + i2 - d2 * d2 / d1);
    const double ddtheta1 = -(d2 * ddtheta2 + phi1) / d1;

    return {dtheta1, dtheta2, ddtheta1, ddtheta2};
}

std::array<double, 4>
Acrobot::rk4(const std::array<double, 4> &s, double torque, double step)
{
    auto axpy = [](const std::array<double, 4> &a, double h,
                   const std::array<double, 4> &d) {
        std::array<double, 4> out;
        for (size_t i = 0; i < 4; ++i)
            out[i] = a[i] + h * d[i];
        return out;
    };

    const auto k1 = dsdt(s, torque);
    const auto k2 = dsdt(axpy(s, step / 2, k1), torque);
    const auto k3 = dsdt(axpy(s, step / 2, k2), torque);
    const auto k4 = dsdt(axpy(s, step, k3), torque);

    std::array<double, 4> out;
    for (size_t i = 0; i < 4; ++i)
        out[i] = s[i] + step / 6.0 * (k1[i] + 2 * k2[i] + 2 * k3[i] +
                                      k4[i]);
    return out;
}

StepResult
Acrobot::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished acrobot episode");
    e3_assert(!action.empty(), "acrobot expects one action element");

    const int a = std::clamp(static_cast<int>(action[0]), 0, 2);
    const double torque = static_cast<double>(a - 1); // {-1, 0, +1}

    state_ = rk4(state_, torque, dt);

    state_[0] = wrapAngle(state_[0]);
    state_[1] = wrapAngle(state_[1]);
    state_[2] = std::clamp(state_[2], -maxVel1, maxVel1);
    state_[3] = std::clamp(state_[3], -maxVel2, maxVel2);

    // Free end above the bar: -cos(t1) - cos(t1 + t2) > 1.
    done_ = -std::cos(state_[0]) - std::cos(state_[0] + state_[1]) > 1.0;

    StepResult result;
    result.observation = observe();
    result.reward = done_ ? 0.0 : -1.0;
    result.done = done_;
    return result;
}

Observation
Acrobot::observe() const
{
    return {std::cos(state_[0]), std::sin(state_[0]),
            std::cos(state_[1]), std::sin(state_[1]),
            state_[2], state_[3]};
}

} // namespace e3
