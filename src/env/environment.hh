/**
 * @file
 * The interactive-environment interface ("env" in the paper's Fig. 5).
 *
 * Environments follow OpenAI gym semantics: reset() yields the first
 * observation, step() advances one control interval and reports the new
 * observation, the reward, and whether the episode terminated. All
 * randomness flows through an explicit Rng for reproducibility.
 */

#ifndef E3_ENV_ENVIRONMENT_HH
#define E3_ENV_ENVIRONMENT_HH

#include <memory>
#include <string>
#include <vector>

#include "common/rng.hh"
#include "env/space.hh"

namespace e3 {

/** Observation and action payloads are plain double vectors. */
using Observation = std::vector<double>;
using Action = std::vector<double>;

/** Result of one environment step. */
struct StepResult
{
    Observation observation; ///< next state observation
    double reward = 0.0;     ///< reward for this transition
    bool done = false;       ///< episode terminated (success or failure)
};

/**
 * Abstract interactive environment.
 *
 * Discrete-action environments read the action as
 * `static_cast<int>(action[0])`; Box-action environments read the full
 * vector (clamped to bounds by the implementation).
 */
class Environment
{
  public:
    virtual ~Environment() = default;

    /** Stable identifier, e.g. "cartpole". */
    virtual std::string name() const = 0;

    virtual const Space &observationSpace() const = 0;
    virtual const Space &actionSpace() const = 0;

    /** Start a new episode; returns the initial observation. */
    virtual Observation reset(Rng &rng) = 0;

    /**
     * Advance one step.
     * @pre reset() has been called and the episode is not done.
     */
    virtual StepResult step(const Action &action) = 0;

    /** Step cap after which the episode is truncated. */
    virtual int maxEpisodeSteps() const = 0;
};

} // namespace e3

#endif // E3_ENV_ENVIRONMENT_HH
