#include "env/bipedal_walker.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

constexpr double dt = 0.02;       ///< 50 FPS, matching gym
constexpr double jointSpeed = 4.0; ///< max joint angular speed, rad/s
constexpr double hipRange = 1.0;   ///< |hip| limit
constexpr double kneeLo = 0.1;     ///< knee cannot hyper-extend
constexpr double kneeHi = 1.2;
constexpr double thighLen = 0.45;
constexpr double shinLen = 0.5;
constexpr double hullTipLimit = 0.9; ///< fall when |hull angle| exceeds
constexpr double strideGain = 2.5;   ///< stance sweep -> forward speed
constexpr double torqueCost = 0.008; ///< per unit |action| per step
constexpr double progressGain = 6.0; ///< reward per unit forward travel
constexpr int lidarRays = 10;

} // namespace

BipedalWalker::BipedalWalker()
    : obsSpace_(Space::box(24, -5.0, 5.0)),
      actSpace_(Space::box(4, -1.0, 1.0))
{
}

double
BipedalWalker::footDrop(const Leg &leg)
{
    // Planar two-segment leg hanging from the hip: vertical extent of
    // thigh plus shin. A straight vertical leg gives the maximum drop.
    return thighLen * std::cos(leg.hip) +
           shinLen * std::cos(leg.hip + leg.knee);
}

Observation
BipedalWalker::reset(Rng &rng)
{
    hullAngle_ = rng.uniform(-0.05, 0.05);
    hullAngVel_ = 0.0;
    vx_ = 0.0;
    vy_ = 0.0;
    xPos_ = 0.0;
    for (auto &leg : legs_) {
        leg.hip = rng.uniform(-0.1, 0.1);
        leg.hipVel = 0.0;
        leg.knee = kneeLo + rng.uniform(0.0, 0.2);
        leg.kneeVel = 0.0;
        leg.contact = false;
    }
    done_ = false;
    return observe();
}

StepResult
BipedalWalker::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished bipedal_walker episode");
    e3_assert(action.size() >= 4, "bipedal_walker expects four actions");

    std::array<double, 4> a;
    for (size_t i = 0; i < 4; ++i)
        a[i] = std::clamp(action[i], -1.0, 1.0);

    // Joints are velocity servos, as in gym's motorSpeed control. The
    // effective joint velocity is the realized angle change: a joint
    // pinned at its limit moves (and propels) nothing regardless of the
    // commanded speed.
    for (size_t i = 0; i < 2; ++i) {
        Leg &leg = legs_[i];
        const double newHip = std::clamp(
            leg.hip + a[2 * i] * jointSpeed * dt, -hipRange, hipRange);
        const double newKnee = std::clamp(
            leg.knee + a[2 * i + 1] * jointSpeed * dt, kneeLo, kneeHi);
        leg.hipVel = (newHip - leg.hip) / dt;
        leg.kneeVel = (newKnee - leg.knee) / dt;
        leg.hip = newHip;
        leg.knee = newKnee;
    }

    // Stance assignment: the leg reaching lower supports the hull.
    const double drop0 = footDrop(legs_[0]);
    const double drop1 = footDrop(legs_[1]);
    const double support = std::max(drop0, drop1);
    legs_[0].contact = drop0 >= support - 0.02;
    legs_[1].contact = drop1 >= support - 0.02;

    // A stance leg sweeping backward (hipVel < 0) propels the hull
    // forward; a stance leg sweeping forward brakes. Swing legs do not
    // touch the ground and contribute nothing.
    double drive = 0.0;
    for (const Leg &leg : legs_) {
        if (leg.contact)
            drive += -leg.hipVel * thighLen * std::cos(leg.hip);
    }
    vx_ += (strideGain * drive - 1.5 * vx_) * dt; // ground drag
    xPos_ += vx_ * dt;

    // Hull pitch follows the net hip reaction torque plus a gravity
    // restoring term; vertical speed follows the change in support
    // height.
    const double reaction = -(a[0] + a[2]) * 0.8;
    hullAngVel_ += (reaction - 6.0 * hullAngle_ - 1.2 * hullAngVel_) * dt;
    hullAngle_ += hullAngVel_ * dt;
    vy_ = (support - (thighLen + shinLen)) * 0.5;

    // Falling: hull tips over, or both legs collapse under the hull.
    const bool collapsed = support < 0.35;
    const bool tipped = std::fabs(hullAngle_) > hullTipLimit;

    double reward = progressGain * vx_ * dt;
    reward -= torqueCost *
              (std::fabs(a[0]) + std::fabs(a[1]) + std::fabs(a[2]) +
               std::fabs(a[3]));
    reward -= 5.0 * std::fabs(hullAngle_) * dt; // posture shaping

    if (collapsed || tipped) {
        done_ = true;
        reward = -100.0;
    }

    StepResult result;
    result.observation = observe();
    result.reward = reward;
    result.done = done_;
    return result;
}

Observation
BipedalWalker::observe() const
{
    Observation obs;
    obs.reserve(24);
    obs.push_back(hullAngle_);
    obs.push_back(hullAngVel_);
    obs.push_back(vx_);
    obs.push_back(vy_);
    for (const Leg &leg : legs_) {
        obs.push_back(leg.hip);
        obs.push_back(leg.hipVel / jointSpeed);
        obs.push_back(leg.knee);
        obs.push_back(leg.kneeVel / jointSpeed);
        obs.push_back(leg.contact ? 1.0 : 0.0);
    }
    // Flat terrain: each lidar ray reports the distance at which it meets
    // the ground, a function of ray angle and hull pitch only.
    for (int i = 0; i < lidarRays; ++i) {
        const double rayAngle =
            hullAngle_ + 0.15 * static_cast<double>(i);
        obs.push_back(std::clamp(1.0 / std::max(std::cos(rayAngle), 0.1),
                                 0.0, 5.0));
    }
    e3_assert(obs.size() == 24, "bipedal observation must be 24-dim");
    return obs;
}

} // namespace e3
