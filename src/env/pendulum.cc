#include "env/pendulum.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

constexpr double maxSpeed = 8.0;
constexpr double maxTorque = 2.0;
constexpr double dt = 0.05;
constexpr double g = 10.0;
constexpr double m = 1.0;
constexpr double l = 1.0;

double
angleNormalize(double x)
{
    const double twoPi = 2.0 * M_PI;
    x = std::fmod(x + M_PI, twoPi);
    if (x < 0)
        x += twoPi;
    return x - M_PI;
}

} // namespace

Pendulum::Pendulum()
    : obsSpace_(Space::box({-1, -1, -maxSpeed}, {1, 1, maxSpeed})),
      actSpace_(Space::box(1, -maxTorque, maxTorque))
{
}

Observation
Pendulum::reset(Rng &rng)
{
    theta_ = rng.uniform(-M_PI, M_PI);
    thetaDot_ = rng.uniform(-1.0, 1.0);
    return observe();
}

StepResult
Pendulum::step(const Action &action)
{
    e3_assert(!action.empty(), "pendulum expects one action element");
    const double u = std::clamp(action[0], -maxTorque, maxTorque);

    const double th = theta_;
    const double cost = angleNormalize(th) * angleNormalize(th) +
                        0.1 * thetaDot_ * thetaDot_ + 0.001 * u * u;

    // gym Pendulum-v0 semi-implicit update (theta measured from "down"
    // via the th + pi term).
    double newThetaDot =
        thetaDot_ + (-3.0 * g / (2.0 * l) * std::sin(th + M_PI) +
                     3.0 / (m * l * l) * u) *
                        dt;
    newThetaDot = std::clamp(newThetaDot, -maxSpeed, maxSpeed);
    theta_ = th + newThetaDot * dt;
    thetaDot_ = newThetaDot;

    StepResult result;
    result.observation = observe();
    result.reward = -cost;
    result.done = false; // pendulum only truncates at the step cap
    return result;
}

Observation
Pendulum::observe() const
{
    return {std::cos(theta_), std::sin(theta_), thetaDot_};
}

} // namespace e3
