/**
 * @file
 * Observation/action space descriptions, mirroring OpenAI gym's
 * Discrete and Box spaces.
 */

#ifndef E3_ENV_SPACE_HH
#define E3_ENV_SPACE_HH

#include <string>
#include <vector>

namespace e3 {

/**
 * A gym-style space: either Discrete(n) or Box(low, high, dim).
 *
 * For Discrete spaces, size() is 1 (one scalar action index) while
 * count() is the number of choices. For Box spaces, size() is the vector
 * dimension and low()/high() give per-element bounds.
 */
class Space
{
  public:
    /** Make a discrete space with n choices. */
    static Space discrete(int n);

    /** Make a box space with uniform bounds. */
    static Space box(size_t dim, double lo, double hi);

    /** Make a box space with per-element bounds. */
    static Space box(std::vector<double> lo, std::vector<double> hi);

    bool isDiscrete() const { return discrete_; }

    /** Number of choices of a discrete space. @pre isDiscrete(). */
    int count() const;

    /** Vector dimension (1 for discrete). */
    size_t size() const;

    /** Per-element lower bounds. @pre !isDiscrete(). */
    const std::vector<double> &low() const;

    /** Per-element upper bounds. @pre !isDiscrete(). */
    const std::vector<double> &high() const;

    /** Clamp a box action into bounds (no-op for discrete). */
    std::vector<double> clamp(std::vector<double> v) const;

    /** Human-readable description, e.g. "Discrete(3)" or "Box(4)". */
    std::string describe() const;

  private:
    Space() = default;

    bool discrete_ = false;
    int count_ = 0;
    std::vector<double> low_;
    std::vector<double> high_;
};

} // namespace e3

#endif // E3_ENV_SPACE_HH
