/**
 * @file
 * Mountain-car task with discrete actions (gym MountainCar-v0).
 *
 * An underpowered car must rock back and forth in a valley to build
 * enough momentum to reach the flag on the right hill. Reward is -1 per
 * step until the goal position is reached.
 */

#ifndef E3_ENV_MOUNTAIN_CAR_HH
#define E3_ENV_MOUNTAIN_CAR_HH

#include "env/environment.hh"

namespace e3 {

/** Env3 in the paper's suite. */
class MountainCar : public Environment
{
  public:
    MountainCar();

    std::string name() const override { return "mountain_car"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 200; }

  private:
    Space obsSpace_;
    Space actSpace_;
    double position_ = 0.0;
    double velocity_ = 0.0;
    bool done_ = true;
};

} // namespace e3

#endif // E3_ENV_MOUNTAIN_CAR_HH
