/**
 * @file
 * Lunar-lander task (substitute for gym LunarLander-v2).
 *
 * gym's lander runs on Box2D. This implementation replaces the rigid-body
 * engine with planar point-mass-plus-orientation dynamics while keeping
 * the identical 8-dim observation vector, 4 discrete actions, and the
 * same potential-based reward shaping (distance, speed, tilt, leg
 * contact, fuel cost, +/-100 terminal bonus), so agents face the same
 * control problem shape: kill horizontal drift, arrest descent, stay
 * upright, settle on the pad. See DESIGN.md §3 for the substitution
 * rationale.
 */

#ifndef E3_ENV_LUNAR_LANDER_HH
#define E3_ENV_LUNAR_LANDER_HH

#include "env/environment.hh"

namespace e3 {

/** Env5 in the paper's suite. */
class LunarLander : public Environment
{
  public:
    LunarLander();

    std::string name() const override { return "lunar_lander"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 1000; }

  private:
    Space obsSpace_;
    Space actSpace_;

    double x_ = 0.0, y_ = 0.0;       ///< position (pad at origin)
    double vx_ = 0.0, vy_ = 0.0;     ///< velocity
    double angle_ = 0.0, vAngle_ = 0.0;
    bool leg1_ = false, leg2_ = false;
    double prevShaping_ = 0.0;
    bool hasPrevShaping_ = false;
    bool done_ = true;

    Observation observe() const;
    double shaping() const;
    void updateLegContacts();
};

} // namespace e3

#endif // E3_ENV_LUNAR_LANDER_HH
