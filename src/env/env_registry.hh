/**
 * @file
 * Registry of benchmark environments and their agent-facing metadata.
 *
 * Each EnvSpec records what the learning algorithms need to know about an
 * environment: observation/output dimensions, how raw network outputs map
 * to an env action, and the required-fitness threshold the paper uses as
 * the stop condition ("the algorithm stops when the fitness is
 * achieved"). The six-entry suite order follows the paper's footnote 4:
 * Env1 cartpole, Env2 acrobot, Env3 mountain car, Env4 bipedal,
 * Env5 lunar lander, Env6 pendulum.
 */

#ifndef E3_ENV_ENV_REGISTRY_HH
#define E3_ENV_ENV_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "env/environment.hh"

namespace e3 {

/** Static description of a benchmark environment. */
struct EnvSpec
{
    /** How raw network outputs (in [0, 1]) become an env action. */
    enum class Decode
    {
        Binary,     ///< one output, threshold at 0.5 -> action {0, 1}
        Argmax,     ///< n outputs, pick the index of the largest
        Continuous, ///< scale each output into the Box action range
    };

    std::string name;       ///< registry key, e.g. "cartpole"
    int paperIndex;         ///< 1-6 per the paper's footnote; 0 if extra
    size_t numInputs;       ///< observation dimension
    size_t numOutputs;      ///< network output nodes (paper's PE counts)
    Decode decode;          ///< output-to-action mapping
    double requiredFitness; ///< stop threshold (episode-reward scale)
    double fitnessFloor;    ///< lower anchor for [0, 1] normalization
    double actionLo = 0.0;  ///< Continuous decode: per-element low bound
    double actionHi = 0.0;  ///< Continuous decode: per-element high bound

    /** Instantiate a fresh environment. */
    std::unique_ptr<Environment> make() const;

    /** Normalize a fitness into [0, 1] against floor/required. */
    double normalizeFitness(double fitness) const;
};

/** The paper's six-environment suite, in Env1..Env6 order. */
const std::vector<EnvSpec> &envSuite();

/**
 * The extended Env1..Env7 suite of the paper's Fig. 11 ("a suite of
 * OpenAI env: Env1-Env7"): the control six plus the Atari-like catch
 * game.
 */
const std::vector<EnvSpec> &envSuiteExtended();

/**
 * Look up any registered environment (suite + extras) by name;
 * nullptr if the name is unknown.
 */
const EnvSpec *findEnvSpec(const std::string &name);

/**
 * As findEnvSpec, for names already known to be registered.
 * @pre the name is registered — validate user-supplied names with
 *      findEnvSpec at the boundary; an unknown name here is a caller
 *      bug and panics.
 */
const EnvSpec &envSpec(const std::string &name);

/** All registered names. */
std::vector<std::string> envNames();

/**
 * Decode raw network outputs into an environment action.
 * @param spec the environment the action is for
 * @param outputs network outputs, expected in [0, 1] (sigmoid range)
 */
Action decodeAction(const EnvSpec &spec,
                    const std::vector<double> &outputs);

} // namespace e3

#endif // E3_ENV_ENV_REGISTRY_HH
