/**
 * @file
 * Catch: a minimal Atari-like pixel game (the paper's Sec. VI-A setup
 * mentions "a mix of control benchmarks and Atari games", and its
 * Fig. 11 averages over Env1-Env7).
 *
 * Balls fall one at a time through an 8x10 binary-pixel playfield with
 * a random horizontal drift; the agent slides a 2-pixel paddle along
 * the bottom row (left / stay / right). Catching a ball scores +1,
 * missing scores -1; an episode is 10 balls. The observation is the
 * raw 80-pixel screen, exercising much wider input layers than the
 * control tasks.
 */

#ifndef E3_ENV_CATCH_GAME_HH
#define E3_ENV_CATCH_GAME_HH

#include "env/environment.hh"

namespace e3 {

/** Env7: Atari-like pixel catch game. */
class CatchGame : public Environment
{
  public:
    static constexpr int width = 8;
    static constexpr int height = 10;
    static constexpr int paddleWidth = 2;
    static constexpr int ballsPerEpisode = 10;

    CatchGame();

    std::string name() const override { return "catch"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override
    {
        return (height + 2) * ballsPerEpisode;
    }

  private:
    Space obsSpace_;
    Space actSpace_;

    int ballX_ = 0;
    int ballY_ = 0;
    int drift_ = 0;   ///< -1, 0 or +1 horizontal motion per fall step
    int paddleX_ = 0; ///< leftmost paddle pixel
    int ballsPlayed_ = 0;
    bool done_ = true;
    Rng spawnRng_{0}; ///< private stream split from reset()'s rng

    void spawnBall();
    Observation observe() const;
};

} // namespace e3

#endif // E3_ENV_CATCH_GAME_HH
