#include "env/lunar_lander.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

// Scaled dynamics: distances in pad-units (pad at origin, spawn height
// 1.4), one step = 50 ms of simulated time.
constexpr double dt = 0.05;
constexpr double gravity = 1.0;        ///< downward accel, units/s^2
constexpr double mainAccel = 2.0;      ///< main engine accel along body
constexpr double sideAccel = 0.4;      ///< lateral accel of side engines
constexpr double sideTorque = 1.6;     ///< angular accel of side engines
constexpr double angularDamping = 0.4; ///< passive rotational damping
constexpr double spawnHeight = 1.4;
constexpr double fieldLimit = 1.5;     ///< |x| beyond this is out of range

// Touchdown tolerances: soft enough to be reachable, hard enough that an
// uncontrolled drop crashes.
constexpr double safeVx = 0.3;
constexpr double safeVy = 0.5;
constexpr double safeAngle = 0.35;

} // namespace

LunarLander::LunarLander()
    // The angle bound must be truthful for the verifier's interval
    // analysis to be sound: the angle integrates unwrapped, and at the
    // maximum angular rate (|vAngle| capped only by side-engine torque
    // over a 1000-step episode) it stays within +-201 rad. All other
    // elements are genuine dynamic ranges.
    : obsSpace_(Space::box(
          {-2, -1, -5, -5, -201, -8, 0, 0},
          {2, 3, 5, 5, 201, 8, 1, 1})),
      actSpace_(Space::discrete(4))
{
}

Observation
LunarLander::reset(Rng &rng)
{
    x_ = rng.uniform(-0.3, 0.3);
    y_ = spawnHeight;
    // Initial nudge mirrors gym's randomized spawn impulse.
    vx_ = rng.uniform(-0.3, 0.3);
    vy_ = rng.uniform(-0.2, 0.0);
    angle_ = rng.uniform(-0.1, 0.1);
    vAngle_ = rng.uniform(-0.1, 0.1);
    leg1_ = leg2_ = false;
    hasPrevShaping_ = false;
    done_ = false;
    return observe();
}

double
LunarLander::shaping() const
{
    // Same potential as gym LunarLander-v2.
    return -100.0 * std::sqrt(x_ * x_ + y_ * y_) -
           100.0 * std::sqrt(vx_ * vx_ + vy_ * vy_) -
           100.0 * std::fabs(angle_) + 10.0 * (leg1_ ? 1 : 0) +
           10.0 * (leg2_ ? 1 : 0);
}

void
LunarLander::updateLegContacts()
{
    const bool nearGround = y_ <= 0.03;
    // A tilted craft touches one leg first.
    leg1_ = nearGround && angle_ < safeAngle;   // left leg
    leg2_ = nearGround && angle_ > -safeAngle;  // right leg
}

StepResult
LunarLander::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished lunar_lander episode");
    e3_assert(!action.empty(), "lunar_lander expects one action element");

    const int a = std::clamp(static_cast<int>(action[0]), 0, 3);

    double fuelCost = 0.0;
    double ax = 0.0;
    double ay = -gravity;
    double aAngle = -angularDamping * vAngle_;

    if (a == 2) { // main engine: thrust along the body's up axis
        ax += -std::sin(angle_) * mainAccel;
        ay += std::cos(angle_) * mainAccel;
        fuelCost = 0.30;
    } else if (a == 1) { // left engine: push right, rotate ccw
        ax += std::cos(angle_) * sideAccel;
        ay += std::sin(angle_) * sideAccel;
        aAngle += sideTorque;
        fuelCost = 0.03;
    } else if (a == 3) { // right engine: push left, rotate cw
        ax += -std::cos(angle_) * sideAccel;
        ay += -std::sin(angle_) * sideAccel;
        aAngle += -sideTorque;
        fuelCost = 0.03;
    }

    vx_ += ax * dt;
    vy_ += ay * dt;
    vAngle_ += aAngle * dt;
    x_ += vx_ * dt;
    y_ += vy_ * dt;
    angle_ += vAngle_ * dt;

    updateLegContacts();

    double reward = 0.0;
    const double shaped = shaping();
    if (hasPrevShaping_)
        reward = shaped - prevShaping_;
    prevShaping_ = shaped;
    hasPrevShaping_ = true;
    reward -= fuelCost;

    if (y_ <= 0.0) {
        y_ = 0.0;
        const bool gentle = std::fabs(vx_) <= safeVx &&
                            std::fabs(vy_) <= safeVy &&
                            std::fabs(angle_) <= safeAngle;
        done_ = true;
        const bool onPad = std::fabs(x_) <= 0.4;
        reward += gentle && onPad ? 100.0 : -100.0;
    } else if (std::fabs(x_) > fieldLimit || y_ > 2.5) {
        done_ = true;
        reward += -100.0;
    }

    StepResult result;
    result.observation = observe();
    result.reward = reward;
    result.done = done_;
    return result;
}

Observation
LunarLander::observe() const
{
    return {x_, y_, vx_, vy_, angle_, vAngle_,
            leg1_ ? 1.0 : 0.0, leg2_ ? 1.0 : 0.0};
}

} // namespace e3
