/**
 * @file
 * Acrobot swing-up task (gym Acrobot-v1 dynamics, "book" variant).
 *
 * A two-link underactuated pendulum; torque is applied at the joint
 * between the links. The goal is to swing the free end above a target
 * height. Reward is -1 per step until the goal is reached.
 */

#ifndef E3_ENV_ACROBOT_HH
#define E3_ENV_ACROBOT_HH

#include <array>

#include "env/environment.hh"

namespace e3 {

/** Env2 in the paper's suite. */
class Acrobot : public Environment
{
  public:
    Acrobot();

    std::string name() const override { return "acrobot"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 500; }

  private:
    Space obsSpace_;
    Space actSpace_;
    std::array<double, 4> state_{}; ///< theta1, theta2, dtheta1, dtheta2
    bool done_ = true;

    Observation observe() const;

    /** Equations of motion (Sutton's book formulation). */
    static std::array<double, 4> dsdt(const std::array<double, 4> &s,
                                      double torque);

    /** One RK4 integration step of length dt. */
    static std::array<double, 4> rk4(const std::array<double, 4> &s,
                                     double torque, double dt);
};

} // namespace e3

#endif // E3_ENV_ACROBOT_HH
