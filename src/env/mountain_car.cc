#include "env/mountain_car.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

constexpr double minPosition = -1.2;
constexpr double maxPosition = 0.6;
constexpr double maxSpeed = 0.07;
constexpr double goalPosition = 0.5;
constexpr double force = 0.001;
constexpr double gravity = 0.0025;

} // namespace

MountainCar::MountainCar()
    : obsSpace_(Space::box({minPosition, -maxSpeed},
                           {maxPosition, maxSpeed})),
      actSpace_(Space::discrete(3))
{
}

Observation
MountainCar::reset(Rng &rng)
{
    position_ = rng.uniform(-0.6, -0.4);
    velocity_ = 0.0;
    done_ = false;
    return {position_, velocity_};
}

StepResult
MountainCar::step(const Action &action)
{
    e3_assert(!done_, "step() on a finished mountain_car episode");
    e3_assert(!action.empty(), "mountain_car expects one action element");

    const int a = std::clamp(static_cast<int>(action[0]), 0, 2);

    velocity_ += (a - 1) * force - std::cos(3 * position_) * gravity;
    velocity_ = std::clamp(velocity_, -maxSpeed, maxSpeed);
    position_ += velocity_;
    position_ = std::clamp(position_, minPosition, maxPosition);
    if (position_ <= minPosition && velocity_ < 0)
        velocity_ = 0.0; // inelastic left wall

    done_ = position_ >= goalPosition;

    StepResult result;
    result.observation = {position_, velocity_};
    result.reward = -1.0;
    result.done = done_;
    return result;
}

} // namespace e3
