#include "env/env_registry.hh"

#include <algorithm>

#include "common/logging.hh"
#include "env/acrobot.hh"
#include "env/bipedal_walker.hh"
#include "env/cartpole.hh"
#include "env/catch_game.hh"
#include "env/lunar_lander.hh"
#include "env/mountain_car.hh"
#include "env/mountain_car_continuous.hh"
#include "env/pendulum.hh"

namespace e3 {

namespace {

// Output-node counts follow the paper's Table V / Fig. 10 footnote:
// cartpole uses a single thresholded output, acrobot/mountain-car use
// one-node-per-action argmax, bipedal/pendulum are continuous.
const std::vector<EnvSpec> &
allSpecs()
{
    static const std::vector<EnvSpec> specs = {
        {"cartpole", 1, 4, 1, EnvSpec::Decode::Binary, 475.0, 0.0,
         0.0, 0.0},
        {"acrobot", 2, 6, 3, EnvSpec::Decode::Argmax, -100.0, -500.0,
         0.0, 0.0},
        {"mountain_car", 3, 2, 3, EnvSpec::Decode::Argmax, -115.0,
         -200.0, 0.0, 0.0},
        {"bipedal_walker", 4, 24, 4, EnvSpec::Decode::Continuous, 80.0,
         -100.0, -1.0, 1.0},
        {"lunar_lander", 5, 8, 4, EnvSpec::Decode::Argmax, 245.0,
         -250.0, 0.0, 0.0},
        {"pendulum", 6, 3, 1, EnvSpec::Decode::Continuous, -180.0,
         -1800.0, -2.0, 2.0},
        // Env7: the Atari-like game of the paper's Fig. 11 suite.
        {"catch", 7, 80, 3, EnvSpec::Decode::Argmax, 5.0, -10.0, 0.0,
         0.0},
        // Extras beyond the paper's table, for examples/tests.
        {"mountain_car_continuous", 0, 2, 1, EnvSpec::Decode::Continuous,
         90.0, -50.0, -1.0, 1.0},
    };
    return specs;
}

} // namespace

std::unique_ptr<Environment>
EnvSpec::make() const
{
    if (name == "catch")
        return std::make_unique<CatchGame>();
    if (name == "cartpole")
        return std::make_unique<CartPole>();
    if (name == "acrobot")
        return std::make_unique<Acrobot>();
    if (name == "mountain_car")
        return std::make_unique<MountainCar>();
    if (name == "mountain_car_continuous")
        return std::make_unique<MountainCarContinuous>();
    if (name == "bipedal_walker")
        return std::make_unique<BipedalWalker>();
    if (name == "lunar_lander")
        return std::make_unique<LunarLander>();
    if (name == "pendulum")
        return std::make_unique<Pendulum>();
    e3_panic("EnvSpec for unknown environment '", name, "'");
}

double
EnvSpec::normalizeFitness(double fitness) const
{
    const double span = requiredFitness - fitnessFloor;
    e3_assert(span > 0.0, "degenerate fitness range for ", name);
    return std::clamp((fitness - fitnessFloor) / span, 0.0, 1.0);
}

namespace {

std::vector<EnvSpec>
suiteUpTo(int maxIndex)
{
    std::vector<EnvSpec> s;
    for (const auto &spec : allSpecs()) {
        if (spec.paperIndex > 0 && spec.paperIndex <= maxIndex)
            s.push_back(spec);
    }
    std::sort(s.begin(), s.end(),
              [](const EnvSpec &a, const EnvSpec &b) {
                  return a.paperIndex < b.paperIndex;
              });
    return s;
}

} // namespace

const std::vector<EnvSpec> &
envSuite()
{
    static const std::vector<EnvSpec> suite = suiteUpTo(6);
    return suite;
}

const std::vector<EnvSpec> &
envSuiteExtended()
{
    static const std::vector<EnvSpec> suite = suiteUpTo(7);
    return suite;
}

const EnvSpec *
findEnvSpec(const std::string &name)
{
    for (const auto &spec : allSpecs()) {
        if (spec.name == name)
            return &spec;
    }
    return nullptr;
}

const EnvSpec &
envSpec(const std::string &name)
{
    if (const EnvSpec *spec = findEnvSpec(name))
        return *spec;
    e3_panic("unknown environment '", name,
             "' (validate user input with findEnvSpec)");
}

std::vector<std::string>
envNames()
{
    std::vector<std::string> names;
    for (const auto &spec : allSpecs())
        names.push_back(spec.name);
    return names;
}

Action
decodeAction(const EnvSpec &spec, const std::vector<double> &outputs)
{
    e3_assert(outputs.size() >= spec.numOutputs,
              "need ", spec.numOutputs, " outputs for ", spec.name,
              ", got ", outputs.size());

    switch (spec.decode) {
      case EnvSpec::Decode::Binary:
        return {outputs[0] > 0.5 ? 1.0 : 0.0};

      case EnvSpec::Decode::Argmax: {
        size_t best = 0;
        for (size_t i = 1; i < spec.numOutputs; ++i) {
            if (outputs[i] > outputs[best])
                best = i;
        }
        return {static_cast<double>(best)};
      }

      case EnvSpec::Decode::Continuous: {
        Action action(spec.numOutputs);
        for (size_t i = 0; i < spec.numOutputs; ++i) {
            const double u = std::clamp(outputs[i], 0.0, 1.0);
            action[i] = spec.actionLo + u * (spec.actionHi - spec.actionLo);
        }
        return action;
      }
    }
    e3_panic("unhandled decode kind");
}

} // namespace e3
