#include "env/mountain_car_continuous.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

constexpr double minPosition = -1.2;
constexpr double maxPosition = 0.6;
constexpr double maxSpeed = 0.07;
constexpr double goalPosition = 0.45;
constexpr double power = 0.0015;

} // namespace

MountainCarContinuous::MountainCarContinuous()
    : obsSpace_(Space::box({minPosition, -maxSpeed},
                           {maxPosition, maxSpeed})),
      actSpace_(Space::box(1, -1.0, 1.0))
{
}

Observation
MountainCarContinuous::reset(Rng &rng)
{
    position_ = rng.uniform(-0.6, -0.4);
    velocity_ = 0.0;
    done_ = false;
    return {position_, velocity_};
}

StepResult
MountainCarContinuous::step(const Action &action)
{
    e3_assert(!done_,
              "step() on a finished mountain_car_continuous episode");
    e3_assert(!action.empty(),
              "mountain_car_continuous expects one action element");

    const double throttle = std::clamp(action[0], -1.0, 1.0);

    velocity_ += throttle * power - 0.0025 * std::cos(3 * position_);
    velocity_ = std::clamp(velocity_, -maxSpeed, maxSpeed);
    position_ += velocity_;
    position_ = std::clamp(position_, minPosition, maxPosition);
    if (position_ <= minPosition && velocity_ < 0)
        velocity_ = 0.0;

    done_ = position_ >= goalPosition;

    StepResult result;
    result.observation = {position_, velocity_};
    result.reward = -0.1 * throttle * throttle + (done_ ? 100.0 : 0.0);
    result.done = done_;
    return result;
}

} // namespace e3
