/**
 * @file
 * Inverted-pendulum swing-up with continuous torque (gym Pendulum-v0).
 *
 * The agent applies torque in [-2, 2] to keep the pendulum upright.
 * Reward is the negative quadratic cost on angle error, angular velocity
 * and applied torque; episodes always run the full 200 steps.
 */

#ifndef E3_ENV_PENDULUM_HH
#define E3_ENV_PENDULUM_HH

#include "env/environment.hh"

namespace e3 {

/** Env6 in the paper's suite. */
class Pendulum : public Environment
{
  public:
    Pendulum();

    std::string name() const override { return "pendulum"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 200; }

  private:
    Space obsSpace_;
    Space actSpace_;
    double theta_ = 0.0;
    double thetaDot_ = 0.0;

    Observation observe() const;
};

} // namespace e3

#endif // E3_ENV_PENDULUM_HH
