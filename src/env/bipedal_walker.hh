/**
 * @file
 * Bipedal-walker task (substitute for gym BipedalWalker-v3).
 *
 * gym's walker is a Box2D articulated body. This implementation keeps the
 * identical interface — 24-dim observation (hull angle/velocities, two
 * legs x {hip, knee} angles and speeds, ground contacts, 10 lidar
 * returns) and 4 continuous joint commands in [-1, 1] — but replaces the
 * rigid-body engine with a kinematic gait model: joints are
 * velocity-servoed by the actions, stance legs propel the hull
 * proportionally to their backward sweep, the hull pitches with the
 * asymmetry of applied torques, and the episode ends with a -100 penalty
 * if the hull tips over or the legs collapse. Reward is forward progress
 * minus torque cost minus a posture penalty, the same structure as gym.
 * See DESIGN.md §3 for the substitution rationale.
 */

#ifndef E3_ENV_BIPEDAL_WALKER_HH
#define E3_ENV_BIPEDAL_WALKER_HH

#include <array>

#include "env/environment.hh"

namespace e3 {

/** Env4 in the paper's suite. */
class BipedalWalker : public Environment
{
  public:
    BipedalWalker();

    std::string name() const override { return "bipedal_walker"; }
    const Space &observationSpace() const override { return obsSpace_; }
    const Space &actionSpace() const override { return actSpace_; }
    Observation reset(Rng &rng) override;
    StepResult step(const Action &action) override;
    int maxEpisodeSteps() const override { return 1600; }

  private:
    struct Leg
    {
        double hip = 0.0;     ///< hip angle, + is forward swing
        double hipVel = 0.0;
        double knee = 0.0;    ///< knee angle, 0 straight, + is flexed
        double kneeVel = 0.0;
        bool contact = false;
    };

    Space obsSpace_;
    Space actSpace_;

    double hullAngle_ = 0.0;
    double hullAngVel_ = 0.0;
    double vx_ = 0.0;
    double vy_ = 0.0;
    double xPos_ = 0.0;
    std::array<Leg, 2> legs_;
    bool done_ = true;

    Observation observe() const;

    /** Height of a foot below the hip joint for the given leg pose. */
    static double footDrop(const Leg &leg);
};

} // namespace e3

#endif // E3_ENV_BIPEDAL_WALKER_HH
