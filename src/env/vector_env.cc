#include "env/vector_env.hh"

#include "common/hot.hh"
#include "common/logging.hh"

namespace e3 {

VectorEnv::VectorEnv(const EnvSpec &spec, size_t lanes, uint64_t seed)
    : spec_(spec)
{
    e3_assert(lanes > 0, "VectorEnv needs at least one lane");
    Rng master(seed);
    lanes_.reserve(lanes);
    for (size_t i = 0; i < lanes; ++i)
        lanes_.emplace_back(spec.make(), master.split());
}

void
VectorEnv::resetAll()
{
    for (size_t i = 0; i < lanes_.size(); ++i)
        resetLane(i);
}

size_t
VectorEnv::stepAll(const std::vector<Action> &actions)
{
    e3_assert(actions.size() == lanes_.size(),
              "need ", lanes_.size(), " actions, got ", actions.size());
    size_t live = 0;
    for (size_t i = 0; i < lanes_.size(); ++i) {
        if (lanes_[i].done)
            continue;
        if (!stepLane(i, actions[i]))
            ++live;
    }
    return live;
}

void
VectorEnv::resetLane(size_t lane)
{
    Lane &l = lanes_.at(lane);
    l.observation = l.env->reset(l.rng);
    l.fitness = 0.0;
    l.steps = 0;
    l.done = false;
}

E3_HOT bool
VectorEnv::stepLane(size_t lane, const Action &action)
{
    Lane &l = lanes_.at(lane);
    e3_assert(!l.done, "stepLane(", lane, ") on a finished episode");
    StepResult r = l.env->step(action);
    l.observation = std::move(r.observation);
    l.fitness += r.reward;
    ++l.steps;
    l.done = r.done || l.steps >= l.env->maxEpisodeSteps();
    return l.done;
}

const Observation &
VectorEnv::observation(size_t lane) const
{
    return lanes_.at(lane).observation;
}

bool
VectorEnv::done(size_t lane) const
{
    return lanes_.at(lane).done;
}

double
VectorEnv::fitness(size_t lane) const
{
    return lanes_.at(lane).fitness;
}

int
VectorEnv::steps(size_t lane) const
{
    return lanes_.at(lane).steps;
}

bool
VectorEnv::allDone() const
{
    for (const auto &lane : lanes_) {
        if (!lane.done)
            return false;
    }
    return true;
}

const RngAudit &
VectorEnv::laneAudit(size_t lane) const
{
    return lanes_.at(lane).rng.audit();
}

size_t
VectorEnv::liveCount() const
{
    size_t n = 0;
    for (const auto &lane : lanes_)
        n += lane.done ? 0 : 1;
    return n;
}

} // namespace e3
