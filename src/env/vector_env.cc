#include "env/vector_env.hh"

#include "common/logging.hh"

namespace e3 {

VectorEnv::VectorEnv(const EnvSpec &spec, size_t lanes, uint64_t seed)
    : spec_(spec)
{
    e3_assert(lanes > 0, "VectorEnv needs at least one lane");
    Rng master(seed);
    lanes_.reserve(lanes);
    for (size_t i = 0; i < lanes; ++i)
        lanes_.emplace_back(spec.make(), master.split());
}

void
VectorEnv::resetAll()
{
    for (auto &lane : lanes_) {
        lane.observation = lane.env->reset(lane.rng);
        lane.fitness = 0.0;
        lane.steps = 0;
        lane.done = false;
    }
}

void
VectorEnv::stepAll(const std::vector<Action> &actions)
{
    e3_assert(actions.size() == lanes_.size(),
              "need ", lanes_.size(), " actions, got ", actions.size());
    for (size_t i = 0; i < lanes_.size(); ++i) {
        Lane &lane = lanes_[i];
        if (lane.done)
            continue;
        StepResult r = lane.env->step(actions[i]);
        lane.observation = std::move(r.observation);
        lane.fitness += r.reward;
        ++lane.steps;
        lane.done =
            r.done || lane.steps >= lane.env->maxEpisodeSteps();
    }
}

const Observation &
VectorEnv::observation(size_t lane) const
{
    return lanes_.at(lane).observation;
}

bool
VectorEnv::done(size_t lane) const
{
    return lanes_.at(lane).done;
}

double
VectorEnv::fitness(size_t lane) const
{
    return lanes_.at(lane).fitness;
}

int
VectorEnv::steps(size_t lane) const
{
    return lanes_.at(lane).steps;
}

bool
VectorEnv::allDone() const
{
    for (const auto &lane : lanes_) {
        if (!lane.done)
            return false;
    }
    return true;
}

size_t
VectorEnv::liveCount() const
{
    size_t n = 0;
    for (const auto &lane : lanes_)
        n += lane.done ? 0 : 1;
    return n;
}

} // namespace e3
