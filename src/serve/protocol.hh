/**
 * @file
 * Wire protocol of the champion-serving inference server.
 *
 * Framing: each message is a 4-byte little-endian payload length
 * followed by that many payload bytes. Lengths above kMaxFrameBytes
 * are rejected before any allocation, so a corrupt or hostile peer
 * cannot make the server buffer an arbitrary amount.
 *
 * Payloads are little-endian binary. Doubles travel as their IEEE-754
 * bit patterns (not decimal text), so an observation round-trips
 * bit-exactly — the precondition for the serving determinism contract
 * (same champion fingerprint + same observation bytes => bit-identical
 * action bytes, regardless of batching).
 *
 * Request:  u32 kind (kInferKind) | u64 requestId | u64 fingerprint |
 *           u32 numObs | numObs x u64 (double bits)
 * Response: u32 status | u64 requestId | u32 numActions |
 *           numActions x u64 (double bits) | u32 msgLen | msg bytes
 *
 * Encode/decode are pure functions over byte strings; the socket layer
 * only moves frames. Malformed payloads decode to an error Status —
 * never a crash — because the bytes come off the network.
 */

#ifndef E3_SERVE_PROTOCOL_HH
#define E3_SERVE_PROTOCOL_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hh"

namespace e3::serve {

/** Hard ceiling on one frame's payload size. */
inline constexpr uint32_t kMaxFrameBytes = 1u << 20;

/** The only request kind so far: run one inference. */
inline constexpr uint32_t kInferKind = 1;

/** Response status codes (stable wire values). */
enum class StatusCode : uint32_t
{
    Ok = 0,
    /** Admission control rejected the request; retriable. */
    Overloaded = 1,
    /** No loaded champion has the requested fingerprint. */
    UnknownChampion = 2,
    /** Malformed request (bad kind, wrong observation arity). */
    BadRequest = 3,
    /** Server is shutting down; not retriable on this connection. */
    Draining = 4,
};

/** "ok" / "overloaded" / ... for logs and bench output. */
std::string statusCodeName(StatusCode code);

/** One observation -> action request. */
struct InferRequest
{
    uint64_t requestId = 0;
    uint64_t fingerprint = 0; ///< champion identity (manifest hash)
    std::vector<double> observation;
};

/** The server's answer. */
struct InferResponse
{
    StatusCode status = StatusCode::Ok;
    uint64_t requestId = 0;
    std::vector<double> action; ///< empty unless status == Ok
    std::string message;        ///< diagnostic for non-Ok statuses
};

/** Serialize a request payload (no frame header). */
std::string encodeRequest(const InferRequest &request);

/** Parse a request payload; malformed bytes are an error. */
Result<InferRequest> decodeRequest(const std::string &payload);

/** Serialize a response payload (no frame header). */
std::string encodeResponse(const InferResponse &response);

/** Parse a response payload; malformed bytes are an error. */
Result<InferResponse> decodeResponse(const std::string &payload);

/** Prefix @p payload with its length header. */
std::string frame(const std::string &payload);

/**
 * Incremental frame reassembly for a byte stream. feed() appends
 * received bytes; next() pops the earliest complete payload. An
 * oversized length header poisons the stream (error on next()), since
 * resynchronizing inside a byte stream is not possible.
 */
class FrameReader
{
  public:
    /** Append bytes received from the peer. */
    void feed(const char *data, size_t size);

    /**
     * Pop one complete payload into @p payload.
     * @return true if a full frame was available; false if more bytes
     *         are needed; an error if the stream is poisoned by an
     *         oversized or malformed length header.
     */
    Result<bool> next(std::string &payload);

    /** Bytes buffered but not yet consumed. */
    size_t pending() const { return buffer_.size(); }

  private:
    std::string buffer_;
    bool poisoned_ = false;
    std::string poisonReason_;
};

} // namespace e3::serve

#endif // E3_SERVE_PROTOCOL_HH
