#include "serve/server.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <future>

#include "common/hot.hh"
#include "common/logging.hh"
#include "neat/config.hh"
#include "obs/trace.hh"
#include "persist/checkpoint.hh"
#include "verify/verify.hh"

namespace e3::serve {

/** One accepted TCP client. */
struct ChampionServer::Connection
{
    /**
     * Set once before the connection thread starts, read lock-free by
     * connectionLoop's recv, and reset to -1 only in stop() after
     * every connection thread has joined.
     */
    int fd = -1;
    Mutex writeMutex;
    bool open E3_GUARDED_BY(writeMutex) = true;

    /** Frame and send @p response; drops silently once closed. */
    void
    send(const InferResponse &response)
    {
        const std::string bytes = frame(encodeResponse(response));
        MutexLock lock(writeMutex);
        if (!open)
            return;
        size_t sent = 0;
        while (sent < bytes.size()) {
            // e3-lint: blocking-ok -- writeMutex exists precisely to serialize whole frames onto this socket
            const ssize_t n = ::send(fd, bytes.data() + sent,
                                     bytes.size() - sent, MSG_NOSIGNAL);
            if (n <= 0) {
                open = false;
                return;
            }
            sent += static_cast<size_t>(n);
        }
    }

    void
    shutdownAndClose()
    {
        MutexLock lock(writeMutex);
        if (fd >= 0) {
            ::shutdown(fd, SHUT_RDWR);
            open = false;
        }
    }
};

ChampionServer::ChampionServer(const ServeOptions &options)
    : options_(options),
      cache_(std::make_unique<GenomeCache>(options.cacheCapacity,
                                           options.maxBatchSize))
{
    Batcher::Options batcherOptions;
    batcherOptions.maxBatchSize = options.maxBatchSize;
    batcherOptions.maxBatchDelay = options.maxBatchDelay;
    batcherOptions.maxQueueDepth = options.maxQueueDepth;
    batcherOptions.threads = options.threads;
    batcher_ = std::make_unique<Batcher>(
        batcherOptions, [this](std::vector<PendingRequest> &batch) {
            evaluateBatch(batch);
        });
}

Result<std::unique_ptr<ChampionServer>>
ChampionServer::create(const ServeOptions &options)
{
    if (options.sources.empty())
        return Status::error("serve needs at least one champion "
                             "(checkpoint dir + env)");

    auto server =
        std::unique_ptr<ChampionServer>(new ChampionServer(options));

    for (const ChampionSource &source : options.sources) {
        const EnvSpec *spec = findEnvSpec(source.envName);
        if (!spec)
            return Status::error("unknown environment '",
                                 source.envName, "' for champion '",
                                 source.checkpointDir, "'");

        Result<uint64_t> fingerprint =
            persist::manifestFingerprint(source.checkpointDir);
        if (!fingerprint.ok())
            return fingerprint.status();

        Result<persist::Checkpoint> checkpoint =
            persist::loadLatestCheckpoint(source.checkpointDir,
                                          *fingerprint);
        if (!checkpoint.ok())
            return Status::error("cannot load champion from '",
                                 source.checkpointDir,
                                 "': ", checkpoint.message());
        if (!checkpoint->champion)
            return Status::error("checkpoint '", source.checkpointDir,
                                 "' records no champion genome yet");

        // The verify gate: an uncertified genome is never served.
        const verify::Report report = verify::verifyGenome(
            *checkpoint->champion, verify::interfaceFor(*spec));
        if (report.failed(options.strictVerify))
            return Status::error(
                "champion in '", source.checkpointDir,
                "' failed verification (", report.errorCount(),
                " errors, ", report.warningCount(),
                " warnings):\n", verify::formatText(report));

        if (server->findChampion(*fingerprint))
            return Status::error("duplicate champion fingerprint for '",
                                 source.checkpointDir, "'");

        const NeatConfig cfg = NeatConfig::forTask(
            spec->numInputs, spec->numOutputs, spec->requiredFitness);

        ChampionEntry entry;
        entry.def = checkpoint->champion->toNetworkDef(cfg);
        entry.info.fingerprint = *fingerprint;
        entry.info.envName = source.envName;
        entry.info.checkpointDir = source.checkpointDir;
        entry.info.numInputs = spec->numInputs;
        entry.info.numOutputs = spec->numOutputs;
        entry.info.generation = checkpoint->generation;
        entry.info.bestFitness = checkpoint->bestFitness;
        server->entries_.push_back(std::move(entry));
        server->champions_.push_back(server->entries_.back().info);
    }
    return server;
}

ChampionServer::~ChampionServer()
{
    stop();
}

const ChampionServer::ChampionEntry *
ChampionServer::findChampion(uint64_t fingerprint) const
{
    for (const ChampionEntry &entry : entries_) {
        if (entry.info.fingerprint == fingerprint)
            return &entry;
    }
    return nullptr;
}

void
ChampionServer::submit(const InferRequest &request,
                       std::function<void(const InferResponse &)> done)
{
    {
        MutexLock lock(countersMutex_);
        ++counters_.requests;
    }

    InferResponse reject;
    reject.requestId = request.requestId;

    const ChampionEntry *entry = findChampion(request.fingerprint);
    if (!entry) {
        reject.status = StatusCode::UnknownChampion;
        reject.message = detail::format("no champion with fingerprint ",
                                        request.fingerprint);
        MutexLock lock(countersMutex_);
        ++counters_.rejectedUnknown;
    } else if (request.observation.size() != entry->info.numInputs) {
        reject.status = StatusCode::BadRequest;
        reject.message = detail::format(
            "expected ", entry->info.numInputs, " observations for ",
            entry->info.envName, ", got ", request.observation.size());
        MutexLock lock(countersMutex_);
        ++counters_.rejectedBadRequest;
    } else {
        PendingRequest pending;
        pending.request = request;
        pending.done = std::move(done);
        pending.enqueued = std::chrono::steady_clock::now();
        StatusCode reason = StatusCode::Ok;
        if (batcher_->submit(std::move(pending), reason))
            return;
        // Rejection leaves `pending` (and its callback) intact.
        reject.status = reason;
        reject.message = reason == StatusCode::Draining
                             ? "server is draining"
                             : "queue full, retry later";
        {
            MutexLock lock(countersMutex_);
            if (reason == StatusCode::Draining)
                ++counters_.rejectedDraining;
            else
                ++counters_.rejectedOverload;
        }
        pending.done(reject);
        return;
    }
    done(reject);
}

InferResponse
ChampionServer::infer(const InferRequest &request)
{
    std::promise<InferResponse> promise;
    std::future<InferResponse> future = promise.get_future();
    submit(request, [&promise](const InferResponse &response) {
        promise.set_value(response);
    });
    return future.get();
}

E3_HOT void
ChampionServer::evaluateBatch(std::vector<PendingRequest> &batch)
{
    obs::TraceSpan batchSpan("serve.batch", obs::TraceDetail::Task);
    const ChampionEntry *entry =
        findChampion(batch.front().request.fingerprint);
    // submit() verified the fingerprint before queueing; entries are
    // immutable after create(), so this lookup cannot fail.
    e3_assert(entry != nullptr, "batched request for an unknown champion");

    // The steady-state acquire() is an O(1) cache hit touching one
    // LRU list node; compile-on-miss is the documented cold path.
    Result<std::shared_ptr<CompiledChampion>> acquired =
        cache_->acquire(entry->info.fingerprint, // e3-lint: alloc-ok -- O(1) LRU hit; compile-on-miss is the cold path
                        entry->def, NetworkCompileOptions{});
    if (!acquired.ok()) {
        // Champions are verify-gated at load, so this is close to
        // unreachable — but a def that no longer compiles must answer
        // its requests, not crash the serving loop.
        warn("serve: champion ", entry->info.fingerprint,
             " failed to compile: ", acquired.message());
        for (PendingRequest &pending : batch) {
            InferResponse response;
            response.status = StatusCode::BadRequest;
            response.requestId = pending.request.requestId;
            {
                MutexLock lock(countersMutex_);
                ++counters_.rejectedBadRequest;
            }
            pending.done(response);
        }
        return;
    }
    const std::shared_ptr<CompiledChampion> compiled =
        std::move(acquired).value();

    // The whole coalesced group lands in one activateBatch() call per
    // chunk of lanes, under the champion's eval mutex: activation is a
    // pure function of (def, observation), so each response is
    // bit-identical no matter how requests were grouped.
    BatchNetwork &net = *compiled->batch;
    const size_t numIn = net.numInputs();
    const size_t numOut = net.numOutputs();
    MutexLock evalLock(compiled->evalMutex);
    std::vector<double> &inBuf = compiled->inScratch;
    std::vector<double> &outBuf = compiled->outScratch;
    for (size_t offset = 0; offset < batch.size();
         offset += net.lanes()) {
        const size_t count =
            std::min(net.lanes(), batch.size() - offset);
        for (size_t i = 0; i < count; ++i) {
            const Observation &obs =
                batch[offset + i].request.observation;
            std::copy(obs.begin(), obs.end(),
                      inBuf.begin() + static_cast<long>(i * numIn));
        }
        net.reset();
        net.activateBatch(count, inBuf.data(), numIn, outBuf.data(),
                          numOut);

        for (size_t i = 0; i < count; ++i) {
            obs::TraceSpan requestSpan("serve.infer",
                                       obs::TraceDetail::Task);
            PendingRequest &pending = batch[offset + i];
            InferResponse response;
            response.status = StatusCode::Ok;
            response.requestId = pending.request.requestId;
            response.action.assign(
                outBuf.begin() + static_cast<long>(i * numOut),
                outBuf.begin() + static_cast<long>((i + 1) * numOut));

            const auto now = std::chrono::steady_clock::now();
            latency_.record(
                std::chrono::duration<double>(now - pending.enqueued)
                    .count());
            {
                MutexLock lock(countersMutex_);
                ++counters_.ok;
            }
            pending.done(response);
        }
    }
}

Status
ChampionServer::listen(uint16_t port)
{
    if (listenFd_ >= 0)
        return Status::error("serve: listen() already called");

    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return Status::error("serve: socket(): ",
                             std::strerror(errno));
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) != 0) {
        const Status st = Status::error("serve: bind(", port,
                                        "): ", std::strerror(errno));
        ::close(fd);
        return st;
    }
    if (::listen(fd, 64) != 0) {
        const Status st = Status::error("serve: listen(): ",
                                        std::strerror(errno));
        ::close(fd);
        return st;
    }
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr *>(&addr), &len) !=
        0) {
        const Status st = Status::error("serve: getsockname(): ",
                                        std::strerror(errno));
        ::close(fd);
        return st;
    }
    listenFd_ = fd;
    port_ = ntohs(addr.sin_port);
    acceptThread_ = std::thread([this] { acceptLoop(); });
    return Status();
}

void
ChampionServer::acceptLoop()
{
    obs::traceSetThreadName("serve-accept");
    for (;;) {
        const int fd = ::accept(listenFd_, nullptr, nullptr);
        if (fd < 0)
            return; // listener closed: shutting down
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
        auto conn = std::make_shared<Connection>();
        conn->fd = fd;
        MutexLock lock(connectionsMutex_);
        if (stopped_) {
            ::close(fd);
            return;
        }
        connections_.push_back(conn);
        connectionThreads_.emplace_back(
            [this, conn] { connectionLoop(conn); });
    }
}

void
ChampionServer::connectionLoop(std::shared_ptr<Connection> conn)
{
    obs::traceSetThreadName("serve-conn");
    FrameReader reader;
    char buf[4096];
    for (;;) {
        const ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
        if (n <= 0)
            break;
        reader.feed(buf, static_cast<size_t>(n));
        for (;;) {
            std::string payload;
            Result<bool> got = reader.next(payload);
            if (!got.ok()) {
                // Oversized/garbled framing: answer once, then hang
                // up — the stream cannot be resynchronized.
                InferResponse bad;
                bad.status = StatusCode::BadRequest;
                bad.message = got.message();
                {
                    MutexLock lock(countersMutex_);
                    ++counters_.protocolErrors;
                }
                conn->send(bad);
                conn->shutdownAndClose();
                return;
            }
            if (!*got)
                break;
            Result<InferRequest> request = decodeRequest(payload);
            if (!request.ok()) {
                InferResponse bad;
                bad.status = StatusCode::BadRequest;
                bad.message = request.message();
                {
                    MutexLock lock(countersMutex_);
                    ++counters_.protocolErrors;
                }
                conn->send(bad);
                continue;
            }
            submit(*request, [conn](const InferResponse &response) {
                conn->send(response);
            });
        }
    }
    conn->shutdownAndClose();
}

void
ChampionServer::stop()
{
    {
        MutexLock lock(connectionsMutex_);
        if (stopped_)
            return;
        stopped_ = true;
    }
    // Wake and close the listener first so no new connections arrive,
    // then drain: everything already accepted is answered before the
    // workers exit, and new submissions answer Draining.
    if (listenFd_ >= 0) {
        ::shutdown(listenFd_, SHUT_RDWR);
        ::close(listenFd_);
    }
    batcher_->drain();
    {
        MutexLock lock(connectionsMutex_);
        for (auto &conn : connections_)
            conn->shutdownAndClose();
    }
    if (acceptThread_.joinable())
        acceptThread_.join();
    // The accept loop has exited, so nothing appends to the thread
    // list anymore; swap it out under the lock and join unlocked.
    std::vector<std::thread> joined;
    {
        MutexLock lock(connectionsMutex_);
        joined.swap(connectionThreads_);
    }
    for (auto &thread : joined) {
        if (thread.joinable())
            thread.join();
    }
    {
        MutexLock lock(connectionsMutex_);
        for (auto &conn : connections_) {
            if (conn->fd >= 0)
                ::close(conn->fd);
            conn->fd = -1;
        }
        connections_.clear();
    }
    listenFd_ = -1;
}

ServerCounters
ChampionServer::counters() const
{
    MutexLock lock(countersMutex_);
    return counters_;
}

BatcherStats
ChampionServer::batcherStats() const
{
    return batcher_->stats();
}

void
ChampionServer::exportMetrics(obs::MetricsRegistry &registry) const
{
    const ServerCounters c = counters();
    registry.setCounter("serve.requests",
                        static_cast<double>(c.requests));
    registry.setCounter("serve.ok", static_cast<double>(c.ok));
    registry.setCounter("serve.rejected_overload",
                        static_cast<double>(c.rejectedOverload));
    registry.setCounter("serve.rejected_unknown",
                        static_cast<double>(c.rejectedUnknown));
    registry.setCounter("serve.rejected_bad_request",
                        static_cast<double>(c.rejectedBadRequest));
    registry.setCounter("serve.rejected_draining",
                        static_cast<double>(c.rejectedDraining));
    registry.setCounter("serve.protocol_errors",
                        static_cast<double>(c.protocolErrors));

    const BatcherStats b = batcherStats();
    registry.setCounter("serve.batches",
                        static_cast<double>(b.batches));
    registry.setGauge("serve.batch_max",
                      static_cast<double>(b.maxBatchSize));
    registry.setGauge("serve.queue_depth",
                      static_cast<double>(b.queueDepth));

    registry.setCounter("serve.cache.hits",
                        static_cast<double>(cache_->hits()));
    registry.setCounter("serve.cache.misses",
                        static_cast<double>(cache_->misses()));
    registry.setCounter("serve.cache.evictions",
                        static_cast<double>(cache_->evictions()));
    registry.setGauge("serve.cache.resident",
                      static_cast<double>(cache_->size()));

    const LatencySummary l = latency();
    registry.setGauge("serve.latency_p50_ms", l.p50 * 1e3);
    registry.setGauge("serve.latency_p95_ms", l.p95 * 1e3);
    registry.setGauge("serve.latency_p99_ms", l.p99 * 1e3);
    registry.setGauge("serve.latency_max_ms", l.max * 1e3);
}

} // namespace e3::serve
