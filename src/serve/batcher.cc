#include "serve/batcher.hh"

#include <algorithm>

namespace e3::serve {

Batcher::Batcher(const Options &options, Evaluator evaluator)
    : options_(options), evaluator_(std::move(evaluator))
{
    if (options_.maxBatchSize == 0)
        options_.maxBatchSize = 1;
    if (options_.maxQueueDepth == 0)
        options_.maxQueueDepth = 1;
    const size_t threads = std::max<size_t>(1, options_.threads);
    workers_.reserve(threads);
    for (size_t i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

Batcher::~Batcher()
{
    drain();
}

bool
Batcher::submit(PendingRequest &&pending, StatusCode &reason)
{
    {
        MutexLock lock(mutex_);
        if (draining_) {
            ++stats_.rejectedDraining;
            reason = StatusCode::Draining;
            return false;
        }
        if (queue_.size() >= options_.maxQueueDepth) {
            ++stats_.rejectedOverload;
            reason = StatusCode::Overloaded;
            return false;
        }
        ++stats_.accepted;
        queue_.push_back(std::move(pending));
        stats_.queueDepth = queue_.size();
    }
    cv_.notify_all();
    return true;
}

void
Batcher::drain()
{
    {
        MutexLock lock(mutex_);
        if (draining_ && workers_.empty())
            return;
        draining_ = true;
    }
    cv_.notify_all();
    for (auto &worker : workers_) {
        if (worker.joinable())
            worker.join();
    }
    workers_.clear();
}

BatcherStats
Batcher::stats() const
{
    MutexLock lock(mutex_);
    return stats_;
}

size_t
Batcher::countFor(uint64_t fingerprint) const
{
    size_t n = 0;
    for (const auto &pending : queue_) {
        if (pending.request.fingerprint == fingerprint)
            ++n;
    }
    return n;
}

void
Batcher::workerLoop()
{
    for (;;) {
        std::vector<PendingRequest> batch;
        {
            MutexLock lock(mutex_);
            while (!draining_ && queue_.empty())
                cv_.wait(lock);
            if (queue_.empty())
                return; // draining and dry

            // The oldest request pins the group's champion; wait out
            // the coalescing window for same-champion company unless
            // the group is already full or the server is draining.
            const uint64_t fingerprint =
                queue_.front().request.fingerprint;
            const auto deadline =
                queue_.front().enqueued + options_.maxBatchDelay;
            while (!draining_ &&
                   countFor(fingerprint) < options_.maxBatchSize &&
                   std::chrono::steady_clock::now() < deadline) {
                if (cv_.wait_until(lock, deadline) ==
                    std::cv_status::timeout)
                    break;
            }

            for (auto it = queue_.begin();
                 it != queue_.end() &&
                 batch.size() < options_.maxBatchSize;) {
                if (it->request.fingerprint == fingerprint) {
                    batch.push_back(std::move(*it));
                    it = queue_.erase(it);
                } else {
                    ++it;
                }
            }
            // Another worker may have raced us to this group while we
            // waited out the window; nothing left is not a batch.
            if (batch.empty())
                continue;
            ++stats_.batches;
            stats_.batchedRequests += batch.size();
            stats_.maxBatchSize =
                std::max(stats_.maxBatchSize, batch.size());
            stats_.queueDepth = queue_.size();
        }
        // Other groups may still be runnable; let another worker in.
        cv_.notify_all();
        evaluator_(batch);
    }
}

} // namespace e3::serve
