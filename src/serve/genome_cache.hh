/**
 * @file
 * LRU cache of compiled champion networks, keyed by the checkpoint
 * manifest fingerprint.
 *
 * The server retains every loaded champion's *definition* (a NetworkDef
 * is a few KB), but a compiled, executable Network carries layer
 * structure and a value array, and an edge box serving many champions
 * cannot keep them all resident. The cache compiles on first use and
 * evicts least-recently-used entries beyond its capacity; hit/miss/
 * eviction counters feed the serve metrics.
 *
 * Entries are handed out as shared_ptr, so an eviction never pulls a
 * network out from under a batch that is mid-inference — the batch
 * keeps its reference and the entry is destroyed when the last user
 * drops it. Each champion compiles to a replicated BatchNetwork
 * (compileReplicated) with one lane per batcher slot, so a coalesced
 * group of same-champion requests is answered by ONE activateBatch()
 * call. Each entry carries its own eval mutex: activation mutates the
 * engine's value arena, so concurrent batches for the same champion
 * serialize on it (and, activation being a pure function of
 * (definition, observation), responses stay bit-identical at any
 * batch size or thread count).
 */

#ifndef E3_SERVE_GENOME_CACHE_HH
#define E3_SERVE_GENOME_CACHE_HH

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.hh"
#include "nn/batch_eval.hh"

namespace e3::serve {

/** A compiled champion ready to answer observation batches. */
struct CompiledChampion
{
    uint64_t fingerprint = 0;
    /**
     * Activation mutates the engine's value arena, so every
     * reset()/activateBatch() call happens under evalMutex; the
     * metadata accessors (lanes, arity) are immutable after compile
     * and stay lock-free.
     */
    std::unique_ptr<BatchNetwork> batch;
    Mutex evalMutex;
    /**
     * Staging buffers for one coalesced batch, sized once in acquire()
     * to lanes x numInputs / lanes x numOutputs — the serve hot path
     * (E3_HOT evaluateBatch) must not allocate per batch.
     */
    std::vector<double> inScratch E3_GUARDED_BY(evalMutex);
    std::vector<double> outScratch E3_GUARDED_BY(evalMutex);
};

/** Thread-safe LRU cache of compiled networks. */
class GenomeCache
{
  public:
    /**
     * @param capacity resident compiled champions (min 1)
     * @param batchLanes value lanes per champion — size this to the
     *        batcher's maximum group so one group is one
     *        activateBatch() call (min 1)
     */
    explicit GenomeCache(size_t capacity, size_t batchLanes = 1)
        : capacity_(capacity == 0 ? 1 : capacity),
          batchLanes_(batchLanes == 0 ? 1 : batchLanes)
    {
    }

    /**
     * Fetch the compiled network for @p fingerprint, compiling
     * @p def on a miss (an error Status if it does not compile). The
     * returned entry stays valid even if a later insertion evicts it
     * from the cache.
     */
    Result<std::shared_ptr<CompiledChampion>>
    acquire(uint64_t fingerprint, const NetworkDef &def,
            const NetworkCompileOptions &options);

    size_t batchLanes() const { return batchLanes_; }

    size_t size() const;
    size_t capacity() const { return capacity_; }
    uint64_t hits() const;
    uint64_t misses() const;
    uint64_t evictions() const;

    /** True if @p fingerprint is currently resident (no LRU touch). */
    [[nodiscard]] bool contains(uint64_t fingerprint) const;

    /** Drop everything (entries in use stay alive via shared_ptr). */
    void clear();

  private:
    mutable Mutex mutex_;
    size_t capacity_;
    size_t batchLanes_;
    /** Most-recently-used at the front. */
    std::list<uint64_t> order_ E3_GUARDED_BY(mutex_);
    struct Slot
    {
        std::shared_ptr<CompiledChampion> entry;
        std::list<uint64_t>::iterator pos;
    };
    std::unordered_map<uint64_t, Slot> slots_ E3_GUARDED_BY(mutex_);
    uint64_t hits_ E3_GUARDED_BY(mutex_) = 0;
    uint64_t misses_ E3_GUARDED_BY(mutex_) = 0;
    uint64_t evictions_ E3_GUARDED_BY(mutex_) = 0;
};

} // namespace e3::serve

#endif // E3_SERVE_GENOME_CACHE_HH
