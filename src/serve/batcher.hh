/**
 * @file
 * Request-coalescing batcher with admission control.
 *
 * Incoming inference requests land in one bounded FIFO. Worker threads
 * pull *groups*: the oldest request pins the champion fingerprint, and
 * the worker waits up to a bounded window (maxBatchDelay) for more
 * requests to the same champion before dispatching, up to maxBatchSize
 * per group. Grouping amortizes the cache lookup and the champion's
 * eval-mutex acquisition across requests; the window bounds the
 * latency cost a request can pay for that amortization.
 *
 * Admission control: when the queue holds maxQueueDepth requests,
 * submit() rejects with Overloaded — a retriable condition — instead
 * of queueing unboundedly. After drain() begins, submissions reject
 * with Draining and the workers run the queue dry before exiting, so
 * every accepted request is answered exactly once.
 *
 * Batching never changes results: the evaluator activates the network
 * once per request, and activation is a pure function of (champion
 * definition, observation) — so a response is bit-identical whether
 * its request rode alone or in a full group.
 */

#ifndef E3_SERVE_BATCHER_HH
#define E3_SERVE_BATCHER_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "common/thread_annotations.hh"
#include "serve/protocol.hh"

namespace e3::serve {

/** A queued request plus its completion callback. */
struct PendingRequest
{
    InferRequest request;
    std::function<void(const InferResponse &)> done;
    std::chrono::steady_clock::time_point enqueued;
};

/** Counters the batcher maintains (all monotonic except depth). */
struct BatcherStats
{
    uint64_t accepted = 0;
    uint64_t rejectedOverload = 0;
    uint64_t rejectedDraining = 0;
    uint64_t batches = 0;
    uint64_t batchedRequests = 0;
    size_t maxBatchSize = 0;
    size_t queueDepth = 0;
};

class Batcher
{
  public:
    struct Options
    {
        size_t maxBatchSize = 16;
        std::chrono::microseconds maxBatchDelay{200};
        size_t maxQueueDepth = 256;
        size_t threads = 1;
    };

    /**
     * Called on a worker thread with a group of requests that all
     * share one champion fingerprint. Must invoke every request's
     * done callback exactly once.
     */
    using Evaluator = std::function<void(std::vector<PendingRequest> &)>;

    Batcher(const Options &options, Evaluator evaluator);

    /** Drains and joins (equivalent to drain()). */
    ~Batcher();

    Batcher(const Batcher &) = delete;
    Batcher &operator=(const Batcher &) = delete;

    /**
     * Enqueue a request. On rejection (queue full, or draining) the
     * request is NOT consumed — @p pending stays intact, @p reason is
     * set, and false returns so the caller can answer the client
     * through the still-valid callback.
     */
    [[nodiscard]] bool submit(PendingRequest &&pending,
                              StatusCode &reason);

    /**
     * Stop accepting, run the queue dry, and join the workers.
     * Idempotent.
     */
    void drain();

    BatcherStats stats() const;

  private:
    void workerLoop();

    /** Queued requests for @p fingerprint. */
    size_t countFor(uint64_t fingerprint) const E3_REQUIRES(mutex_);

    Options options_;
    Evaluator evaluator_;

    mutable Mutex mutex_;
    CondVar cv_;
    std::deque<PendingRequest> queue_ E3_GUARDED_BY(mutex_);
    bool draining_ E3_GUARDED_BY(mutex_) = false;
    BatcherStats stats_ E3_GUARDED_BY(mutex_);

    std::vector<std::thread> workers_;
};

} // namespace e3::serve

#endif // E3_SERVE_BATCHER_HH
