#include "serve/genome_cache.hh"

namespace e3::serve {

Result<std::shared_ptr<CompiledChampion>>
GenomeCache::acquire(uint64_t fingerprint, const NetworkDef &def,
                     const NetworkCompileOptions &options)
{
    {
        MutexLock lock(mutex_);
        auto it = slots_.find(fingerprint);
        if (it != slots_.end()) {
            ++hits_;
            order_.erase(it->second.pos);
            order_.push_front(fingerprint);
            it->second.pos = order_.begin();
            return it->second.entry;
        }
        ++misses_;
    }

    // Compile outside the cache lock: a large champion's compile must
    // not stall hits for other champions. A concurrent miss on the
    // same fingerprint may compile twice; the second insert wins the
    // slot and the first compilation dies with its batch's reference.
    Result<std::unique_ptr<BatchNetwork>> compiled =
        compileReplicated(def, batchLanes_, options);
    if (!compiled.ok())
        return compiled.status();
    auto entry = std::make_shared<CompiledChampion>();
    entry->fingerprint = fingerprint;
    entry->batch = std::move(compiled).value();
    {
        // The entry is not shared yet; the lock just satisfies the
        // guard annotation on the scratch buffers.
        MutexLock init(entry->evalMutex);
        entry->inScratch.resize(entry->batch->lanes() *
                                entry->batch->numInputs());
        entry->outScratch.resize(entry->batch->lanes() *
                                 entry->batch->numOutputs());
    }

    MutexLock lock(mutex_);
    auto it = slots_.find(fingerprint);
    if (it != slots_.end()) {
        order_.erase(it->second.pos);
        order_.push_front(fingerprint);
        it->second.pos = order_.begin();
        return it->second.entry;
    }
    order_.push_front(fingerprint);
    slots_[fingerprint] = Slot{entry, order_.begin()};
    while (slots_.size() > capacity_) {
        const uint64_t victim = order_.back();
        order_.pop_back();
        slots_.erase(victim);
        ++evictions_;
    }
    return entry;
}

size_t
GenomeCache::size() const
{
    MutexLock lock(mutex_);
    return slots_.size();
}

uint64_t
GenomeCache::hits() const
{
    MutexLock lock(mutex_);
    return hits_;
}

uint64_t
GenomeCache::misses() const
{
    MutexLock lock(mutex_);
    return misses_;
}

uint64_t
GenomeCache::evictions() const
{
    MutexLock lock(mutex_);
    return evictions_;
}

bool
GenomeCache::contains(uint64_t fingerprint) const
{
    MutexLock lock(mutex_);
    return slots_.count(fingerprint) > 0;
}

void
GenomeCache::clear()
{
    MutexLock lock(mutex_);
    slots_.clear();
    order_.clear();
}

} // namespace e3::serve
