/**
 * @file
 * Latency sample recorder with percentile extraction.
 *
 * The serving loop records one sample per answered request; the bench
 * and the metrics export ask for p50/p95/p99. Samples are kept exactly
 * up to a cap, then reservoir-style thinning keeps the memory bounded
 * on long-running servers while every sample still has a chance to
 * land (deterministic stride, no RNG — the linter's determinism rules
 * stay trivially satisfied).
 */

#ifndef E3_SERVE_LATENCY_HH
#define E3_SERVE_LATENCY_HH

#include <cstddef>
#include <vector>

#include "common/thread_annotations.hh"

namespace e3::serve {

/** p50/p95/p99 plus extremes, in the recorder's unit (seconds). */
struct LatencySummary
{
    size_t count = 0;
    double min = 0.0;
    double max = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
};

/** Thread-safe sample sink. */
class LatencyRecorder
{
  public:
    explicit LatencyRecorder(size_t maxSamples = 1 << 18)
        : maxSamples_(maxSamples == 0 ? 1 : maxSamples)
    {
    }

    /** Record one latency sample (seconds). */
    void record(double seconds);

    /** Total samples offered (including thinned-away ones). */
    size_t count() const;

    /** Summarize what is currently retained. */
    LatencySummary summarize() const;

  private:
    mutable Mutex mutex_;
    std::vector<double> samples_ E3_GUARDED_BY(mutex_);
    size_t offered_ E3_GUARDED_BY(mutex_) = 0;
    /** Keep every stride-th sample once full. */
    size_t stride_ E3_GUARDED_BY(mutex_) = 1;
    size_t maxSamples_;
};

/**
 * Percentile by linear interpolation over a sorted copy of @p samples
 * (q in [0, 1]); 0 for an empty set. Exposed for the bench's own
 * per-connection aggregation.
 */
double percentile(std::vector<double> samples, double q);

} // namespace e3::serve

#endif // E3_SERVE_LATENCY_HH
