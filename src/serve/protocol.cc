#include "serve/protocol.hh"

#include <cstring>

namespace e3::serve {

namespace {

void
putU32(std::string &out, uint32_t v)
{
    char b[4];
    b[0] = static_cast<char>(v & 0xff);
    b[1] = static_cast<char>((v >> 8) & 0xff);
    b[2] = static_cast<char>((v >> 16) & 0xff);
    b[3] = static_cast<char>((v >> 24) & 0xff);
    out.append(b, 4);
}

void
putU64(std::string &out, uint64_t v)
{
    putU32(out, static_cast<uint32_t>(v & 0xffffffffu));
    putU32(out, static_cast<uint32_t>(v >> 32));
}

void
putDouble(std::string &out, double v)
{
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));
    putU64(out, bits);
}

/** Bounds-checked little-endian reads off a payload. */
class Cursor
{
  public:
    explicit Cursor(const std::string &data) : data_(data) {}

    bool
    u32(uint32_t &out)
    {
        if (pos_ + 4 > data_.size())
            return false;
        const auto *p =
            reinterpret_cast<const unsigned char *>(data_.data() + pos_);
        out = static_cast<uint32_t>(p[0]) |
              (static_cast<uint32_t>(p[1]) << 8) |
              (static_cast<uint32_t>(p[2]) << 16) |
              (static_cast<uint32_t>(p[3]) << 24);
        pos_ += 4;
        return true;
    }

    bool
    u64(uint64_t &out)
    {
        uint32_t lo = 0;
        uint32_t hi = 0;
        if (!u32(lo) || !u32(hi))
            return false;
        out = static_cast<uint64_t>(lo) |
              (static_cast<uint64_t>(hi) << 32);
        return true;
    }

    bool
    f64(double &out)
    {
        uint64_t bits = 0;
        if (!u64(bits))
            return false;
        std::memcpy(&out, &bits, sizeof(out));
        return true;
    }

    bool
    bytes(size_t n, std::string &out)
    {
        if (pos_ + n > data_.size())
            return false;
        out.assign(data_, pos_, n);
        pos_ += n;
        return true;
    }

    bool exhausted() const { return pos_ == data_.size(); }

  private:
    const std::string &data_;
    size_t pos_ = 0;
};

} // namespace

std::string
statusCodeName(StatusCode code)
{
    switch (code) {
      case StatusCode::Ok: return "ok";
      case StatusCode::Overloaded: return "overloaded";
      case StatusCode::UnknownChampion: return "unknown-champion";
      case StatusCode::BadRequest: return "bad-request";
      case StatusCode::Draining: return "draining";
    }
    return "invalid-status";
}

std::string
encodeRequest(const InferRequest &request)
{
    std::string out;
    out.reserve(24 + request.observation.size() * 8);
    putU32(out, kInferKind);
    putU64(out, request.requestId);
    putU64(out, request.fingerprint);
    putU32(out, static_cast<uint32_t>(request.observation.size()));
    for (double v : request.observation)
        putDouble(out, v);
    return out;
}

Result<InferRequest>
decodeRequest(const std::string &payload)
{
    Cursor cur(payload);
    uint32_t kind = 0;
    InferRequest request;
    uint32_t numObs = 0;
    if (!cur.u32(kind) || !cur.u64(request.requestId) ||
        !cur.u64(request.fingerprint) || !cur.u32(numObs))
        return Status::error("truncated request header");
    if (kind != kInferKind)
        return Status::error("unknown request kind ", kind);
    if (numObs > kMaxFrameBytes / 8)
        return Status::error("implausible observation count ", numObs);
    request.observation.resize(numObs);
    for (double &v : request.observation) {
        if (!cur.f64(v))
            return Status::error("truncated observation vector");
    }
    if (!cur.exhausted())
        return Status::error("trailing bytes after request");
    return request;
}

std::string
encodeResponse(const InferResponse &response)
{
    std::string out;
    out.reserve(20 + response.action.size() * 8 +
                response.message.size());
    putU32(out, static_cast<uint32_t>(response.status));
    putU64(out, response.requestId);
    putU32(out, static_cast<uint32_t>(response.action.size()));
    for (double v : response.action)
        putDouble(out, v);
    putU32(out, static_cast<uint32_t>(response.message.size()));
    out += response.message;
    return out;
}

Result<InferResponse>
decodeResponse(const std::string &payload)
{
    Cursor cur(payload);
    uint32_t status = 0;
    InferResponse response;
    uint32_t numActions = 0;
    if (!cur.u32(status) || !cur.u64(response.requestId) ||
        !cur.u32(numActions))
        return Status::error("truncated response header");
    if (status > static_cast<uint32_t>(StatusCode::Draining))
        return Status::error("unknown response status ", status);
    response.status = static_cast<StatusCode>(status);
    if (numActions > kMaxFrameBytes / 8)
        return Status::error("implausible action count ", numActions);
    response.action.resize(numActions);
    for (double &v : response.action) {
        if (!cur.f64(v))
            return Status::error("truncated action vector");
    }
    uint32_t msgLen = 0;
    if (!cur.u32(msgLen) ||
        !cur.bytes(msgLen, response.message))
        return Status::error("truncated response message");
    if (!cur.exhausted())
        return Status::error("trailing bytes after response");
    return response;
}

std::string
frame(const std::string &payload)
{
    std::string out;
    out.reserve(4 + payload.size());
    putU32(out, static_cast<uint32_t>(payload.size()));
    out += payload;
    return out;
}

void
FrameReader::feed(const char *data, size_t size)
{
    if (!poisoned_)
        buffer_.append(data, size);
}

Result<bool>
FrameReader::next(std::string &payload)
{
    if (poisoned_)
        return Status::error(poisonReason_);
    if (buffer_.size() < 4)
        return false;
    const auto *p =
        reinterpret_cast<const unsigned char *>(buffer_.data());
    const uint32_t len = static_cast<uint32_t>(p[0]) |
                         (static_cast<uint32_t>(p[1]) << 8) |
                         (static_cast<uint32_t>(p[2]) << 16) |
                         (static_cast<uint32_t>(p[3]) << 24);
    if (len > kMaxFrameBytes) {
        poisoned_ = true;
        poisonReason_ = detail::format("frame of ", len,
                                       " bytes exceeds the ",
                                       kMaxFrameBytes, "-byte cap");
        buffer_.clear();
        return Status::error(poisonReason_);
    }
    if (buffer_.size() < 4 + static_cast<size_t>(len))
        return false;
    payload.assign(buffer_, 4, len);
    buffer_.erase(0, 4 + static_cast<size_t>(len));
    return true;
}

} // namespace e3::serve
