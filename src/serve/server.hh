/**
 * @file
 * Champion-serving inference server.
 *
 * The deployment half of the paper's edge story: a controller evolved
 * on-device (and persisted via src/persist checkpoints) answers
 * observation -> action requests. ChampionServer loads the champion of
 * each configured checkpoint directory, gates it through the src/verify
 * static analyzer (an artifact with verification errors is never
 * served — the load returns a tagged error instead), compiles it into
 * a replicated batch engine (compileReplicated), and serves it through
 * a request-coalescing batcher backed by an LRU compiled-network cache
 * keyed on the checkpoint manifest fingerprint — each coalesced group
 * of same-champion requests is answered by one activateBatch() call.
 *
 * Two front ends share one request path: submit()/infer() for
 * in-process callers (tests, the bench driver) and a length-prefixed
 * TCP protocol (serve/protocol.hh) via listen(). Shutdown is graceful:
 * stop() rejects new work with Draining, runs the queue dry, answers
 * everything accepted, then joins.
 *
 * Determinism contract: a response is a pure function of (champion
 * fingerprint, observation bytes) — bit-identical at any batch size,
 * thread count, or cache state.
 */

#ifndef E3_SERVE_SERVER_HH
#define E3_SERVE_SERVER_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.hh"
#include "common/thread_annotations.hh"
#include "nn/network.hh"
#include "obs/metrics.hh"
#include "serve/batcher.hh"
#include "serve/genome_cache.hh"
#include "serve/latency.hh"
#include "serve/protocol.hh"

namespace e3::serve {

/** One champion to load: a checkpoint directory plus its task. */
struct ChampionSource
{
    std::string checkpointDir;
    std::string envName; ///< registry key, e.g. "cartpole"
};

struct ServeOptions
{
    std::vector<ChampionSource> sources;

    /** Compiled networks kept resident (LRU beyond this). */
    size_t cacheCapacity = 8;

    size_t maxBatchSize = 16;
    std::chrono::microseconds maxBatchDelay{200};
    size_t maxQueueDepth = 256;

    /** Batcher worker threads. */
    size_t threads = 1;

    /** Refuse champions with verifier *warnings* too. */
    bool strictVerify = false;
};

/** What the server knows about one loaded champion. */
struct ChampionInfo
{
    uint64_t fingerprint = 0; ///< checkpoint manifest hash
    std::string envName;
    std::string checkpointDir;
    size_t numInputs = 0;
    size_t numOutputs = 0;
    int generation = 0;       ///< generation the checkpoint resumed at
    double bestFitness = 0.0;
};

/** Aggregate request counters (see also BatcherStats, GenomeCache). */
struct ServerCounters
{
    uint64_t requests = 0;
    uint64_t ok = 0;
    uint64_t rejectedOverload = 0;
    uint64_t rejectedUnknown = 0;
    uint64_t rejectedBadRequest = 0;
    uint64_t rejectedDraining = 0;
    uint64_t protocolErrors = 0; ///< undecodable TCP payloads
};

class ChampionServer
{
  public:
    /**
     * Load, verify and index every configured champion. Any source
     * that fails — unreadable checkpoint, no champion recorded,
     * unknown environment, or a genome the verifier rejects — fails
     * the whole create with a tagged error (a server must never come
     * up silently missing a champion).
     */
    static Result<std::unique_ptr<ChampionServer>>
    create(const ServeOptions &options);

    ~ChampionServer();

    ChampionServer(const ChampionServer &) = delete;
    ChampionServer &operator=(const ChampionServer &) = delete;

    /** Loaded champions, in source order. */
    const std::vector<ChampionInfo> &champions() const
    {
        return champions_;
    }

    /**
     * Asynchronous in-process request. @p done runs exactly once, on
     * a batcher worker (or inline for rejected requests).
     */
    void submit(const InferRequest &request,
                std::function<void(const InferResponse &)> done);

    /** Blocking in-process request. */
    InferResponse infer(const InferRequest &request);

    /**
     * Start the TCP front end on @p port (0 picks an ephemeral port).
     * Call at most once.
     */
    Status listen(uint16_t port);

    /** Bound TCP port; 0 if listen() was not called. */
    uint16_t port() const { return port_; }

    /**
     * Graceful shutdown: stop accepting (new submissions answer
     * Draining), drain the queue, close connections, join all
     * threads. Idempotent; the destructor calls it.
     */
    void stop();

    ServerCounters counters() const;
    BatcherStats batcherStats() const;
    const GenomeCache &cache() const { return *cache_; }
    LatencySummary latency() const { return latency_.summarize(); }

    /** Publish counters/gauges into @p registry under "serve.". */
    void exportMetrics(obs::MetricsRegistry &registry) const;

  private:
    struct ChampionEntry
    {
        ChampionInfo info;
        NetworkDef def;
    };
    struct Connection;

    explicit ChampionServer(const ServeOptions &options);

    void evaluateBatch(std::vector<PendingRequest> &batch);
    const ChampionEntry *findChampion(uint64_t fingerprint) const;

    void acceptLoop();
    void connectionLoop(std::shared_ptr<Connection> conn);

    ServeOptions options_;
    std::vector<ChampionInfo> champions_;
    std::vector<ChampionEntry> entries_;
    std::unique_ptr<GenomeCache> cache_;
    std::unique_ptr<Batcher> batcher_;
    LatencyRecorder latency_;

    mutable Mutex countersMutex_;
    ServerCounters counters_ E3_GUARDED_BY(countersMutex_);

    // TCP front end.
    int listenFd_ = -1;
    uint16_t port_ = 0;
    std::thread acceptThread_;
    Mutex connectionsMutex_;
    std::vector<std::shared_ptr<Connection>> connections_
        E3_GUARDED_BY(connectionsMutex_);
    std::vector<std::thread> connectionThreads_
        E3_GUARDED_BY(connectionsMutex_);
    bool stopped_ E3_GUARDED_BY(connectionsMutex_) = false;
};

} // namespace e3::serve

#endif // E3_SERVE_SERVER_HH
