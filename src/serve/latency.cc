#include "serve/latency.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace e3::serve {

void
LatencyRecorder::record(double seconds)
{
    MutexLock lock(mutex_);
    ++offered_;
    // Once the buffer is full, double the stride and drop every other
    // retained sample: memory stays <= maxSamples_ and the kept set
    // remains an even, deterministic thinning of the whole stream.
    if (samples_.size() >= maxSamples_) {
        std::vector<double> kept;
        kept.reserve(samples_.size() / 2 + 1);
        for (size_t i = 0; i < samples_.size(); i += 2)
            kept.push_back(samples_[i]);
        samples_ = std::move(kept);
        stride_ *= 2;
    }
    if ((offered_ - 1) % stride_ == 0)
        samples_.push_back(seconds);
}

size_t
LatencyRecorder::count() const
{
    MutexLock lock(mutex_);
    return offered_;
}

LatencySummary
LatencyRecorder::summarize() const
{
    std::vector<double> samples;
    size_t offered = 0;
    {
        MutexLock lock(mutex_);
        samples = samples_;
        offered = offered_;
    }
    LatencySummary s;
    s.count = offered;
    if (samples.empty())
        return s;
    std::sort(samples.begin(), samples.end());
    s.min = samples.front();
    s.max = samples.back();
    s.mean = std::accumulate(samples.begin(), samples.end(), 0.0) /
             static_cast<double>(samples.size());
    auto at = [&](double q) {
        const double idx =
            q * static_cast<double>(samples.size() - 1);
        const size_t lo = static_cast<size_t>(std::floor(idx));
        const size_t hi = static_cast<size_t>(std::ceil(idx));
        const double frac = idx - static_cast<double>(lo);
        return samples[lo] * (1.0 - frac) + samples[hi] * frac;
    };
    s.p50 = at(0.50);
    s.p95 = at(0.95);
    s.p99 = at(0.99);
    return s;
}

double
percentile(std::vector<double> samples, double q)
{
    if (samples.empty())
        return 0.0;
    std::sort(samples.begin(), samples.end());
    q = std::clamp(q, 0.0, 1.0);
    const double idx = q * static_cast<double>(samples.size() - 1);
    const size_t lo = static_cast<size_t>(std::floor(idx));
    const size_t hi = static_cast<size_t>(std::ceil(idx));
    const double frac = idx - static_cast<double>(lo);
    return samples[lo] * (1.0 - frac) + samples[hi] * frac;
}

} // namespace e3::serve
