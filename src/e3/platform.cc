#include "e3/platform.hh"

#include <algorithm>
#include <optional>
#include <sstream>

#include "common/logging.hh"
#include "e3/inax_backend.hh"
#include "nn/batch_eval.hh"
#include "obs/trace.hh"
#include "persist/checkpoint.hh"
#include "verify/verify.hh"

namespace e3 {

namespace {

runtime::RuntimeConfig
runtimeConfigOf(const PlatformConfig &cfg)
{
    runtime::RuntimeConfig rt;
    rt.threads = std::max<size_t>(cfg.threads, 1);
    rt.asyncOverlap = cfg.asyncOverlap;
    return rt;
}

/**
 * Canonical string hashed into the checkpoint fingerprint. Only the
 * knobs that shape functional evolution belong here: threads, async
 * overlap, generation caps and time budgets are deliberately excluded
 * so a run may be resumed with more generations or a different worker
 * count and still replay bit-identically.
 */
std::string
canonicalConfig(const PlatformConfig &cfg)
{
    std::ostringstream oss;
    oss << "env=" << cfg.envName << ";seed=" << cfg.seed
        << ";pop=" << cfg.populationSize
        << ";episodes=" << cfg.episodesPerEval << ";quant=";
    if (cfg.quantization)
        oss << cfg.quantization->totalBits << '.'
            << cfg.quantization->fracBits;
    else
        oss << "none";
    return oss.str();
}

persist::TraceRow
toTraceRow(const GenerationPoint &p)
{
    persist::TraceRow row;
    row.generation = p.generation;
    row.bestFitness = p.bestFitness;
    row.meanFitness = p.meanFitness;
    row.normalizedBest = p.normalizedBest;
    row.cumulativeSeconds = p.cumulativeSeconds;
    row.meanNodes = p.meanNodes;
    row.meanConnections = p.meanConnections;
    row.meanDensity = p.meanDensity;
    row.numSpecies = p.numSpecies;
    return row;
}

/** First error diagnostic of a report, formatted for a warn() line. */
std::string
firstErrorLine(const verify::Report &report)
{
    for (const verify::Diagnostic &d : report.diagnostics) {
        if (d.severity != verify::Severity::Error)
            continue;
        return d.ruleId + " [" + d.locus + "] " + d.message;
    }
    return {};
}

GenerationPoint
fromTraceRow(const persist::TraceRow &row)
{
    GenerationPoint p;
    p.generation = row.generation;
    p.bestFitness = row.bestFitness;
    p.meanFitness = row.meanFitness;
    p.normalizedBest = row.normalizedBest;
    p.cumulativeSeconds = row.cumulativeSeconds;
    p.meanNodes = row.meanNodes;
    p.meanConnections = row.meanConnections;
    p.meanDensity = row.meanDensity;
    p.numSpecies = row.numSpecies;
    return p;
}

} // namespace

E3Platform::E3Platform(const PlatformConfig &cfg,
                       std::unique_ptr<EvalBackend> backend)
    : cfg_(cfg), spec_(envSpec(cfg.envName)),
      neatCfg_(NeatConfig::forTask(spec_.numInputs, spec_.numOutputs,
                                   spec_.requiredFitness)),
      backend_(std::move(backend)), runtime_(runtimeConfigOf(cfg))
{
    e3_assert(backend_, "platform needs a backend");
    e3_assert(cfg_.episodesPerEval >= 1, "need at least one episode");
    neatCfg_.populationSize = cfg_.populationSize;
}

void
E3Platform::evaluateFunctional(Population &pop, GenerationTrace &trace,
                               int generation,
                               std::map<int, SpeciesEvalSummary> &summaries)
{
    const size_t n = pop.genomes().size();

    // CreateNet: decode every genome once per generation, then compile
    // the whole population through the one population-compile entry
    // point (nn/batch_eval). A batch-capable backend routes this to
    // the SoA engine; everything else gets the loop-over-Network
    // adapter — functional results are bit-identical either way. With
    // quantized deployment enabled, the adapter hands back fixed-point
    // evaluators (the accelerator's datapath view).
    std::vector<int> keys;
    std::vector<NetworkDef> defs;
    keys.reserve(n);
    defs.reserve(n);
    NetworkCompileOptions compileOpts;
    compileOpts.quantization = cfg_.quantization;
    {
        obs::TraceSpan span("createnet");
        for (const auto &[key, genome] : pop.genomes()) {
            keys.push_back(key);
            NetworkDef def = genome.toNetworkDef(neatCfg_);
            if (cfg_.verifyGenomes) {
                // The --verify gate: an evolved def failing structural
                // verification is an evolution-loop bug. Errors only —
                // pruned hidden nodes (E3V008) are normal NEAT debris.
                verify::Report report =
                    verify::verifyNetworkDef(def, neatCfg_.feedForward);
                report.diagnostics.erase(
                    std::remove_if(report.diagnostics.begin(),
                                   report.diagnostics.end(),
                                   [](const verify::Diagnostic &d) {
                                       return d.severity !=
                                              verify::Severity::Error;
                                   }),
                    report.diagnostics.end());
                if (!report.empty()) {
                    report.setArtifact(
                        "gen " + std::to_string(generation) +
                        " genome " + std::to_string(key));
                    warn("verify: genome ", key, " at generation ",
                         generation, ": ", firstErrorLine(report));
                    verifyReport_.merge(std::move(report));
                }
            }
            trace.individuals.push_back(computeNetStats(def));
            defs.push_back(std::move(def));
        }
    }

    const BatchEngine engine = backend_->batchedFunctionalInference()
                                   ? BatchEngine::Auto
                                   : BatchEngine::PerGenome;
    Result<std::unique_ptr<BatchNetwork>> compiled =
        compilePopulation(defs, compileOpts, engine);
    // Evolved genomes satisfy the structural invariants by
    // construction, so a compile failure here is an evolution-loop bug.
    e3_assert(compiled.ok(),
              "population compile failed: ", compiled.message());
    const std::unique_ptr<BatchNetwork> batch =
        std::move(compiled).value();

    if (cfg_.verifyGenomes) {
        // The --verify gate, batch side: when the SoA engine compiled
        // a flat plan, certify it (E3V301–E3V306) against the very
        // defs it was compiled from before any lane activates. The
        // per-genome adapter has no plan and skips this.
        if (const BatchPlan *batchPlan = batch->plan()) {
            verify::Report report =
                verify::verifyBatchPlan(*batchPlan, defs);
            if (!report.empty()) {
                report.setArtifact("gen " + std::to_string(generation) +
                                   " batch plan");
                warn("verify: batch plan at generation ", generation,
                     ": ", firstErrorLine(report));
                verifyReport_.merge(std::move(report));
            }
        }
    }

    for (auto &def : defs)
        trace.defs.push_back(std::move(def));
    trace.numInputs = spec_.numInputs;
    trace.numOutputs = spec_.numOutputs;

    runtime::EvalPlan plan;
    plan.spec = &spec_;
    plan.lanes = n;
    plan.episodeSeeds.reserve(cfg_.episodesPerEval);
    for (size_t e = 0; e < cfg_.episodesPerEval; ++e) {
        plan.episodeSeeds.push_back(
            cfg_.seed ^
            (0x9E3779B97F4A7C15ULL *
             (static_cast<uint64_t>(generation) * 31 + e + 1)));
    }
    // Lanes hand observations straight to the batch engine; distinct
    // lanes touch disjoint value regions, so out-of-lockstep parallel
    // rollout stays safe.
    plan.act = [&](size_t i, const Observation &obs) {
        std::vector<double> out(batch->numOutputs());
        batch->activateLane(i, obs.data(), out.data());
        return decodeAction(spec_, out);
    };

    // Async overlap: one lane group per species, so the evolve phase's
    // per-species summaries (fitness mean/extrema, member ranking) are
    // computed the moment that species' lanes finish — while the rest
    // of the population is still rolling out.
    summaries.clear();
    std::map<int, size_t> laneOf;
    if (cfg_.asyncOverlap) {
        for (size_t i = 0; i < n; ++i)
            laneOf.emplace(keys[i], i);
        for (const auto &[sid, sp] : pop.speciesSet().species()) {
            runtime::EvalPlan::Group group;
            group.id = sid;
            group.lanes.reserve(sp.members.size());
            for (int key : sp.members)
                group.lanes.push_back(laneOf.at(key));
            plan.groups.push_back(std::move(group));
            // Slots preallocated here; group callbacks fill them
            // concurrently without mutating the map's structure.
            summaries.emplace(sid, SpeciesEvalSummary{});
        }
        plan.onGroupDone =
            [&](const runtime::EvalPlan::Group &group,
                const std::vector<double> &laneFitness) {
                const auto &members =
                    pop.speciesSet().species().at(group.id).members;
                summaries.at(group.id) = Reproduction::summarizeSpecies(
                    members, [&](int key) {
                        return laneFitness[laneOf.at(key)];
                    });
            };
    }

    runtime::EvalOutcome outcome;
    {
        obs::TraceSpan span("evaluate");
        outcome = runtime_.evaluate(plan);
    }
    trace.episodes = std::move(outcome.episodeLengths);
    for (const auto &round : trace.episodes) {
        for (int steps : round)
            envSteps_ += static_cast<uint64_t>(steps);
    }
    for (size_t i = 0; i < n; ++i)
        pop.genomes().at(keys[i]).fitness = outcome.fitness[i];
}

RunResult
E3Platform::run()
{
    RunResult result;
    result.backendName = backend_->name();
    result.envName = cfg_.envName;

    const bool checkpointing = !cfg_.checkpointDir.empty();
    const uint64_t configHash =
        persist::fingerprint(canonicalConfig(cfg_));

    // Resume: restore the newest usable snapshot. Any failure here —
    // missing directory, corrupt files, format or config mismatch —
    // degrades to a warning and a fresh start; it never crashes.
    std::optional<Genome> bestGenome;
    std::optional<Population> restored;
    int startGen = 0;
    if (checkpointing && cfg_.resume) {
        Result<persist::Checkpoint> loaded = persist::loadLatestCheckpoint(
            cfg_.checkpointDir, configHash);
        if (!loaded.ok()) {
            warn("resume from '", cfg_.checkpointDir,
                 "' failed (", loaded.message(), "); starting fresh");
        } else {
            persist::Checkpoint &ck = *loaded;
            // The checkpoint loader already ran the interface-agnostic
            // structural pass; here the run configuration is known, so
            // every restored genome must satisfy this env's full
            // interface (I/O shape, feed-forward legality). A failure
            // degrades like any other unusable checkpoint.
            const verify::GenomeInterface iface =
                verify::interfaceFor(spec_, neatCfg_.feedForward);
            bool genomesOk = true;
            auto checkRestored = [&](const Genome &g, const char *what) {
                verify::Report report = verify::verifyGenome(g, iface);
                if (report.hasErrors()) {
                    warn("resume: ", what, " genome ", g.key(),
                         " fails verification (",
                         firstErrorLine(report), "); starting fresh");
                    genomesOk = false;
                }
            };
            for (const auto &[key, genome] : ck.population.genomes)
                checkRestored(genome, "restored");
            if (ck.champion)
                checkRestored(*ck.champion, "champion");
            if (genomesOk) {
                restored.emplace(neatCfg_, ck.population);
                startGen = ck.generation;
                envSteps_ = ck.envSteps;
                result.bestFitness = ck.bestFitness;
                bestGenome = ck.champion;
                if (bestGenome) {
                    result.bestNetStats = computeNetStats(
                        bestGenome->toNetworkDef(neatCfg_));
                }
                for (const auto &[phase, seconds] : ck.phaseSeconds)
                    result.modeled.add(phase, seconds);
                result.trace.reserve(ck.trace.size());
                for (const persist::TraceRow &row : ck.trace)
                    result.trace.push_back(fromTraceRow(row));
                result.generations =
                    static_cast<int>(result.trace.size());
                inform("resumed '", cfg_.envName, "' from '",
                       cfg_.checkpointDir, "' at generation ",
                       startGen);
            }
        }
    }

    Population pop = restored ? std::move(*restored)
                              : Population(neatCfg_, cfg_.seed);

    double checkpointSeconds = 0.0;
    uint64_t checkpointBytes = 0;

    // Cut one metrics row per generation: gauges carry the current
    // value, counters the delta since the previous row, so every
    // generation's spend is isolated (the fig9-style breakdown).
    auto closeGeneration = [&](int gen, const GenerationStats &stats) {
        metrics_.setGauge("fitness.best", stats.bestFitness);
        metrics_.setGauge("fitness.mean", stats.meanFitness);
        metrics_.setGauge("species.count",
                          static_cast<double>(stats.numSpecies));
        metrics_.setGauge("net.mean_nodes", stats.nodeCounts.mean());
        metrics_.setGauge("net.mean_connections",
                          stats.connCounts.mean());
        metrics_.setCounter(
            "modeled.createnet_seconds",
            result.modeled.seconds(e3_phase::createNet));
        metrics_.setCounter("modeled.env_seconds",
                            result.modeled.seconds(e3_phase::env));
        metrics_.setCounter(
            "modeled.evaluate_seconds",
            result.modeled.seconds(e3_phase::evaluate));
        metrics_.setCounter("modeled.evolve_seconds",
                            result.modeled.seconds(e3_phase::evolve));
        metrics_.setCounter("env.steps",
                            static_cast<double>(envSteps_));
        if (checkpointing) {
            metrics_.setCounter("checkpoint.write_seconds",
                                checkpointSeconds);
            metrics_.setCounter(
                "checkpoint.bytes",
                static_cast<double>(checkpointBytes));
        }
        // Pool counters already carry their "runtime." prefix.
        metrics_.importCounters("", runtime_.counters());
        metrics_.snapshotGeneration(gen);
        obs::traceCounter("fitness.best", stats.bestFitness);
        obs::traceCounter("species.count",
                          static_cast<double>(stats.numSpecies));
    };

    // Snapshot the complete evolve-loop state after advance(): the
    // stored generation is the next one to run, so a resumed loop picks
    // up exactly where the interrupted one would have continued.
    auto persistCheckpoint = [&](int nextGen) {
        obs::TraceSpan span("persist");
        persist::Checkpoint ck;
        ck.configHash = configHash;
        ck.generation = nextGen;
        ck.envSteps = envSteps_;
        ck.bestFitness = result.bestFitness;
        ck.champion = bestGenome;
        ck.population = pop.saveState();
        for (const std::string &phase : result.modeled.phases())
            ck.phaseSeconds.emplace_back(
                phase, result.modeled.seconds(phase));
        ck.trace.reserve(result.trace.size());
        for (const GenerationPoint &point : result.trace)
            ck.trace.push_back(toTraceRow(point));
        persist::WriteStats stats;
        Status written = persist::writeCheckpoint(
            cfg_.checkpointDir, ck, cfg_.checkpointKeep, &stats);
        if (!written.ok()) {
            warn("checkpoint write failed: ", written.message());
            return;
        }
        checkpointSeconds += stats.seconds;
        checkpointBytes += stats.bytes;
    };

    for (int gen = startGen; gen < cfg_.maxGenerations; ++gen) {
        obs::TraceSpan genSpan("generation");
        GenerationTrace trace;
        std::map<int, SpeciesEvalSummary> summaries;
        evaluateFunctional(pop, trace, gen, summaries);
        // e3-lint: discard-ok -- GenerationTrace::validate is void; it shares its name with Status-returning validates elsewhere
        trace.validate();

        // --- modeled timing ---
        result.modeled.add(e3_phase::createNet,
                           host_.createNetSeconds(trace));
        result.modeled.add(e3_phase::env, host_.envSeconds(trace));
        double evalSeconds = 0.0;
        {
            // The backend's modeled replay (INAX session / GPU / CPU
            // cost model); hw-detail traces emit the per-PU timelines
            // from inside this span.
            obs::TraceSpan span("backend_replay");
            evalSeconds = backend_->evaluateSeconds(trace);
        }
        result.modeled.add(e3_phase::evaluate, evalSeconds);
        backend_->attributeEnergy(evalSeconds, result.energyInput);

        // --- per-generation stats ---
        const GenerationStats stats = pop.stats();
        GenerationPoint point;
        point.generation = gen;
        point.bestFitness = stats.bestFitness;
        point.meanFitness = stats.meanFitness;
        point.normalizedBest =
            spec_.normalizeFitness(stats.bestFitness);
        point.cumulativeSeconds = result.modeled.totalSeconds();
        point.meanNodes = stats.nodeCounts.mean();
        point.meanConnections = stats.connCounts.mean();
        point.meanDensity = stats.densities.mean();
        point.numSpecies = stats.numSpecies;
        result.trace.push_back(point);

        result.generations = gen + 1;
        if (pop.best().fitness >= result.bestFitness ||
            (result.trace.size() == 1 && !bestGenome)) {
            result.bestFitness = pop.best().fitness;
            result.bestNetStats = computeNetStats(
                pop.best().toNetworkDef(neatCfg_));
            bestGenome = pop.best();
        }

        if (pop.solved()) {
            result.solved = true;
            closeGeneration(gen, stats);
            break;
        }
        if (result.modeled.totalSeconds() >=
            cfg_.modeledSecondsBudget) {
            inform(backend_->name(), "/", cfg_.envName,
                   ": modeled-time budget exhausted at generation ",
                   gen);
            closeGeneration(gen, stats);
            break;
        }

        result.modeled.add(
            e3_phase::evolve,
            host_.evolveSeconds(neatCfg_.populationSize));
        {
            obs::TraceSpan span("evolve");
            pop.advance(summaries.empty() ? nullptr : &summaries);
        }
        if (checkpointing && cfg_.checkpointEvery > 0 &&
            (gen + 1) % cfg_.checkpointEvery == 0) {
            persistCheckpoint(gen + 1);
        }
        closeGeneration(gen, stats);
    }

    // Host-side phases always run on the CPU.
    result.energyInput.cpuSeconds +=
        result.modeled.seconds(e3_phase::createNet) +
        result.modeled.seconds(e3_phase::env) +
        result.modeled.seconds(e3_phase::evolve);

    result.runtimeCounters = runtime_.counters();
    result.rngAudit = runtime_.auditDeterminism();
    result.metrics = metrics_;
    result.verifyReport = verifyReport_;

    if (auto *inax = dynamic_cast<InaxBackend *>(backend_.get()))
        result.inaxReport = inax->report();
    return result;
}

} // namespace e3
