#include "e3/platform.hh"

#include "common/logging.hh"
#include "e3/inax_backend.hh"

namespace e3 {

E3Platform::E3Platform(const PlatformConfig &cfg,
                       std::unique_ptr<EvalBackend> backend)
    : cfg_(cfg), spec_(envSpec(cfg.envName)),
      neatCfg_(NeatConfig::forTask(spec_.numInputs, spec_.numOutputs,
                                   spec_.requiredFitness)),
      backend_(std::move(backend))
{
    e3_assert(backend_, "platform needs a backend");
    e3_assert(cfg_.episodesPerEval >= 1, "need at least one episode");
    neatCfg_.populationSize = cfg_.populationSize;
}

void
E3Platform::evaluateFunctional(Population &pop, GenerationTrace &trace,
                               int generation)
{
    const size_t n = pop.genomes().size();

    // CreateNet: decode every genome once per generation. With
    // quantized deployment enabled, inference runs through the
    // fixed-point evaluator (the accelerator's datapath view).
    std::vector<int> keys;
    std::vector<FeedForwardNetwork> nets;
    std::vector<QuantizedNetwork> qnets;
    keys.reserve(n);
    for (const auto &[key, genome] : pop.genomes()) {
        keys.push_back(key);
        NetworkDef def = genome.toNetworkDef(neatCfg_);
        if (cfg_.quantization) {
            qnets.push_back(
                QuantizedNetwork::create(def, *cfg_.quantization));
        } else {
            nets.push_back(FeedForwardNetwork::create(def));
        }
        trace.individuals.push_back(computeNetStats(def));
        trace.defs.push_back(std::move(def));
    }
    trace.numInputs = spec_.numInputs;
    trace.numOutputs = spec_.numOutputs;

    auto infer = [&](size_t i, const Observation &obs) {
        return cfg_.quantization ? qnets[i].activate(obs)
                                 : nets[i].activate(obs);
    };

    std::vector<double> fitnessSum(n, 0.0);
    for (size_t e = 0; e < cfg_.episodesPerEval; ++e) {
        const uint64_t episodeSeed =
            cfg_.seed ^ (0x9E3779B97F4A7C15ULL *
                         (static_cast<uint64_t>(generation) * 31 + e + 1));
        VectorEnv venv(spec_, n, episodeSeed);
        venv.resetAll();
        while (!venv.allDone()) {
            std::vector<Action> actions(n);
            for (size_t i = 0; i < n; ++i) {
                if (venv.done(i)) {
                    // Finished lanes ignore their action; provide a
                    // correctly-shaped placeholder.
                    actions[i] = Action(spec_.numOutputs, 0.0);
                    continue;
                }
                actions[i] = decodeAction(
                    spec_, infer(i, venv.observation(i)));
            }
            venv.stepAll(actions);
        }

        std::vector<int> lengths(n);
        for (size_t i = 0; i < n; ++i) {
            lengths[i] = venv.steps(i);
            fitnessSum[i] += venv.fitness(i);
        }
        trace.episodes.push_back(std::move(lengths));
    }

    for (size_t i = 0; i < n; ++i) {
        pop.genomes().at(keys[i]).fitness =
            fitnessSum[i] / static_cast<double>(cfg_.episodesPerEval);
    }
}

RunResult
E3Platform::run()
{
    RunResult result;
    result.backendName = backend_->name();
    result.envName = cfg_.envName;

    Population pop(neatCfg_, cfg_.seed);

    for (int gen = 0; gen < cfg_.maxGenerations; ++gen) {
        GenerationTrace trace;
        evaluateFunctional(pop, trace, gen);
        trace.validate();

        // --- modeled timing ---
        result.modeled.add(e3_phase::createNet,
                           host_.createNetSeconds(trace));
        result.modeled.add(e3_phase::env, host_.envSeconds(trace));
        const double evalSeconds = backend_->evaluateSeconds(trace);
        result.modeled.add(e3_phase::evaluate, evalSeconds);
        backend_->attributeEnergy(evalSeconds, result.energyInput);

        // --- per-generation stats ---
        const GenerationStats stats = pop.stats();
        GenerationPoint point;
        point.generation = gen;
        point.bestFitness = stats.bestFitness;
        point.meanFitness = stats.meanFitness;
        point.normalizedBest =
            spec_.normalizeFitness(stats.bestFitness);
        point.cumulativeSeconds = result.modeled.totalSeconds();
        point.meanNodes = stats.nodeCounts.mean();
        point.meanConnections = stats.connCounts.mean();
        point.meanDensity = stats.densities.mean();
        point.numSpecies = stats.numSpecies;
        result.trace.push_back(point);

        result.generations = gen + 1;
        if (pop.best().fitness >= result.bestFitness ||
            result.trace.size() == 1) {
            result.bestFitness = pop.best().fitness;
            result.bestNetStats = computeNetStats(
                pop.best().toNetworkDef(neatCfg_));
        }

        if (pop.solved()) {
            result.solved = true;
            break;
        }
        if (result.modeled.totalSeconds() >=
            cfg_.modeledSecondsBudget) {
            inform(backend_->name(), "/", cfg_.envName,
                   ": modeled-time budget exhausted at generation ",
                   gen);
            break;
        }

        result.modeled.add(
            e3_phase::evolve,
            host_.evolveSeconds(neatCfg_.populationSize));
        pop.advance();
    }

    // Host-side phases always run on the CPU.
    result.energyInput.cpuSeconds +=
        result.modeled.seconds(e3_phase::createNet) +
        result.modeled.seconds(e3_phase::env) +
        result.modeled.seconds(e3_phase::evolve);

    if (auto *inax = dynamic_cast<InaxBackend *>(backend_.get()))
        result.inaxReport = inax->report();
    return result;
}

} // namespace e3
