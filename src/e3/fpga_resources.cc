#include "e3/fpga_resources.hh"

namespace e3 {

namespace {

// Per-block implementation costs (fixed-point datapath class; the MAC
// itself maps onto the DSP slice, so PE fabric cost is control plus the
// activation unit).
constexpr uint64_t lutPerPe = 150;
constexpr uint64_t ffPerPe = 200;
constexpr uint64_t dspPerPe = 1;
constexpr uint64_t lutPerPuControl = 520;
constexpr uint64_t ffPerPuControl = 640;
constexpr uint64_t bramPerPu = 2; // weight buffer + value buffer
constexpr uint64_t lutGlobalControl = 6200;
constexpr uint64_t ffGlobalControl = 7400;
constexpr uint64_t bramGlobalIo = 8; // DMA staging

} // namespace

FpgaResources
zcu104Capacity()
{
    // Xilinx Zynq UltraScale+ XCZU7EV.
    FpgaResources r;
    r.lut = 230400;
    r.ff = 460800;
    r.bram36 = 312;
    r.dsp = 1728;
    return r;
}

FpgaResources
inaxResourceCost(const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const uint64_t pes =
        static_cast<uint64_t>(cfg.numPUs) * cfg.numPEs;
    FpgaResources r;
    r.lut = lutGlobalControl + cfg.numPUs * lutPerPuControl +
            pes * lutPerPe;
    r.ff = ffGlobalControl + cfg.numPUs * ffPerPuControl +
           pes * ffPerPe;
    r.bram36 = bramGlobalIo + cfg.numPUs * bramPerPu;
    r.dsp = pes * dspPerPe;
    return r;
}

Status
FpgaUtilization::checkFits(const std::string &designName) const
{
    if (lut > 1.0 || ff > 1.0 || bram > 1.0 || dsp > 1.0)
        return Status::error("design '", designName,
                             "' exceeds ZCU104 capacity (lut=", lut,
                             ", ff=", ff, ", bram=", bram,
                             ", dsp=", dsp, ")");
    return Status();
}

FpgaUtilization
inaxUtilization(const InaxConfig &cfg)
{
    const FpgaResources cost = inaxResourceCost(cfg);
    const FpgaResources cap = zcu104Capacity();
    FpgaUtilization u;
    u.lut = static_cast<double>(cost.lut) / static_cast<double>(cap.lut);
    u.ff = static_cast<double>(cost.ff) / static_cast<double>(cap.ff);
    u.bram = static_cast<double>(cost.bram36) /
             static_cast<double>(cap.bram36);
    u.dsp = static_cast<double>(cost.dsp) / static_cast<double>(cap.dsp);
    return u;
}

} // namespace e3
