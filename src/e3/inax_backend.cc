#include "e3/inax_backend.hh"

#include <algorithm>

#include "common/logging.hh"
#include "verify/schedule_check.hh"

namespace e3 {

namespace {

/**
 * Debug-build invariant: every batch handed to AcceleratorSession must
 * be schedule-legal — PU/PE capacities, achievable PE-active cycles,
 * I/O shapes matching the generation's environment. The cost model
 * should be impossible to query with a physically impossible schedule;
 * release builds rely on the same checks being run offline via
 * `e3_cli verify`.
 */
[[maybe_unused]] void
debugVerifyBatch(const std::vector<IndividualCost> &batch,
                 const InaxConfig &cfg, const GenerationTrace &trace)
{
#ifndef NDEBUG
    verify::Report report = verify::verifyBatch(
        batch, cfg, trace.numInputs, trace.numOutputs);
    if (report.hasErrors()) {
        e3_panic("illegal INAX schedule reached the accelerator "
                 "session:\n",
                 verify::formatText(report));
    }
#else
    (void)batch;
    (void)cfg;
    (void)trace;
#endif
}

} // namespace

InaxBackend::InaxBackend(InaxConfig cfg) : cfg_(cfg)
{
    assertOk(cfg_.validate());
}

double
InaxBackend::evaluateSeconds(const GenerationTrace &trace)
{
    // e3-lint: discard-ok -- GenerationTrace::validate is void; it shares its name with Status-returning validates elsewhere
    trace.validate();
    e3_assert(!trace.episodes.empty(), "trace without episodes");

    std::vector<IndividualCost> costs;
    costs.reserve(trace.defs.size());
    for (const auto &def : trace.defs)
        costs.push_back(puIndividualCost(def, cfg_));

    InaxReport generation;
    for (size_t start = 0; start < costs.size(); start += cfg_.numPUs) {
        const size_t end =
            std::min(start + cfg_.numPUs, costs.size());
        std::vector<IndividualCost> batch(
            costs.begin() + static_cast<long>(start),
            costs.begin() + static_cast<long>(end));
        debugVerifyBatch(batch, cfg_, trace);
        AcceleratorSession session(cfg_);
        session.loadBatch(batch);

        // Weights stay resident in the PU buffers, so every episode of
        // this generation reuses the one set-up phase.
        for (const auto &episode : trace.episodes) {
            std::vector<int> remaining(
                episode.begin() + static_cast<long>(start),
                episode.begin() + static_cast<long>(end));
            bool any = true;
            while (any) {
                any = false;
                std::vector<bool> live(remaining.size());
                for (size_t i = 0; i < remaining.size(); ++i) {
                    live[i] = remaining[i] > 0;
                    any = any || live[i];
                    if (remaining[i] > 0)
                        --remaining[i];
                }
                if (any)
                    session.step(live);
            }
        }
        generation.merge(session.report());
    }

    report_.merge(generation);
    return generation.seconds(cfg_);
}

} // namespace e3
