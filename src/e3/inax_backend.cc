#include "e3/inax_backend.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

InaxBackend::InaxBackend(InaxConfig cfg) : cfg_(cfg)
{
    cfg_.validate();
}

double
InaxBackend::evaluateSeconds(const GenerationTrace &trace)
{
    trace.validate();
    e3_assert(!trace.episodes.empty(), "trace without episodes");

    std::vector<IndividualCost> costs;
    costs.reserve(trace.defs.size());
    for (const auto &def : trace.defs)
        costs.push_back(puIndividualCost(def, cfg_));

    InaxReport generation;
    for (size_t start = 0; start < costs.size(); start += cfg_.numPUs) {
        const size_t end =
            std::min(start + cfg_.numPUs, costs.size());
        AcceleratorSession session(cfg_);
        session.loadBatch(
            {costs.begin() + static_cast<long>(start),
             costs.begin() + static_cast<long>(end)});

        // Weights stay resident in the PU buffers, so every episode of
        // this generation reuses the one set-up phase.
        for (const auto &episode : trace.episodes) {
            std::vector<int> remaining(
                episode.begin() + static_cast<long>(start),
                episode.begin() + static_cast<long>(end));
            bool any = true;
            while (any) {
                any = false;
                std::vector<bool> live(remaining.size());
                for (size_t i = 0; i < remaining.size(); ++i) {
                    live[i] = remaining[i] > 0;
                    any = any || live[i];
                    if (remaining[i] > 0)
                        --remaining[i];
                }
                if (any)
                    session.step(live);
            }
        }
        generation.merge(session.report());
    }

    report_.merge(generation);
    return generation.seconds(cfg_);
}

} // namespace e3
