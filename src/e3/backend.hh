/**
 * @file
 * Evaluate-phase backend interface. The E3 platform runs NEAT's
 * functional simulation once; a backend maps each generation's workload
 * trace onto a platform variant's execution-time model — software CPU
 * (E3-CPU), GPU (E3-GPU) or the INAX cycle model (E3-INAX) — and
 * attributes the time to a component for the energy model.
 */

#ifndef E3_E3_BACKEND_HH
#define E3_E3_BACKEND_HH

#include <string>

#include "e3/energy_model.hh"
#include "e3/timing_model.hh"

namespace e3 {

/** Maps generation workloads to evaluate-phase time. */
class EvalBackend
{
  public:
    virtual ~EvalBackend() = default;

    /** Variant name, e.g. "E3-CPU". */
    virtual std::string name() const = 0;

    /**
     * Modeled seconds to run one generation's evaluate on this
     * backend. May accumulate internal reports (e.g. INAX cycles).
     */
    virtual double evaluateSeconds(const GenerationTrace &trace) = 0;

    /** Attribute evaluate time to the right component. */
    virtual void attributeEnergy(double evalSeconds,
                                 EnergyBreakdownInput &energy) const = 0;

    /**
     * True when the platform should run functional evaluation through
     * the SoA population batch engine (nn/batch_eval) instead of
     * per-genome Network::activate. Functional results are
     * bit-identical either way — this selects the host execution
     * substrate, not the semantics.
     */
    virtual bool batchedFunctionalInference() const { return false; }
};

} // namespace e3

#endif // E3_E3_BACKEND_HH
