#include "e3/timing_model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

uint64_t
GenerationTrace::totalInferences() const
{
    uint64_t total = 0;
    for (const auto &episode : episodes) {
        for (int len : episode)
            total += static_cast<uint64_t>(len);
    }
    return total;
}

size_t
GenerationTrace::liveLanesAt(size_t episode, int t) const
{
    size_t live = 0;
    for (int len : episodes.at(episode))
        live += len > t ? 1 : 0;
    return live;
}

int
GenerationTrace::maxEpisodeLength(size_t episode) const
{
    int longest = 0;
    for (int len : episodes.at(episode))
        longest = std::max(longest, len);
    return longest;
}

void
GenerationTrace::validate() const
{
    e3_assert(defs.size() == individuals.size(),
              "trace defs/stats size mismatch");
    for (const auto &episode : episodes) {
        e3_assert(episode.size() == individuals.size(),
                  "trace episode lane-count mismatch");
    }
}

double
CpuTimingModel::inferenceSeconds(const NetStats &stats) const
{
    return perInferenceSeconds +
           perConnectionSeconds *
               static_cast<double>(stats.activeConnections) +
           perNodeSeconds * static_cast<double>(stats.activeNodes);
}

double
CpuTimingModel::evaluateSeconds(const GenerationTrace &trace) const
{
    // e3-lint: discard-ok -- GenerationTrace::validate is void; it shares its name with Status-returning validates elsewhere
    trace.validate();
    double seconds = 0.0;
    for (const auto &episode : trace.episodes) {
        for (size_t i = 0; i < trace.individuals.size(); ++i) {
            seconds += inferenceSeconds(trace.individuals[i]) *
                       static_cast<double>(episode[i]);
        }
    }
    return seconds;
}

double
GpuTimingModel::evaluateSeconds(const GenerationTrace &trace) const
{
    // e3-lint: discard-ok -- GenerationTrace::validate is void; it shares its name with Status-returning validates elsewhere
    trace.validate();
    double seconds = 0.0;
    for (size_t e = 0; e < trace.episodes.size(); ++e) {
        // Kernel work: one launch per dependency layer per inference,
        // plus the (tiny) MAC work at effectively batch-1 throughput.
        for (size_t i = 0; i < trace.individuals.size(); ++i) {
            const auto &stats = trace.individuals[i];
            const double perInference =
                kernelLaunchSeconds *
                    static_cast<double>(
                        std::max<size_t>(stats.layerSizes.size(), 1)) +
                inferenceTransferSeconds +
                static_cast<double>(stats.activeConnections) /
                    macsPerSecond;
            seconds += perInference *
                       static_cast<double>(trace.episodes[e][i]);
        }
        // Transfer: every lockstep env iteration moves a batch over
        // PCIe.
        seconds += stepTransferSeconds *
                   static_cast<double>(trace.maxEpisodeLength(e));
    }
    return seconds;
}

double
HostTimingModel::envSeconds(const GenerationTrace &trace) const
{
    return envStepSeconds *
           static_cast<double>(trace.totalInferences());
}

double
HostTimingModel::evolveSeconds(size_t populationSize) const
{
    return evolvePerGenomeSeconds *
           static_cast<double>(populationSize);
}

double
HostTimingModel::createNetSeconds(const GenerationTrace &trace) const
{
    double seconds = 0.0;
    for (const auto &stats : trace.individuals) {
        seconds += createNetPerGenomeSeconds +
                   createNetPerConnectionSeconds *
                       static_cast<double>(stats.activeConnections);
    }
    return seconds;
}

} // namespace e3
