/**
 * @file
 * E3-INAX: evaluate offloaded to the INAX accelerator model. The
 * backend compiles every individual to its PU cost profile, replays the
 * generation's episode liveness through the cycle-accurate accelerator
 * session (set-up once per PU batch, weights resident across env
 * steps), and reports time at the configured fabric clock.
 */

#ifndef E3_E3_INAX_BACKEND_HH
#define E3_E3_INAX_BACKEND_HH

#include "e3/backend.hh"
#include "inax/inax.hh"

namespace e3 {

/** INAX-accelerated evaluate backend. */
class InaxBackend : public EvalBackend
{
  public:
    explicit InaxBackend(InaxConfig cfg);

    std::string name() const override { return "E3-INAX"; }

    double evaluateSeconds(const GenerationTrace &trace) override;

    void
    attributeEnergy(double evalSeconds,
                    EnergyBreakdownInput &energy) const override
    {
        energy.fpgaSeconds += evalSeconds;
    }

    /** Accumulated cycle/utilization report across generations. */
    const InaxReport &report() const { return report_; }
    const InaxConfig &config() const { return cfg_; }

  private:
    InaxConfig cfg_;
    InaxReport report_;
};

} // namespace e3

#endif // E3_E3_INAX_BACKEND_HH
