/**
 * @file
 * Analytical timing models for the software and GPU execution of
 * "evaluate", and for the CPU-side "evolve"/"env"/"CreateNet" work
 * shared by every platform variant.
 *
 * Calibration note (see EXPERIMENTS.md): the paper's E3-CPU baseline is
 * the neat-python reference implementation on a desktop i7 — an
 * *interpreted* evaluator. Our functional simulation is compiled C++
 * and hundreds of times faster, so reporting raw wall time would erase
 * the baseline the paper measures against. The constants below are
 * calibrated to interpreted-Python-era per-operation costs; every bench
 * labels these times as modeled.
 */

#ifndef E3_E3_TIMING_MODEL_HH
#define E3_E3_TIMING_MODEL_HH

#include <cstdint>

#include "nn/net_stats.hh"
#include "nn/network.hh"

namespace e3 {

/**
 * Per-generation workload trace the timing models consume: the decoded
 * population plus, for each evaluation episode, every individual's
 * episode length (individuals terminate independently — the liveness
 * structure lockstep accelerators care about).
 */
struct GenerationTrace
{
    std::vector<NetworkDef> defs;      ///< decoded individuals
    std::vector<NetStats> individuals; ///< structure stats, aligned
    /** episodes[e][i] = env steps of individual i in episode e. */
    std::vector<std::vector<int>> episodes;
    size_t numInputs = 0;
    size_t numOutputs = 0;

    /** Total inferences across all episodes. */
    uint64_t totalInferences() const;

    /** Lanes still live at step t of episode e. */
    size_t liveLanesAt(size_t episode, int t) const;

    /** Longest episode length within episode round e. */
    int maxEpisodeLength(size_t episode) const;

    /** Consistency checks; panics on malformed traces. */
    void validate() const;
};

/** Software (interpreted-CPU) execution-time model. */
struct CpuTimingModel
{
    double perInferenceSeconds = 6.0e-6; ///< dispatch overhead
    double perConnectionSeconds = 250e-9;
    double perNodeSeconds = 600e-9;

    /** Seconds for one inference of a network with these stats. */
    double inferenceSeconds(const NetStats &stats) const;

    /** Seconds to evaluate a whole generation. */
    double evaluateSeconds(const GenerationTrace &trace) const;
};

/**
 * GPU execution-time model. Dynamic irregular topologies defeat
 * batching: each dependency layer of each individual becomes its own
 * tiny kernel launch, and every env step pays a host-device round trip
 * (the paper's stated reason E3-GPU loses to the CPU).
 */
struct GpuTimingModel
{
    double kernelLaunchSeconds = 25e-6; ///< per layer-kernel launch
    /**
     * H2D input + D2H output per individual inference: dynamic
     * topologies defeat batching, so every network's tiny tensors move
     * separately.
     */
    double inferenceTransferSeconds = 80e-6;
    double stepTransferSeconds = 30e-6; ///< per-step batch bookkeeping
    double macsPerSecond = 1e9; ///< effective throughput at batch ~1

    /** Seconds to evaluate a whole generation. */
    double evaluateSeconds(const GenerationTrace &trace) const;
};

/** CPU-side costs shared by all platforms (env, evolve, createnet). */
struct HostTimingModel
{
    double envStepSeconds = 0.4e-6;
    double evolvePerGenomeSeconds = 40e-6;
    double createNetPerGenomeSeconds = 5e-6;
    double createNetPerConnectionSeconds = 0.2e-6;

    double envSeconds(const GenerationTrace &trace) const;
    double evolveSeconds(size_t populationSize) const;
    double createNetSeconds(const GenerationTrace &trace) const;
};

} // namespace e3

#endif // E3_E3_TIMING_MODEL_HH
