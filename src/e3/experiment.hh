/**
 * @file
 * Experiment drivers shared by the benches and examples: construct a
 * platform for a named backend, run an environment (or the whole
 * suite), and summarize results in the paper's units.
 */

#ifndef E3_E3_EXPERIMENT_HH
#define E3_E3_EXPERIMENT_HH

#include <functional>
#include <map>
#include <optional>

#include "common/result.hh"
#include "e3/platform.hh"
#include "inax/hw_config.hh"

namespace e3 {

/** Which platform variant evaluates the population. */
enum class BackendKind
{
    Cpu,
    Gpu,
    Inax,
};

/** Printable name, e.g. "E3-INAX". */
std::string backendKindName(BackendKind kind);

/** CLI name, e.g. "inax" (the registry key for the kind). */
std::string backendCliName(BackendKind kind);

struct ExperimentOptions;

/**
 * Factory registry mapping CLI backend names ("cpu", "gpu", "inax")
 * to EvalBackend constructors. Consolidates backend construction in
 * one place: the CLI, the experiment drivers and the benches all
 * resolve backends here, so adding a backend means one registration —
 * not another arm in every switch.
 */
class BackendRegistry
{
  public:
    using Factory = std::function<std::unique_ptr<EvalBackend>(
        const ExperimentOptions &, const EnvSpec &)>;

    /** The process-wide registry, with the built-ins pre-registered. */
    static BackendRegistry &instance();

    /** Register (or replace) a backend under its CLI name. */
    void registerBackend(const std::string &cliName,
                         const std::string &displayName,
                         Factory factory);

    bool known(const std::string &cliName) const;

    /** Registered CLI names, sorted (for usage/error messages). */
    std::vector<std::string> names() const;

    /** Printable name for a registered CLI name ("" if unknown). */
    std::string displayName(const std::string &cliName) const;

    /** Construct a backend; error status on an unknown name. */
    Result<std::unique_ptr<EvalBackend>>
    create(const std::string &cliName, const ExperimentOptions &options,
           const EnvSpec &spec) const;

  private:
    struct Entry
    {
        std::string displayName;
        Factory factory;
    };
    std::map<std::string, Entry> entries_;
};

/** Options for one experiment run. */
struct ExperimentOptions
{
    uint64_t seed = 1;
    size_t populationSize = 200;
    size_t episodesPerEval = 1;
    int maxGenerations = 300;
    double modeledSecondsBudget = 1e9;

    /**
     * Evaluation worker threads (PlatformConfig::threads); functional
     * results are bit-identical for every value, only wall-clock
     * changes.
     */
    size_t threads = 1;

    /** Async evolve/evaluate overlap (PlatformConfig::asyncOverlap). */
    bool asyncOverlap = false;
    /** INAX config; defaults to the paper's heuristic (PE=#out, PU=50). */
    std::optional<InaxConfig> inaxConfig;

    /**
     * Optional neat-python-style INI file layered over the task's
     * default NEAT hyperparameters (the interface shape —
     * inputs/outputs — always follows the environment).
     */
    std::optional<std::string> neatConfigPath;

    /** Checkpoint directory (PlatformConfig::checkpointDir); "" off. */
    std::string checkpointDir;
    /** Snapshot cadence in generations (PlatformConfig). */
    int checkpointEvery = 10;
    /** Snapshot retention count (PlatformConfig). */
    int checkpointKeep = 3;
    /** Resume from checkpointDir before running (PlatformConfig). */
    bool resume = false;

    /** Structural-verifier gate on every decoded network
     *  (PlatformConfig::verifyGenomes, the CLI's `run --verify`). */
    bool verifyGenomes = false;
};

/**
 * Run one environment on one backend.
 *
 * Determinism: equal (envName, options.seed) pairs produce identical
 * functional results on every backend — only the modeled time differs,
 * which is exactly the paper's controlled comparison.
 *
 * @pre envName is registered and the options are valid (built-in
 *      kinds are always registered); errors are caller bugs and
 *      panic. Route user input through the CLI-name overload, which
 *      reports them as error values instead.
 */
RunResult runExperiment(const std::string &envName, BackendKind kind,
                        const ExperimentOptions &options);

/**
 * Same, resolving the backend through BackendRegistry by CLI name.
 * An unknown environment or backend name, or an unreadable NEAT
 * config file, comes back as an error Status — this is the overload
 * for user-supplied input.
 */
Result<RunResult> runExperiment(const std::string &envName,
                                const std::string &backendCliName,
                                const ExperimentOptions &options);

/** Run the whole Env1..Env6 suite on one backend. */
std::vector<RunResult> runSuite(BackendKind kind,
                                const ExperimentOptions &options);

/** Generation-budget presets per env, sized so runs finish quickly. */
int suiteGenerationBudget(const std::string &envName);

/**
 * Evolve a population against an environment for a fixed number of
 * generations and return the final generation's decoded networks —
 * the "evolved NN" workload the hardware studies consume (Figs. 4/11,
 * Table V).
 */
std::vector<NetworkDef> evolvedPopulation(const std::string &envName,
                                          int generations,
                                          size_t populationSize,
                                          uint64_t seed);

/**
 * Evolve against an environment and return the champion genome of the
 * final generation (stopping early once the required fitness is
 * reached). Pair with saveGenomeFile()/loadGenomeFile() for the
 * model-replacement persistence story.
 */
Genome evolvedChampion(const std::string &envName, int generations,
                       size_t populationSize, uint64_t seed);

} // namespace e3

#endif // E3_E3_EXPERIMENT_HH
