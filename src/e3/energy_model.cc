#include "e3/energy_model.hh"

namespace e3 {

double
PowerModel::joules(const EnergyBreakdownInput &in) const
{
    const double wallSeconds =
        in.cpuSeconds + in.gpuSeconds + in.fpgaSeconds;
    // CPU powered for the whole run; accelerators only while busy.
    return cpuActiveWatts * wallSeconds +
           gpuActiveWatts * in.gpuSeconds +
           fpgaActiveWatts * in.fpgaSeconds;
}

} // namespace e3
