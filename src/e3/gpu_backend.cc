// GpuBackend is header-only; this TU anchors it in the library.
#include "e3/gpu_backend.hh"
