// CpuBackend is header-only; this TU anchors it in the library.
#include "e3/cpu_backend.hh"
