/**
 * @file
 * E3-GPU: the reference GPU comparison. Evaluate runs on a modeled GPU
 * that suffers per-layer kernel launches and per-step transfers on the
 * small, dynamic, irregular networks NEAT produces (paper Sec. VI-A:
 * "NEAT algorithm is generally not efficient on GPUs ... because of
 * small batch size and dynamic topology").
 */

#ifndef E3_E3_GPU_BACKEND_HH
#define E3_E3_GPU_BACKEND_HH

#include "e3/backend.hh"

namespace e3 {

/** GPU evaluate backend (reference comparison). */
class GpuBackend : public EvalBackend
{
  public:
    explicit GpuBackend(GpuTimingModel model = {}) : model_(model) {}

    std::string name() const override { return "E3-GPU"; }

    double evaluateSeconds(const GenerationTrace &trace) override
    {
        return model_.evaluateSeconds(trace);
    }

    void
    attributeEnergy(double evalSeconds,
                    EnergyBreakdownInput &energy) const override
    {
        energy.gpuSeconds += evalSeconds;
    }

    const GpuTimingModel &model() const { return model_; }

  private:
    GpuTimingModel model_;
};

} // namespace e3

#endif // E3_E3_GPU_BACKEND_HH
