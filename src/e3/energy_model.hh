/**
 * @file
 * Energy model for the three platform variants (paper Sec. VI-D).
 *
 * Power constants follow the paper's measurement setup: CPU package
 * power via Intel Power Gadget (desktop i7 under load), GPU board power
 * via nvidia-smi (GTX 1080 under small-kernel churn), FPGA via Vivado
 * post-routing analysis (a few watts for this design class). Energy is
 * power x time per component, with the CPU always on (it hosts env and
 * evolve in every variant).
 */

#ifndef E3_E3_ENERGY_MODEL_HH
#define E3_E3_ENERGY_MODEL_HH

namespace e3 {

/** Per-phase time of a run, attributed to components. */
struct EnergyBreakdownInput
{
    double cpuSeconds = 0.0;  ///< CPU-resident work (env/evolve/eval)
    double gpuSeconds = 0.0;  ///< GPU-resident evaluate (E3-GPU only)
    double fpgaSeconds = 0.0; ///< INAX-resident evaluate (E3-INAX only)
};

/** Component power constants in watts. */
struct PowerModel
{
    double cpuActiveWatts = 45.0;
    double gpuActiveWatts = 180.0;
    double fpgaActiveWatts = 3.0;

    /**
     * Total joules: each accelerator burns its active power for its
     * busy time, and the CPU stays powered for the whole run (it is the
     * master in every configuration).
     */
    double joules(const EnergyBreakdownInput &in) const;
};

} // namespace e3

#endif // E3_E3_ENERGY_MODEL_HH
