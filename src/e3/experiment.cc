#include "e3/experiment.hh"

#include "common/logging.hh"
#include "e3/cpu_backend.hh"
#include "neat/config_io.hh"
#include "e3/gpu_backend.hh"
#include "e3/inax_backend.hh"

namespace e3 {

std::string
backendCliName(BackendKind kind)
{
    static const char *const names[] = {"cpu", "gpu", "inax"};
    const auto idx = static_cast<size_t>(kind);
    e3_assert(idx < std::size(names), "unhandled backend kind");
    return names[idx];
}

std::string
backendKindName(BackendKind kind)
{
    return BackendRegistry::instance().displayName(backendCliName(kind));
}

BackendRegistry &
BackendRegistry::instance()
{
    static BackendRegistry registry = [] {
        BackendRegistry r;
        r.registerBackend(
            "cpu", "E3-CPU",
            [](const ExperimentOptions &, const EnvSpec &) {
                return std::make_unique<CpuBackend>();
            });
        r.registerBackend(
            "cpu-batch", "E3-CPU-BATCH",
            [](const ExperimentOptions &, const EnvSpec &) {
                return std::make_unique<CpuBatchBackend>();
            });
        r.registerBackend(
            "gpu", "E3-GPU",
            [](const ExperimentOptions &, const EnvSpec &) {
                return std::make_unique<GpuBackend>();
            });
        r.registerBackend(
            "inax", "E3-INAX",
            [](const ExperimentOptions &options, const EnvSpec &spec) {
                const InaxConfig cfg =
                    options.inaxConfig
                        ? *options.inaxConfig
                        : InaxConfig::paperDefault(spec.numOutputs);
                return std::make_unique<InaxBackend>(cfg);
            });
        return r;
    }();
    return registry;
}

void
BackendRegistry::registerBackend(const std::string &cliName,
                                 const std::string &displayName,
                                 Factory factory)
{
    entries_[cliName] = Entry{displayName, std::move(factory)};
}

bool
BackendRegistry::known(const std::string &cliName) const
{
    return entries_.count(cliName) > 0;
}

std::vector<std::string>
BackendRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

std::string
BackendRegistry::displayName(const std::string &cliName) const
{
    auto it = entries_.find(cliName);
    return it == entries_.end() ? std::string() : it->second.displayName;
}

Result<std::unique_ptr<EvalBackend>>
BackendRegistry::create(const std::string &cliName,
                        const ExperimentOptions &options,
                        const EnvSpec &spec) const
{
    auto it = entries_.find(cliName);
    if (it == entries_.end()) {
        std::string known;
        for (const auto &name : names())
            known += (known.empty() ? "" : "|") + name;
        return Status::error("unknown backend '", cliName, "' (", known,
                             ")");
    }
    return it->second.factory(options, spec);
}

RunResult
runExperiment(const std::string &envName, BackendKind kind,
              const ExperimentOptions &options)
{
    // Built-in kinds are always registered, so an error here is a
    // caller bug (unknown env, unreadable config) and value() panics.
    return runExperiment(envName, backendCliName(kind), options)
        .value();
}

Result<RunResult>
runExperiment(const std::string &envName,
              const std::string &backendCliName,
              const ExperimentOptions &options)
{
    const EnvSpec *specPtr = findEnvSpec(envName);
    if (!specPtr)
        return Status::error("unknown environment '", envName, "'");
    const EnvSpec &spec = *specPtr;

    PlatformConfig cfg;
    cfg.envName = envName;
    cfg.seed = options.seed;
    cfg.populationSize = options.populationSize;
    cfg.episodesPerEval = options.episodesPerEval;
    cfg.maxGenerations = options.maxGenerations;
    cfg.modeledSecondsBudget = options.modeledSecondsBudget;
    cfg.threads = options.threads;
    cfg.asyncOverlap = options.asyncOverlap;
    cfg.checkpointDir = options.checkpointDir;
    cfg.checkpointEvery = options.checkpointEvery;
    cfg.checkpointKeep = options.checkpointKeep;
    cfg.resume = options.resume;
    cfg.verifyGenomes = options.verifyGenomes;

    Result<std::unique_ptr<EvalBackend>> backend =
        BackendRegistry::instance().create(backendCliName, options,
                                           spec);
    if (!backend.ok())
        return backend.status();

    E3Platform platform(cfg, std::move(backend).value());
    if (options.neatConfigPath) {
        Result<NeatConfig> loaded = loadNeatConfig(
            *options.neatConfigPath, platform.neatConfig());
        if (!loaded.ok())
            return loaded.status();
        NeatConfig layered = *std::move(loaded);
        // The interface shape is the environment's contract; a config
        // file cannot change it.
        layered.numInputs = spec.numInputs;
        layered.numOutputs = spec.numOutputs;
        layered.populationSize = cfg.populationSize;
        platform.neatConfig() = layered;
    }
    return platform.run();
}

std::vector<RunResult>
runSuite(BackendKind kind, const ExperimentOptions &options)
{
    std::vector<RunResult> results;
    for (const auto &spec : envSuite()) {
        ExperimentOptions opt = options;
        opt.maxGenerations = std::min(
            options.maxGenerations, suiteGenerationBudget(spec.name));
        results.push_back(runExperiment(spec.name, kind, opt));
    }
    return results;
}

namespace {

/**
 * Shared evolution loop for the workload-extraction helpers: evaluate
 * with one episode per individual per generation, stop at the
 * generation cap (or, if stopAtSolved, at the fitness threshold) with
 * the final generation evaluated.
 */
Population
evolveAgainstEnv(const EnvSpec &spec, int generations,
                 size_t populationSize, uint64_t seed,
                 bool stopAtSolved)
{
    NeatConfig cfg = NeatConfig::forTask(
        spec.numInputs, spec.numOutputs, spec.requiredFitness);
    cfg.populationSize = populationSize;
    Population pop(cfg, seed);

    for (int gen = 0;; ++gen) {
        const size_t n = pop.genomes().size();
        std::vector<int> keys;
        std::vector<FeedForwardNetwork> nets;
        for (const auto &[key, genome] : pop.genomes()) {
            keys.push_back(key);
            nets.push_back(FeedForwardNetwork::create(
                genome.toNetworkDef(cfg)));
        }
        VectorEnv venv(spec, n,
                       seed ^ (0x51ED270BULL *
                               (static_cast<uint64_t>(gen) + 1)));
        venv.resetAll();
        while (!venv.allDone()) {
            std::vector<Action> actions(n);
            for (size_t i = 0; i < n; ++i) {
                if (venv.done(i)) {
                    actions[i] = Action(spec.numOutputs, 0.0);
                    continue;
                }
                actions[i] = decodeAction(
                    spec, nets[i].activate(venv.observation(i)));
            }
            venv.stepAll(actions);
        }
        for (size_t i = 0; i < n; ++i)
            pop.genomes().at(keys[i]).fitness = venv.fitness(i);

        if (gen >= generations - 1 ||
            (stopAtSolved && pop.solved()))
            break;
        pop.advance();
    }
    return pop;
}

} // namespace

std::vector<NetworkDef>
evolvedPopulation(const std::string &envName, int generations,
                  size_t populationSize, uint64_t seed)
{
    Population pop =
        evolveAgainstEnv(envSpec(envName), generations, populationSize,
                         seed, /*stopAtSolved=*/false);
    std::vector<NetworkDef> defs;
    for (const auto &[key, genome] : pop.genomes())
        defs.push_back(genome.toNetworkDef(pop.config()));
    return defs;
}

Genome
evolvedChampion(const std::string &envName, int generations,
                size_t populationSize, uint64_t seed)
{
    Population pop =
        evolveAgainstEnv(envSpec(envName), generations, populationSize,
                         seed, /*stopAtSolved=*/true);
    return pop.best();
}

int
suiteGenerationBudget(const std::string &envName)
{
    // Budgets sized to each task's convergence behaviour so suite-wide
    // benches complete in minutes; unsolved-at-budget mirrors the
    // paper's "runtime constraint" cut-off.
    if (envName == "cartpole")
        return 30;
    if (envName == "acrobot")
        return 40;
    if (envName == "mountain_car")
        return 60;
    if (envName == "bipedal_walker")
        return 60;
    if (envName == "lunar_lander")
        return 80;
    if (envName == "pendulum")
        return 150;
    if (envName == "catch")
        return 60;
    return 100;
}

} // namespace e3
