/**
 * @file
 * The E3 platform: the closed loop of the paper's Fig. 1(a)/Fig. 5.
 *
 * Per generation: CreateNet decodes the population, "evaluate" runs
 * every individual against its own environment episode(s) — functional
 * results from the real C++ simulation, time from the selected backend
 * (software / GPU / INAX model) — then "evolve" reproduces the next
 * generation on the CPU. The run stops when the required fitness is
 * achieved, the generation cap is hit, or the modeled-time budget runs
 * out (the paper's "set runtime constraint").
 */

#ifndef E3_E3_PLATFORM_HH
#define E3_E3_PLATFORM_HH

#include <memory>
#include <optional>

#include "common/timing.hh"
#include "e3/backend.hh"
#include "env/vector_env.hh"
#include "inax/inax.hh"
#include "neat/population.hh"
#include "nn/quantize.hh"
#include "obs/metrics.hh"
#include "runtime/parallel_eval.hh"
#include "verify/diagnostics.hh"

namespace e3 {

/** Run configuration of one E3 learning session. */
struct PlatformConfig
{
    std::string envName = "cartpole";
    uint64_t seed = 1;
    size_t populationSize = 200;   ///< paper Sec. VI-C
    size_t episodesPerEval = 1;    ///< episodes averaged per fitness
    int maxGenerations = 300;
    double modeledSecondsBudget = 1e9; ///< stop once exceeded

    /**
     * When set, functional inference runs through the fixed-point
     * evaluator at this format — what the agent would actually compute
     * on INAX's DSP datapath — so evolution selects controllers that
     * work *after* quantization, not just in double precision.
     */
    std::optional<FixedPointFormat> quantization;

    /**
     * Evaluation worker threads; 1 keeps the whole loop on the calling
     * thread. Functional results are bit-identical for every value —
     * each lane's RNG stream is derived from (seed, generation, lane)
     * up front, independent of scheduling.
     */
    size_t threads = 1;

    /**
     * Overlap the evolve phase's per-species fitness summaries with
     * the tail of evaluation (CLAN-style async mode). Functionally
     * identical to the synchronous path; only wall-clock differs.
     */
    bool asyncOverlap = false;

    /**
     * Directory for crash-safe snapshots of the whole evolve loop;
     * empty disables checkpointing. A resumed run continues the
     * per-generation fitness trace bit-identically (same seed, any
     * thread count) — the power-cycle-tolerant deployment story.
     */
    std::string checkpointDir;

    /** Write a snapshot every N generations (requires checkpointDir). */
    int checkpointEvery = 10;

    /** Retain at most this many snapshots (oldest deleted first). */
    int checkpointKeep = 3;

    /**
     * Restore the newest usable snapshot from checkpointDir before
     * running. A missing, corrupt, or configuration-mismatched
     * checkpoint degrades to a warning and a fresh start — never a
     * crash.
     */
    bool resume = false;

    /**
     * Run the structural verifier over every decoded network before it
     * enters the evaluate phase (the `e3_cli run --verify` gate).
     * Structural errors are collected into RunResult::verifyReport —
     * an evolved genome should never produce one, so any finding is
     * evidence of an evolution-loop bug. Off by default: decoded defs
     * are verifier-clean by construction and the check costs a full
     * structural pass per genome per generation.
     */
    bool verifyGenomes = false;
};

/** One generation's summary point (the Fig. 2(d) trace). */
struct GenerationPoint
{
    int generation = 0;
    double bestFitness = 0.0;
    double meanFitness = 0.0;
    double normalizedBest = 0.0; ///< against the env's required fitness
    double cumulativeSeconds = 0.0; ///< modeled platform time so far
    double meanNodes = 0.0;
    double meanConnections = 0.0;
    double meanDensity = 0.0;
    size_t numSpecies = 0;
};

/** Result of one E3 run. */
struct RunResult
{
    std::string backendName;
    std::string envName;
    bool solved = false;
    int generations = 0;
    double bestFitness = 0.0;
    NetStats bestNetStats;       ///< structure of the final champion
    PhaseTimer modeled;          ///< evaluate / env / evolve / createnet
    std::vector<GenerationPoint> trace;
    EnergyBreakdownInput energyInput;
    InaxReport inaxReport;       ///< populated by the INAX backend
    /** Worker utilization (tasks run/stolen, idle s); empty if serial. */
    Counters runtimeCounters;

    /**
     * Determinism-sentinel digest of every RNG stream the evaluation
     * runtime consumed: (total draws, FNV-1a hash of the draw
     * sequences) folded in canonical (generation, episode round,
     * lane) order. Identical configs must produce identical digests
     * at every worker count — serial vs 2/4/8-thread vs async — which
     * is exactly what the determinism-sentinel test and CI job assert.
     */
    RngAudit rngAudit;

    /**
     * Per-generation metrics: one snapshot row per generation with
     * fitness/species gauges, modeled per-phase second deltas, env
     * step counts and pool counter deltas. Export with toCsv()/
     * toJson() (the CLI's --metrics flag) to regenerate fig9-style
     * breakdowns offline.
     */
    obs::MetricsRegistry metrics;

    /**
     * Structural errors found by the PlatformConfig::verifyGenomes
     * gate, stamped with the generation and genome they came from.
     * Empty when the gate is off or every decoded network verified
     * clean.
     */
    verify::Report verifyReport;

    /** Total modeled wall seconds. */
    double totalSeconds() const { return modeled.totalSeconds(); }
};

/** Phase names used in RunResult::modeled. */
namespace e3_phase {
inline const std::string evaluate = "evaluate";
inline const std::string evolve = "evolve";
inline const std::string env = "env";
inline const std::string createNet = "createnet";
} // namespace e3_phase

/** Closed-loop NEAT learning platform with a pluggable backend. */
class E3Platform
{
  public:
    E3Platform(const PlatformConfig &cfg,
               std::unique_ptr<EvalBackend> backend);

    /** Tweak NEAT hyperparameters before run(). */
    NeatConfig &neatConfig() { return neatCfg_; }

    /** Host-side (env/evolve/createnet) timing knobs. */
    HostTimingModel &hostTiming() { return host_; }

    /** Execute the learning loop to completion. */
    RunResult run();

  private:
    PlatformConfig cfg_;
    EnvSpec spec_;
    NeatConfig neatCfg_;
    std::unique_ptr<EvalBackend> backend_;
    HostTimingModel host_;
    runtime::ParallelEval runtime_;
    obs::MetricsRegistry metrics_;
    uint64_t envSteps_ = 0; ///< functional env steps across the run
    verify::Report verifyReport_; ///< verifyGenomes-gate findings

    /**
     * Functionally evaluate the current population through the
     * parallel runtime: one episode round per episodesPerEval, fitness
     * = mean episode reward. Fills the trace's episode lengths. In
     * async-overlap mode, @p summaries receives every species'
     * evaluation summary (computed while the evaluate tail drained);
     * it is left empty otherwise.
     */
    void evaluateFunctional(Population &pop, GenerationTrace &trace,
                            int generation,
                            std::map<int, SpeciesEvalSummary> &summaries);
};

} // namespace e3

#endif // E3_E3_PLATFORM_HH
