/**
 * @file
 * E3-CPU: the software-only baseline. All of evaluate runs on the CPU
 * with the interpreted-evaluator timing model.
 */

#ifndef E3_E3_CPU_BACKEND_HH
#define E3_E3_CPU_BACKEND_HH

#include "e3/backend.hh"

namespace e3 {

/** Software-only evaluate backend (the paper's baseline). */
class CpuBackend : public EvalBackend
{
  public:
    explicit CpuBackend(CpuTimingModel model = {}) : model_(model) {}

    std::string name() const override { return "E3-CPU"; }

    double evaluateSeconds(const GenerationTrace &trace) override
    {
        return model_.evaluateSeconds(trace);
    }

    void
    attributeEnergy(double evalSeconds,
                    EnergyBreakdownInput &energy) const override
    {
        energy.cpuSeconds += evalSeconds;
    }

    const CpuTimingModel &model() const { return model_; }

  private:
    CpuTimingModel model_;
};

/**
 * E3-CPU-BATCH: the CPU baseline's timing model with functional
 * inference routed through the SoA population batch engine
 * (nn/batch_eval). Functional results and modeled time are identical
 * to E3-CPU — only host wall-clock changes — so it slots into every
 * comparison as a drop-in faster evaluator.
 */
class CpuBatchBackend : public CpuBackend
{
  public:
    explicit CpuBatchBackend(CpuTimingModel model = {})
        : CpuBackend(model)
    {
    }

    std::string name() const override { return "E3-CPU-BATCH"; }

    bool batchedFunctionalInference() const override { return true; }
};

} // namespace e3

#endif // E3_E3_CPU_BACKEND_HH
