#include "e3/synthetic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

NetworkDef
syntheticIrregularNet(const SyntheticParams &params, Rng &rng)
{
    e3_assert(params.numInputs > 0 && params.numOutputs > 0,
              "synthetic net needs inputs and outputs");
    e3_assert(params.hiddenLayers > 0, "need at least one hidden rank");
    e3_assert(params.sparsity >= 0.0 && params.sparsity <= 1.0,
              "sparsity must be a probability");

    NetworkDef def = NetworkDef::empty(params.numInputs,
                                       params.numOutputs);

    // Hidden node ids follow the outputs; each gets a rank that orders
    // the allowed (strictly forward) hidden-to-hidden edges.
    struct Hidden
    {
        int id;
        size_t rank;
    };
    std::vector<Hidden> hidden;
    for (size_t h = 0; h < params.numHidden; ++h) {
        const int id = static_cast<int>(params.numOutputs + h);
        const size_t rank = rng.uniformInt(params.hiddenLayers);
        def.nodes.push_back({id, rng.normal(0.0, 1.0),
                             Activation::Sigmoid, Aggregation::Sum});
        hidden.push_back({id, rank});
    }

    auto addConn = [&](int from, int to) {
        def.conns.push_back({from, to, rng.normal(0.0, 1.0)});
    };
    auto hasIngress = [&](int id) {
        return std::any_of(def.conns.begin(), def.conns.end(),
                           [&](const auto &c) { return c.to == id; });
    };
    auto hasEgress = [&](int id) {
        return std::any_of(def.conns.begin(), def.conns.end(),
                           [&](const auto &c) { return c.from == id; });
    };

    // Random sparse connectivity over all legal forward edges.
    for (int in : def.inputIds) {
        for (const auto &h : hidden) {
            if (rng.chance(params.sparsity))
                addConn(in, h.id);
        }
        for (int out : def.outputIds) {
            if (rng.chance(params.sparsity))
                addConn(in, out);
        }
    }
    for (const auto &a : hidden) {
        for (const auto &b : hidden) {
            if (a.rank < b.rank && rng.chance(params.sparsity))
                addConn(a.id, b.id);
        }
        for (int out : def.outputIds) {
            if (rng.chance(params.sparsity))
                addConn(a.id, out);
        }
    }

    // Guarantee full requiredness: every hidden node needs an ingress
    // (from an input or a lower-rank hidden) and an egress (to an
    // output or higher-rank hidden -> simplest is an output); every
    // output needs an ingress.
    for (const auto &h : hidden) {
        if (!hasIngress(h.id)) {
            const int in = def.inputIds[rng.uniformInt(
                def.inputIds.size())];
            addConn(in, h.id);
        }
        if (!hasEgress(h.id)) {
            const int out = def.outputIds[rng.uniformInt(
                def.outputIds.size())];
            addConn(h.id, out);
        }
    }
    for (int out : def.outputIds) {
        if (!hasIngress(out)) {
            const int in = def.inputIds[rng.uniformInt(
                def.inputIds.size())];
            addConn(in, out);
        }
    }
    return def;
}

std::vector<NetworkDef>
syntheticPopulation(const SyntheticParams &params, uint64_t seed)
{
    Rng rng(seed);
    std::vector<NetworkDef> population;
    population.reserve(params.numIndividuals);
    for (size_t i = 0; i < params.numIndividuals; ++i)
        population.push_back(syntheticIrregularNet(params, rng));
    return population;
}

std::vector<int>
syntheticEpisodeLengths(size_t n, int minSteps, int maxSteps, Rng &rng)
{
    e3_assert(minSteps >= 1 && maxSteps >= minSteps,
              "bad episode-length range [", minSteps, ", ", maxSteps,
              "]");
    std::vector<int> lengths(n);
    for (auto &len : lengths) {
        len = static_cast<int>(rng.uniformInt(
            static_cast<int64_t>(minSteps),
            static_cast<int64_t>(maxSteps)));
    }
    return lengths;
}

} // namespace e3
