/**
 * @file
 * Synthetic irregular-network workload generator.
 *
 * The paper's design-space studies (footnote 3) use a parameterized
 * population instead of live evolution: "num individuals: 200,
 * num inputs: 8, num outputs: 4, num hidden nodes: 30, sparsity
 * rate: 0.2". This module builds random irregular feed-forward networks
 * with those knobs, plus the episode-length distributions that drive
 * the PU-utilization studies.
 */

#ifndef E3_E3_SYNTHETIC_HH
#define E3_E3_SYNTHETIC_HH

#include <vector>

#include "common/rng.hh"
#include "nn/network.hh"

namespace e3 {

/** Knobs of the synthetic population (paper footnote 3 defaults). */
struct SyntheticParams
{
    size_t numIndividuals = 200;
    size_t numInputs = 8;
    size_t numOutputs = 4;
    size_t numHidden = 30;
    double sparsity = 0.2; ///< probability of each legal connection
    size_t hiddenLayers = 3; ///< depth hidden nodes spread across
};

/**
 * One random irregular network: hidden nodes are spread over
 * `hiddenLayers` ranks; every forward-pointing edge (input->hidden,
 * lower->higher rank, hidden->output, input->output) exists with
 * probability `sparsity`. Each hidden node is guaranteed at least one
 * ingress and one egress edge and each output at least one ingress, so
 * the generated structure is fully required.
 */
NetworkDef syntheticIrregularNet(const SyntheticParams &params,
                                 Rng &rng);

/** A population of independent synthetic networks. */
std::vector<NetworkDef> syntheticPopulation(const SyntheticParams &params,
                                            uint64_t seed);

/**
 * Episode lengths with env-like termination variance: lengths are
 * uniform in [minSteps, maxSteps], mimicking individuals failing early
 * while others run the full episode (paper Sec. V-B issue 2).
 */
std::vector<int> syntheticEpisodeLengths(size_t n, int minSteps,
                                         int maxSteps, Rng &rng);

} // namespace e3

#endif // E3_E3_SYNTHETIC_HH
