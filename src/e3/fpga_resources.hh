/**
 * @file
 * FPGA resource model for INAX on the Xilinx ZCU104 (Zynq UltraScale+
 * XCZU7EV), for the paper's Fig. 10(b) utilization chart.
 *
 * Per-block costs are typical of a small fixed-point MAC + activation
 * datapath with per-PU weight/value BRAMs; totals are the XCZU7EV
 * device limits.
 */

#ifndef E3_E3_FPGA_RESOURCES_HH
#define E3_E3_FPGA_RESOURCES_HH

#include <cstdint>
#include <string>

#include "inax/hw_config.hh"

namespace e3 {

/** Absolute resource counts. */
struct FpgaResources
{
    uint64_t lut = 0;
    uint64_t ff = 0;
    uint64_t bram36 = 0; ///< 36 Kb block RAMs
    uint64_t dsp = 0;
};

/** XCZU7EV device totals. */
FpgaResources zcu104Capacity();

/** Resource cost of an INAX instance. */
FpgaResources inaxResourceCost(const InaxConfig &cfg);

/** Utilization fractions of a design on a device. */
struct FpgaUtilization
{
    double lut = 0.0;
    double ff = 0.0;
    double bram = 0.0;
    double dsp = 0.0;

    /** Error if the design does not fit. */
    Status checkFits(const std::string &designName) const;
};

/** Utilization of an INAX config on the ZCU104. */
FpgaUtilization inaxUtilization(const InaxConfig &cfg);

} // namespace e3

#endif // E3_E3_FPGA_RESOURCES_HH
