#include "neat/config.hh"

#include "common/logging.hh"

namespace e3 {

NeatConfig
NeatConfig::forTask(size_t numInputs, size_t numOutputs,
                    double fitnessThreshold)
{
    NeatConfig cfg;
    cfg.numInputs = numInputs;
    cfg.numOutputs = numOutputs;
    cfg.fitnessThreshold = fitnessThreshold;
    cfg.validate();
    return cfg;
}

void
NeatConfig::validate() const
{
    if (numInputs == 0 || numOutputs == 0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("NEAT needs at least one input and one output");
    if (populationSize < 2)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("population size must be at least 2");
    if (biasMin > biasMax || weightMin > weightMax)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("inverted bias/weight bounds");
    auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!probability(biasMutateRate) || !probability(biasReplaceRate) ||
        !probability(weightMutateRate) ||
        !probability(weightReplaceRate) ||
        !probability(enabledMutateRate) ||
        !probability(activationMutateRate) ||
        !probability(aggregationMutateRate) ||
        !probability(connAddProb) || !probability(connDeleteProb) ||
        !probability(nodeAddProb) || !probability(nodeDeleteProb) ||
        !probability(initialConnectionFraction) ||
        !probability(survivalThreshold) || !probability(crossoverRate))
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("a NEAT probability parameter is outside [0, 1]");
    if (activationOptions.empty() || aggregationOptions.empty())
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("activation/aggregation option lists must be non-empty");
    if (compatibilityThreshold <= 0.0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("compatibility threshold must be positive");
}

} // namespace e3
