#include "neat/config.hh"

#include "common/result.hh"

namespace e3 {

NeatConfig
NeatConfig::forTask(size_t numInputs, size_t numOutputs,
                    double fitnessThreshold)
{
    NeatConfig cfg;
    cfg.numInputs = numInputs;
    cfg.numOutputs = numOutputs;
    cfg.fitnessThreshold = fitnessThreshold;
    assertOk(cfg.validate());
    return cfg;
}

Status
NeatConfig::validate() const
{
    if (numInputs == 0 || numOutputs == 0)
        return Status::error(
            "NEAT needs at least one input and one output");
    if (populationSize < 2)
        return Status::error("population size must be at least 2");
    if (biasMin > biasMax || weightMin > weightMax)
        return Status::error("inverted bias/weight bounds");
    auto probability = [](double p) { return p >= 0.0 && p <= 1.0; };
    if (!probability(biasMutateRate) || !probability(biasReplaceRate) ||
        !probability(weightMutateRate) ||
        !probability(weightReplaceRate) ||
        !probability(enabledMutateRate) ||
        !probability(activationMutateRate) ||
        !probability(aggregationMutateRate) ||
        !probability(connAddProb) || !probability(connDeleteProb) ||
        !probability(nodeAddProb) || !probability(nodeDeleteProb) ||
        !probability(initialConnectionFraction) ||
        !probability(survivalThreshold) || !probability(crossoverRate))
        return Status::error(
            "a NEAT probability parameter is outside [0, 1]");
    if (activationOptions.empty() || aggregationOptions.empty())
        return Status::error(
            "activation/aggregation option lists must be non-empty");
    if (compatibilityThreshold <= 0.0)
        return Status::error("compatibility threshold must be positive");
    return Status();
}

} // namespace e3
