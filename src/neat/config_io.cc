#include "neat/config_io.hh"

#include <set>
#include <sstream>

namespace e3 {

namespace {

const char *neatSection = "NEAT";
const char *genomeSection = "DefaultGenome";
const char *speciesSection = "DefaultSpeciesSet";
const char *reproSection = "DefaultReproduction";
const char *stagnationSection = "DefaultStagnation";

/** Split a space/comma separated token list. */
std::vector<std::string>
splitTokens(const std::string &text)
{
    std::vector<std::string> out;
    std::string token;
    std::istringstream iss(text);
    while (iss >> token) {
        if (!token.empty() && token.back() == ',')
            token.pop_back();
        if (!token.empty())
            out.push_back(token);
    }
    return out;
}

/** Parse a space/comma separated activation list. */
Result<std::vector<Activation>>
parseActivationList(const std::string &text)
{
    std::vector<Activation> out;
    for (const auto &token : splitTokens(text)) {
        Activation act;
        if (!tryParseActivation(token, act))
            return Status::error("unknown activation '", token, "'");
        out.push_back(act);
    }
    if (out.empty())
        return Status::error("empty activation list '", text, "'");
    return out;
}

Result<std::vector<Aggregation>>
parseAggregationList(const std::string &text)
{
    std::vector<Aggregation> out;
    for (const auto &token : splitTokens(text)) {
        Aggregation agg;
        if (!tryParseAggregation(token, agg))
            return Status::error("unknown aggregation '", token, "'");
        out.push_back(agg);
    }
    if (out.empty())
        return Status::error("empty aggregation list '", text, "'");
    return out;
}

std::string
activationListToString(const std::vector<Activation> &list)
{
    std::string out;
    for (const auto &a : list) {
        if (!out.empty())
            out += ' ';
        out += activationName(a);
    }
    return out;
}

std::string
aggregationListToString(const std::vector<Aggregation> &list)
{
    std::string out;
    for (const auto &a : list) {
        if (!out.empty())
            out += ' ';
        out += aggregationName(a);
    }
    return out;
}

/**
 * Typed reads off an IniFile that latch the first error instead of
 * forcing a Result check at all ~30 call sites: once a read fails,
 * later reads return their fallback and the loader reports the latched
 * Status at the end.
 */
class IniReader
{
  public:
    explicit IniReader(const IniFile &ini) : ini_(ini) {}

    long
    getInt(const std::string &section, const char *key, long fallback)
    {
        return take(ini_.getInt(section, key, fallback), fallback);
    }

    double
    getDouble(const std::string &section, const char *key,
              double fallback)
    {
        return take(ini_.getDouble(section, key, fallback), fallback);
    }

    bool
    getBool(const std::string &section, const char *key, bool fallback)
    {
        return take(ini_.getBool(section, key, fallback), fallback);
    }

    void
    rejectUnknownKeys(const std::string &section,
                      const std::set<std::string> &known)
    {
        if (!status_.ok())
            return;
        for (const auto &key : ini_.keys(section)) {
            if (!known.count(key)) {
                status_ = Status::error("unknown key '", key, "' in [",
                                        section, "]");
                return;
            }
        }
    }

    /** Latch @p status if it is the first error. */
    void
    note(const Status &status)
    {
        if (status_.ok() && !status.ok())
            status_ = status;
    }

    const Status &status() const { return status_; }

  private:
    template <typename T>
    T
    take(Result<T> r, T fallback)
    {
        if (!r.ok()) {
            note(r.status());
            return fallback;
        }
        return *r;
    }

    const IniFile &ini_;
    Status status_;
};

} // namespace

Result<NeatConfig>
neatConfigFromIni(const IniFile &ini, const NeatConfig &base)
{
    NeatConfig cfg = base;
    IniReader in(ini);

    in.rejectUnknownKeys(neatSection,
                         {"pop_size", "fitness_threshold"});
    cfg.populationSize = static_cast<size_t>(in.getInt(
        neatSection, "pop_size",
        static_cast<long>(base.populationSize)));
    cfg.fitnessThreshold = in.getDouble(
        neatSection, "fitness_threshold", base.fitnessThreshold);

    in.rejectUnknownKeys(
        genomeSection,
        {"num_inputs", "num_outputs", "num_hidden", "feed_forward",
         "bias_init_mean", "bias_init_stdev", "bias_min_value",
         "bias_max_value", "bias_mutate_power", "bias_mutate_rate",
         "bias_replace_rate", "weight_init_mean", "weight_init_stdev",
         "weight_min_value", "weight_max_value", "weight_mutate_power",
         "weight_mutate_rate", "weight_replace_rate",
         "enabled_mutate_rate", "activation_default",
         "activation_mutate_rate", "activation_options",
         "aggregation_default", "aggregation_mutate_rate",
         "aggregation_options", "conn_add_prob", "conn_delete_prob",
         "node_add_prob", "node_delete_prob",
         "initial_connection_fraction"});

    auto gi = [&](const char *key, long fallback) {
        return in.getInt(genomeSection, key, fallback);
    };
    auto gd = [&](const char *key, double fallback) {
        return in.getDouble(genomeSection, key, fallback);
    };

    cfg.numInputs = static_cast<size_t>(
        gi("num_inputs", static_cast<long>(base.numInputs)));
    cfg.numOutputs = static_cast<size_t>(
        gi("num_outputs", static_cast<long>(base.numOutputs)));
    cfg.numHidden = static_cast<size_t>(
        gi("num_hidden", static_cast<long>(base.numHidden)));
    cfg.feedForward =
        in.getBool(genomeSection, "feed_forward", base.feedForward);

    cfg.biasInitMean = gd("bias_init_mean", base.biasInitMean);
    cfg.biasInitStdev = gd("bias_init_stdev", base.biasInitStdev);
    cfg.biasMin = gd("bias_min_value", base.biasMin);
    cfg.biasMax = gd("bias_max_value", base.biasMax);
    cfg.biasMutatePower = gd("bias_mutate_power", base.biasMutatePower);
    cfg.biasMutateRate = gd("bias_mutate_rate", base.biasMutateRate);
    cfg.biasReplaceRate = gd("bias_replace_rate", base.biasReplaceRate);

    cfg.weightInitMean = gd("weight_init_mean", base.weightInitMean);
    cfg.weightInitStdev = gd("weight_init_stdev", base.weightInitStdev);
    cfg.weightMin = gd("weight_min_value", base.weightMin);
    cfg.weightMax = gd("weight_max_value", base.weightMax);
    cfg.weightMutatePower =
        gd("weight_mutate_power", base.weightMutatePower);
    cfg.weightMutateRate =
        gd("weight_mutate_rate", base.weightMutateRate);
    cfg.weightReplaceRate =
        gd("weight_replace_rate", base.weightReplaceRate);

    cfg.enabledMutateRate =
        gd("enabled_mutate_rate", base.enabledMutateRate);

    if (ini.has(genomeSection, "activation_default")) {
        const std::string name =
            ini.get(genomeSection, "activation_default", "");
        if (!tryParseActivation(name, cfg.defaultActivation))
            in.note(Status::error("unknown activation '", name, "'"));
    }
    cfg.activationMutateRate =
        gd("activation_mutate_rate", base.activationMutateRate);
    if (ini.has(genomeSection, "activation_options")) {
        Result<std::vector<Activation>> list = parseActivationList(
            ini.get(genomeSection, "activation_options", ""));
        if (list.ok())
            cfg.activationOptions = *std::move(list);
        else
            in.note(list.status());
    }

    if (ini.has(genomeSection, "aggregation_default")) {
        const std::string name =
            ini.get(genomeSection, "aggregation_default", "");
        if (!tryParseAggregation(name, cfg.defaultAggregation))
            in.note(Status::error("unknown aggregation '", name, "'"));
    }
    cfg.aggregationMutateRate =
        gd("aggregation_mutate_rate", base.aggregationMutateRate);
    if (ini.has(genomeSection, "aggregation_options")) {
        Result<std::vector<Aggregation>> list = parseAggregationList(
            ini.get(genomeSection, "aggregation_options", ""));
        if (list.ok())
            cfg.aggregationOptions = *std::move(list);
        else
            in.note(list.status());
    }

    cfg.connAddProb = gd("conn_add_prob", base.connAddProb);
    cfg.connDeleteProb = gd("conn_delete_prob", base.connDeleteProb);
    cfg.nodeAddProb = gd("node_add_prob", base.nodeAddProb);
    cfg.nodeDeleteProb = gd("node_delete_prob", base.nodeDeleteProb);
    cfg.initialConnectionFraction = gd(
        "initial_connection_fraction", base.initialConnectionFraction);

    in.rejectUnknownKeys(speciesSection,
                         {"compatibility_threshold",
                          "compatibility_disjoint_coefficient",
                          "compatibility_weight_coefficient"});
    cfg.compatibilityThreshold =
        in.getDouble(speciesSection, "compatibility_threshold",
                     base.compatibilityThreshold);
    cfg.compatibilityDisjointCoefficient = in.getDouble(
        speciesSection, "compatibility_disjoint_coefficient",
        base.compatibilityDisjointCoefficient);
    cfg.compatibilityWeightCoefficient = in.getDouble(
        speciesSection, "compatibility_weight_coefficient",
        base.compatibilityWeightCoefficient);

    in.rejectUnknownKeys(reproSection,
                         {"elitism", "survival_threshold",
                          "min_species_size", "crossover_rate"});
    cfg.elitism = static_cast<size_t>(in.getInt(
        reproSection, "elitism", static_cast<long>(base.elitism)));
    cfg.survivalThreshold = in.getDouble(
        reproSection, "survival_threshold", base.survivalThreshold);
    cfg.minSpeciesSize = static_cast<size_t>(
        in.getInt(reproSection, "min_species_size",
                  static_cast<long>(base.minSpeciesSize)));
    cfg.crossoverRate = in.getDouble(reproSection, "crossover_rate",
                                     base.crossoverRate);

    in.rejectUnknownKeys(stagnationSection,
                         {"max_stagnation", "species_elitism"});
    cfg.maxStagnation = static_cast<size_t>(
        in.getInt(stagnationSection, "max_stagnation",
                  static_cast<long>(base.maxStagnation)));
    cfg.speciesElitism = static_cast<size_t>(
        in.getInt(stagnationSection, "species_elitism",
                  static_cast<long>(base.speciesElitism)));

    if (!in.status().ok())
        return in.status();
    if (Status valid = cfg.validate(); !valid.ok())
        return valid;
    return cfg;
}

Result<NeatConfig>
loadNeatConfig(const std::string &path, const NeatConfig &base)
{
    Result<IniFile> ini = IniFile::load(path);
    if (!ini.ok())
        return ini.status();
    return neatConfigFromIni(*ini, base);
}

std::string
neatConfigToIni(const NeatConfig &cfg)
{
    IniFile ini;
    auto num = [](double v) {
        std::ostringstream oss;
        oss.precision(17);
        oss << v;
        return oss.str();
    };

    ini.set(neatSection, "pop_size",
            std::to_string(cfg.populationSize));
    ini.set(neatSection, "fitness_threshold",
            num(cfg.fitnessThreshold));

    ini.set(genomeSection, "num_inputs",
            std::to_string(cfg.numInputs));
    ini.set(genomeSection, "num_outputs",
            std::to_string(cfg.numOutputs));
    ini.set(genomeSection, "num_hidden",
            std::to_string(cfg.numHidden));
    ini.set(genomeSection, "feed_forward",
            cfg.feedForward ? "true" : "false");
    ini.set(genomeSection, "bias_init_mean", num(cfg.biasInitMean));
    ini.set(genomeSection, "bias_init_stdev", num(cfg.biasInitStdev));
    ini.set(genomeSection, "bias_min_value", num(cfg.biasMin));
    ini.set(genomeSection, "bias_max_value", num(cfg.biasMax));
    ini.set(genomeSection, "bias_mutate_power",
            num(cfg.biasMutatePower));
    ini.set(genomeSection, "bias_mutate_rate",
            num(cfg.biasMutateRate));
    ini.set(genomeSection, "bias_replace_rate",
            num(cfg.biasReplaceRate));
    ini.set(genomeSection, "weight_init_mean",
            num(cfg.weightInitMean));
    ini.set(genomeSection, "weight_init_stdev",
            num(cfg.weightInitStdev));
    ini.set(genomeSection, "weight_min_value", num(cfg.weightMin));
    ini.set(genomeSection, "weight_max_value", num(cfg.weightMax));
    ini.set(genomeSection, "weight_mutate_power",
            num(cfg.weightMutatePower));
    ini.set(genomeSection, "weight_mutate_rate",
            num(cfg.weightMutateRate));
    ini.set(genomeSection, "weight_replace_rate",
            num(cfg.weightReplaceRate));
    ini.set(genomeSection, "enabled_mutate_rate",
            num(cfg.enabledMutateRate));
    ini.set(genomeSection, "activation_default",
            activationName(cfg.defaultActivation));
    ini.set(genomeSection, "activation_mutate_rate",
            num(cfg.activationMutateRate));
    ini.set(genomeSection, "activation_options",
            activationListToString(cfg.activationOptions));
    ini.set(genomeSection, "aggregation_default",
            aggregationName(cfg.defaultAggregation));
    ini.set(genomeSection, "aggregation_mutate_rate",
            num(cfg.aggregationMutateRate));
    ini.set(genomeSection, "aggregation_options",
            aggregationListToString(cfg.aggregationOptions));
    ini.set(genomeSection, "conn_add_prob", num(cfg.connAddProb));
    ini.set(genomeSection, "conn_delete_prob",
            num(cfg.connDeleteProb));
    ini.set(genomeSection, "node_add_prob", num(cfg.nodeAddProb));
    ini.set(genomeSection, "node_delete_prob",
            num(cfg.nodeDeleteProb));
    ini.set(genomeSection, "initial_connection_fraction",
            num(cfg.initialConnectionFraction));

    ini.set(speciesSection, "compatibility_threshold",
            num(cfg.compatibilityThreshold));
    ini.set(speciesSection, "compatibility_disjoint_coefficient",
            num(cfg.compatibilityDisjointCoefficient));
    ini.set(speciesSection, "compatibility_weight_coefficient",
            num(cfg.compatibilityWeightCoefficient));

    ini.set(reproSection, "elitism", std::to_string(cfg.elitism));
    ini.set(reproSection, "survival_threshold",
            num(cfg.survivalThreshold));
    ini.set(reproSection, "min_species_size",
            std::to_string(cfg.minSpeciesSize));
    ini.set(reproSection, "crossover_rate", num(cfg.crossoverRate));

    ini.set(stagnationSection, "max_stagnation",
            std::to_string(cfg.maxStagnation));
    ini.set(stagnationSection, "species_elitism",
            std::to_string(cfg.speciesElitism));

    return ini.str();
}

} // namespace e3
