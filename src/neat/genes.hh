/**
 * @file
 * NEAT genes: the basic building blocks of an evolved network
 * (paper Table II). A node gene carries bias, activation and
 * aggregation; a connection gene carries a weight, an enabled flag, and
 * is identified by its (from, to) endpoint pair as in neat-python.
 */

#ifndef E3_NEAT_GENES_HH
#define E3_NEAT_GENES_HH

#include <utility>

#include "common/rng.hh"
#include "neat/config.hh"

namespace e3 {

/** Connection identity: (source node id, destination node id). */
using ConnKey = std::pair<int, int>;

/** Gene describing one computing node. */
struct NodeGene
{
    int id = 0;
    double bias = 0.0;
    Activation act = Activation::Sigmoid;
    Aggregation agg = Aggregation::Sum;

    /** Fresh gene with config-distributed attributes. */
    static NodeGene create(int id, const NeatConfig &cfg, Rng &rng);

    /** Perturb/replace attributes per the config's mutation rates. */
    void mutate(const NeatConfig &cfg, Rng &rng);

    /** Per-attribute uniform mix of two homologous genes. */
    static NodeGene crossover(const NodeGene &a, const NodeGene &b,
                              Rng &rng);

    /**
     * Genetic distance of homologous node genes: |bias difference| plus
     * 1 for each differing categorical attribute (neat-python).
     */
    double distance(const NodeGene &other) const;
};

/** Gene describing one weighted connection. */
struct ConnGene
{
    ConnKey key{0, 0};
    double weight = 0.0;
    bool enabled = true;

    /** Fresh gene with config-distributed weight. */
    static ConnGene create(ConnKey key, const NeatConfig &cfg, Rng &rng);

    /** Perturb/replace weight and maybe toggle enabled. */
    void mutate(const NeatConfig &cfg, Rng &rng);

    /** Per-attribute uniform mix of two homologous genes. */
    static ConnGene crossover(const ConnGene &a, const ConnGene &b,
                              Rng &rng);

    /**
     * Genetic distance of homologous connection genes:
     * |weight difference| plus 1 if the enabled flags differ.
     */
    double distance(const ConnGene &other) const;
};

} // namespace e3

#endif // E3_NEAT_GENES_HH
