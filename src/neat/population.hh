/**
 * @file
 * The NEAT population driver: owns the genomes, species set, innovation
 * tracker and RNG, and exposes the evaluate/evolve cycle of the paper's
 * Fig. 1(a). Evaluation is external — a backend (software, INAX model,
 * GPU model) assigns fitness to every genome, then advance() performs
 * one "evolve" step.
 */

#ifndef E3_NEAT_POPULATION_HH
#define E3_NEAT_POPULATION_HH

#include <functional>
#include <map>

#include "common/stats.hh"
#include "neat/innovation.hh"
#include "neat/reproduction.hh"
#include "neat/species.hh"

namespace e3 {

/** Per-generation summary used by the convergence/irregularity benches. */
struct GenerationStats
{
    int generation = 0;
    double bestFitness = 0.0;
    double meanFitness = 0.0;
    size_t numSpecies = 0;
    Distribution nodeCounts;    ///< active nodes per individual
    Distribution connCounts;    ///< active connections per individual
    Distribution densities;     ///< paper's density metric
};

/**
 * Complete evolve-loop state of a Population, snapshotted between
 * generations. Restoring it and continuing produces a genome stream
 * bit-identical to the uninterrupted run: genomes, species membership
 * and stagnation history, the innovation and genome-key allocators,
 * and both RNG streams are all captured.
 */
struct PopulationState
{
    int generation = 0;
    RngState rng;              ///< population-level stream
    RngState reproductionRng;  ///< stream driving reproduce()
    int genomesCreated = 0;    ///< genome-key allocator position
    int lastNodeId = 0;        ///< innovation allocator position
    int nextSpeciesId = 1;     ///< species-id allocator position
    std::map<int, Genome> genomes;
    std::map<int, Species> species;
};

/** Population of genomes evolving toward a fitness threshold. */
class Population
{
  public:
    /**
     * Create generation 0 and speciate it.
     * @param cfg validated NEAT configuration
     * @param seed master seed for all evolutionary randomness
     */
    Population(const NeatConfig &cfg, uint64_t seed);

    /**
     * Restore a population from a checkpoint snapshot. Unlike the
     * seeding constructor this consumes no randomness: evolution
     * continues exactly where saveState() left off.
     */
    Population(const NeatConfig &cfg, const PopulationState &state);

    /** Snapshot the complete evolve-loop state (checkpointing). */
    PopulationState saveState() const;

    /** Mutable access for evaluators to assign fitness. */
    std::map<int, Genome> &genomes() { return genomes_; }
    const std::map<int, Genome> &genomes() const { return genomes_; }

    const NeatConfig &config() const { return cfg_; }
    int generation() const { return generation_; }
    const SpeciesSet &speciesSet() const { return species_; }

    /**
     * Evaluate every genome with the callback (assigning fitness), in
     * genome-key order.
     */
    void evaluateAll(
        const std::function<double(const Genome &)> &fitnessFn);

    /** Best genome of the current (evaluated) generation. */
    const Genome &best() const;

    /** True once best().fitness >= cfg.fitnessThreshold. */
    bool solved() const;

    /**
     * One "evolve" step: stagnation, reproduction, speciation.
     * @pre every genome has been evaluated
     * @param summaries optional per-species evaluation summaries
     *        (keyed by species id) precomputed while evaluation was
     *        still draining — see SpeciesEvalSummary; results are
     *        bit-identical with or without them
     */
    void advance(const std::map<int, SpeciesEvalSummary> *summaries =
                     nullptr);

    /** Structural summary of the current generation (Fig. 2/4 data). */
    GenerationStats stats() const;

    /**
     * Attach a non-owning observer, notified after evaluateAll() and
     * after advance(). The reporter must outlive the population.
     */
    void addReporter(class Reporter *reporter);

  private:
    std::vector<class Reporter *> reporters_;
    NeatConfig cfg_;
    Rng rng_;
    InnovationTracker innovation_;
    Reproduction reproduction_;
    SpeciesSet species_;
    std::map<int, Genome> genomes_;
    int generation_ = 0;
};

} // namespace e3

#endif // E3_NEAT_POPULATION_HH
