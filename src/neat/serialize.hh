/**
 * @file
 * Genome serialization: save an evolved controller to a portable text
 * format and load it back — the deployment step of the paper's
 * model-replacement story (evolve on device, persist the champion,
 * reload after power cycles).
 *
 * Format (line oriented, '#' comments allowed):
 *
 *   genome <key> <fitness|nan>
 *   node <id> <bias> <activation> <aggregation>
 *   conn <from> <to> <weight> <0|1>
 *   end
 */

#ifndef E3_NEAT_SERIALIZE_HH
#define E3_NEAT_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "neat/genome.hh"

namespace e3 {

/** Write one genome in the text format. */
void saveGenome(const Genome &genome, std::ostream &out);

/** Serialize to a string. */
std::string genomeToString(const Genome &genome);

/**
 * Read one genome from a stream.
 * fatal() on malformed input.
 */
Genome loadGenome(std::istream &in);

/** Parse from a string produced by genomeToString(). */
Genome genomeFromString(const std::string &text);

/**
 * Save to a file.
 * @return true on success; warn() and false otherwise.
 */
bool saveGenomeFile(const Genome &genome, const std::string &path);

/** Load from a file; fatal() if the file cannot be opened or parsed. */
Genome loadGenomeFile(const std::string &path);

} // namespace e3

#endif // E3_NEAT_SERIALIZE_HH
