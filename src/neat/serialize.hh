/**
 * @file
 * Genome serialization: save an evolved controller to a portable text
 * format and load it back — the deployment step of the paper's
 * model-replacement story (evolve on device, persist the champion,
 * reload after power cycles).
 *
 * Format (line oriented, '#' comments allowed):
 *
 *   genome <key> <fitness|nan>
 *   node <id> <bias> <activation> <aggregation>
 *   conn <from> <to> <weight> <0|1>
 *   end
 *
 * All load paths report malformed input as an error value
 * (Result<Genome>) instead of terminating the process, so callers —
 * the checkpoint loader in particular — can degrade gracefully;
 * application code with nothing sensible to fall back to handles the
 * error at its own boundary.
 */

#ifndef E3_NEAT_SERIALIZE_HH
#define E3_NEAT_SERIALIZE_HH

#include <iosfwd>
#include <string>

#include "common/result.hh"
#include "neat/genome.hh"

namespace e3 {

/**
 * How much semantic checking a load path performs. Validated (the
 * default) rejects genomes that parse but are structurally broken —
 * dangling connection endpoints, input-targeting connections,
 * non-finite parameters — with the matching verifier rule ID (E3V0xx)
 * in the error message, so a corrupt artifact cannot silently reach
 * the compiler's asserts. Raw accepts anything that parses; the
 * `e3_cli verify` front end uses it to load deliberately broken
 * genomes and report every defect as a diagnostic instead of stopping
 * at the first.
 */
enum class GenomeLoadMode
{
    Validated,
    Raw,
};

/** Write one genome in the text format. */
void saveGenome(const Genome &genome, std::ostream &out);

/** Serialize to a string. */
std::string genomeToString(const Genome &genome);

/** Read one genome from a stream; error on malformed input. */
Result<Genome> loadGenome(std::istream &in,
                          GenomeLoadMode mode = GenomeLoadMode::Validated);

/** Parse from a string produced by genomeToString(). */
Result<Genome>
genomeFromString(const std::string &text,
                 GenomeLoadMode mode = GenomeLoadMode::Validated);

/** Save to a file (ordinary write; not atomic). */
Status saveGenomeFile(const Genome &genome, const std::string &path);

/** Load from a file; error if it cannot be opened or parsed. */
Result<Genome>
loadGenomeFile(const std::string &path,
               GenomeLoadMode mode = GenomeLoadMode::Validated);

} // namespace e3

#endif // E3_NEAT_SERIALIZE_HH
