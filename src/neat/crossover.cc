#include "neat/crossover.hh"

#include <limits>

#include "common/logging.hh"

namespace e3 {

Genome
crossoverGenomes(int childKey, const Genome &a, const Genome &b,
                 Rng &rng)
{
    e3_assert(a.evaluated() && b.evaluated(),
              "crossover requires evaluated parents");

    const Genome &fit = a.fitness >= b.fitness ? a : b;
    const Genome &weak = a.fitness >= b.fitness ? b : a;

    Genome child(childKey);
    child.fitness = std::numeric_limits<double>::quiet_NaN();

    for (const auto &[key, gene] : fit.conns) {
        auto it = weak.conns.find(key);
        if (it == weak.conns.end()) {
            // Disjoint/excess: inherited from the fitter parent.
            child.conns.emplace(key, gene);
        } else {
            child.conns.emplace(
                key, ConnGene::crossover(gene, it->second, rng));
        }
    }

    for (const auto &[id, gene] : fit.nodes) {
        auto it = weak.nodes.find(id);
        if (it == weak.nodes.end()) {
            child.nodes.emplace(id, gene);
        } else {
            child.nodes.emplace(
                id, NodeGene::crossover(gene, it->second, rng));
        }
    }
    return child;
}

} // namespace e3
