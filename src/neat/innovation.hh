/**
 * @file
 * Global id allocation for structural innovations.
 *
 * Following neat-python, hidden-node ids are drawn from a single
 * monotonically increasing counter shared by the whole population, so a
 * node id never aliases two different structural origins across genomes
 * of one run. Connection genes need no separate innovation number — they
 * are identified by their (from, to) pair.
 */

#ifndef E3_NEAT_INNOVATION_HH
#define E3_NEAT_INNOVATION_HH

namespace e3 {

/** Monotonic allocator for new hidden-node ids. */
class InnovationTracker
{
  public:
    /**
     * @param firstHiddenId first id available for hidden nodes; output
     *        nodes occupy 0..numOutputs-1, so this is numOutputs.
     */
    explicit InnovationTracker(int firstHiddenId);

    /** Allocate a fresh node id. */
    int newNodeId();

    /** Highest id handed out so far (firstHiddenId-1 if none). */
    int lastNodeId() const { return next_ - 1; }

    /** Resume allocation after @p lastNodeId (checkpoint restore). */
    void restore(int lastNodeId) { next_ = lastNodeId + 1; }

  private:
    int next_;
};

} // namespace e3

#endif // E3_NEAT_INNOVATION_HH
