/**
 * @file
 * Structural and parametric mutation of genomes
 * ("Mutate" in the paper's Table III).
 *
 * Mutation operators are free functions over Genome so they can be unit
 * tested and benchmarked in isolation. Feed-forward validity is
 * maintained by rejecting any connection that would create a cycle.
 */

#ifndef E3_NEAT_MUTATION_HH
#define E3_NEAT_MUTATION_HH

#include "neat/genome.hh"
#include "neat/innovation.hh"

namespace e3 {

/**
 * Full mutation pass: each structural operator fires with its configured
 * probability, then every node and connection gene attribute-mutates.
 */
void mutateGenome(Genome &genome, const NeatConfig &cfg, Rng &rng,
                  InnovationTracker &innovation);

/**
 * Split a random enabled connection with a new hidden node: the old
 * connection is disabled, from->new gets weight 1, new->to inherits the
 * old weight (Stanley & Miikkulainen's add-node). No-op if the genome
 * has no enabled connection.
 * @return id of the new node, or -1 if nothing was added
 */
int mutateAddNode(Genome &genome, const NeatConfig &cfg, Rng &rng,
                  InnovationTracker &innovation);

/**
 * Add a connection between a random (input|hidden|output) source and a
 * random (hidden|output) destination. Re-enables the gene if it already
 * exists; rejects cycles to stay feed-forward.
 * @return true if a connection was added or re-enabled
 */
bool mutateAddConnection(Genome &genome, const NeatConfig &cfg,
                         Rng &rng);

/**
 * Remove a random hidden node (id >= cfg.numOutputs) and all
 * connections touching it. Output nodes are part of the interface
 * contract and are never deleted.
 * @return id of the removed node, or -1 if there is no hidden node
 */
int mutateDeleteNode(Genome &genome, const NeatConfig &cfg, Rng &rng);

/**
 * Remove a random connection gene.
 * @return true if one was removed
 */
bool mutateDeleteConnection(Genome &genome, Rng &rng);

/**
 * Would adding (from, to) create a cycle among the genome's
 * connections? Self-loops count as cycles. Considers disabled genes
 * too, since they may be re-enabled later.
 */
bool createsCycle(const Genome &genome, ConnKey key);

} // namespace e3

#endif // E3_NEAT_MUTATION_HH
