/**
 * @file
 * NEAT hyperparameter configuration, mirroring neat-python's
 * [DefaultGenome]/[DefaultSpeciesSet]/[DefaultReproduction]/
 * [DefaultStagnation] sections. Defaults follow the paper's setup where
 * stated (population 200, mutation and crossover rate 0.5, start with no
 * hidden nodes) and neat-python's shipped defaults elsewhere.
 */

#ifndef E3_NEAT_CONFIG_HH
#define E3_NEAT_CONFIG_HH

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.hh"
#include "nn/activations.hh"
#include "nn/aggregations.hh"

namespace e3 {

/** Complete NEAT run configuration. */
struct NeatConfig
{
    // --- problem shape ---
    size_t numInputs = 1;
    size_t numOutputs = 1;
    size_t numHidden = 0;       ///< paper: start with no hidden nodes
    size_t populationSize = 200;
    double fitnessThreshold = 0.0; ///< stop once best fitness reaches

    // --- bias gene ---
    double biasInitMean = 0.0;
    double biasInitStdev = 1.0;
    double biasMin = -30.0;
    double biasMax = 30.0;
    double biasMutatePower = 0.5;  ///< stddev of perturbation
    double biasMutateRate = 0.7;   ///< chance of perturbation
    double biasReplaceRate = 0.1;  ///< chance of full re-draw

    // --- weight gene ---
    double weightInitMean = 0.0;
    double weightInitStdev = 1.0;
    double weightMin = -30.0;
    double weightMax = 30.0;
    double weightMutatePower = 0.5;
    double weightMutateRate = 0.8;
    double weightReplaceRate = 0.1;

    // --- enabled flag ---
    double enabledMutateRate = 0.01; ///< chance of toggling a connection

    // --- activation / aggregation genes ---
    Activation defaultActivation = Activation::Sigmoid;
    double activationMutateRate = 0.0;
    std::vector<Activation> activationOptions = {Activation::Sigmoid};
    Aggregation defaultAggregation = Aggregation::Sum;
    double aggregationMutateRate = 0.0;
    std::vector<Aggregation> aggregationOptions = {Aggregation::Sum};

    // --- structural mutation (paper: "mutation ... rate=0.5") ---
    double connAddProb = 0.5;
    double connDeleteProb = 0.2;
    double nodeAddProb = 0.2;
    double nodeDeleteProb = 0.1;

    /** Fraction of possible input->output links present initially. */
    double initialConnectionFraction = 1.0;

    /**
     * Restrict evolution to acyclic topologies (the paper's setting).
     * When false, add-connection may create cycles and individuals
     * must be evaluated with RecurrentNetwork.
     */
    bool feedForward = true;

    // --- compatibility / speciation ---
    double compatibilityDisjointCoefficient = 1.0;
    double compatibilityWeightCoefficient = 0.5;
    double compatibilityThreshold = 3.0;

    // --- reproduction (paper: "crossover rate=0.5") ---
    size_t elitism = 2;            ///< genomes copied verbatim per species
    double survivalThreshold = 0.2; ///< parent pool fraction per species
    size_t minSpeciesSize = 2;
    double crossoverRate = 0.5;    ///< else asexual (mutation-only)

    // --- stagnation ---
    size_t maxStagnation = 15;
    size_t speciesElitism = 2;     ///< best species immune to stagnation

    /**
     * Build a config shaped for an environment.
     * @param numInputs observation dimension
     * @param numOutputs network output nodes
     * @param fitnessThreshold required fitness (stop condition)
     */
    static NeatConfig forTask(size_t numInputs, size_t numOutputs,
                              double fitnessThreshold);

    /** Error if any field is out of its valid range. */
    Status validate() const;
};

} // namespace e3

#endif // E3_NEAT_CONFIG_HH
