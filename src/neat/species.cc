#include "neat/species.hh"

#include <algorithm>
#include <limits>

#include "common/logging.hh"
#include "neat/distance_cache.hh"

namespace e3 {

std::optional<double>
Species::bestHistoricalFitness() const
{
    if (fitnessHistory.empty())
        return std::nullopt;
    return *std::max_element(fitnessHistory.begin(),
                             fitnessHistory.end());
}

void
SpeciesSet::speciate(const std::map<int, Genome> &population,
                     const NeatConfig &cfg, int generation)
{
    e3_assert(!population.empty(), "cannot speciate an empty population");

    std::vector<int> unspeciated;
    for (const auto &[key, genome] : population)
        unspeciated.push_back(key);

    // Distances are queried repeatedly for the same pairs across the
    // two phases; memoize them (genome keys are globally unique).
    DistanceCache distances(cfg);

    // Phase 1: each existing species adopts the closest unspeciated
    // genome to its previous representative.
    std::map<int, int> newRepresentative; // species id -> genome key
    for (auto &[sid, sp] : species_) {
        double bestDist = std::numeric_limits<double>::infinity();
        int bestKey = -1;
        for (int key : unspeciated) {
            const double d = distances.distance(sp.representative,
                                                population.at(key));
            if (d < bestDist) {
                bestDist = d;
                bestKey = key;
            }
        }
        if (bestKey < 0)
            continue; // population exhausted by earlier species
        newRepresentative[sid] = bestKey;
        unspeciated.erase(std::find(unspeciated.begin(),
                                    unspeciated.end(), bestKey));
    }

    // Reset membership; drop species that found no representative.
    for (auto it = species_.begin(); it != species_.end();) {
        auto found = newRepresentative.find(it->first);
        if (found == newRepresentative.end()) {
            it = species_.erase(it);
        } else {
            it->second.representative = population.at(found->second);
            it->second.members = {found->second};
            ++it;
        }
    }

    // Phase 2: assign every remaining genome to the closest compatible
    // species, founding new species as needed.
    for (int key : unspeciated) {
        const Genome &genome = population.at(key);
        double bestDist = std::numeric_limits<double>::infinity();
        Species *best = nullptr;
        for (auto &[sid, sp] : species_) {
            const double d =
                distances.distance(sp.representative, genome);
            if (d < cfg.compatibilityThreshold && d < bestDist) {
                bestDist = d;
                best = &sp;
            }
        }
        if (best) {
            best->members.push_back(key);
        } else {
            const int sid = nextId_++;
            species_.emplace(sid, Species(sid, generation, genome));
            species_.at(sid).members = {key};
        }
    }
}

void
SpeciesSet::remove(int speciesId)
{
    species_.erase(speciesId);
}

int
SpeciesSet::speciesOf(int genomeKey) const
{
    for (const auto &[sid, sp] : species_) {
        if (std::find(sp.members.begin(), sp.members.end(), genomeKey) !=
            sp.members.end())
            return sid;
    }
    return -1;
}

} // namespace e3
