#include "neat/reproduction.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/logging.hh"
#include "neat/crossover.hh"
#include "neat/mutation.hh"

namespace e3 {

std::map<int, Genome>
Reproduction::createNew(const NeatConfig &cfg, size_t n)
{
    std::map<int, Genome> population;
    for (size_t i = 0; i < n; ++i) {
        const int key = nextGenomeKey_++;
        Genome g(key);
        g.configureNew(cfg, rng_);
        population.emplace(key, std::move(g));
    }
    return population;
}

SpeciesEvalSummary
Reproduction::summarizeSpecies(
    const std::vector<int> &members,
    const std::function<double(int)> &fitnessOf)
{
    e3_assert(!members.empty(), "cannot summarize an empty species");
    SpeciesEvalSummary summary;
    double sum = 0.0;
    summary.minMemberFitness = std::numeric_limits<double>::infinity();
    summary.maxMemberFitness = -std::numeric_limits<double>::infinity();
    for (int key : members) {
        const double f = fitnessOf(key);
        sum += f;
        summary.minMemberFitness = std::min(summary.minMemberFitness, f);
        summary.maxMemberFitness = std::max(summary.maxMemberFitness, f);
    }
    summary.meanFitness = sum / static_cast<double>(members.size());
    summary.rankedMembers = members;
    std::sort(summary.rankedMembers.begin(),
              summary.rankedMembers.end(), [&](int a, int b) {
                  return fitnessOf(a) > fitnessOf(b);
              });
    return summary;
}

std::map<int, Genome>
Reproduction::reproduce(const NeatConfig &cfg, SpeciesSet &speciesSet,
                        const std::map<int, Genome> &population,
                        int generation, InnovationTracker &innovation,
                        const std::map<int, SpeciesEvalSummary> *summaries)
{
    for (const auto &[key, genome] : population) {
        e3_assert(genome.evaluated(),
                  "genome ", key, " reproduced before evaluation");
    }

    // Summaries may arrive precomputed (async evolve/evaluate overlap)
    // or be computed here — the same function either way.
    std::map<int, SpeciesEvalSummary> local;
    if (!summaries) {
        for (const auto &[sid, sp] : speciesSet.species()) {
            local.emplace(sid, summarizeSpecies(
                                   sp.members, [&](int key) {
                                       return population.at(key).fitness;
                                   }));
        }
        summaries = &local;
    }
    for (const auto &[sid, sp] : speciesSet.species()) {
        e3_assert(summaries->count(sid),
                  "missing evaluation summary for species ", sid);
    }

    // --- Stagnation (neat-python DefaultStagnation) ---
    struct SpeciesInfo
    {
        int id;
        double fitness;     ///< species fitness = member mean
        double bestEver;
    };
    std::vector<SpeciesInfo> infos;
    for (auto &[sid, sp] : speciesSet.species()) {
        e3_assert(!sp.members.empty(), "species ", sid, " is empty");
        const double mean = summaries->at(sid).meanFitness;

        const auto prevBest = sp.bestHistoricalFitness();
        if (!prevBest || mean > *prevBest)
            sp.lastImproved = generation;
        sp.fitnessHistory.push_back(mean);
        infos.push_back({sid, mean, sp.bestHistoricalFitness().value()});
    }

    // Cull stagnant species, sparing the speciesElitism fittest.
    std::sort(infos.begin(), infos.end(),
              [](const SpeciesInfo &a, const SpeciesInfo &b) {
                  return a.bestEver > b.bestEver;
              });
    for (size_t rank = 0; rank < infos.size(); ++rank) {
        if (rank < cfg.speciesElitism)
            continue;
        const Species &sp = speciesSet.species().at(infos[rank].id);
        const int idle = generation - sp.lastImproved;
        if (idle > static_cast<int>(cfg.maxStagnation))
            speciesSet.remove(infos[rank].id);
    }

    if (speciesSet.species().empty()) {
        warn("all species went extinct; restarting from scratch");
        return createNew(cfg, cfg.populationSize);
    }

    // --- Adjusted fitness (fitness sharing across species) ---
    double minFit = std::numeric_limits<double>::infinity();
    double maxFit = -std::numeric_limits<double>::infinity();
    for (const auto &[sid, sp] : speciesSet.species()) {
        const SpeciesEvalSummary &summary = summaries->at(sid);
        minFit = std::min(minFit, summary.minMemberFitness);
        maxFit = std::max(maxFit, summary.maxMemberFitness);
    }
    const double span = std::max(maxFit - minFit, 1.0);

    double adjustedSum = 0.0;
    for (auto &[sid, sp] : speciesSet.species()) {
        sp.adjustedFitness =
            (summaries->at(sid).meanFitness - minFit) / span;
        adjustedSum += sp.adjustedFitness;
    }

    // --- Offspring apportionment ---
    std::vector<int> sids;
    for (const auto &[sid, sp] : speciesSet.species())
        sids.push_back(sid);

    const size_t minSize = std::max<size_t>(cfg.minSpeciesSize,
                                            cfg.elitism);
    std::map<int, size_t> spawn;
    size_t total = 0;
    for (int sid : sids) {
        const Species &sp = speciesSet.species().at(sid);
        double share =
            adjustedSum > 0.0
                ? sp.adjustedFitness / adjustedSum
                : 1.0 / static_cast<double>(sids.size());
        size_t count = static_cast<size_t>(std::lround(
            share * static_cast<double>(cfg.populationSize)));
        count = std::max(count, minSize);
        spawn[sid] = count;
        total += count;
    }
    // Trim/pad to the exact population size: first shrink the largest
    // allocations down to the species floor, then — if many tiny
    // species still overflow the budget — starve the least-fit species
    // entirely. Without the hard cap the population would compound
    // across generations.
    while (total > cfg.populationSize) {
        auto it = std::max_element(
            spawn.begin(), spawn.end(),
            [](const auto &a, const auto &b) {
                return a.second < b.second;
            });
        if (it->second > minSize) {
            --it->second;
            --total;
            continue;
        }
        // Everyone is at the floor: drop offspring from the least-fit
        // species that still has any.
        auto worst = spawn.end();
        for (auto sit = spawn.begin(); sit != spawn.end(); ++sit) {
            if (sit->second == 0)
                continue;
            if (worst == spawn.end() ||
                speciesSet.species().at(sit->first).adjustedFitness <
                    speciesSet.species().at(worst->first).adjustedFitness)
                worst = sit;
        }
        e3_assert(worst != spawn.end(), "no spawn left to trim");
        --worst->second;
        --total;
    }
    while (total < cfg.populationSize) {
        auto it = std::max_element(
            spawn.begin(), spawn.end(),
            [&](const auto &a, const auto &b) {
                return speciesSet.species().at(a.first).adjustedFitness <
                       speciesSet.species().at(b.first).adjustedFitness;
            });
        ++it->second;
        ++total;
    }

    // --- Per-species reproduction ---
    std::map<int, Genome> next;
    for (int sid : sids) {
        size_t toSpawn = spawn.at(sid);

        // Members best-first (precomputed by summarizeSpecies).
        std::vector<int> ranked = summaries->at(sid).rankedMembers;

        // Elites survive verbatim.
        for (size_t e = 0; e < cfg.elitism && e < ranked.size() &&
                           toSpawn > 0;
             ++e) {
            const Genome &elite = population.at(ranked[e]);
            Genome copy = elite; // keeps fitness; re-evaluated anyway
            next.emplace(copy.key(), std::move(copy));
            --toSpawn;
        }

        // Parent pool: the top survivalThreshold fraction (>= 1).
        const size_t cutoff = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(
                   cfg.survivalThreshold *
                   static_cast<double>(ranked.size()))));
        ranked.resize(std::min(cutoff, ranked.size()));

        while (toSpawn > 0) {
            const int p1 = ranked[rng_.uniformInt(ranked.size())];
            const int p2 = ranked[rng_.uniformInt(ranked.size())];
            const int childKey = nextGenomeKey_++;

            Genome child(childKey);
            if (p1 != p2 && rng_.chance(cfg.crossoverRate)) {
                child = crossoverGenomes(childKey, population.at(p1),
                                         population.at(p2), rng_);
            } else {
                // Asexual: clone the parent's genes under a fresh key.
                child.nodes = population.at(p1).nodes;
                child.conns = population.at(p1).conns;
            }
            mutateGenome(child, cfg, rng_, innovation);
            child.fitness = std::numeric_limits<double>::quiet_NaN();
            next.emplace(childKey, std::move(child));
            --toSpawn;
        }
    }
    return next;
}

} // namespace e3
