#include "neat/reporter.hh"

#include <algorithm>
#include <ostream>
#include <sstream>

#include "common/csv.hh"

namespace e3 {

void
StdOutReporter::onEvaluated(const Population &population)
{
    const GenerationStats stats = population.stats();
    std::ostringstream oss;
    oss.precision(4);
    oss << "gen " << stats.generation << ": best " << stats.bestFitness
        << ", mean " << stats.meanFitness << ", species "
        << stats.numSpecies << ", avg nodes "
        << stats.nodeCounts.mean() << ", avg conns "
        << stats.connCounts.mean();
    out_ << oss.str() << '\n';
}

void
StatisticsReporter::onEvaluated(const Population &population)
{
    history_.push_back(population.stats());
}

double
StatisticsReporter::bestFitnessEver() const
{
    double best = -std::numeric_limits<double>::infinity();
    for (const auto &stats : history_)
        best = std::max(best, stats.bestFitness);
    return best;
}

std::string
StatisticsReporter::csv() const
{
    CsvWriter csv;
    csv.header({"generation", "best", "mean", "species", "avg_nodes",
                "avg_conns", "avg_density"});
    for (const auto &s : history_) {
        csv.row({std::to_string(s.generation),
                 std::to_string(s.bestFitness),
                 std::to_string(s.meanFitness),
                 std::to_string(s.numSpecies),
                 std::to_string(s.nodeCounts.mean()),
                 std::to_string(s.connCounts.mean()),
                 std::to_string(s.densities.mean())});
    }
    return csv.str();
}

} // namespace e3
