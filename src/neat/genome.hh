/**
 * @file
 * A NEAT genome: the genetic encoding of one individual network
 * (paper Table II). Node genes cover output and hidden nodes (inputs
 * are implicit sources with ids -1..-n); connection genes are keyed by
 * their endpoints. The genome exposes decoding to a NetworkDef
 * ("CreateNet") and the compatibility distance used for speciation.
 */

#ifndef E3_NEAT_GENOME_HH
#define E3_NEAT_GENOME_HH

#include <limits>
#include <map>
#include <utility>

#include "neat/genes.hh"
#include "nn/network.hh"

namespace e3 {

/** Genetic encoding of one individual. */
class Genome
{
  public:
    explicit Genome(int key) : key_(key) {}

    int key() const { return key_; }

    /** Evaluated fitness; NaN until the individual has been evaluated. */
    double fitness = std::numeric_limits<double>::quiet_NaN();

    /** Node genes by id (outputs 0..o-1 plus hidden). */
    std::map<int, NodeGene> nodes;

    /** Connection genes by (from, to). */
    std::map<ConnKey, ConnGene> conns;

    /**
     * Initialize a fresh genome: output node genes, cfg.numHidden hidden
     * genes, and direct input->output connections (each present with
     * probability cfg.initialConnectionFraction; with hidden nodes the
     * initial links run input->hidden->output instead).
     */
    void configureNew(const NeatConfig &cfg, Rng &rng);

    /** Decode to a network definition (enabled connections only). */
    NetworkDef toNetworkDef(const NeatConfig &cfg) const;

    /**
     * Compatibility distance to another genome
     * (neat-python DefaultGenome.distance).
     */
    double distance(const Genome &other, const NeatConfig &cfg) const;

    /** (node gene count, enabled connection gene count). */
    std::pair<size_t, size_t> size() const;

    /** True once fitness has been assigned. */
    bool evaluated() const;

  private:
    int key_;
};

} // namespace e3

#endif // E3_NEAT_GENOME_HH
