/**
 * @file
 * Observation hooks for evolution runs, in the spirit of neat-python's
 * reporter set: attach reporters to a Population and they are invoked
 * as the run progresses. Reporters are non-owning observers; the
 * caller keeps them alive for the Population's lifetime.
 */

#ifndef E3_NEAT_REPORTER_HH
#define E3_NEAT_REPORTER_HH

#include <iosfwd>
#include <vector>

#include "neat/population.hh"

namespace e3 {

/** Callback interface for evolution progress. */
class Reporter
{
  public:
    virtual ~Reporter() = default;

    /** After evaluateAll() assigned every fitness. */
    virtual void onEvaluated(const Population &population)
    {
        (void)population;
    }

    /** After advance() produced and speciated the next generation. */
    virtual void onAdvanced(const Population &population)
    {
        (void)population;
    }
};

/** Prints a one-line summary per generation (neat-python StdOut). */
class StdOutReporter : public Reporter
{
  public:
    /** @param out destination stream (e.g. std::cout) */
    explicit StdOutReporter(std::ostream &out) : out_(out) {}

    void onEvaluated(const Population &population) override;

  private:
    std::ostream &out_;
};

/** Accumulates per-generation statistics for later export. */
class StatisticsReporter : public Reporter
{
  public:
    void onEvaluated(const Population &population) override;

    const std::vector<GenerationStats> &history() const
    {
        return history_;
    }

    /** Best fitness seen across all recorded generations. */
    double bestFitnessEver() const;

    /** CSV with one row per generation. */
    std::string csv() const;

  private:
    std::vector<GenerationStats> history_;
};

} // namespace e3

#endif // E3_NEAT_REPORTER_HH
