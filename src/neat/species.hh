/**
 * @file
 * Speciation ("Speciate" in the paper's Table III): individuals are
 * grouped by topological similarity (compatibility distance) so young
 * structural innovations compete within their own group instead of
 * being eliminated by mature genomes.
 */

#ifndef E3_NEAT_SPECIES_HH
#define E3_NEAT_SPECIES_HH

#include <map>
#include <optional>
#include <vector>

#include "neat/genome.hh"

namespace e3 {

/** One species: a representative genome plus its member keys. */
struct Species
{
    int id = 0;
    int created = 0;        ///< generation of first appearance
    int lastImproved = 0;   ///< generation the best fitness last rose
    Genome representative;  ///< distance anchor for membership tests
    std::vector<int> members; ///< genome keys in the current generation
    std::vector<double> fitnessHistory; ///< per-generation species fitness
    double adjustedFitness = 0.0; ///< set during reproduction

    Species(int id, int generation, Genome rep)
        : id(id), created(generation), lastImproved(generation),
          representative(std::move(rep))
    {
    }

    /** Highest species fitness seen so far (empty history -> nullopt). */
    std::optional<double> bestHistoricalFitness() const;
};

/** The set of species, re-partitioned every generation. */
class SpeciesSet
{
  public:
    /**
     * Partition the population into species (neat-python
     * DefaultSpeciesSet.speciate): each surviving species first adopts
     * the unspeciated genome closest to its old representative as the
     * new representative, then every remaining genome joins the first
     * species whose representative is within the compatibility
     * threshold, or founds a new species.
     */
    void speciate(const std::map<int, Genome> &population,
                  const NeatConfig &cfg, int generation);

    std::map<int, Species> &species() { return species_; }
    const std::map<int, Species> &species() const { return species_; }

    /** Remove a species (stagnation). */
    void remove(int speciesId);

    /** Species id that contains the genome key; -1 if none. */
    int speciesOf(int genomeKey) const;

    size_t count() const { return species_.size(); }

    /** Next id a new species would receive (checkpoint state). */
    int nextId() const { return nextId_; }

    /** Replace the whole partition (checkpoint restore). */
    void
    restore(std::map<int, Species> species, int nextId)
    {
        species_ = std::move(species);
        nextId_ = nextId;
    }

  private:
    int nextId_ = 1;
    std::map<int, Species> species_;
};

} // namespace e3

#endif // E3_NEAT_SPECIES_HH
