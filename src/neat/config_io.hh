/**
 * @file
 * NeatConfig <-> INI file mapping, in the naming style of neat-python's
 * config sections:
 *
 *   [NEAT]
 *   pop_size = 200
 *   fitness_threshold = 475
 *
 *   [DefaultGenome]
 *   num_inputs = 4
 *   num_outputs = 1
 *   conn_add_prob = 0.5
 *   ...
 *
 * Unknown keys are rejected (typos in experiment configs should fail
 * loudly, not silently fall back to defaults). All load paths report
 * bad input as an error value — unknown keys, unparsable numbers,
 * values a NeatConfig::validate() pass rejects — so callers choose
 * whether to die (the CLI) or degrade.
 */

#ifndef E3_NEAT_CONFIG_IO_HH
#define E3_NEAT_CONFIG_IO_HH

#include "common/ini.hh"
#include "common/result.hh"
#include "neat/config.hh"

namespace e3 {

/**
 * Build a NeatConfig from an INI document, starting from `base` (so
 * callers can layer a file over task defaults). Error on unknown
 * keys or invalid values.
 */
Result<NeatConfig>
neatConfigFromIni(const IniFile &ini,
                  const NeatConfig &base = NeatConfig{});

/** Load from a file path; error if unreadable or invalid. */
Result<NeatConfig> loadNeatConfig(const std::string &path,
                                  const NeatConfig &base = NeatConfig{});

/** Serialize a config to INI text (round-trips with the loader). */
std::string neatConfigToIni(const NeatConfig &cfg);

} // namespace e3

#endif // E3_NEAT_CONFIG_IO_HH
