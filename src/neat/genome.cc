#include "neat/genome.hh"

#include <cmath>
#include <limits>

#include "common/logging.hh"

namespace e3 {

void
Genome::configureNew(const NeatConfig &cfg, Rng &rng)
{
    fitness = std::numeric_limits<double>::quiet_NaN();
    nodes.clear();
    conns.clear();

    for (size_t o = 0; o < cfg.numOutputs; ++o) {
        const int id = static_cast<int>(o);
        nodes.emplace(id, NodeGene::create(id, cfg, rng));
    }
    std::vector<int> hiddenIds;
    for (size_t h = 0; h < cfg.numHidden; ++h) {
        const int id = static_cast<int>(cfg.numOutputs + h);
        nodes.emplace(id, NodeGene::create(id, cfg, rng));
        hiddenIds.push_back(id);
    }

    auto maybeConnect = [&](int from, int to) {
        if (rng.chance(cfg.initialConnectionFraction)) {
            const ConnKey key{from, to};
            conns.emplace(key, ConnGene::create(key, cfg, rng));
        }
    };

    for (size_t i = 0; i < cfg.numInputs; ++i) {
        const int in = -1 - static_cast<int>(i);
        if (hiddenIds.empty()) {
            for (size_t o = 0; o < cfg.numOutputs; ++o)
                maybeConnect(in, static_cast<int>(o));
        } else {
            for (int h : hiddenIds)
                maybeConnect(in, h);
        }
    }
    for (int h : hiddenIds) {
        for (size_t o = 0; o < cfg.numOutputs; ++o)
            maybeConnect(h, static_cast<int>(o));
    }
}

NetworkDef
Genome::toNetworkDef(const NeatConfig &cfg) const
{
    NetworkDef def;
    for (size_t i = 0; i < cfg.numInputs; ++i)
        def.inputIds.push_back(-1 - static_cast<int>(i));
    for (size_t o = 0; o < cfg.numOutputs; ++o)
        def.outputIds.push_back(static_cast<int>(o));

    for (const auto &[id, gene] : nodes)
        def.nodes.push_back({id, gene.bias, gene.act, gene.agg});
    for (const auto &[key, gene] : conns) {
        if (gene.enabled)
            def.conns.push_back({key.first, key.second, gene.weight});
    }
    return def;
}

double
Genome::distance(const Genome &other, const NeatConfig &cfg) const
{
    double nodeDistance = 0.0;
    if (!nodes.empty() || !other.nodes.empty()) {
        size_t disjoint = 0;
        double d = 0.0;
        for (const auto &[id, gene] : other.nodes) {
            if (!nodes.count(id))
                ++disjoint;
        }
        for (const auto &[id, gene] : nodes) {
            auto it = other.nodes.find(id);
            if (it == other.nodes.end()) {
                ++disjoint;
            } else {
                d += gene.distance(it->second) *
                     cfg.compatibilityWeightCoefficient;
            }
        }
        const double maxNodes = static_cast<double>(
            std::max(nodes.size(), other.nodes.size()));
        nodeDistance =
            (d + cfg.compatibilityDisjointCoefficient *
                     static_cast<double>(disjoint)) /
            maxNodes;
    }

    double connDistance = 0.0;
    if (!conns.empty() || !other.conns.empty()) {
        size_t disjoint = 0;
        double d = 0.0;
        for (const auto &[key, gene] : other.conns) {
            if (!conns.count(key))
                ++disjoint;
        }
        for (const auto &[key, gene] : conns) {
            auto it = other.conns.find(key);
            if (it == other.conns.end()) {
                ++disjoint;
            } else {
                d += gene.distance(it->second) *
                     cfg.compatibilityWeightCoefficient;
            }
        }
        const double maxConns = static_cast<double>(
            std::max(conns.size(), other.conns.size()));
        connDistance =
            (d + cfg.compatibilityDisjointCoefficient *
                     static_cast<double>(disjoint)) /
            maxConns;
    }

    return nodeDistance + connDistance;
}

std::pair<size_t, size_t>
Genome::size() const
{
    size_t enabled = 0;
    for (const auto &[key, gene] : conns)
        enabled += gene.enabled ? 1 : 0;
    return {nodes.size(), enabled};
}

bool
Genome::evaluated() const
{
    return !std::isnan(fitness);
}

} // namespace e3
