#include "neat/population.hh"

#include "neat/reporter.hh"

#include "common/logging.hh"
#include "nn/net_stats.hh"
#include "obs/trace.hh"

namespace e3 {

Population::Population(const NeatConfig &cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed),
      innovation_(static_cast<int>(cfg.numOutputs + cfg.numHidden)),
      reproduction_(rng_.split())
{
    assertOk(cfg_.validate());
    genomes_ = reproduction_.createNew(cfg_, cfg_.populationSize);
    species_.speciate(genomes_, cfg_, generation_);
}

Population::Population(const NeatConfig &cfg,
                       const PopulationState &state)
    : cfg_(cfg), rng_(0),
      innovation_(static_cast<int>(cfg.numOutputs + cfg.numHidden)),
      reproduction_(Rng(0))
{
    assertOk(cfg_.validate());
    rng_.setState(state.rng);
    innovation_.restore(state.lastNodeId);
    reproduction_.restore(state.reproductionRng, state.genomesCreated);
    species_.restore(state.species, state.nextSpeciesId);
    genomes_ = state.genomes;
    generation_ = state.generation;
}

PopulationState
Population::saveState() const
{
    PopulationState state;
    state.generation = generation_;
    state.rng = rng_.state();
    state.reproductionRng = reproduction_.rngState();
    state.genomesCreated = reproduction_.genomesCreated();
    state.lastNodeId = innovation_.lastNodeId();
    state.nextSpeciesId = species_.nextId();
    state.genomes = genomes_;
    state.species = species_.species();
    return state;
}

void
Population::evaluateAll(
    const std::function<double(const Genome &)> &fitnessFn)
{
    for (auto &[key, genome] : genomes_)
        genome.fitness = fitnessFn(genome);
    for (Reporter *reporter : reporters_)
        reporter->onEvaluated(*this);
}

const Genome &
Population::best() const
{
    const Genome *best = nullptr;
    for (const auto &[key, genome] : genomes_) {
        e3_assert(genome.evaluated(),
                  "best() before genome ", key, " was evaluated");
        if (!best || genome.fitness > best->fitness)
            best = &genome;
    }
    e3_assert(best, "empty population");
    return *best;
}

bool
Population::solved() const
{
    return best().fitness >= cfg_.fitnessThreshold;
}

void
Population::advance(const std::map<int, SpeciesEvalSummary> *summaries)
{
    {
        obs::TraceSpan span("reproduce");
        genomes_ = reproduction_.reproduce(cfg_, species_, genomes_,
                                           generation_, innovation_,
                                           summaries);
    }
    ++generation_;
    {
        obs::TraceSpan span("speciate");
        species_.speciate(genomes_, cfg_, generation_);
    }
    for (Reporter *reporter : reporters_)
        reporter->onAdvanced(*this);
}

void
Population::addReporter(Reporter *reporter)
{
    e3_assert(reporter, "null reporter");
    reporters_.push_back(reporter);
}

GenerationStats
Population::stats() const
{
    GenerationStats gs;
    gs.generation = generation_;
    gs.numSpecies = species_.count();

    double sum = 0.0;
    double best = -1e300;
    for (const auto &[key, genome] : genomes_) {
        if (genome.evaluated()) {
            sum += genome.fitness;
            best = std::max(best, genome.fitness);
        }
        const NetStats ns = computeNetStats(genome.toNetworkDef(cfg_));
        gs.nodeCounts.add(static_cast<double>(ns.activeNodes));
        gs.connCounts.add(static_cast<double>(ns.activeConnections));
        gs.densities.add(ns.density);
    }
    gs.bestFitness = best;
    gs.meanFitness = sum / static_cast<double>(genomes_.size());
    return gs;
}

} // namespace e3
