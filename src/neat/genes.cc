#include "neat/genes.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

namespace {

/** Clamped gaussian perturbation / replacement shared by bias & weight. */
double
mutateScalar(double value, double mutateRate, double replaceRate,
             double power, double initMean, double initStdev, double lo,
             double hi, Rng &rng)
{
    const double r = rng.uniform();
    if (r < mutateRate) {
        value += rng.normal(0.0, power);
    } else if (r < mutateRate + replaceRate) {
        value = rng.normal(initMean, initStdev);
    }
    return std::clamp(value, lo, hi);
}

} // namespace

NodeGene
NodeGene::create(int id, const NeatConfig &cfg, Rng &rng)
{
    NodeGene g;
    g.id = id;
    g.bias = std::clamp(rng.normal(cfg.biasInitMean, cfg.biasInitStdev),
                        cfg.biasMin, cfg.biasMax);
    g.act = cfg.defaultActivation;
    g.agg = cfg.defaultAggregation;
    return g;
}

void
NodeGene::mutate(const NeatConfig &cfg, Rng &rng)
{
    bias = mutateScalar(bias, cfg.biasMutateRate, cfg.biasReplaceRate,
                        cfg.biasMutatePower, cfg.biasInitMean,
                        cfg.biasInitStdev, cfg.biasMin, cfg.biasMax,
                        rng);
    if (rng.chance(cfg.activationMutateRate)) {
        act = cfg.activationOptions[rng.uniformInt(
            cfg.activationOptions.size())];
    }
    if (rng.chance(cfg.aggregationMutateRate)) {
        agg = cfg.aggregationOptions[rng.uniformInt(
            cfg.aggregationOptions.size())];
    }
}

NodeGene
NodeGene::crossover(const NodeGene &a, const NodeGene &b, Rng &rng)
{
    e3_assert(a.id == b.id, "crossover of non-homologous node genes");
    NodeGene g;
    g.id = a.id;
    g.bias = rng.chance(0.5) ? a.bias : b.bias;
    g.act = rng.chance(0.5) ? a.act : b.act;
    g.agg = rng.chance(0.5) ? a.agg : b.agg;
    return g;
}

double
NodeGene::distance(const NodeGene &other) const
{
    double d = std::fabs(bias - other.bias);
    if (act != other.act)
        d += 1.0;
    if (agg != other.agg)
        d += 1.0;
    return d;
}

ConnGene
ConnGene::create(ConnKey k, const NeatConfig &cfg, Rng &rng)
{
    ConnGene g;
    g.key = k;
    g.weight =
        std::clamp(rng.normal(cfg.weightInitMean, cfg.weightInitStdev),
                   cfg.weightMin, cfg.weightMax);
    g.enabled = true;
    return g;
}

void
ConnGene::mutate(const NeatConfig &cfg, Rng &rng)
{
    weight = mutateScalar(weight, cfg.weightMutateRate,
                          cfg.weightReplaceRate, cfg.weightMutatePower,
                          cfg.weightInitMean, cfg.weightInitStdev,
                          cfg.weightMin, cfg.weightMax, rng);
    if (rng.chance(cfg.enabledMutateRate))
        enabled = !enabled;
}

ConnGene
ConnGene::crossover(const ConnGene &a, const ConnGene &b, Rng &rng)
{
    e3_assert(a.key == b.key,
              "crossover of non-homologous connection genes");
    ConnGene g;
    g.key = a.key;
    g.weight = rng.chance(0.5) ? a.weight : b.weight;
    g.enabled = rng.chance(0.5) ? a.enabled : b.enabled;
    return g;
}

double
ConnGene::distance(const ConnGene &other) const
{
    double d = std::fabs(weight - other.weight);
    if (enabled != other.enabled)
        d += 1.0;
    return d;
}

} // namespace e3
