/**
 * @file
 * Reproduction ("Evolve" in the paper's Table III): stagnation culling,
 * fitness sharing via species-level adjusted fitness, elitism, parent
 * selection under a survival threshold, and offspring creation through
 * crossover and mutation — following neat-python's DefaultReproduction
 * and DefaultStagnation.
 */

#ifndef E3_NEAT_REPRODUCTION_HH
#define E3_NEAT_REPRODUCTION_HH

#include <map>

#include "neat/innovation.hh"
#include "neat/species.hh"

namespace e3 {

/** Creates generation zero and every subsequent generation. */
class Reproduction
{
  public:
    explicit Reproduction(Rng rng) : rng_(rng) {}

    /** Fresh random population of n genomes. */
    std::map<int, Genome> createNew(const NeatConfig &cfg, size_t n);

    /**
     * Produce the next generation from the current speciated, evaluated
     * population.
     *
     * Steps: (1) cull species stagnant for cfg.maxStagnation
     * generations, sparing the cfg.speciesElitism best; (2) compute each
     * surviving species' adjusted fitness (member-mean, min-max
     * normalized across species); (3) apportion offspring proportional
     * to adjusted fitness with a cfg.minSpeciesSize floor; (4) per
     * species, copy cfg.elitism best members verbatim, truncate parents
     * to the cfg.survivalThreshold fraction, and fill the remainder with
     * mutated crossover/clone children.
     *
     * @param population current generation (all genomes evaluated)
     * @return the next generation's genomes
     */
    std::map<int, Genome> reproduce(const NeatConfig &cfg,
                                    SpeciesSet &speciesSet,
                                    const std::map<int, Genome> &population,
                                    int generation,
                                    InnovationTracker &innovation);

    /** Number of genome keys handed out so far. */
    int genomesCreated() const { return nextGenomeKey_; }

  private:
    int nextGenomeKey_ = 0;
    Rng rng_;
};

} // namespace e3

#endif // E3_NEAT_REPRODUCTION_HH
