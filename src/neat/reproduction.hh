/**
 * @file
 * Reproduction ("Evolve" in the paper's Table III): stagnation culling,
 * fitness sharing via species-level adjusted fitness, elitism, parent
 * selection under a survival threshold, and offspring creation through
 * crossover and mutation — following neat-python's DefaultReproduction
 * and DefaultStagnation.
 */

#ifndef E3_NEAT_REPRODUCTION_HH
#define E3_NEAT_REPRODUCTION_HH

#include <map>

#include <functional>

#include "neat/innovation.hh"
#include "neat/species.hh"

namespace e3 {

/**
 * The fitness-dependent but RNG-free prefix of "evolve" for one
 * species: everything reproduce() needs that can be computed the
 * moment the species' own members finish evaluating — before the rest
 * of the population is done. The parallel runtime computes these on
 * workers while the evaluate tail is still running (the async
 * evolve/evaluate overlap); reproduce() computes identical summaries
 * inline when none are supplied, so both paths are bit-identical.
 */
struct SpeciesEvalSummary
{
    double meanFitness = 0.0;      ///< species fitness (member mean)
    double minMemberFitness = 0.0; ///< lowest member fitness
    double maxMemberFitness = 0.0; ///< highest member fitness
    std::vector<int> rankedMembers; ///< member keys, best-first
};

/** Creates generation zero and every subsequent generation. */
class Reproduction
{
  public:
    explicit Reproduction(Rng rng) : rng_(rng) {}

    /**
     * Summarize one species' evaluation results. Pure: depends only on
     * the member list and their fitnesses, so it may run on any thread
     * at any time after those members are final.
     */
    static SpeciesEvalSummary
    summarizeSpecies(const std::vector<int> &members,
                     const std::function<double(int)> &fitnessOf);

    /** Fresh random population of n genomes. */
    std::map<int, Genome> createNew(const NeatConfig &cfg, size_t n);

    /**
     * Produce the next generation from the current speciated, evaluated
     * population.
     *
     * Steps: (1) cull species stagnant for cfg.maxStagnation
     * generations, sparing the cfg.speciesElitism best; (2) compute each
     * surviving species' adjusted fitness (member-mean, min-max
     * normalized across species); (3) apportion offspring proportional
     * to adjusted fitness with a cfg.minSpeciesSize floor; (4) per
     * species, copy cfg.elitism best members verbatim, truncate parents
     * to the cfg.survivalThreshold fraction, and fill the remainder with
     * mutated crossover/clone children.
     *
     * @param population current generation (all genomes evaluated)
     * @param summaries optional precomputed per-species evaluation
     *        summaries keyed by species id (one per current species);
     *        when null they are computed inline via summarizeSpecies()
     *        — the result is bit-identical either way
     * @return the next generation's genomes
     */
    std::map<int, Genome>
    reproduce(const NeatConfig &cfg, SpeciesSet &speciesSet,
              const std::map<int, Genome> &population, int generation,
              InnovationTracker &innovation,
              const std::map<int, SpeciesEvalSummary> *summaries =
                  nullptr);

    /** Number of genome keys handed out so far. */
    int genomesCreated() const { return nextGenomeKey_; }

    /** Snapshot the reproduction RNG stream (checkpoint state). */
    RngState rngState() const { return rng_.state(); }

    /** Resume the RNG stream and key allocator (checkpoint restore). */
    void
    restore(const RngState &rng, int genomesCreated)
    {
        rng_.setState(rng);
        nextGenomeKey_ = genomesCreated;
    }

  private:
    int nextGenomeKey_ = 0;
    Rng rng_;
};

} // namespace e3

#endif // E3_NEAT_REPRODUCTION_HH
