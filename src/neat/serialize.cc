#include "neat/serialize.hh"

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

namespace e3 {

namespace {

/** strtod with full-token consumption; handles "nan"/"inf". */
bool
parseDouble(const std::string &token, double &out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
}

/**
 * Structural audit of a parsed genome (GenomeLoadMode::Validated).
 * Defects that the line parser cannot see — endpoints referencing
 * absent node genes, connections targeting inputs, non-finite
 * parameters — reject the load with the matching verifier rule ID.
 */
Status
auditLoadedGenome(const Genome &genome)
{
    for (const auto &[id, node] : genome.nodes) {
        if (!std::isfinite(node.bias))
            return Status::error("[E3V007] non-finite bias on node ",
                                 id);
    }
    for (const auto &[key, gene] : genome.conns) {
        if (key.second < 0)
            return Status::error("[E3V002] connection ", key.first,
                                 "->", key.second,
                                 " targets input id ", key.second);
        if (!genome.nodes.count(key.second))
            return Status::error("[E3V001] connection ", key.first,
                                 "->", key.second,
                                 " targets undefined node ",
                                 key.second);
        if (key.first >= 0 && !genome.nodes.count(key.first))
            return Status::error("[E3V001] connection ", key.first,
                                 "->", key.second,
                                 " reads undefined node ", key.first);
        if (!std::isfinite(gene.weight))
            return Status::error("[E3V007] non-finite weight on "
                                 "connection ",
                                 key.first, "->", key.second);
    }
    return Status();
}

} // namespace

void
saveGenome(const Genome &genome, std::ostream &out)
{
    out << std::setprecision(17);
    out << "genome " << genome.key() << ' ';
    if (genome.evaluated())
        out << genome.fitness << '\n';
    else
        out << "nan\n";
    for (const auto &[id, node] : genome.nodes) {
        out << "node " << id << ' ' << node.bias << ' '
            << activationName(node.act) << ' '
            << aggregationName(node.agg) << '\n';
    }
    for (const auto &[key, conn] : genome.conns) {
        out << "conn " << key.first << ' ' << key.second << ' '
            << conn.weight << ' ' << (conn.enabled ? 1 : 0) << '\n';
    }
    out << "end\n";
}

std::string
genomeToString(const Genome &genome)
{
    std::ostringstream oss;
    saveGenome(genome, oss);
    return oss.str();
}

Result<Genome>
loadGenome(std::istream &in, GenomeLoadMode mode)
{
    std::string line;
    // Find the header, skipping blanks and comments.
    int key = 0;
    double fitness = std::numeric_limits<double>::quiet_NaN();
    bool haveHeader = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;
        if (tag != "genome")
            return Status::error("expected 'genome' header, got '", tag,
                                 "'");
        std::string fit;
        if (!(ls >> key >> fit))
            return Status::error("malformed genome header: '", line,
                                 "'");
        if (fit != "nan" && !parseDouble(fit, fitness))
            return Status::error("bad fitness '", fit,
                                 "' in genome header");
        haveHeader = true;
        break;
    }
    if (!haveHeader)
        return Status::error("no genome found in stream");

    Genome genome(key);
    genome.fitness = fitness;

    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;
        if (tag == "end") {
            if (mode == GenomeLoadMode::Validated) {
                if (Status audit = auditLoadedGenome(genome);
                    !audit.ok())
                    return audit;
            }
            return genome;
        }
        if (tag == "node") {
            int id;
            double bias;
            std::string biasTok, act, agg;
            // The bias goes through parseDouble, not operator>>:
            // saveGenome writes non-finite values as "inf"/"nan" and
            // they must round-trip so the verifier can report them as
            // E3V007 instead of the load failing outright.
            if (!(ls >> id >> biasTok >> act >> agg) ||
                !parseDouble(biasTok, bias))
                return Status::error("malformed node line: '", line,
                                     "'");
            NodeGene gene;
            gene.id = id;
            gene.bias = bias;
            if (!tryParseActivation(act, gene.act))
                return Status::error("unknown activation '", act,
                                     "' in node ", id);
            if (!tryParseAggregation(agg, gene.agg))
                return Status::error("unknown aggregation '", agg,
                                     "' in node ", id);
            if (!genome.nodes.emplace(id, gene).second)
                return Status::error("[E3V006] duplicate node ", id,
                                     " in genome");
        } else if (tag == "conn") {
            int from, to, enabled;
            double weight;
            std::string weightTok;
            if (!(ls >> from >> to >> weightTok >> enabled) ||
                !parseDouble(weightTok, weight))
                return Status::error("malformed conn line: '", line,
                                     "'");
            ConnGene gene;
            gene.key = {from, to};
            gene.weight = weight;
            gene.enabled = enabled != 0;
            if (!genome.conns.emplace(gene.key, gene).second)
                return Status::error("[E3V006] duplicate connection ",
                                     from, "->", to);
        } else {
            return Status::error("unknown record '", tag,
                                 "' in genome stream");
        }
    }
    return Status::error("genome stream ended before 'end'");
}

Result<Genome>
genomeFromString(const std::string &text, GenomeLoadMode mode)
{
    std::istringstream iss(text);
    return loadGenome(iss, mode);
}

Status
saveGenomeFile(const Genome &genome, const std::string &path)
{
    std::ofstream out(path);
    if (!out)
        return Status::error("cannot open '", path, "' for writing");
    saveGenome(genome, out);
    if (!out)
        return Status::error("write to '", path, "' failed");
    return Status();
}

Result<Genome>
loadGenomeFile(const std::string &path, GenomeLoadMode mode)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open genome file '", path, "'");
    return loadGenome(in, mode);
}

} // namespace e3
