#include "neat/serialize.hh"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

void
saveGenome(const Genome &genome, std::ostream &out)
{
    out << std::setprecision(17);
    out << "genome " << genome.key() << ' ';
    if (genome.evaluated())
        out << genome.fitness << '\n';
    else
        out << "nan\n";
    for (const auto &[id, node] : genome.nodes) {
        out << "node " << id << ' ' << node.bias << ' '
            << activationName(node.act) << ' '
            << aggregationName(node.agg) << '\n';
    }
    for (const auto &[key, conn] : genome.conns) {
        out << "conn " << key.first << ' ' << key.second << ' '
            << conn.weight << ' ' << (conn.enabled ? 1 : 0) << '\n';
    }
    out << "end\n";
}

std::string
genomeToString(const Genome &genome)
{
    std::ostringstream oss;
    saveGenome(genome, oss);
    return oss.str();
}

Genome
loadGenome(std::istream &in)
{
    std::string line;
    // Find the header, skipping blanks and comments.
    int key = 0;
    double fitness = std::numeric_limits<double>::quiet_NaN();
    bool haveHeader = false;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;
        if (tag != "genome")
            e3_fatal("expected 'genome' header, got '", tag, "'");
        std::string fit;
        if (!(ls >> key >> fit))
            e3_fatal("malformed genome header: '", line, "'");
        if (fit != "nan")
            fitness = std::stod(fit);
        haveHeader = true;
        break;
    }
    if (!haveHeader)
        e3_fatal("no genome found in stream");

    Genome genome(key);
    genome.fitness = fitness;

    while (std::getline(in, line)) {
        std::istringstream ls(line);
        std::string tag;
        if (!(ls >> tag) || tag[0] == '#')
            continue;
        if (tag == "end")
            return genome;
        if (tag == "node") {
            int id;
            double bias;
            std::string act, agg;
            if (!(ls >> id >> bias >> act >> agg))
                e3_fatal("malformed node line: '", line, "'");
            NodeGene gene;
            gene.id = id;
            gene.bias = bias;
            gene.act = parseActivation(act);
            gene.agg = parseAggregation(agg);
            if (!genome.nodes.emplace(id, gene).second)
                e3_fatal("duplicate node ", id, " in genome");
        } else if (tag == "conn") {
            int from, to, enabled;
            double weight;
            if (!(ls >> from >> to >> weight >> enabled))
                e3_fatal("malformed conn line: '", line, "'");
            ConnGene gene;
            gene.key = {from, to};
            gene.weight = weight;
            gene.enabled = enabled != 0;
            if (!genome.conns.emplace(gene.key, gene).second)
                e3_fatal("duplicate connection ", from, "->", to);
        } else {
            e3_fatal("unknown record '", tag, "' in genome stream");
        }
    }
    e3_fatal("genome stream ended before 'end'");
}

Genome
genomeFromString(const std::string &text)
{
    std::istringstream iss(text);
    return loadGenome(iss);
}

bool
saveGenomeFile(const Genome &genome, const std::string &path)
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    saveGenome(genome, out);
    return static_cast<bool>(out);
}

Genome
loadGenomeFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        e3_fatal("cannot open genome file '", path, "'");
    return loadGenome(in);
}

} // namespace e3
