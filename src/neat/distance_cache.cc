#include "neat/distance_cache.hh"

#include <algorithm>

namespace e3 {

double
DistanceCache::distance(const Genome &a, const Genome &b)
{
    const std::pair<int, int> key{std::min(a.key(), b.key()),
                                  std::max(a.key(), b.key())};
    const auto it = cache_.find(key);
    if (it != cache_.end()) {
        ++hits_;
        return it->second;
    }
    ++misses_;
    const double d = a.distance(b, cfg_);
    cache_.emplace(key, d);
    return d;
}

} // namespace e3
