#include "neat/mutation.hh"

#include <set>
#include <vector>

#include "common/logging.hh"

namespace e3 {

bool
createsCycle(const Genome &genome, ConnKey key)
{
    const auto [from, to] = key;
    if (from == to)
        return true;

    // Forward reachability from `to`: a path back to `from` means the
    // new edge closes a cycle.
    std::set<int> visited{to};
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &[k, gene] : genome.conns) {
            if (visited.count(k.first) && !visited.count(k.second)) {
                if (k.second == from)
                    return true;
                visited.insert(k.second);
                grew = true;
            }
        }
    }
    return false;
}

int
mutateAddNode(Genome &genome, const NeatConfig &cfg, Rng &rng,
              InnovationTracker &innovation)
{
    std::vector<ConnKey> enabled;
    for (const auto &[key, gene] : genome.conns) {
        if (gene.enabled)
            enabled.push_back(key);
    }
    if (enabled.empty())
        return -1;

    const ConnKey split = enabled[rng.uniformInt(enabled.size())];
    ConnGene &old = genome.conns.at(split);
    old.enabled = false;

    const int nodeId = innovation.newNodeId();
    genome.nodes.emplace(nodeId, NodeGene::create(nodeId, cfg, rng));

    ConnGene inHalf;
    inHalf.key = {split.first, nodeId};
    inHalf.weight = 1.0;
    inHalf.enabled = true;
    genome.conns.emplace(inHalf.key, inHalf);

    ConnGene outHalf;
    outHalf.key = {nodeId, split.second};
    outHalf.weight = old.weight;
    outHalf.enabled = true;
    genome.conns.emplace(outHalf.key, outHalf);

    return nodeId;
}

bool
mutateAddConnection(Genome &genome, const NeatConfig &cfg, Rng &rng)
{
    // Destination: any computing node. Source: any input or computing
    // node. (Connections into inputs are meaningless.)
    std::vector<int> dests;
    for (const auto &[id, gene] : genome.nodes)
        dests.push_back(id);
    e3_assert(!dests.empty(), "genome without output nodes");

    std::vector<int> sources = dests;
    for (size_t i = 0; i < cfg.numInputs; ++i)
        sources.push_back(-1 - static_cast<int>(i));

    const int from = sources[rng.uniformInt(sources.size())];
    const int to = dests[rng.uniformInt(dests.size())];

    const ConnKey key{from, to};
    auto it = genome.conns.find(key);
    if (it != genome.conns.end()) {
        // Re-enable an existing (possibly disabled) gene.
        const bool was = it->second.enabled;
        it->second.enabled = true;
        return !was;
    }
    if (cfg.feedForward && createsCycle(genome, key))
        return false;

    genome.conns.emplace(key, ConnGene::create(key, cfg, rng));
    return true;
}

int
mutateDeleteNode(Genome &genome, const NeatConfig &cfg, Rng &rng)
{
    std::vector<int> hidden;
    for (const auto &[id, gene] : genome.nodes) {
        if (id >= static_cast<int>(cfg.numOutputs))
            hidden.push_back(id);
    }
    if (hidden.empty())
        return -1;

    const int victim = hidden[rng.uniformInt(hidden.size())];
    genome.nodes.erase(victim);
    for (auto it = genome.conns.begin(); it != genome.conns.end();) {
        if (it->first.first == victim || it->first.second == victim)
            it = genome.conns.erase(it);
        else
            ++it;
    }
    return victim;
}

bool
mutateDeleteConnection(Genome &genome, Rng &rng)
{
    if (genome.conns.empty())
        return false;
    const size_t target = rng.uniformInt(genome.conns.size());
    auto it = genome.conns.begin();
    std::advance(it, static_cast<long>(target));
    genome.conns.erase(it);
    return true;
}

void
mutateGenome(Genome &genome, const NeatConfig &cfg, Rng &rng,
             InnovationTracker &innovation)
{
    if (rng.chance(cfg.nodeAddProb))
        mutateAddNode(genome, cfg, rng, innovation);
    if (rng.chance(cfg.nodeDeleteProb))
        mutateDeleteNode(genome, cfg, rng);
    if (rng.chance(cfg.connAddProb))
        mutateAddConnection(genome, cfg, rng);
    if (rng.chance(cfg.connDeleteProb))
        mutateDeleteConnection(genome, rng);

    for (auto &[id, gene] : genome.nodes)
        gene.mutate(cfg, rng);
    for (auto &[key, gene] : genome.conns)
        gene.mutate(cfg, rng);
}

} // namespace e3
