/**
 * @file
 * Memoized compatibility distances (neat-python's
 * GenomeDistanceCache). Speciation queries the same genome pairs
 * repeatedly — once while re-anchoring representatives and again while
 * assigning members — and distance is symmetric, so a per-generation
 * cache cuts the dominant cost of "speciate" for large populations.
 */

#ifndef E3_NEAT_DISTANCE_CACHE_HH
#define E3_NEAT_DISTANCE_CACHE_HH

#include <map>
#include <utility>

#include "neat/genome.hh"

namespace e3 {

/** Symmetric, per-generation distance memo. */
class DistanceCache
{
  public:
    explicit DistanceCache(const NeatConfig &cfg) : cfg_(cfg) {}

    /** Distance between two genomes, computed at most once per pair. */
    double distance(const Genome &a, const Genome &b);

    size_t hits() const { return hits_; }
    size_t misses() const { return misses_; }

  private:
    const NeatConfig &cfg_;
    std::map<std::pair<int, int>, double> cache_;
    size_t hits_ = 0;
    size_t misses_ = 0;
};

} // namespace e3

#endif // E3_NEAT_DISTANCE_CACHE_HH
