#include "neat/innovation.hh"

#include "common/logging.hh"

namespace e3 {

InnovationTracker::InnovationTracker(int firstHiddenId)
    : next_(firstHiddenId)
{
    e3_assert(firstHiddenId >= 0,
              "hidden ids must start at or above 0");
}

int
InnovationTracker::newNodeId()
{
    return next_++;
}

} // namespace e3
