/**
 * @file
 * Genome crossover ("Crossover" in the paper's Table III): blend two
 * elite parents' genes to reproduce a child. Following neat-python,
 * homologous genes (same key in both parents) mix per-attribute
 * uniformly; disjoint and excess genes are inherited from the fitter
 * parent only.
 */

#ifndef E3_NEAT_CROSSOVER_HH
#define E3_NEAT_CROSSOVER_HH

#include "neat/genome.hh"

namespace e3 {

/**
 * Produce a child genome from two evaluated parents.
 * @param childKey key for the new genome
 * @param a first parent
 * @param b second parent
 * @pre both parents have been evaluated
 */
Genome crossoverGenomes(int childKey, const Genome &a, const Genome &b,
                        Rng &rng);

} // namespace e3

#endif // E3_NEAT_CROSSOVER_HH
