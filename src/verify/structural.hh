/**
 * @file
 * Structural genome/network verification (E3V0xx rules).
 *
 * Checks artifacts at two levels: raw genomes (all genes, enabled or
 * not — what serialize and checkpoints carry) and decoded NetworkDefs
 * (what CreateNet compiles). Both produce typed diagnostics with gene
 * loci instead of tripping the compiler's e3_assert panics, so a
 * malformed artifact degrades to a report.
 */

#ifndef E3_VERIFY_STRUCTURAL_HH
#define E3_VERIFY_STRUCTURAL_HH

#include <cstddef>

#include "neat/genome.hh"
#include "nn/network.hh"
#include "verify/diagnostics.hh"

namespace e3::verify {

/**
 * The execution interface a genome is verified against. numInputs /
 * numOutputs of 0 mean "unknown": interface-dependent checks (missing
 * outputs E3V003, input range E3V009) are skipped. feedForward gates
 * the acyclicity/self-loop rules.
 */
struct GenomeInterface
{
    size_t numInputs = 0;
    size_t numOutputs = 0;
    bool feedForward = true;

    /**
     * Interface-agnostic verification (recurrent-tolerant, unknown
     * shape) — what checkpoint load uses, where the config may not
     * describe every stored genome.
     */
    static GenomeInterface lenient() { return {0, 0, false}; }
};

/**
 * Verify a genome's gene-level invariants: connection endpoints
 * (E3V001/E3V002/E3V009, over *all* genes including disabled ones),
 * finite parameters (E3V007), interface output coverage (E3V003),
 * feed-forward self-loops (E3V005) and acyclicity over enabled genes
 * (E3V004), and enabled-path output reachability (E3V008, warning).
 */
Report verifyGenome(const Genome &genome, const GenomeInterface &iface);

/**
 * Verify a decoded NetworkDef before compilation: duplicates (E3V006),
 * output coverage (E3V003), endpoints (E3V001/E3V002), finite
 * parameters (E3V007), self-loops/acyclicity when @p feedForward, and
 * pruned-node warnings (E3V008). A def with no errors is safe to hand
 * to FeedForwardNetwork::create.
 */
Report verifyNetworkDef(const NetworkDef &def, bool feedForward = true);

} // namespace e3::verify

#endif // E3_VERIFY_STRUCTURAL_HH
