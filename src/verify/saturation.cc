#include "verify/saturation.hh"

#include <cmath>
#include <sstream>
#include <string>

#include "common/logging.hh"

namespace e3::verify {

namespace {

std::string
fmtRange(const Interval &v)
{
    std::ostringstream oss;
    oss << '[' << v.lo << ", " << v.hi << ']';
    return oss.str();
}

std::string
fmtValue(double v)
{
    std::ostringstream oss;
    oss << v;
    return oss.str();
}

/** Does quantize(v) round to exactly zero? */
bool
underflowsToZero(const FixedPointFormat &format, double v)
{
    if (v == 0.0) // e3-lint: float-eq-ok -- exact zero is not an underflow
        return false;
    // e3-lint: float-eq-ok -- round() result is an exact integer
    return std::round(v / format.resolution()) == 0.0;
}

/** Check one parameter value; returns true on a saturation error. */
bool
checkParameter(Report &report, const FixedPointFormat &format,
               const std::string &locus, const char *what, double v)
{
    if (formatClips(format, v)) {
        report.add(makeDiagnostic(
            rules::kParameterSaturates, locus,
            std::string(what) + " " + fmtValue(v) +
                " is outside the " + format.describe() + " range [" +
                fmtValue(format.minValue()) + ", " +
                fmtValue(format.maxValue()) +
                "] and is clipped at quantization"));
        return true;
    }
    if (underflowsToZero(format, v)) {
        report.add(makeDiagnostic(
            rules::kParameterUnderflows, locus,
            std::string(what) + " " + fmtValue(v) +
                " quantizes to zero at " + format.describe() +
                " resolution " + fmtValue(format.resolution())));
    }
    return false;
}

/**
 * Smallest format at the same fracBits whose range covers maxAbs;
 * false when no format up to 64 bits does (e.g. unbounded intervals).
 */
bool
suggestFormat(double maxAbs, int fracBits, FixedPointFormat &out)
{
    if (!std::isfinite(maxAbs))
        return false;
    const double res = std::ldexp(1.0, -fracBits);
    for (int intBits = 0; intBits + fracBits + 1 <= 64; ++intBits) {
        const double top = std::ldexp(1.0, intBits) - res;
        if (top >= maxAbs) {
            out.totalBits = intBits + fracBits + 1;
            out.fracBits = fracBits;
            return true;
        }
    }
    return false;
}

} // namespace

bool
formatClips(const FixedPointFormat &format, double v)
{
    const double scaled = std::round(v / format.resolution());
    const double lo = -std::ldexp(1.0, format.totalBits - 1);
    const double hi = std::ldexp(1.0, format.totalBits - 1) - 1.0;
    return scaled < lo || scaled > hi;
}

Interval
quantizeInterval(const FixedPointFormat &format, Interval v)
{
    return {format.quantize(v.lo), format.quantize(v.hi)};
}

QuantizationAnalysis
analyzeQuantization(const NetworkDef &def,
                    const std::vector<Interval> &inputBounds,
                    const FixedPointFormat &format)
{
    e3_assert(inputBounds.size() == def.inputIds.size(),
              "analyzeQuantization: input bound count mismatch");

    QuantizationAnalysis out;
    out.format = format;
    out.inputBounds = inputBounds;

    double maxAbs = 0.0;
    for (const auto &node : def.nodes) {
        checkParameter(out.report, format,
                       "node " + std::to_string(node.id), "bias",
                       node.bias);
        maxAbs = std::max(maxAbs, std::fabs(node.bias));
    }
    for (const auto &conn : def.conns) {
        checkParameter(out.report, format,
                       "conn " + std::to_string(conn.from) + "->" +
                           std::to_string(conn.to),
                       "weight", conn.weight);
        maxAbs = std::max(maxAbs, std::fabs(conn.weight));
    }

    // Propagate through the *quantized* network with quantized value
    // storage — the exact dataflow QuantizedNetwork::activate runs.
    FeedForwardNetwork net =
        FeedForwardNetwork::create(quantizeDef(def, format));
    std::vector<Interval> values(net.valueSlots(), Interval::point(0.0));
    for (size_t i = 0; i < inputBounds.size(); ++i) {
        const Interval &raw = inputBounds[i];
        maxAbs = std::max(maxAbs, raw.maxAbs());
        if (formatClips(format, raw.lo) || formatClips(format, raw.hi)) {
            out.report.add(makeDiagnostic(
                rules::kInputMaySaturate,
                "input " + std::to_string(def.inputIds[i]),
                "observation bound " + fmtRange(raw) + " exceeds the " +
                    format.describe() + " range; the input clips at "
                    "the accelerator boundary"));
        }
        values[i] = quantizeInterval(format, raw);
    }

    std::vector<Interval> contribs;
    for (const auto &layer : net.layers()) {
        for (const auto &node : layer) {
            contribs.clear();
            contribs.reserve(node.links.size());
            for (const auto &link : node.links)
                contribs.push_back(
                    scaleInterval(values[link.srcSlot], link.weight));
            NodeBound bound;
            bound.id = node.id;
            bound.slot = node.slot;
            bound.preActivation = shiftInterval(
                aggregateInterval(node.agg, contribs), node.bias);
            bound.postActivation =
                activationInterval(node.act, bound.preActivation);
            maxAbs = std::max(maxAbs, bound.postActivation.maxAbs());
            bound.maySaturate =
                formatClips(format, bound.postActivation.lo) ||
                formatClips(format, bound.postActivation.hi);
            if (bound.maySaturate) {
                out.report.add(makeDiagnostic(
                    rules::kActivationMaySaturate,
                    "node " + std::to_string(node.id),
                    "post-activation bound " +
                        fmtRange(bound.postActivation) +
                        " exceeds the " + format.describe() +
                        " range [" + fmtValue(format.minValue()) +
                        ", " + fmtValue(format.maxValue()) + ']'));
            }
            values[node.slot] =
                quantizeInterval(format, bound.postActivation);
            out.nodes.push_back(bound);
        }
    }

    out.guaranteedSafe = out.report.empty();
    out.suggestionValid =
        suggestFormat(maxAbs, format.fracBits, out.suggested);
    return out;
}

} // namespace e3::verify
