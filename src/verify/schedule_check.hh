/**
 * @file
 * INAX schedule legality (E3V2xx rules).
 *
 * Certifies the mappings handed to AcceleratorSession against an
 * InaxConfig as diagnostics instead of fatals: hardware knobs in range
 * (E3V201), buffer capacity for the compiled network (E3V202), batch
 * size within the PU count (E3V203), PE-active cycles physically
 * achievable inside the inference window (E3V204), and individual I/O
 * shapes consistent with the environment the schedule was sized for
 * (E3V205). A batch that verifies clean can never query the
 * cycle/energy cost model with an impossible schedule.
 */

#ifndef E3_VERIFY_SCHEDULE_CHECK_HH
#define E3_VERIFY_SCHEDULE_CHECK_HH

#include <cstddef>
#include <string>
#include <vector>

#include "inax/hw_config.hh"
#include "inax/pu.hh"
#include "nn/network.hh"
#include "verify/diagnostics.hh"

namespace e3::verify {

/** Diagnostic form of InaxConfig::validate() (E3V201 per bad knob). */
Report verifyHwConfig(const InaxConfig &cfg);

/**
 * Check one distilled individual cost against the hardware: PE
 * schedule achievability (E3V204) and, when @p numInputs /
 * @p numOutputs are nonzero, I/O shape (E3V205).
 */
Report verifyIndividualCost(const IndividualCost &cost,
                            const InaxConfig &cfg, size_t numInputs,
                            size_t numOutputs, const std::string &locus);

/**
 * Certify one evaluate batch as AcceleratorSession::loadBatch receives
 * it: hardware config, batch size vs PU count (E3V203), and every
 * individual's cost profile.
 */
Report verifyBatch(const std::vector<IndividualCost> &costs,
                   const InaxConfig &cfg, size_t numInputs,
                   size_t numOutputs);

/**
 * Certify a compiled definition for deployment: hardware config,
 * buffer capacity (E3V202 when the compiled node count exceeds
 * maxSupportedNodes), and the cost profile the PU model derives from
 * it. @pre def verifies clean of structural errors.
 */
Report verifyDefOnHardware(const NetworkDef &def, const InaxConfig &cfg,
                           size_t numInputs, size_t numOutputs);

} // namespace e3::verify

#endif // E3_VERIFY_SCHEDULE_CHECK_HH
