#include "verify/batch_check.hh"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace e3::verify {

namespace {

/** Bit-level double equality: NaN payloads and signed zeros count. */
bool
bitEqual(double a, double b)
{
    uint64_t ua;
    uint64_t ub;
    std::memcpy(&ua, &a, sizeof ua);
    std::memcpy(&ub, &b, sizeof ub);
    return ua == ub;
}

std::string
laneLocus(size_t lane)
{
    return "lane " + std::to_string(lane);
}

/** Lane whose [segBegin, segEnd) covers segment @p s, for loci. */
size_t
laneOfSegment(const BatchPlan &plan, uint32_t s)
{
    for (size_t li = 0; li < plan.lanes.size(); ++li) {
        if (s >= plan.lanes[li].segBegin && s < plan.lanes[li].segEnd)
            return li;
    }
    return 0;
}

} // namespace

Report
verifyBatchPlanStructure(const BatchPlan &plan)
{
    Report report;
    const auto add = [&](const char *rule, std::string locus,
                         std::string message) {
        report.add(makeDiagnostic(rule, std::move(locus),
                                  std::move(message)));
    };

    if (plan.lanes.empty()) {
        add(rules::kBatchSegmentPartition, "plan",
            "plan has no lanes: nothing would ever execute");
        return report;
    }

    for (size_t li = 0; li < plan.lanes.size(); ++li) {
        const BatchPlan::LaneProgram &lane = plan.lanes[li];

        if (lane.segBegin > lane.segEnd ||
            lane.segEnd > plan.segments.size()) {
            add(rules::kBatchSegmentPartition, laneLocus(li),
                "segment range [" + std::to_string(lane.segBegin) +
                    ", " + std::to_string(lane.segEnd) +
                    ") lies outside the " +
                    std::to_string(plan.segments.size()) +
                    "-entry segment table");
            continue; // nothing below this lane can be trusted
        }
        if (static_cast<uint64_t>(lane.valueBase) + lane.slotCount >
            plan.arenaSize) {
            add(rules::kBatchLaneOverlap, laneLocus(li),
                "arena region [" + std::to_string(lane.valueBase) +
                    ", " +
                    std::to_string(lane.valueBase + lane.slotCount) +
                    ") reaches outside the " +
                    std::to_string(plan.arenaSize) + "-slot arena");
        }
        if (plan.numInputs > lane.slotCount) {
            add(rules::kBatchOpOutOfBounds, laneLocus(li),
                std::to_string(plan.numInputs) +
                    " inputs would be written into only " +
                    std::to_string(lane.slotCount) + " lane slots");
        }

        // Segments must tile the node list back to back, in order.
        uint32_t expectNode =
            lane.segBegin < lane.segEnd
                ? plan.segments[lane.segBegin].nodeBegin
                : 0;
        for (uint32_t s = lane.segBegin; s != lane.segEnd; ++s) {
            const BatchPlan::Segment &seg = plan.segments[s];
            const std::string segLocus =
                laneLocus(li) + " segment " + std::to_string(s);
            if (seg.nodeBegin >= seg.nodeEnd ||
                seg.nodeEnd > plan.nodes.size()) {
                add(rules::kBatchSegmentPartition, segLocus,
                    "node range [" + std::to_string(seg.nodeBegin) +
                        ", " + std::to_string(seg.nodeEnd) +
                        ") is empty or outside the " +
                        std::to_string(plan.nodes.size()) +
                        "-entry node table");
                continue;
            }
            if (seg.nodeBegin != expectNode) {
                add(rules::kBatchSegmentPartition, segLocus,
                    "starts at node " + std::to_string(seg.nodeBegin) +
                        " but the previous segment ended at node " +
                        std::to_string(expectNode) +
                        "; segments must partition the lane's node "
                        "list with no gap or overlap");
            }
            expectNode = seg.nodeEnd;

            if (static_cast<int>(seg.act) < 0 ||
                static_cast<int>(seg.act) >= kActivationCount) {
                add(rules::kBatchActivationUnknown, segLocus,
                    "activation enumerator " +
                        std::to_string(static_cast<int>(seg.act)) +
                        " is outside the dispatch table [0, " +
                        std::to_string(kActivationCount) + ")");
            }
            if (static_cast<int>(seg.agg) < 0 ||
                static_cast<int>(seg.agg) >= kAggregationCount) {
                add(rules::kBatchActivationUnknown, segLocus,
                    "aggregation enumerator " +
                        std::to_string(static_cast<int>(seg.agg)) +
                        " is outside the dispatch table [0, " +
                        std::to_string(kAggregationCount) + ")");
            }

            for (uint32_t n = seg.nodeBegin; n != seg.nodeEnd; ++n) {
                const BatchPlan::NodeRun &node = plan.nodes[n];
                const std::string nodeLocus =
                    "node " + std::to_string(n);
                if (node.opBegin > node.opEnd ||
                    node.opEnd > plan.ops.size()) {
                    add(rules::kBatchOpOutOfBounds, nodeLocus,
                        "op range [" + std::to_string(node.opBegin) +
                            ", " + std::to_string(node.opEnd) +
                            ") lies outside the " +
                            std::to_string(plan.ops.size()) +
                            "-entry op table");
                    continue;
                }
                if (node.dstSlot >= lane.slotCount) {
                    add(rules::kBatchOpOutOfBounds, nodeLocus,
                        "dstSlot " + std::to_string(node.dstSlot) +
                            " is outside the lane's " +
                            std::to_string(lane.slotCount) + " slots");
                }
                for (uint32_t o = node.opBegin; o != node.opEnd;
                     ++o) {
                    if (plan.ops[o].srcSlot >= lane.slotCount) {
                        add(rules::kBatchOpOutOfBounds,
                            nodeLocus + " op " + std::to_string(o),
                            "srcSlot " +
                                std::to_string(plan.ops[o].srcSlot) +
                                " is outside the lane's " +
                                std::to_string(lane.slotCount) +
                                " slots");
                    }
                }
            }
        }

        // Output map: in-range and injective.
        if (static_cast<uint64_t>(lane.outBase) + plan.numOutputs >
            plan.outputSlots.size()) {
            add(rules::kBatchOutputMap, laneLocus(li),
                "output map [" + std::to_string(lane.outBase) + ", " +
                    std::to_string(lane.outBase + plan.numOutputs) +
                    ") lies outside the " +
                    std::to_string(plan.outputSlots.size()) +
                    "-entry output-slot table");
        } else {
            for (size_t a = 0; a < plan.numOutputs; ++a) {
                const uint32_t slot =
                    plan.outputSlots[lane.outBase + a];
                if (slot >= lane.slotCount) {
                    add(rules::kBatchOutputMap,
                        laneLocus(li) + " output " + std::to_string(a),
                        "reads slot " + std::to_string(slot) +
                            ", outside the lane's " +
                            std::to_string(lane.slotCount) +
                            " slots");
                }
                for (size_t b = a + 1; b < plan.numOutputs; ++b) {
                    if (plan.outputSlots[lane.outBase + b] == slot) {
                        add(rules::kBatchOutputMap, laneLocus(li),
                            "outputs " + std::to_string(a) + " and " +
                                std::to_string(b) +
                                " both read slot " +
                                std::to_string(slot) +
                                "; the output map must be injective");
                    }
                }
            }
        }
    }

    // Arena regions pairwise disjoint across lanes.
    std::vector<std::pair<uint64_t, size_t>> byBase;
    byBase.reserve(plan.lanes.size());
    for (size_t li = 0; li < plan.lanes.size(); ++li)
        byBase.emplace_back(plan.lanes[li].valueBase, li);
    std::sort(byBase.begin(), byBase.end());
    for (size_t i = 1; i < byBase.size(); ++i) {
        const BatchPlan::LaneProgram &prev =
            plan.lanes[byBase[i - 1].second];
        const BatchPlan::LaneProgram &cur =
            plan.lanes[byBase[i].second];
        if (static_cast<uint64_t>(prev.valueBase) + prev.slotCount >
            cur.valueBase) {
            add(rules::kBatchLaneOverlap,
                laneLocus(byBase[i - 1].second) + " / " +
                    laneLocus(byBase[i].second),
                "arena regions [" + std::to_string(prev.valueBase) +
                    ", " +
                    std::to_string(prev.valueBase + prev.slotCount) +
                    ") and [" + std::to_string(cur.valueBase) + ", " +
                    std::to_string(cur.valueBase + cur.slotCount) +
                    ") overlap; concurrent lane activation would "
                    "race");
        }
    }
    return report;
}

Report
verifyBatchPlanFold(const BatchPlan &plan,
                    const std::vector<NetworkDef> &defs)
{
    Report report;
    const auto diverge = [&](std::string locus, std::string message) {
        report.add(makeDiagnostic(rules::kBatchFoldDivergence,
                                  std::move(locus),
                                  std::move(message)));
    };

    // Rebuild the reference plan exactly as the engine would.
    Result<std::unique_ptr<BatchEvaluator>> reference =
        defs.size() == 1 && plan.lanes.size() > 1
            ? BatchEvaluator::compileReplicated(defs.front(),
                                                plan.lanes.size())
            : BatchEvaluator::compile(defs);
    if (!reference.ok()) {
        diverge("reference compile",
                "the source definitions no longer compile: " +
                    reference.message());
        return report;
    }
    const BatchPlan &ref = *(*reference)->plan();

    if (defs.size() != 1 && defs.size() != plan.lanes.size()) {
        diverge("plan",
                std::to_string(defs.size()) +
                    " definitions supplied for a " +
                    std::to_string(plan.lanes.size()) +
                    "-lane plan (need one per lane, or exactly one "
                    "to replicate)");
        return report;
    }

    const auto sizeMismatch = [&](const char *what, size_t got,
                                  size_t want) {
        diverge("plan", std::string(what) + " count " +
                            std::to_string(got) +
                            " differs from the reference compile's " +
                            std::to_string(want));
    };
    if (plan.numInputs != ref.numInputs ||
        plan.numOutputs != ref.numOutputs) {
        diverge("plan",
                "arity " + std::to_string(plan.numInputs) + "x" +
                    std::to_string(plan.numOutputs) +
                    " differs from the reference compile's " +
                    std::to_string(ref.numInputs) + "x" +
                    std::to_string(ref.numOutputs));
        return report;
    }
    if (plan.ops.size() != ref.ops.size())
        sizeMismatch("op", plan.ops.size(), ref.ops.size());
    if (plan.nodes.size() != ref.nodes.size())
        sizeMismatch("node", plan.nodes.size(), ref.nodes.size());
    if (plan.segments.size() != ref.segments.size())
        sizeMismatch("segment", plan.segments.size(),
                     ref.segments.size());
    if (plan.outputSlots.size() != ref.outputSlots.size())
        sizeMismatch("output-slot", plan.outputSlots.size(),
                     ref.outputSlots.size());
    if (plan.arenaSize != ref.arenaSize)
        sizeMismatch("arena slot", plan.arenaSize, ref.arenaSize);
    if (!report.empty())
        return report;

    for (size_t i = 0; i < plan.ops.size(); ++i) {
        if (plan.ops[i].srcSlot != ref.ops[i].srcSlot ||
            !bitEqual(plan.ops[i].weight, ref.ops[i].weight)) {
            diverge("op " + std::to_string(i),
                    "fold step differs from the reference compile "
                    "(srcSlot or weight bits changed), so rounding "
                    "order is no longer the per-genome order");
            break;
        }
    }
    for (size_t i = 0; i < plan.nodes.size(); ++i) {
        const BatchPlan::NodeRun &a = plan.nodes[i];
        const BatchPlan::NodeRun &b = ref.nodes[i];
        if (a.dstSlot != b.dstSlot || a.opBegin != b.opBegin ||
            a.opEnd != b.opEnd || !bitEqual(a.bias, b.bias)) {
            diverge("node " + std::to_string(i),
                    "node run differs from the reference compile");
            break;
        }
    }
    for (size_t i = 0; i < plan.segments.size(); ++i) {
        const BatchPlan::Segment &a = plan.segments[i];
        const BatchPlan::Segment &b = ref.segments[i];
        if (a.nodeBegin != b.nodeBegin || a.nodeEnd != b.nodeEnd ||
            a.act != b.act || a.agg != b.agg) {
            diverge("lane " +
                        std::to_string(laneOfSegment(plan,
                                                     static_cast<
                                                         uint32_t>(i))) +
                        " segment " + std::to_string(i),
                    "segment differs from the reference compile");
            break;
        }
    }
    for (size_t i = 0; i < plan.outputSlots.size(); ++i) {
        if (plan.outputSlots[i] != ref.outputSlots[i]) {
            diverge("output slot " + std::to_string(i),
                    "output map differs from the reference compile");
            break;
        }
    }
    for (size_t i = 0; i < plan.lanes.size(); ++i) {
        const BatchPlan::LaneProgram &a = plan.lanes[i];
        const BatchPlan::LaneProgram &b = ref.lanes[i];
        if (a.segBegin != b.segBegin || a.segEnd != b.segEnd ||
            a.valueBase != b.valueBase ||
            a.slotCount != b.slotCount || a.outBase != b.outBase) {
            diverge(laneLocus(i),
                    "lane program differs from the reference compile");
            break;
        }
    }
    return report;
}

Report
verifyBatchPlan(const BatchPlan &plan,
                const std::vector<NetworkDef> &defs)
{
    Report report = verifyBatchPlanStructure(plan);
    if (!defs.empty() && !report.hasErrors())
        report.merge(verifyBatchPlanFold(plan, defs));
    return report;
}

std::string
batchPlanToText(const BatchPlan &plan)
{
    std::ostringstream oss;
    char buf[64];
    const auto g17 = [&](double v) -> const char * {
        std::snprintf(buf, sizeof buf, "%.17g", v);
        return buf;
    };
    oss << "e3-batch-plan v1\n";
    oss << "inputs " << plan.numInputs << "\n";
    oss << "outputs " << plan.numOutputs << "\n";
    oss << "arena " << plan.arenaSize << "\n";
    oss << "ops " << plan.ops.size() << "\n";
    for (const BatchPlan::Op &op : plan.ops)
        oss << op.srcSlot << " " << g17(op.weight) << "\n";
    oss << "nodes " << plan.nodes.size() << "\n";
    for (const BatchPlan::NodeRun &n : plan.nodes)
        oss << n.dstSlot << " " << n.opBegin << " " << n.opEnd << " "
            << g17(n.bias) << "\n";
    oss << "segments " << plan.segments.size() << "\n";
    for (const BatchPlan::Segment &s : plan.segments)
        oss << s.nodeBegin << " " << s.nodeEnd << " "
            << static_cast<int>(s.act) << " "
            << static_cast<int>(s.agg) << "\n";
    oss << "outputSlots " << plan.outputSlots.size() << "\n";
    for (uint32_t slot : plan.outputSlots)
        oss << slot << "\n";
    oss << "lanes " << plan.lanes.size() << "\n";
    for (const BatchPlan::LaneProgram &l : plan.lanes)
        oss << l.segBegin << " " << l.segEnd << " " << l.valueBase
            << " " << l.slotCount << " " << l.outBase << "\n";
    return oss.str();
}

Result<BatchPlan>
batchPlanFromText(const std::string &text)
{
    std::istringstream in(text);
    std::string line;
    size_t lineNo = 0;
    const auto nextLine = [&]() -> bool {
        while (std::getline(in, line)) {
            ++lineNo;
            if (!line.empty() && line.back() == '\r')
                line.pop_back();
            if (!line.empty())
                return true;
        }
        return false;
    };
    const auto parseError = [&](const std::string &what) {
        return Status::error("batch plan text, line ", lineNo, ": ",
                             what);
    };

    if (!nextLine() || line != "e3-batch-plan v1")
        return Status::error(
            "batch plan text must start with 'e3-batch-plan v1'");

    BatchPlan plan;
    const auto readScalar = [&](const char *key,
                                size_t &out) -> Status {
        if (!nextLine())
            return Status::error("batch plan text: truncated before '",
                                 key, "'");
        std::istringstream ls(line);
        std::string gotKey;
        if (!(ls >> gotKey >> out) || gotKey != key)
            return parseError(std::string("expected '") + key +
                              " <count>', got '" + line + "'");
        return Status();
    };

    if (Status s = readScalar("inputs", plan.numInputs); !s.ok())
        return s;
    if (Status s = readScalar("outputs", plan.numOutputs); !s.ok())
        return s;
    if (Status s = readScalar("arena", plan.arenaSize); !s.ok())
        return s;

    size_t count = 0;
    if (Status s = readScalar("ops", count); !s.ok())
        return s;
    plan.ops.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return Status::error("batch plan text: truncated op list");
        std::istringstream ls(line);
        BatchPlan::Op op;
        if (!(ls >> op.srcSlot >> op.weight))
            return parseError("malformed op '" + line + "'");
        plan.ops.push_back(op);
    }

    if (Status s = readScalar("nodes", count); !s.ok())
        return s;
    plan.nodes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return Status::error(
                "batch plan text: truncated node list");
        std::istringstream ls(line);
        BatchPlan::NodeRun n;
        if (!(ls >> n.dstSlot >> n.opBegin >> n.opEnd >> n.bias))
            return parseError("malformed node '" + line + "'");
        plan.nodes.push_back(n);
    }

    if (Status s = readScalar("segments", count); !s.ok())
        return s;
    plan.segments.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return Status::error(
                "batch plan text: truncated segment list");
        std::istringstream ls(line);
        BatchPlan::Segment seg;
        int act = 0;
        int agg = 0;
        if (!(ls >> seg.nodeBegin >> seg.nodeEnd >> act >> agg))
            return parseError("malformed segment '" + line + "'");
        // Out-of-range enumerators parse fine on purpose: E3V304 is
        // the verifier's finding, not the parser's.
        seg.act = static_cast<Activation>(act);
        seg.agg = static_cast<Aggregation>(agg);
        plan.segments.push_back(seg);
    }

    if (Status s = readScalar("outputSlots", count); !s.ok())
        return s;
    plan.outputSlots.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return Status::error(
                "batch plan text: truncated output-slot list");
        std::istringstream ls(line);
        uint32_t slot = 0;
        if (!(ls >> slot))
            return parseError("malformed output slot '" + line + "'");
        plan.outputSlots.push_back(slot);
    }

    if (Status s = readScalar("lanes", count); !s.ok())
        return s;
    plan.lanes.reserve(count);
    for (size_t i = 0; i < count; ++i) {
        if (!nextLine())
            return Status::error(
                "batch plan text: truncated lane list");
        std::istringstream ls(line);
        BatchPlan::LaneProgram l;
        if (!(ls >> l.segBegin >> l.segEnd >> l.valueBase >>
              l.slotCount >> l.outBase))
            return parseError("malformed lane '" + line + "'");
        plan.lanes.push_back(l);
    }

    if (nextLine())
        return parseError("trailing content '" + line + "'");
    return plan;
}

} // namespace e3::verify
