#include "verify/schedule_check.hh"

#include <string>

namespace e3::verify {

Report
verifyHwConfig(const InaxConfig &cfg)
{
    Report report;
    if (cfg.numPUs == 0) {
        report.add(makeDiagnostic(rules::kInvalidHwConfig, "numPUs",
                                  "accelerator needs at least one PU"));
    }
    if (cfg.numPEs == 0) {
        report.add(makeDiagnostic(rules::kInvalidHwConfig, "numPEs",
                                  "a PU needs at least one PE"));
    }
    if (!(cfg.clockMhz > 0.0)) {
        report.add(makeDiagnostic(rules::kInvalidHwConfig, "clockMhz",
                                  "fabric clock must be positive"));
    }
    if (cfg.weightChannelWidth == 0) {
        report.add(makeDiagnostic(rules::kInvalidHwConfig,
                                  "weightChannelWidth",
                                  "zero-width weight DMA channel"));
    }
    if (cfg.ioChannelWidth == 0) {
        report.add(makeDiagnostic(rules::kInvalidHwConfig,
                                  "ioChannelWidth",
                                  "zero-width I/O DMA channel"));
    }
    if (!(cfg.activationDensity > 0.0) || cfg.activationDensity > 1.0) {
        report.add(makeDiagnostic(
            rules::kInvalidHwConfig, "activationDensity",
            "activation density must be in (0, 1]"));
    }
    return report;
}

Report
verifyIndividualCost(const IndividualCost &cost, const InaxConfig &cfg,
                     size_t numInputs, size_t numOutputs,
                     const std::string &locus)
{
    Report report;
    const uint64_t peBudget =
        cost.inferenceCycles * static_cast<uint64_t>(cfg.numPEs);
    if (cost.peActiveCycles > peBudget) {
        report.add(makeDiagnostic(
            rules::kImpossiblePeSchedule, locus,
            "claimed " + std::to_string(cost.peActiveCycles) +
                " PE-active cycles but " + std::to_string(cfg.numPEs) +
                " PEs deliver at most " + std::to_string(peBudget) +
                " in a " + std::to_string(cost.inferenceCycles) +
                "-cycle inference window"));
    }
    if (numInputs > 0 && cost.numInputs != numInputs) {
        report.add(makeDiagnostic(
            rules::kIoShapeMismatch, locus,
            "individual has " + std::to_string(cost.numInputs) +
                " inputs but the schedule is sized for " +
                std::to_string(numInputs)));
    }
    if (numOutputs > 0 && cost.numOutputs != numOutputs) {
        report.add(makeDiagnostic(
            rules::kIoShapeMismatch, locus,
            "individual has " + std::to_string(cost.numOutputs) +
                " outputs but the schedule is sized for " +
                std::to_string(numOutputs)));
    }
    return report;
}

Report
verifyBatch(const std::vector<IndividualCost> &costs,
            const InaxConfig &cfg, size_t numInputs, size_t numOutputs)
{
    Report report = verifyHwConfig(cfg);
    if (report.hasErrors())
        return report;
    if (costs.size() > cfg.numPUs) {
        report.add(makeDiagnostic(
            rules::kBatchOverflow, "batch",
            std::to_string(costs.size()) +
                " individuals in one batch but only " +
                std::to_string(cfg.numPUs) + " PUs"));
    }
    for (size_t i = 0; i < costs.size(); ++i) {
        report.merge(verifyIndividualCost(
            costs[i], cfg, numInputs, numOutputs,
            "individual " + std::to_string(i)));
    }
    return report;
}

Report
verifyDefOnHardware(const NetworkDef &def, const InaxConfig &cfg,
                    size_t numInputs, size_t numOutputs)
{
    Report report = verifyHwConfig(cfg);
    if (report.hasErrors())
        return report; // the cost model fatals on an invalid config

    const FeedForwardNetwork net = FeedForwardNetwork::create(def);
    if (net.nodeCount() > cfg.maxSupportedNodes) {
        report.add(makeDiagnostic(
            rules::kNodeCapacityExceeded, "network",
            "compiled network has " + std::to_string(net.nodeCount()) +
                " non-input nodes but the PU buffers support " +
                std::to_string(cfg.maxSupportedNodes)));
    }
    report.merge(verifyIndividualCost(puIndividualCost(def, cfg), cfg,
                                      numInputs, numOutputs, "network"));
    return report;
}

} // namespace e3::verify
