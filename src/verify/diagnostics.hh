/**
 * @file
 * Typed diagnostics for the e3_verify static analyzer.
 *
 * Every finding the verifier can produce carries a stable rule ID
 * (E3V0xx structural, E3V1xx quantization/interval, E3V2xx INAX
 * schedule legality), a severity, the artifact it was found in (a
 * genome file, a checkpoint snapshot, an in-memory def) and a gene
 * locus ("conn 3->7", "node 5"), so CI can grep reports by rule and a
 * human can find the offending gene. The catalog below is the single
 * source of truth: constructing a diagnostic with an unknown rule ID
 * panics, which keeps IDs stable and typo-free.
 */

#ifndef E3_VERIFY_DIAGNOSTICS_HH
#define E3_VERIFY_DIAGNOSTICS_HH

#include <string>
#include <vector>

namespace e3::verify {

/**
 * Finding severity. Errors describe artifacts that are structurally
 * broken or guaranteed-unsafe and fail verification (nonzero exit);
 * warnings describe may-happen hazards (an interval that *can* reach
 * saturation, an unreachable hidden node NEAT routinely leaves behind)
 * and fail only under --strict.
 */
enum class Severity
{
    Warning,
    Error,
};

/** One verifier finding. */
struct Diagnostic
{
    std::string ruleId;   ///< e.g. "E3V001"
    std::string ruleName; ///< e.g. "dangling-endpoint"
    Severity severity = Severity::Error;
    std::string artifact; ///< file / checkpoint / def the finding is in
    std::string locus;    ///< gene locus, e.g. "conn 3->7"
    std::string message;  ///< human-readable explanation
};

/** Catalog entry describing one rule. */
struct RuleInfo
{
    const char *id;
    const char *name;
    Severity severity;
    const char *summary;
};

/** The full rule catalog, in rule-ID order. */
const std::vector<RuleInfo> &ruleCatalog();

/** Catalog entry for @p ruleId; panics on an unknown ID. */
const RuleInfo &ruleInfo(const std::string &ruleId);

/**
 * Build a diagnostic for a cataloged rule (name and severity are
 * filled from the catalog). @p artifact may be left empty and set
 * later via Report::setArtifact().
 */
Diagnostic makeDiagnostic(const std::string &ruleId, std::string locus,
                          std::string message);

/** An ordered collection of findings from one or more passes. */
struct Report
{
    std::vector<Diagnostic> diagnostics;

    void add(Diagnostic d) { diagnostics.push_back(std::move(d)); }

    /** Append another report's findings. */
    void merge(Report other);

    /** Stamp every finding with the artifact it came from. */
    void setArtifact(const std::string &artifact);

    size_t errorCount() const;
    size_t warningCount() const;
    bool hasErrors() const { return errorCount() > 0; }
    bool empty() const { return diagnostics.empty(); }

    /**
     * True if the report fails verification: any error, or any
     * finding at all under @p strict.
     */
    bool failed(bool strict) const
    {
        return strict ? !empty() : hasErrors();
    }
};

/** Stable "E3V001 dangling-endpoint" rule IDs, structural pass. */
namespace rules {
inline constexpr const char *kDanglingEndpoint = "E3V001";
inline constexpr const char *kInputAsDestination = "E3V002";
inline constexpr const char *kMissingOutputNode = "E3V003";
inline constexpr const char *kFeedForwardCycle = "E3V004";
inline constexpr const char *kSelfLoop = "E3V005";
inline constexpr const char *kDuplicateElement = "E3V006";
inline constexpr const char *kNonfiniteParameter = "E3V007";
inline constexpr const char *kUnreachableHidden = "E3V008";
inline constexpr const char *kInputOutOfRange = "E3V009";
inline constexpr const char *kLoadError = "E3V010";
// Interval / quantization pass.
inline constexpr const char *kParameterSaturates = "E3V101";
inline constexpr const char *kParameterUnderflows = "E3V102";
inline constexpr const char *kInputMaySaturate = "E3V103";
inline constexpr const char *kActivationMaySaturate = "E3V104";
// INAX schedule-legality pass.
inline constexpr const char *kInvalidHwConfig = "E3V201";
inline constexpr const char *kNodeCapacityExceeded = "E3V202";
inline constexpr const char *kBatchOverflow = "E3V203";
inline constexpr const char *kImpossiblePeSchedule = "E3V204";
inline constexpr const char *kIoShapeMismatch = "E3V205";
// Batch-plan pass (the compiled SoA population program).
inline constexpr const char *kBatchOpOutOfBounds = "E3V301";
inline constexpr const char *kBatchSegmentPartition = "E3V302";
inline constexpr const char *kBatchLaneOverlap = "E3V303";
inline constexpr const char *kBatchActivationUnknown = "E3V304";
inline constexpr const char *kBatchOutputMap = "E3V305";
inline constexpr const char *kBatchFoldDivergence = "E3V306";
} // namespace rules

/** "warning" / "error". */
std::string severityName(Severity severity);

/** One finding per line: "artifact: E3V001 dangling-endpoint ...". */
std::string formatText(const Report &report);

/** Machine-readable JSON document (the --json output). */
std::string toJson(const Report &report);

} // namespace e3::verify

#endif // E3_VERIFY_DIAGNOSTICS_HH
