#include "verify/diagnostics.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace e3::verify {

const std::vector<RuleInfo> &
ruleCatalog()
{
    static const std::vector<RuleInfo> catalog = {
        {rules::kDanglingEndpoint, "dangling-endpoint", Severity::Error,
         "connection references a node id that is neither a declared "
         "node nor a valid input"},
        {rules::kInputAsDestination, "input-as-destination",
         Severity::Error,
         "connection targets an input id; inputs are pure value "
         "sources and cannot receive edges"},
        {rules::kMissingOutputNode, "missing-output-node",
         Severity::Error,
         "an output node id required by the interface has no node "
         "gene"},
        {rules::kFeedForwardCycle, "feedforward-cycle", Severity::Error,
         "enabled connections form a cycle through required nodes in a "
         "feed-forward genome"},
        {rules::kSelfLoop, "self-loop-in-feedforward", Severity::Error,
         "self-loop connection in a feed-forward genome (legal only "
         "under recurrent evaluation)"},
        {rules::kDuplicateElement, "duplicate-element", Severity::Error,
         "duplicate node id or connection key in one definition"},
        {rules::kNonfiniteParameter, "nonfinite-parameter",
         Severity::Error,
         "weight or bias is NaN or infinite"},
        {rules::kUnreachableHidden, "unreachable-hidden",
         Severity::Warning,
         "hidden node cannot reach any output; CreateNet prunes it "
         "(dead genetic material, not an execution hazard)"},
        {rules::kInputOutOfRange, "input-out-of-range", Severity::Error,
         "connection reads an input id outside the environment's "
         "observation dimension"},
        {rules::kLoadError, "load-error", Severity::Error,
         "artifact could not be parsed as a genome or checkpoint"},
        {rules::kParameterSaturates, "parameter-saturates",
         Severity::Error,
         "weight or bias lies outside the fixed-point range and is "
         "clipped at quantization"},
        {rules::kParameterUnderflows, "parameter-underflows",
         Severity::Warning,
         "nonzero weight or bias quantizes to exactly zero (connection "
         "is silently severed on the datapath)"},
        {rules::kInputMaySaturate, "input-may-saturate",
         Severity::Warning,
         "an observation bound exceeds the fixed-point range; inputs "
         "may clip at the accelerator boundary"},
        {rules::kActivationMaySaturate, "activation-may-saturate",
         Severity::Warning,
         "a node's statically bounded activation interval exceeds the "
         "fixed-point range; its value may clip"},
        {rules::kInvalidHwConfig, "invalid-hw-config", Severity::Error,
         "InaxConfig knob out of range (zero PUs/PEs, non-positive "
         "clock, zero-width DMA channel, bad density)"},
        {rules::kNodeCapacityExceeded, "node-capacity-exceeded",
         Severity::Error,
         "compiled network has more non-input nodes than the PU "
         "buffers support (maxSupportedNodes)"},
        {rules::kBatchOverflow, "batch-overflow", Severity::Error,
         "more individuals in one batch than the accelerator has PUs"},
        {rules::kImpossiblePeSchedule, "impossible-pe-schedule",
         Severity::Error,
         "claimed PE-active cycles exceed what numPEs PEs can deliver "
         "in the inference window"},
        {rules::kIoShapeMismatch, "io-shape-mismatch", Severity::Error,
         "individual's input/output count disagrees with the "
         "environment interface the schedule was sized for"},
        {rules::kBatchOpOutOfBounds, "batch-op-out-of-bounds",
         Severity::Error,
         "a compiled op or node indexes outside its lane's slot range "
         "or the shared op/node arrays"},
        {rules::kBatchSegmentPartition, "batch-segment-partition",
         Severity::Error,
         "a lane's segments do not exactly partition its node list in "
         "execution order"},
        {rules::kBatchLaneOverlap, "batch-lane-overlap",
         Severity::Error,
         "two lanes' value-arena regions overlap (or a lane reaches "
         "outside the arena), so concurrent activation would race"},
        {rules::kBatchActivationUnknown, "batch-activation-unknown",
         Severity::Error,
         "a segment carries an activation or aggregation outside the "
         "dispatch table, so activation would fall through"},
        {rules::kBatchOutputMap, "batch-output-map", Severity::Error,
         "a lane's output map reads an out-of-range slot or reads one "
         "slot twice (must be injective over lane slots)"},
        {rules::kBatchFoldDivergence, "batch-fold-divergence",
         Severity::Error,
         "the plan's op/node/segment stream is not bit-identical to "
         "the per-genome reference compile, so fold order (and "
         "rounding) would diverge"},
    };
    return catalog;
}

const RuleInfo &
ruleInfo(const std::string &ruleId)
{
    for (const RuleInfo &info : ruleCatalog()) {
        if (ruleId == info.id)
            return info;
    }
    e3_panic("unknown verifier rule id '", ruleId, "'");
}

Diagnostic
makeDiagnostic(const std::string &ruleId, std::string locus,
               std::string message)
{
    const RuleInfo &info = ruleInfo(ruleId);
    Diagnostic d;
    d.ruleId = info.id;
    d.ruleName = info.name;
    d.severity = info.severity;
    d.locus = std::move(locus);
    d.message = std::move(message);
    return d;
}

void
Report::merge(Report other)
{
    diagnostics.insert(diagnostics.end(),
                       std::make_move_iterator(other.diagnostics.begin()),
                       std::make_move_iterator(other.diagnostics.end()));
}

void
Report::setArtifact(const std::string &artifact)
{
    for (Diagnostic &d : diagnostics)
        d.artifact = artifact;
}

size_t
Report::errorCount() const
{
    return static_cast<size_t>(std::count_if(
        diagnostics.begin(), diagnostics.end(), [](const Diagnostic &d) {
            return d.severity == Severity::Error;
        }));
}

size_t
Report::warningCount() const
{
    return diagnostics.size() - errorCount();
}

std::string
severityName(Severity severity)
{
    return severity == Severity::Error ? "error" : "warning";
}

std::string
formatText(const Report &report)
{
    std::ostringstream oss;
    for (const Diagnostic &d : report.diagnostics) {
        if (!d.artifact.empty())
            oss << d.artifact << ": ";
        oss << severityName(d.severity) << ' ' << d.ruleId << ' '
            << d.ruleName;
        if (!d.locus.empty())
            oss << " [" << d.locus << ']';
        oss << ": " << d.message << '\n';
    }
    return oss.str();
}

namespace {

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
toJson(const Report &report)
{
    std::ostringstream oss;
    oss << "{\"diagnostics\":[";
    for (size_t i = 0; i < report.diagnostics.size(); ++i) {
        const Diagnostic &d = report.diagnostics[i];
        if (i)
            oss << ',';
        oss << "{\"rule\":\"" << d.ruleId << "\""
            << ",\"name\":\"" << d.ruleName << "\""
            << ",\"severity\":\"" << severityName(d.severity) << "\""
            << ",\"artifact\":\"" << jsonEscape(d.artifact) << "\""
            << ",\"locus\":\"" << jsonEscape(d.locus) << "\""
            << ",\"message\":\"" << jsonEscape(d.message) << "\"}";
    }
    oss << "],\"errors\":" << report.errorCount()
        << ",\"warnings\":" << report.warningCount()
        << ",\"count\":" << report.diagnostics.size() << "}\n";
    return oss.str();
}

} // namespace e3::verify
