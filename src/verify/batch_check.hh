/**
 * @file
 * Batch-plan soundness (E3V301–E3V306).
 *
 * Certifies a compiled BatchPlan — the SoA program
 * compilePopulation()/compileReplicated() hand to the evaluator — as
 * diagnostics instead of fatals: every op and node index inside its
 * lane's slot range and the shared arrays (E3V301), per-lane segments
 * exactly partitioning the node list in execution order (E3V302),
 * per-lane value-arena regions pairwise disjoint so concurrent lane
 * activation cannot race (E3V303), every segment's (activation,
 * aggregation) inside the dispatch table (E3V304), each lane's output
 * map injective over in-range slots (E3V305), and — when the source
 * definitions are supplied — the whole op/node/segment stream
 * bit-identical to a fresh per-genome reference compile, so fold
 * order and with it every intermediate rounding is proven unchanged
 * (E3V306).
 *
 * Plans also round-trip through a line-oriented text form (doubles at
 * full %.17g precision), which is how the seeded-corrupt fixtures
 * under tests/fixtures/verify/ reach `e3_cli verify --batch --plan`.
 */

#ifndef E3_VERIFY_BATCH_CHECK_HH
#define E3_VERIFY_BATCH_CHECK_HH

#include <string>
#include <vector>

#include "nn/batch_eval.hh"
#include "verify/diagnostics.hh"

namespace e3::verify {

/**
 * Structural soundness of one plan (E3V301–E3V305): every finding the
 * activation loops would otherwise turn into out-of-bounds reads,
 * silent dispatch fall-through, or cross-lane races.
 */
Report verifyBatchPlanStructure(const BatchPlan &plan);

/**
 * Fold-order equivalence (E3V306): recompile @p defs through the
 * reference SoA compile and require the plan's op/node/segment/output
 * streams to match bit for bit. @p defs is the population in lane
 * order; a single def with a multi-lane plan is treated as a
 * replicated compile. @pre defs structurally clean (they re-compile).
 */
Report verifyBatchPlanFold(const BatchPlan &plan,
                           const std::vector<NetworkDef> &defs);

/**
 * The full pass: structure always, fold equivalence when @p defs is
 * non-empty. The fold check is skipped (not failed) on a structurally
 * broken plan — its indices cannot be trusted enough to compare.
 */
Report verifyBatchPlan(const BatchPlan &plan,
                       const std::vector<NetworkDef> &defs = {});

/** Serialize @p plan to the line-oriented text form. */
std::string batchPlanToText(const BatchPlan &plan);

/** Parse batchPlanToText() output; a tagged error on malformed text. */
Result<BatchPlan> batchPlanFromText(const std::string &text);

} // namespace e3::verify

#endif // E3_VERIFY_BATCH_CHECK_HH
