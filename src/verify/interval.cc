#include "verify/interval.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3::verify {

namespace {

/**
 * Multiplication with the real-math convention 0 * x == 0 even when x
 * is infinite. Interval endpoints can legitimately be +-inf (an env
 * may declare unbounded observations), but runtime values are always
 * finite, so treating 0 * inf as 0 preserves containment while
 * avoiding NaN endpoints.
 */
double
safeMul(double a, double b)
{
    if (a == 0.0 || b == 0.0) // e3-lint: float-eq-ok -- exact-zero guard for 0 * inf
        return 0.0;
    return a * b;
}

} // namespace

Interval
Interval::of(double a, double b)
{
    return a <= b ? Interval{a, b} : Interval{b, a};
}

double
Interval::maxAbs() const
{
    return std::max(std::fabs(lo), std::fabs(hi));
}

Interval
addIntervals(Interval a, Interval b)
{
    return {a.lo + b.lo, a.hi + b.hi};
}

Interval
shiftInterval(Interval v, double c)
{
    return {v.lo + c, v.hi + c};
}

Interval
scaleInterval(Interval v, double w)
{
    if (w >= 0.0)
        return {safeMul(v.lo, w), safeMul(v.hi, w)};
    return {safeMul(v.hi, w), safeMul(v.lo, w)};
}

Interval
mulIntervals(Interval a, Interval b)
{
    double c1 = safeMul(a.lo, b.lo);
    double c2 = safeMul(a.lo, b.hi);
    double c3 = safeMul(a.hi, b.lo);
    double c4 = safeMul(a.hi, b.hi);
    return {std::min(std::min(c1, c2), std::min(c3, c4)),
            std::max(std::max(c1, c2), std::max(c3, c4))};
}

Interval
maxIntervals(Interval a, Interval b)
{
    return {std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

Interval
minIntervals(Interval a, Interval b)
{
    return {std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

Interval
aggregateInterval(Aggregation agg, const std::vector<Interval> &contribs)
{
    // Mirrors Aggregator: the accumulator is seeded from the first
    // element for every aggregation kind, and an empty aggregation
    // yields 0.
    if (contribs.empty())
        return Interval::point(0.0);

    Interval acc = contribs[0];
    for (size_t i = 1; i < contribs.size(); ++i) {
        const Interval &v = contribs[i];
        switch (agg) {
        case Aggregation::Sum:
        case Aggregation::Mean:
            acc = addIntervals(acc, v);
            break;
        case Aggregation::Product:
            acc = mulIntervals(acc, v);
            break;
        case Aggregation::Max:
            acc = maxIntervals(acc, v);
            break;
        case Aggregation::Min:
            acc = minIntervals(acc, v);
            break;
        }
    }
    if (agg == Aggregation::Mean) {
        double n = static_cast<double>(contribs.size());
        acc = {acc.lo / n, acc.hi / n};
    }
    return acc;
}

namespace {

/** Bound sin(z) over the (already clamped) z-domain [zlo, zhi]. */
Interval
sinInterval(double zlo, double zhi)
{
    constexpr double kPi = 3.14159265358979323846;
    double slo = std::sin(zlo);
    double shi = std::sin(zhi);
    Interval out = Interval::of(slo, shi);
    // Peak at z = pi/2 + 2k*pi inside the domain pins hi to 1; trough
    // at z = -pi/2 + 2k*pi pins lo to -1.
    double kPeak = std::ceil((zlo - kPi / 2.0) / (2.0 * kPi));
    if (kPi / 2.0 + 2.0 * kPi * kPeak <= zhi)
        out.hi = 1.0;
    double kTrough = std::ceil((zlo + kPi / 2.0) / (2.0 * kPi));
    if (-kPi / 2.0 + 2.0 * kPi * kTrough <= zhi)
        out.lo = -1.0;
    return out;
}

} // namespace

Interval
activationInterval(Activation act, Interval pre)
{
    double fLo = applyActivation(act, pre.lo);
    double fHi = applyActivation(act, pre.hi);
    switch (act) {
    case Activation::Sigmoid:
    case Activation::Tanh:
    case Activation::ReLU:
    case Activation::Identity:
    case Activation::Clamped:
        // Monotone nondecreasing: endpoint evaluation with the
        // runtime's own applyActivation is bit-exact.
        return {fLo, fHi};
    case Activation::Abs:
        if (pre.lo <= 0.0 && pre.hi >= 0.0)
            return {0.0, std::max(fLo, fHi)};
        return Interval::of(fLo, fHi);
    case Activation::Gauss: {
        // exp(-5 z^2) over z = clamp(x, +-3.4): even, peaked at 0,
        // decreasing in |z|.
        Interval out = Interval::of(fLo, fHi);
        if (pre.lo <= 0.0 && pre.hi >= 0.0)
            out.hi = 1.0;
        return out;
    }
    case Activation::Sin: {
        double zlo = std::clamp(5.0 * pre.lo, -60.0, 60.0);
        double zhi = std::clamp(5.0 * pre.hi, -60.0, 60.0);
        return sinInterval(zlo, zhi);
    }
    }
    e3_panic("unhandled activation in activationInterval");
}

std::vector<Interval>
observationIntervals(const Space &space)
{
    std::vector<Interval> out;
    if (space.isDiscrete()) {
        out.push_back(
            {0.0, static_cast<double>(space.count()) - 1.0});
        return out;
    }
    out.reserve(space.size());
    for (size_t i = 0; i < space.size(); ++i)
        out.push_back(Interval::of(space.low()[i], space.high()[i]));
    return out;
}

std::vector<Interval>
networkValueBounds(const FeedForwardNetwork &net,
                   const std::vector<Interval> &inputBounds)
{
    e3_assert(inputBounds.size() == net.numInputs(),
              "networkValueBounds: input bound count mismatch");

    std::vector<Interval> values(net.valueSlots(),
                                 Interval::point(0.0));
    for (size_t i = 0; i < inputBounds.size(); ++i)
        values[i] = inputBounds[i];

    std::vector<Interval> contribs;
    for (const auto &layer : net.layers()) {
        for (const auto &node : layer) {
            contribs.clear();
            contribs.reserve(node.links.size());
            for (const auto &link : node.links)
                contribs.push_back(
                    scaleInterval(values[link.srcSlot], link.weight));
            Interval pre = shiftInterval(
                aggregateInterval(node.agg, contribs), node.bias);
            values[node.slot] = activationInterval(node.act, pre);
        }
    }
    return values;
}

} // namespace e3::verify
