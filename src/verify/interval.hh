/**
 * @file
 * Interval abstract interpretation over compiled networks.
 *
 * The verifier's numeric pass propagates [lo, hi] bounds from an
 * environment's observation space through every aggregation and
 * activation of a compiled FeedForwardNetwork, yielding a sound static
 * bound for every value-array slot. "Sound" leans on two facts about
 * IEEE round-to-nearest: rounding is monotone (so folding the same
 * +,*,min,max chain over interval endpoints in the runtime's exact
 * link order bounds the runtime's folds), and activation endpoints are
 * evaluated with the very applyActivation() the runtime uses, so
 * monotone activations are bounded bit-exactly. The non-monotone
 * activations (sin, gauss) are bounded by endpoint + critical-point
 * analysis, tight to a library ulp.
 */

#ifndef E3_VERIFY_INTERVAL_HH
#define E3_VERIFY_INTERVAL_HH

#include <vector>

#include "env/space.hh"
#include "nn/network.hh"

namespace e3::verify {

/** A closed interval [lo, hi]; lo <= hi for every constructed value. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    static Interval point(double v) { return {v, v}; }

    /** Ordered construction from two unordered endpoints. */
    static Interval of(double a, double b);

    bool contains(double v, double eps = 0.0) const
    {
        return v >= lo - eps && v <= hi + eps;
    }

    /** max(|lo|, |hi|). */
    double maxAbs() const;
};

/** [a.lo + b.lo, a.hi + b.hi]. */
Interval addIntervals(Interval a, Interval b);

/** Shift both endpoints by a constant (the bias add). */
Interval shiftInterval(Interval v, double c);

/**
 * Multiply by a constant weight (sign-aware). 0 * x is 0 even for
 * infinite bounds: runtime values are always finite, so the real-math
 * identity holds for containment.
 */
Interval scaleInterval(Interval v, double w);

/** Interval product (4-corner, 0-safe). */
Interval mulIntervals(Interval a, Interval b);

/** Bound of max(a, b) over independent variables. */
Interval maxIntervals(Interval a, Interval b);

/** Bound of min(a, b) over independent variables. */
Interval minIntervals(Interval a, Interval b);

/**
 * Bound an aggregation over per-link contribution intervals,
 * mirroring the runtime Aggregator fold (seed from the first element,
 * fold in order; empty aggregations yield 0).
 */
Interval aggregateInterval(Aggregation agg,
                           const std::vector<Interval> &contribs);

/** Bound applyActivation(act, x) over x in @p pre. */
Interval activationInterval(Activation act, Interval pre);

/**
 * Per-element observation bounds of a space. Box spaces use their
 * declared low/high; a Discrete space is the single index interval
 * [0, count - 1].
 */
std::vector<Interval> observationIntervals(const Space &space);

/**
 * Propagate input bounds through a compiled network and bound every
 * value-array slot: slots [0, numInputs) carry the given input bounds,
 * each compiled node's slot the bound of its post-activation value.
 * The result is indexed exactly like FeedForwardNetwork::values(), so
 * a runtime activation can be checked against its static bound slot
 * for slot.
 * @pre inputBounds.size() == net.numInputs()
 */
std::vector<Interval>
networkValueBounds(const FeedForwardNetwork &net,
                   const std::vector<Interval> &inputBounds);

} // namespace e3::verify

#endif // E3_VERIFY_INTERVAL_HH
