/**
 * @file
 * Umbrella header for the e3_verify static analyzer: diagnostics,
 * structural pass, interval/quantization pass, and INAX schedule
 * legality, plus the glue binding a GenomeInterface to a registered
 * environment.
 */

#ifndef E3_VERIFY_VERIFY_HH
#define E3_VERIFY_VERIFY_HH

#include "env/env_registry.hh"
#include "verify/batch_check.hh"
#include "verify/diagnostics.hh"
#include "verify/interval.hh"
#include "verify/saturation.hh"
#include "verify/schedule_check.hh"
#include "verify/structural.hh"

namespace e3::verify {

/** The interface a genome evolved for @p spec must satisfy. */
inline GenomeInterface
interfaceFor(const EnvSpec &spec, bool feedForward = true)
{
    GenomeInterface iface;
    iface.numInputs = spec.numInputs;
    iface.numOutputs = spec.numOutputs;
    iface.feedForward = feedForward;
    return iface;
}

} // namespace e3::verify

#endif // E3_VERIFY_VERIFY_HH
