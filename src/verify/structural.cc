#include "verify/structural.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "nn/layering.hh"

namespace e3::verify {

namespace {

std::string
connLocus(int from, int to)
{
    return "conn " + std::to_string(from) + "->" + std::to_string(to);
}

std::string
nodeLocus(int id)
{
    return "node " + std::to_string(id);
}

std::string
joinIds(const std::vector<int> &ids)
{
    std::ostringstream oss;
    for (size_t i = 0; i < ids.size(); ++i) {
        if (i)
            oss << ',';
        oss << ids[i];
    }
    return oss.str();
}

/**
 * Node ids from which an output in [0, numOutputs) is reachable over
 * enabled connections (plus the outputs themselves). Mirrors
 * requiredNodes() but over a genome's gene maps.
 */
std::set<int>
genomeReachable(const Genome &genome, size_t numOutputs)
{
    std::map<int, std::vector<int>> reverse; // to -> sources
    for (const auto &[key, gene] : genome.conns) {
        if (!gene.enabled)
            continue;
        reverse[key.second].push_back(key.first);
    }
    std::set<int> reachable;
    std::deque<int> frontier;
    for (size_t o = 0; o < numOutputs; ++o) {
        int id = static_cast<int>(o);
        if (genome.nodes.count(id)) {
            reachable.insert(id);
            frontier.push_back(id);
        }
    }
    while (!frontier.empty()) {
        int id = frontier.front();
        frontier.pop_front();
        auto it = reverse.find(id);
        if (it == reverse.end())
            continue;
        for (int src : it->second) {
            if (src < 0 || !genome.nodes.count(src))
                continue;
            if (reachable.insert(src).second)
                frontier.push_back(src);
        }
    }
    return reachable;
}

/**
 * Kahn's algorithm over enabled node->node edges restricted to
 * @p scope; returns the (sorted) ids left on a cycle, empty if acyclic.
 */
std::vector<int>
genomeCycle(const Genome &genome, const std::set<int> &scope)
{
    std::map<int, std::vector<int>> adj;
    std::map<int, int> indegree;
    for (int id : scope)
        indegree[id] = 0;
    for (const auto &[key, gene] : genome.conns) {
        if (!gene.enabled || key.first == key.second)
            continue;
        if (!scope.count(key.first) || !scope.count(key.second))
            continue;
        adj[key.first].push_back(key.second);
        ++indegree[key.second];
    }
    std::deque<int> ready;
    for (const auto &[id, deg] : indegree) {
        if (deg == 0)
            ready.push_back(id);
    }
    size_t placed = 0;
    while (!ready.empty()) {
        int id = ready.front();
        ready.pop_front();
        ++placed;
        for (int dst : adj[id]) {
            if (--indegree[dst] == 0)
                ready.push_back(dst);
        }
    }
    std::vector<int> cycle;
    if (placed == indegree.size())
        return cycle;
    for (const auto &[id, deg] : indegree) {
        if (deg > 0)
            cycle.push_back(id);
    }
    return cycle;
}

} // namespace

Report
verifyGenome(const Genome &genome, const GenomeInterface &iface)
{
    Report report;

    for (const auto &[id, node] : genome.nodes) {
        if (id < 0) {
            report.add(makeDiagnostic(
                rules::kInputAsDestination, nodeLocus(id),
                "input id " + std::to_string(id) +
                    " declared as a computed node gene; inputs are "
                    "implicit sources"));
        }
        if (!std::isfinite(node.bias)) {
            report.add(makeDiagnostic(
                rules::kNonfiniteParameter, nodeLocus(id),
                "bias is not finite"));
        }
    }

    if (iface.numOutputs > 0) {
        for (size_t o = 0; o < iface.numOutputs; ++o) {
            int id = static_cast<int>(o);
            if (!genome.nodes.count(id)) {
                report.add(makeDiagnostic(
                    rules::kMissingOutputNode, nodeLocus(id),
                    "interface requires " +
                        std::to_string(iface.numOutputs) +
                        " output nodes but node " + std::to_string(id) +
                        " has no gene"));
            }
        }
    }

    for (const auto &[key, gene] : genome.conns) {
        int from = key.first;
        int to = key.second;
        std::string locus = connLocus(from, to);
        if (to < 0) {
            report.add(makeDiagnostic(
                rules::kInputAsDestination, locus,
                "connection targets input id " + std::to_string(to)));
        } else if (!genome.nodes.count(to)) {
            report.add(makeDiagnostic(
                rules::kDanglingEndpoint, locus,
                "destination node " + std::to_string(to) +
                    " has no node gene"));
        }
        if (from < 0) {
            if (iface.numInputs > 0 &&
                from < -static_cast<int>(iface.numInputs)) {
                report.add(makeDiagnostic(
                    rules::kInputOutOfRange, locus,
                    "input id " + std::to_string(from) +
                        " is outside the " +
                        std::to_string(iface.numInputs) +
                        "-dimensional observation space"));
            }
        } else if (!genome.nodes.count(from)) {
            report.add(makeDiagnostic(
                rules::kDanglingEndpoint, locus,
                "source node " + std::to_string(from) +
                    " has no node gene"));
        }
        if (!std::isfinite(gene.weight)) {
            report.add(makeDiagnostic(rules::kNonfiniteParameter, locus,
                                      "weight is not finite"));
        }
        if (iface.feedForward && from == to && gene.enabled) {
            report.add(makeDiagnostic(
                rules::kSelfLoop, locus,
                "enabled self-loop in a feed-forward genome"));
        }
    }

    // Reachability and acyclicity work on the enabled node->node graph.
    std::set<int> scope;
    if (iface.numOutputs > 0) {
        std::set<int> reachable =
            genomeReachable(genome, iface.numOutputs);
        for (const auto &[id, node] : genome.nodes) {
            if (id >= static_cast<int>(iface.numOutputs) &&
                !reachable.count(id)) {
                report.add(makeDiagnostic(
                    rules::kUnreachableHidden, nodeLocus(id),
                    "hidden node " + std::to_string(id) +
                        " has no enabled path to any output"));
            }
        }
        scope = std::move(reachable);
    } else {
        for (const auto &[id, node] : genome.nodes) {
            if (id >= 0)
                scope.insert(id);
        }
    }

    if (iface.feedForward) {
        std::vector<int> cycle = genomeCycle(genome, scope);
        if (!cycle.empty()) {
            report.add(makeDiagnostic(
                rules::kFeedForwardCycle, "nodes " + joinIds(cycle),
                "enabled connections form a cycle in a feed-forward "
                "genome"));
        }
    }

    return report;
}

Report
verifyNetworkDef(const NetworkDef &def, bool feedForward)
{
    Report report;

    std::set<int> inputSet;
    for (int id : def.inputIds) {
        if (!inputSet.insert(id).second) {
            report.add(makeDiagnostic(
                rules::kDuplicateElement, "input " + std::to_string(id),
                "duplicate input id"));
        }
    }

    std::set<int> nodeSet;
    for (const auto &node : def.nodes) {
        if (!nodeSet.insert(node.id).second) {
            report.add(makeDiagnostic(rules::kDuplicateElement,
                                      nodeLocus(node.id),
                                      "duplicate node id"));
        }
        if (inputSet.count(node.id)) {
            report.add(makeDiagnostic(
                rules::kInputAsDestination, nodeLocus(node.id),
                "input id " + std::to_string(node.id) +
                    " declared as a computed node"));
        }
        if (!std::isfinite(node.bias)) {
            report.add(makeDiagnostic(rules::kNonfiniteParameter,
                                      nodeLocus(node.id),
                                      "bias is not finite"));
        }
    }

    for (int id : def.outputIds) {
        if (!nodeSet.count(id)) {
            report.add(makeDiagnostic(
                rules::kMissingOutputNode, nodeLocus(id),
                "output node " + std::to_string(id) +
                    " has no node entry"));
        }
    }

    std::set<std::pair<int, int>> seenConns;
    for (const auto &conn : def.conns) {
        std::string locus = connLocus(conn.from, conn.to);
        if (!seenConns.insert({conn.from, conn.to}).second) {
            report.add(makeDiagnostic(rules::kDuplicateElement, locus,
                                      "duplicate connection"));
        }
        if (inputSet.count(conn.to) || conn.to < 0) {
            report.add(makeDiagnostic(
                rules::kInputAsDestination, locus,
                "connection targets input id " +
                    std::to_string(conn.to)));
        } else if (!nodeSet.count(conn.to)) {
            report.add(makeDiagnostic(
                rules::kDanglingEndpoint, locus,
                "destination node " + std::to_string(conn.to) +
                    " is not defined"));
        }
        if (!inputSet.count(conn.from) && !nodeSet.count(conn.from)) {
            report.add(makeDiagnostic(
                rules::kDanglingEndpoint, locus,
                "source node " + std::to_string(conn.from) +
                    " is not defined"));
        }
        if (!std::isfinite(conn.weight)) {
            report.add(makeDiagnostic(rules::kNonfiniteParameter, locus,
                                      "weight is not finite"));
        }
        if (feedForward && conn.from == conn.to) {
            report.add(makeDiagnostic(
                rules::kSelfLoop, locus,
                "self-loop in a feed-forward network definition"));
        }
    }

    // Graph-level analyses assume a well-formed def.
    if (report.hasErrors())
        return report;

    if (feedForward && !isAcyclic(def)) {
        report.add(makeDiagnostic(
            rules::kFeedForwardCycle, "",
            "connections form a cycle through required nodes"));
    } else {
        std::set<int> required = requiredNodes(def);
        for (const auto &node : def.nodes) {
            if (!required.count(node.id)) {
                report.add(makeDiagnostic(
                    rules::kUnreachableHidden, nodeLocus(node.id),
                    "node " + std::to_string(node.id) +
                        " cannot reach any output and is pruned by "
                        "CreateNet"));
            }
        }
    }

    return report;
}

} // namespace e3::verify
