/**
 * @file
 * Quantization safety analysis (E3V1xx rules).
 *
 * Combines the interval engine with FixedPointFormat to decide, before
 * a genome ever touches the modeled accelerator, whether deployment at
 * a given Qm.n format is guaranteed-safe or may saturate: parameters
 * outside the representable range (clipped at quantizeDef time) are
 * errors, may-clip inputs and activation intervals that can cross the
 * range are warnings, and the analysis suggests the minimal format
 * whose integer bits cover every statically bounded value at the same
 * fractional precision.
 */

#ifndef E3_VERIFY_SATURATION_HH
#define E3_VERIFY_SATURATION_HH

#include <cstdint>
#include <vector>

#include "nn/quantize.hh"
#include "verify/diagnostics.hh"
#include "verify/interval.hh"

namespace e3::verify {

/** Static bound of one compiled node under the analyzed format. */
struct NodeBound
{
    int id = 0;            ///< original node id
    uint32_t slot = 0;     ///< value-array slot
    Interval preActivation;
    Interval postActivation;
    bool maySaturate = false; ///< post-activation bound can clip
};

/** Result of one network's quantization analysis. */
struct QuantizationAnalysis
{
    Report report;
    FixedPointFormat format;          ///< format analyzed against
    std::vector<Interval> inputBounds;
    std::vector<NodeBound> nodes;     ///< compiled nodes, layer order
    bool guaranteedSafe = false;      ///< no finding of any severity

    /** Minimal safe format at the same fracBits, when one exists. */
    bool suggestionValid = false;
    FixedPointFormat suggested;
};

/**
 * True if quantize(v) saturates (the rounded value falls outside the
 * representable step range and is clipped) rather than merely rounds.
 */
bool formatClips(const FixedPointFormat &format, double v);

/** Endpoint-quantized interval (quantize is monotone). */
Interval quantizeInterval(const FixedPointFormat &format, Interval v);

/**
 * Analyze a (float) definition under @p format: check every weight and
 * bias (E3V101 saturates / E3V102 underflows-to-zero), then propagate
 * @p inputBounds through the quantized network exactly as
 * QuantizedNetwork executes it — quantized input and value storage,
 * full-precision MAC — flagging may-clip inputs (E3V103) and nodes
 * whose post-activation interval can cross the representable range
 * (E3V104).
 *
 * @pre def verifies clean of structural errors
 * @pre inputBounds.size() == def.inputIds.size()
 */
QuantizationAnalysis
analyzeQuantization(const NetworkDef &def,
                    const std::vector<Interval> &inputBounds,
                    const FixedPointFormat &format);

} // namespace e3::verify

#endif // E3_VERIFY_SATURATION_HH
