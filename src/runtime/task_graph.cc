#include "runtime/task_graph.hh"

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "obs/trace.hh"

namespace e3::runtime {

TaskGraph::TaskId
TaskGraph::add(std::string label, ThreadPool::Task fn)
{
    e3_assert(!ran_, "TaskGraph is one-shot; cannot add after run()");
    e3_assert(fn, "task '", label, "' has no body");
    nodes_.push_back(Node{std::move(label), std::move(fn), {}, 0});
    return nodes_.size() - 1;
}

void
TaskGraph::dependsOn(TaskId task, TaskId prerequisite)
{
    e3_assert(task < nodes_.size(), "unknown task id ", task);
    e3_assert(prerequisite < nodes_.size(), "unknown prerequisite id ",
              prerequisite);
    e3_assert(task != prerequisite, "task '", nodes_[task].label,
              "' cannot depend on itself");
    nodes_[prerequisite].successors.push_back(task);
    ++nodes_[task].indegree;
}

void
TaskGraph::run(ThreadPool &pool)
{
    e3_assert(!ran_, "TaskGraph is one-shot; run() already called");
    ran_ = true;
    if (nodes_.empty())
        return;

    // Kahn's algorithm up front: a cycle would otherwise deadlock the
    // drain below.
    {
        std::vector<size_t> indegree(nodes_.size());
        std::vector<TaskId> queue;
        for (TaskId id = 0; id < nodes_.size(); ++id) {
            indegree[id] = nodes_[id].indegree;
            if (indegree[id] == 0)
                queue.push_back(id);
        }
        size_t seen = 0;
        while (seen < queue.size()) {
            const TaskId id = queue[seen++];
            for (TaskId next : nodes_[id].successors) {
                if (--indegree[next] == 0)
                    queue.push_back(next);
            }
        }
        e3_assert(seen == nodes_.size(),
                  "task graph has a dependency cycle");
    }

    struct Run
    {
        Mutex mutex;
        CondVar done;
        std::vector<size_t> indegree E3_GUARDED_BY(mutex);
        size_t remaining E3_GUARDED_BY(mutex) = 0;
        std::exception_ptr error E3_GUARDED_BY(mutex);
        bool failed E3_GUARDED_BY(mutex) = false;
    } state;
    {
        MutexLock lock(state.mutex);
        state.indegree.resize(nodes_.size());
        for (TaskId id = 0; id < nodes_.size(); ++id)
            state.indegree[id] = nodes_[id].indegree;
        state.remaining = nodes_.size();
    }

    // Recursive lambda: executing a node readies its successors.
    std::function<void(TaskId)> execute = [&](TaskId id) {
        bool skip;
        {
            MutexLock lock(state.mutex);
            skip = state.failed;
        }
        std::exception_ptr error;
        if (!skip) {
            try {
                obs::TraceSpan span(nodes_[id].label,
                                    obs::TraceDetail::Task);
                nodes_[id].fn();
            } catch (...) {
                error = std::current_exception();
            }
        }

        std::vector<TaskId> ready;
        {
            MutexLock lock(state.mutex);
            if (error) {
                if (!state.error)
                    state.error = error;
                state.failed = true;
            }
            for (TaskId next : nodes_[id].successors) {
                if (--state.indegree[next] == 0)
                    ready.push_back(next);
            }
            // Last node signals under the lock, then never touches
            // `state` again — safe against the waiter returning.
            if (--state.remaining == 0)
                state.done.notify_all();
        }
        for (TaskId next : ready)
            pool.submit([&execute, next] { execute(next); });
    };

    size_t rootCursor = 0;
    for (TaskId id = 0; id < nodes_.size(); ++id) {
        if (nodes_[id].indegree != 0)
            continue;
        pool.submitTo(rootCursor++ % pool.workerCount(),
                      [&execute, id] { execute(id); });
    }

    MutexLock lock(state.mutex);
    while (state.remaining != 0)
        state.done.wait(lock);
    if (state.error)
        std::rethrow_exception(state.error);
}

} // namespace e3::runtime
