#include "runtime/parallel_eval.hh"

#include "common/logging.hh"
#include "obs/trace.hh"
#include "runtime/task_graph.hh"

namespace e3::runtime {

ParallelEval::ParallelEval(const RuntimeConfig &cfg) : cfg_(cfg)
{
    if (cfg_.threads > 1)
        pool_ = std::make_unique<ThreadPool>(cfg_.threads);
}

ParallelEval::~ParallelEval() = default;

void
ParallelEval::runLane(const EvalPlan &plan,
                      std::vector<std::unique_ptr<VectorEnv>> &venvs,
                      EvalOutcome &out, size_t lane) const
{
    // Episode rounds run in order within the lane, exactly like the
    // lockstep path: reset consumes the lane's private stream, then
    // the policy drives the episode to termination or the step cap.
    obs::TraceSpan span("lane", obs::TraceDetail::Task);
    double sum = 0.0;
    for (size_t e = 0; e < venvs.size(); ++e) {
        VectorEnv &venv = *venvs[e];
        venv.resetLane(lane);
        bool finished = venv.done(lane);
        while (!finished)
            finished = venv.stepLane(
                lane, plan.act(lane, venv.observation(lane)));
        out.episodeLengths[e][lane] = venv.steps(lane);
        sum += venv.fitness(lane);
    }
    out.fitness[lane] =
        sum / static_cast<double>(venvs.size());
}

EvalOutcome
ParallelEval::evaluate(const EvalPlan &plan)
{
    e3_assert(plan.spec, "evaluation plan needs an environment spec");
    e3_assert(plan.act, "evaluation plan needs a policy");
    e3_assert(!plan.episodeSeeds.empty(),
              "evaluation plan needs at least one episode round");
    for (const auto &group : plan.groups) {
        for (size_t lane : group.lanes) {
            e3_assert(lane < plan.lanes, "group ", group.id,
                      " references lane ", lane, " of ", plan.lanes);
        }
    }

    EvalOutcome out;
    if (plan.lanes == 0)
        return out;
    out.fitness.assign(plan.lanes, 0.0);
    out.episodeLengths.assign(plan.episodeSeeds.size(),
                              std::vector<int>(plan.lanes, 0));

    // VectorEnv construction derives every lane's RNG stream up front
    // on this thread — the same split sequence the lockstep path uses,
    // so streams are a pure function of (episode seed, lane index).
    std::vector<std::unique_ptr<VectorEnv>> venvs;
    venvs.reserve(plan.episodeSeeds.size());
    for (uint64_t seed : plan.episodeSeeds)
        venvs.push_back(
            std::make_unique<VectorEnv>(*plan.spec, plan.lanes, seed));

    // Determinism sentinel: fold every lane's stream digest in fixed
    // (episode round, lane) order — independent of which worker ran
    // what when — and accumulate into the run-level digest. Runs once
    // per evaluation, after fan-in, on the calling thread.
    auto foldAudit = [&] {
        for (const auto &venv : venvs) {
            for (size_t i = 0; i < plan.lanes; ++i)
                out.rngAudit.mixAudit(venv->laneAudit(i));
        }
        audit_.mixAudit(out.rngAudit);
    };

    // One sample per evaluation on the env-step counter track: the
    // rollout volume behind this generation's evaluate phase.
    auto emitStepCounter = [&out] {
        if (!obs::traceEnabled())
            return;
        double steps = 0.0;
        for (const auto &round : out.episodeLengths) {
            for (int s : round)
                steps += static_cast<double>(s);
        }
        obs::traceCounter("eval.env_steps", steps,
                          obs::TraceDetail::Phase);
    };

    if (!pool_) {
        for (size_t i = 0; i < plan.lanes; ++i)
            runLane(plan, venvs, out, i);
        if (plan.onGroupDone) {
            for (const auto &group : plan.groups) {
                obs::TraceSpan span("species_summary",
                                    obs::TraceDetail::Task);
                plan.onGroupDone(group, out.fitness);
            }
        }
        foldAudit();
        emitStepCounter();
        return out;
    }

    const bool overlap =
        cfg_.asyncOverlap && plan.onGroupDone && !plan.groups.empty();
    if (!overlap) {
        pool_->parallelFor(plan.lanes, [&](size_t i) {
            runLane(plan, venvs, out, i);
        });
        if (plan.onGroupDone) {
            for (const auto &group : plan.groups) {
                obs::TraceSpan span("species_summary",
                                    obs::TraceDetail::Task);
                plan.onGroupDone(group, out.fitness);
            }
        }
        foldAudit();
        emitStepCounter();
        return out;
    }

    // Async overlap: each group's summary task depends only on its own
    // lanes, so it runs while other groups' episodes are still going.
    TaskGraph graph;
    std::vector<TaskGraph::TaskId> laneTask(plan.lanes);
    for (size_t i = 0; i < plan.lanes; ++i) {
        laneTask[i] = graph.add(
            "lane" + std::to_string(i),
            [&, i] { runLane(plan, venvs, out, i); });
    }
    for (const auto &group : plan.groups) {
        const TaskGraph::TaskId summary = graph.add(
            "group" + std::to_string(group.id),
            [&, &group = group] {
                plan.onGroupDone(group, out.fitness);
            });
        for (size_t lane : group.lanes)
            graph.dependsOn(summary, laneTask[lane]);
    }
    graph.run(*pool_);
    foldAudit();
    emitStepCounter();
    return out;
}

Counters
ParallelEval::counters() const
{
    Counters out;
    if (pool_)
        pool_->exportCounters(out);
    return out;
}

} // namespace e3::runtime
