/**
 * @file
 * Fixed-size worker pool with one work-stealing deque per worker.
 *
 * The evaluate phase is embarrassingly parallel — one episode per
 * individual, each terminating on its own schedule (paper Sec. V-B) —
 * but episode lengths vary wildly (the irregularity of Fig. 4), so a
 * static partition of lanes leaves workers idle behind the longest
 * episodes. Each worker therefore owns a deque: tasks are dealt
 * round-robin at submit time (a deterministic initial placement),
 * owners pop oldest-first, and an idle worker steals from the back of
 * a victim's deque. Stealing only moves *where* a task executes; tasks
 * write disjoint results, so outcomes are schedule-independent.
 *
 * Per-worker counters (tasks run, tasks stolen, idle seconds) feed the
 * utilization accounting in common/stats — the software analogue of
 * the paper's U(PE)/U(PU) hardware counters.
 */

#ifndef E3_RUNTIME_THREAD_POOL_HH
#define E3_RUNTIME_THREAD_POOL_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/stats.hh"
#include "common/thread_annotations.hh"

namespace e3::runtime {

/** Execution counters of one pool worker. */
struct WorkerStats
{
    uint64_t tasksRun = 0;    ///< tasks executed by this worker
    uint64_t tasksStolen = 0; ///< subset of tasksRun taken from a victim
    double idleSeconds = 0.0; ///< time spent waiting for work
};

/** Fixed set of worker threads with per-worker work-stealing deques. */
class ThreadPool
{
  public:
    using Task = std::function<void()>;

    /** Spawn @p workers threads (at least one). */
    explicit ThreadPool(size_t workers);

    /** Stops and joins all workers. @pre no batch is still in flight. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    size_t workerCount() const { return workers_.size(); }

    /** Enqueue a task on the next deque (round-robin). */
    void submit(Task task);

    /** Enqueue a task on a specific worker's deque. */
    void submitTo(size_t worker, Task task);

    /**
     * Deterministic fan-out/fan-in: run body(i) for every i in [0, n)
     * and block until all iterations finished. Iterations are chunked
     * by @p grain, dealt round-robin across the worker deques, and may
     * be stolen. The caller must ensure iterations write disjoint
     * state; then the result is identical for every worker count and
     * schedule. The first exception thrown by an iteration is
     * rethrown here (remaining iterations may be skipped).
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &body,
                     size_t grain = 1);

    /** Snapshot of every worker's counters. */
    std::vector<WorkerStats> stats() const;

    /**
     * Export worker counters into a stat group:
     * `<prefix>worker<i>.tasks_run|tasks_stolen|idle_seconds` plus
     * `<prefix>tasks_run|tasks_stolen|idle_seconds` totals.
     */
    void exportCounters(Counters &out,
                        const std::string &prefix = "runtime.") const;

  private:
    struct Worker
    {
        mutable Mutex mutex;
        std::deque<Task> deque E3_GUARDED_BY(mutex);
        std::atomic<uint64_t> tasksRun{0};
        std::atomic<uint64_t> tasksStolen{0};
        std::atomic<double> idleSeconds{0.0};
    };

    void workerLoop(size_t index);
    bool popOwn(size_t index, Task &task);
    bool stealFrom(size_t thief, Task &task);
    void enqueue(size_t worker, Task task);

    std::vector<std::unique_ptr<Worker>> workers_;
    std::vector<std::thread> threads_;

    /** Sleep/wake protocol: epoch bumps on every submit. */
    Mutex sleepMutex_;
    CondVar workAvailable_;
    uint64_t epoch_ E3_GUARDED_BY(sleepMutex_) = 0;
    bool stop_ E3_GUARDED_BY(sleepMutex_) = false;

    std::atomic<size_t> nextWorker_{0}; ///< round-robin deal cursor

    /** Tasks submitted but not yet claimed (trace queue-depth track). */
    std::atomic<int64_t> queued_{0};
};

} // namespace e3::runtime

#endif // E3_RUNTIME_THREAD_POOL_HH
