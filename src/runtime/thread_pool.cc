#include "runtime/thread_pool.hh"

#include <chrono>
#include <exception>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace e3::runtime {

ThreadPool::ThreadPool(size_t workers)
{
    e3_assert(workers >= 1, "thread pool needs at least one worker");
    workers_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        workers_.push_back(std::make_unique<Worker>());
    threads_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        threads_.emplace_back([this, i] { workerLoop(i); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(sleepMutex_);
        stop_ = true;
    }
    workAvailable_.notify_all();
    for (auto &thread : threads_)
        thread.join();
}

void
ThreadPool::enqueue(size_t worker, Task task)
{
    e3_assert(worker < workers_.size(), "worker ", worker,
              " out of range");
    {
        Worker &target = *workers_[worker];
        MutexLock lock(target.mutex);
        target.deque.push_back(std::move(task));
    }
    const int64_t depth =
        queued_.fetch_add(1, std::memory_order_relaxed) + 1;
    obs::traceCounter("pool.queued", static_cast<double>(depth),
                      obs::TraceDetail::Task);
    {
        MutexLock lock(sleepMutex_);
        ++epoch_;
    }
    workAvailable_.notify_all();
}

void
ThreadPool::submit(Task task)
{
    const size_t worker =
        nextWorker_.fetch_add(1, std::memory_order_relaxed) %
        workers_.size();
    enqueue(worker, std::move(task));
}

void
ThreadPool::submitTo(size_t worker, Task task)
{
    enqueue(worker, std::move(task));
}

bool
ThreadPool::popOwn(size_t index, Task &task)
{
    Worker &self = *workers_[index];
    MutexLock lock(self.mutex);
    if (self.deque.empty())
        return false;
    task = std::move(self.deque.front());
    self.deque.pop_front();
    // Counted at claim time, under the deque lock: whoever observes a
    // later claim from this deque also sees this task counted.
    self.tasksRun.fetch_add(1, std::memory_order_relaxed);
    return true;
}

bool
ThreadPool::stealFrom(size_t thief, Task &task)
{
    const size_t n = workers_.size();
    for (size_t k = 1; k < n; ++k) {
        Worker &victim = *workers_[(thief + k) % n];
        MutexLock lock(victim.mutex);
        if (victim.deque.empty())
            continue;
        task = std::move(victim.deque.back());
        victim.deque.pop_back();
        workers_[thief]->tasksRun.fetch_add(
            1, std::memory_order_relaxed);
        workers_[thief]->tasksStolen.fetch_add(
            1, std::memory_order_relaxed);
        obs::traceInstant("steal", obs::TraceDetail::Task);
        return true;
    }
    return false;
}

void
ThreadPool::workerLoop(size_t index)
{
    obs::traceSetThreadName("worker" + std::to_string(index));
    Worker &self = *workers_[index];
    for (;;) {
        uint64_t seen;
        {
            MutexLock lock(sleepMutex_);
            if (stop_)
                return;
            seen = epoch_;
        }

        Task task;
        if (popOwn(index, task) || stealFrom(index, task)) {
            const int64_t depth =
                queued_.fetch_sub(1, std::memory_order_relaxed) - 1;
            obs::traceCounter("pool.queued",
                              static_cast<double>(depth),
                              obs::TraceDetail::Task);
            {
                obs::TraceSpan span("task", obs::TraceDetail::Task);
                task();
            }
            continue;
        }

        // Nothing anywhere: sleep until a submit bumps the epoch. A
        // task pushed after the scan above bumped the epoch past
        // `seen`, so the predicate fails and we rescan immediately.
        MutexLock lock(sleepMutex_);
        // e3-lint: wall-clock-ok -- idle-time measurement; never feeds RNG
        const auto idleStart = std::chrono::steady_clock::now();
        while (!stop_ && epoch_ == seen)
            workAvailable_.wait(lock);
        const std::chrono::duration<double> idle =
            // e3-lint: wall-clock-ok -- idle-time measurement; never feeds RNG
            std::chrono::steady_clock::now() - idleStart;
        self.idleSeconds.fetch_add(idle.count(),
                                   std::memory_order_relaxed);
        if (stop_)
            return;
    }
}

void
ThreadPool::parallelFor(size_t n,
                        const std::function<void(size_t)> &body,
                        size_t grain)
{
    if (n == 0)
        return;
    e3_assert(grain >= 1, "parallelFor grain must be >= 1");

    struct Batch
    {
        Mutex mutex;
        CondVar done;
        size_t remaining E3_GUARDED_BY(mutex) = 0;
        std::exception_ptr error E3_GUARDED_BY(mutex);
        std::atomic<bool> failed{false};
    } batch;
    const size_t chunks = (n + grain - 1) / grain;
    {
        MutexLock lock(batch.mutex);
        batch.remaining = chunks;
    }

    for (size_t c = 0; c < chunks; ++c) {
        const size_t lo = c * grain;
        const size_t hi = std::min(n, lo + grain);
        // Deterministic deal: chunk c always starts on deque c % W;
        // stealing may move it, but results are index-disjoint.
        submitTo(c % workers_.size(), [&batch, &body, lo, hi] {
            std::exception_ptr error;
            if (!batch.failed.load(std::memory_order_relaxed)) {
                try {
                    for (size_t i = lo; i < hi; ++i)
                        body(i);
                } catch (...) {
                    error = std::current_exception();
                    batch.failed.store(true,
                                       std::memory_order_relaxed);
                }
            }
            // Decrement and notify under one lock hold: the waiter can
            // only observe remaining == 0 after this task released the
            // mutex and will never touch the batch again.
            MutexLock lock(batch.mutex);
            if (error && !batch.error)
                batch.error = error;
            if (--batch.remaining == 0)
                batch.done.notify_all();
        });
    }

    MutexLock lock(batch.mutex);
    while (batch.remaining != 0)
        batch.done.wait(lock);
    if (batch.error)
        std::rethrow_exception(batch.error);
}

std::vector<WorkerStats>
ThreadPool::stats() const
{
    std::vector<WorkerStats> out;
    out.reserve(workers_.size());
    for (const auto &worker : workers_) {
        WorkerStats ws;
        ws.tasksRun = worker->tasksRun.load(std::memory_order_relaxed);
        ws.tasksStolen =
            worker->tasksStolen.load(std::memory_order_relaxed);
        ws.idleSeconds =
            worker->idleSeconds.load(std::memory_order_relaxed);
        out.push_back(ws);
    }
    return out;
}

void
ThreadPool::exportCounters(Counters &out,
                           const std::string &prefix) const
{
    const std::vector<WorkerStats> all = stats();
    for (size_t i = 0; i < all.size(); ++i) {
        const std::string base =
            prefix + "worker" + std::to_string(i) + ".";
        out.add(base + "tasks_run",
                static_cast<double>(all[i].tasksRun));
        out.add(base + "tasks_stolen",
                static_cast<double>(all[i].tasksStolen));
        out.add(base + "idle_seconds", all[i].idleSeconds);
    }
    double run = 0.0;
    double stolen = 0.0;
    double idle = 0.0;
    for (const auto &ws : all) {
        run += static_cast<double>(ws.tasksRun);
        stolen += static_cast<double>(ws.tasksStolen);
        idle += ws.idleSeconds;
    }
    out.add(prefix + "tasks_run", run);
    out.add(prefix + "tasks_stolen", stolen);
    out.add(prefix + "idle_seconds", idle);
}

} // namespace e3::runtime
