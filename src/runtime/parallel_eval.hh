/**
 * @file
 * Parallel population evaluation with a bit-identical serial fallback.
 *
 * One evaluation "lane" per individual: the lane rolls its episodes to
 * completion on whichever worker picks it up. Determinism comes from
 * stream isolation, not scheduling: every lane's RNG stream is derived
 * up front by the VectorEnv constructor (a pure function of the
 * episode seed and the lane index — and the lane order is the genome
 * key order, so effectively of (seed, generation, genome key)), lanes
 * never share mutable state, and results land in per-lane slots. Any
 * worker count, including the serial threads<=1 path, produces the
 * same bits.
 *
 * Async overlap (CLAN-style): callers may group lanes (one group per
 * NEAT species) and attach a group callback. The callback runs on a
 * worker as soon as the last lane of its group finishes — while other
 * groups are still evaluating — which lets the fitness-dependent but
 * RNG-free prefix of "evolve" (per-species fitness summaries and
 * member ranking) overlap the evaluate tail.
 */

#ifndef E3_RUNTIME_PARALLEL_EVAL_HH
#define E3_RUNTIME_PARALLEL_EVAL_HH

#include <functional>
#include <memory>
#include <vector>

#include "env/vector_env.hh"
#include "runtime/thread_pool.hh"

namespace e3::runtime {

/** Execution knobs of the evaluation runtime. */
struct RuntimeConfig
{
    /** Worker threads; <= 1 keeps everything on the calling thread. */
    size_t threads = 1;

    /**
     * Overlap per-group (per-species) evolve-side summary work with
     * the evaluate tail via the task graph. Functionally identical to
     * the non-overlapped path; only wall-clock differs.
     */
    bool asyncOverlap = false;
};

/** One population evaluation request. */
struct EvalPlan
{
    const EnvSpec *spec = nullptr; ///< environment for every lane
    size_t lanes = 0;              ///< population size
    /** One master seed per episode round (VectorEnv seeding). */
    std::vector<uint64_t> episodeSeeds;

    /**
     * Policy of lane i: map an observation to an env action. Called
     * concurrently for distinct lanes; must not share mutable state
     * across lanes.
     */
    std::function<Action(size_t lane, const Observation &obs)> act;

    /** A set of lanes whose completion unlocks follow-up work. */
    struct Group
    {
        int id = 0;                ///< caller's key (e.g. species id)
        std::vector<size_t> lanes; ///< member lane indices
    };
    std::vector<Group> groups;

    /**
     * Runs once per group after all its lanes finished — on a worker
     * in async-overlap mode, inline after evaluation otherwise. The
     * per-lane mean fitness of the group's lanes is final when called.
     * Must write only group-private state.
     */
    std::function<void(const Group &group,
                       const std::vector<double> &laneFitness)>
        onGroupDone;
};

/** Per-lane results of one evaluation. */
struct EvalOutcome
{
    /** Mean episode fitness per lane (over all episode rounds). */
    std::vector<double> fitness;
    /** episodeLengths[e][i] = env steps of lane i in episode round e. */
    std::vector<std::vector<int>> episodeLengths;
    /**
     * Determinism-sentinel digest: every lane's RNG stream digest
     * folded in (episode round, lane) order. A pure function of
     * (seed, generation, genome key) when evaluation is correct;
     * any scheduling-dependent draw diverges it immediately.
     */
    RngAudit rngAudit;
};

/** Evaluation runtime: owns the worker pool and utilization counters. */
class ParallelEval
{
  public:
    explicit ParallelEval(const RuntimeConfig &cfg);
    ~ParallelEval();

    /** Evaluate every lane; blocks until fan-in. */
    EvalOutcome evaluate(const EvalPlan &plan);

    size_t threads() const { return cfg_.threads; }
    bool asyncOverlap() const { return cfg_.asyncOverlap; }

    /** Pool utilization counters accumulated so far (empty if serial). */
    Counters counters() const;

    /**
     * The determinism sentinel: RNG stream digests of every
     * evaluate() call so far, folded in submission order. Serial,
     * 2/4/8-thread and async runs of the same experiment must return
     * identical digests — compare them across configurations (the
     * determinism-sentinel test and CI job do) to catch
     * scheduling-dependent draws at the source.
     */
    RngAudit auditDeterminism() const { return audit_; }

  private:
    void runLane(const EvalPlan &plan,
                 std::vector<std::unique_ptr<VectorEnv>> &venvs,
                 EvalOutcome &out, size_t lane) const;

    RuntimeConfig cfg_;
    std::unique_ptr<ThreadPool> pool_; ///< null on the serial path
    RngAudit audit_; ///< fold of every evaluation's rngAudit
};

} // namespace e3::runtime

#endif // E3_RUNTIME_PARALLEL_EVAL_HH
