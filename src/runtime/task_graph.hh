/**
 * @file
 * A small dependency graph executed on a ThreadPool.
 *
 * The async evolve/evaluate overlap is a DAG: per-lane episode tasks
 * fan out, and each species' fitness-summary task depends only on the
 * lanes of that species — so summaries start the moment their species
 * finishes, while other lanes are still rolling out (the CLAN-style
 * overlap of CPU-side evolve work with the evaluate tail). Tasks write
 * disjoint state, so any legal schedule yields the same result.
 */

#ifndef E3_RUNTIME_TASK_GRAPH_HH
#define E3_RUNTIME_TASK_GRAPH_HH

#include <string>
#include <vector>

#include "runtime/thread_pool.hh"

namespace e3::runtime {

/** One-shot dependency DAG; build with add()/dependsOn(), then run(). */
class TaskGraph
{
  public:
    using TaskId = size_t;

    /** Add a node; returns its id. @p label shows up in error reports. */
    TaskId add(std::string label, ThreadPool::Task fn);

    /** Require @p prerequisite to finish before @p task starts. */
    void dependsOn(TaskId task, TaskId prerequisite);

    size_t taskCount() const { return nodes_.size(); }

    /**
     * Execute every node on the pool, respecting dependencies; blocks
     * until all nodes finished. Roots are dealt round-robin in
     * insertion order (deterministic initial placement). If a node
     * throws, its transitive dependents are skipped and the first
     * exception is rethrown after the graph drains. A TaskGraph is
     * one-shot: run() may be called once.
     */
    void run(ThreadPool &pool);

  private:
    struct Node
    {
        std::string label;
        ThreadPool::Task fn;
        std::vector<TaskId> successors;
        size_t indegree = 0;
    };

    std::vector<Node> nodes_;
    bool ran_ = false;
};

} // namespace e3::runtime

#endif // E3_RUNTIME_TASK_GRAPH_HH
