#include "obs/metrics.hh"

#include <cstdio>
#include <fstream>

#include "common/csv.hh"
#include "common/logging.hh"
#include "obs/trace.hh"

namespace e3::obs {

namespace {

std::string
formatValue(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

} // namespace

MetricsRegistry::MetricsRegistry(const MetricsRegistry &other)
{
    MutexLock lock(other.mutex_);
    MutexLock selfLock(mutex_); // fresh object: trivially uncontended
    metrics_ = other.metrics_;
    rows_ = other.rows_;
}

MetricsRegistry &
MetricsRegistry::operator=(const MetricsRegistry &other)
{
    if (this == &other)
        return *this;
    // std::scoped_lock underneath: deadlock-free whichever order two
    // threads cross-assign registries.
    MutexLockPair lock(mutex_, other.mutex_);
    metrics_ = other.metrics_;
    rows_ = other.rows_;
    return *this;
}

size_t
MetricsRegistry::indexOf(const std::string &name, bool gauge)
{
    for (size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name) {
            e3_assert(metrics_[i].gauge == gauge,
                      "metric '", name, "' used as both counter and "
                      "gauge");
            return i;
        }
    }
    Metric m;
    m.name = name;
    m.gauge = gauge;
    metrics_.push_back(std::move(m));
    return metrics_.size() - 1;
}

size_t
MetricsRegistry::findIndex(const std::string &name) const
{
    for (size_t i = 0; i < metrics_.size(); ++i) {
        if (metrics_[i].name == name)
            return i;
    }
    return metrics_.size();
}

void
MetricsRegistry::add(const std::string &name, double delta)
{
    MutexLock lock(mutex_);
    metrics_[indexOf(name, /*gauge=*/false)].current += delta;
}

void
MetricsRegistry::setCounter(const std::string &name, double cumulative)
{
    MutexLock lock(mutex_);
    metrics_[indexOf(name, /*gauge=*/false)].current = cumulative;
}

void
MetricsRegistry::setGauge(const std::string &name, double value)
{
    MutexLock lock(mutex_);
    metrics_[indexOf(name, /*gauge=*/true)].current = value;
}

void
MetricsRegistry::importCounters(const std::string &scope,
                                const Counters &src)
{
    const std::string prefix = scope.empty() ? "" : scope + ".";
    for (const auto &name : src.names())
        setCounter(prefix + name, src.get(name));
}

double
MetricsRegistry::value(const std::string &name) const
{
    MutexLock lock(mutex_);
    const size_t i = findIndex(name);
    return i < metrics_.size() ? metrics_[i].current : 0.0;
}

void
MetricsRegistry::snapshotGeneration(int generation)
{
    MutexLock lock(mutex_);
    Row row;
    row.generation = generation;
    row.values.reserve(metrics_.size());
    for (auto &metric : metrics_) {
        if (metric.gauge) {
            row.values.push_back(metric.current);
        } else {
            row.values.push_back(metric.current - metric.lastSnapshot);
            metric.lastSnapshot = metric.current;
        }
    }
    rows_.push_back(std::move(row));
}

std::vector<std::string>
MetricsRegistry::names() const
{
    MutexLock lock(mutex_);
    std::vector<std::string> out;
    out.reserve(metrics_.size());
    for (const auto &metric : metrics_)
        out.push_back(metric.name);
    return out;
}

size_t
MetricsRegistry::metricCount() const
{
    MutexLock lock(mutex_);
    return metrics_.size();
}

size_t
MetricsRegistry::snapshotCount() const
{
    MutexLock lock(mutex_);
    return rows_.size();
}

int
MetricsRegistry::snapshotGenerationAt(size_t row) const
{
    MutexLock lock(mutex_);
    e3_assert(row < rows_.size(), "snapshot row ", row,
              " out of range");
    return rows_[row].generation;
}

double
MetricsRegistry::snapshotValue(size_t row,
                               const std::string &name) const
{
    MutexLock lock(mutex_);
    e3_assert(row < rows_.size(), "snapshot row ", row,
              " out of range");
    const size_t i = findIndex(name);
    if (i >= rows_[row].values.size())
        return 0.0;
    return rows_[row].values[i];
}

std::string
MetricsRegistry::toCsv() const
{
    MutexLock lock(mutex_);
    CsvWriter csv;
    std::vector<std::string> header;
    header.reserve(metrics_.size() + 1);
    header.push_back("generation");
    for (const auto &metric : metrics_)
        header.push_back(metric.name);
    csv.header(std::move(header));
    for (const auto &row : rows_) {
        std::vector<std::string> cells;
        cells.reserve(metrics_.size() + 1);
        cells.push_back(std::to_string(row.generation));
        for (size_t i = 0; i < metrics_.size(); ++i) {
            cells.push_back(i < row.values.size()
                                ? formatValue(row.values[i])
                                : "0");
        }
        csv.row(std::move(cells));
    }
    return csv.str();
}

std::string
MetricsRegistry::toJson() const
{
    MutexLock lock(mutex_);
    std::string out = "{\"metrics\":[";
    for (size_t i = 0; i < metrics_.size(); ++i) {
        if (i)
            out += ",";
        out += jsonQuote(metrics_[i].name);
    }
    out += "],\"snapshots\":[\n";
    for (size_t r = 0; r < rows_.size(); ++r) {
        if (r)
            out += ",\n";
        out += "{\"generation\":" + std::to_string(rows_[r].generation);
        for (size_t i = 0; i < metrics_.size(); ++i) {
            out += ",";
            out += jsonQuote(metrics_[i].name);
            out += ":";
            out += formatValue(i < rows_[r].values.size()
                                   ? rows_[r].values[i]
                                   : 0.0);
        }
        out += "}";
    }
    out += "\n]}\n";
    return out;
}

bool
MetricsRegistry::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open metrics file '", path, "' for writing");
        return false;
    }
    out << toCsv();
    return static_cast<bool>(out);
}

bool
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open metrics file '", path, "' for writing");
        return false;
    }
    out << toJson();
    return static_cast<bool>(out);
}

void
MetricsRegistry::reset()
{
    MutexLock lock(mutex_);
    metrics_.clear();
    rows_.clear();
}

std::string
combinedMetricsCsv(
    const std::vector<std::pair<std::string, const MetricsRegistry *>>
        &labeled)
{
    // Union of metric names in first-seen order.
    std::vector<std::string> columns;
    for (const auto &[label, reg] : labeled) {
        for (const auto &name : reg->names()) {
            bool known = false;
            for (const auto &existing : columns)
                known = known || existing == name;
            if (!known)
                columns.push_back(name);
        }
    }

    CsvWriter csv;
    std::vector<std::string> header;
    header.push_back("label");
    header.push_back("generation");
    for (const auto &name : columns)
        header.push_back(name);
    csv.header(std::move(header));

    for (const auto &[label, reg] : labeled) {
        for (size_t r = 0; r < reg->snapshotCount(); ++r) {
            std::vector<std::string> cells;
            cells.push_back(label);
            cells.push_back(
                std::to_string(reg->snapshotGenerationAt(r)));
            for (const auto &name : columns)
                cells.push_back(formatValue(reg->snapshotValue(r, name)));
            csv.row(std::move(cells));
        }
    }
    return csv.str();
}

} // namespace e3::obs
