/**
 * @file
 * Hierarchical per-generation metrics registry.
 *
 * One registry per run unifies everything the platform already counts
 * — modeled phase seconds (common/timing), runtime pool counters
 * (common/stats), fitness/species statistics — under dot-scoped names
 * ("modeled.evaluate_seconds", "runtime.tasks_stolen", ...), and cuts
 * a snapshot row per generation. Counter metrics snapshot the *delta*
 * since the previous snapshot (so each generation's row is isolated);
 * gauge metrics snapshot their current value. Export as wide CSV (one
 * row per generation, one column per metric — the fig9-style
 * per-generation breakdown) or JSON.
 */

#ifndef E3_OBS_METRICS_HH
#define E3_OBS_METRICS_HH

#include <string>
#include <utility>
#include <vector>

#include "common/stats.hh"
#include "common/thread_annotations.hh"

namespace e3::obs {

/** Thread-safe, copyable registry of named counters and gauges. */
class MetricsRegistry
{
  public:
    MetricsRegistry() = default;
    MetricsRegistry(const MetricsRegistry &other);
    MetricsRegistry &operator=(const MetricsRegistry &other);

    /** Add @p delta to the named counter (created at zero). */
    void add(const std::string &name, double delta);

    /**
     * Set a counter's *cumulative* value directly — for sources that
     * already accumulate across generations (PhaseTimer seconds, pool
     * counters). Snapshots still record the per-generation delta.
     */
    void setCounter(const std::string &name, double cumulative);

    /** Set a gauge; snapshots record the value as-is. */
    void setGauge(const std::string &name, double value);

    /**
     * Import a common/stats counter group under `scope.<name>` as
     * cumulative counters. An empty scope imports the names as-is
     * (for groups that already carry their own prefix).
     */
    void importCounters(const std::string &scope, const Counters &src);

    /** Current cumulative/gauge value; 0 if never touched. */
    double value(const std::string &name) const;

    /** Close the current generation: record one snapshot row. */
    void snapshotGeneration(int generation);

    /** Metric names in creation order. */
    std::vector<std::string> names() const;

    size_t metricCount() const;
    size_t snapshotCount() const;

    /** Generation label of snapshot row @p row. */
    int snapshotGenerationAt(size_t row) const;

    /**
     * Value of @p name in snapshot row @p row; 0 if the metric did not
     * exist yet when the row was cut.
     */
    double snapshotValue(size_t row, const std::string &name) const;

    /** Wide CSV: header `generation,<metric...>`, one row per snapshot. */
    std::string toCsv() const;

    /** JSON document: metric names + one object per snapshot. */
    std::string toJson() const;

    /** toCsv()/toJson() to a file; warn()s and returns false on error. */
    bool writeCsv(const std::string &path) const;
    bool writeJson(const std::string &path) const;

    /** Drop all metrics and snapshots. */
    void reset();

  private:
    struct Metric
    {
        std::string name;
        bool gauge = false;
        double current = 0.0;
        double lastSnapshot = 0.0; ///< counter value at the last row
    };

    struct Row
    {
        int generation = 0;
        /** Aligned to metrics_ order; may be shorter than metrics_. */
        std::vector<double> values;
    };

    size_t indexOf(const std::string &name, bool gauge)
        E3_REQUIRES(mutex_);
    size_t findIndex(const std::string &name) const
        E3_REQUIRES(mutex_);

    mutable Mutex mutex_;
    std::vector<Metric> metrics_ E3_GUARDED_BY(mutex_);
    std::vector<Row> rows_ E3_GUARDED_BY(mutex_);
};

/**
 * Merge several labeled registries into one CSV with a leading label
 * column (used by the suite benches: one registry per env/backend).
 * Columns are the union of all metric names, in first-seen order.
 */
std::string combinedMetricsCsv(
    const std::vector<std::pair<std::string, const MetricsRegistry *>>
        &labeled);

} // namespace e3::obs

#endif // E3_OBS_METRICS_HH
