/**
 * @file
 * Low-overhead trace recorder emitting Chrome trace-event JSON.
 *
 * The paper's headline artifacts (Fig. 1/3 timing profiles, Fig. 9
 * runtime breakdown, Fig. 6/7 utilization) are observability products.
 * This recorder makes every run replayable: scoped spans on real
 * threads capture where wall-clock goes once --threads/--async
 * interleave evolve and evaluate, and *virtual* tracks replay the INAX
 * model's per-PU/PE busy cycles on a modeled-time axis. The output
 * loads directly in Perfetto (https://ui.perfetto.dev) or
 * chrome://tracing.
 *
 * Cost model: when disabled (the default), every emission path is one
 * relaxed atomic load and an early return — no locks, no allocation.
 * When enabled, events append to a per-thread buffer behind that
 * buffer's own (uncontended) mutex; buffers are drained once at
 * traceStop(). All of it is thread-safe and TSan-clean.
 */

#ifndef E3_OBS_TRACE_HH
#define E3_OBS_TRACE_HH

#include <cstdint>
#include <string>

namespace e3::obs {

/**
 * How much to record. Each level includes the ones before it:
 *  - Phase: per-generation platform phases (evaluate/evolve/...).
 *  - Task:  thread-pool task spans, queue-depth counters, steals.
 *  - Hw:    modeled INAX timelines (per-PU inference, DMA, sync).
 */
enum class TraceDetail { Phase = 0, Task = 1, Hw = 2 };

/** Parse "phase" | "task" | "hw"; returns false on anything else. */
bool parseTraceDetail(const std::string &text, TraceDetail &out);

/** True if tracing is on at all (one relaxed atomic load). */
bool traceEnabled();

/** True if tracing is on and records events of this detail level. */
bool traceEnabled(TraceDetail detail);

/** Enable recording at the given detail; resets any buffered events. */
void traceStart(TraceDetail detail);

/**
 * Disable recording, serialize everything buffered so far as a Chrome
 * trace-event JSON document, and clear the buffers.
 */
std::string traceStopToString();

/**
 * traceStopToString() straight to a file.
 * @return true on success; warn()s and returns false otherwise.
 */
bool traceStop(const std::string &path);

/** Disable and drop all buffered events (test helper). */
void traceReset();

/** Microseconds since process start (the trace's wall-clock axis). */
double traceNowUs();

/** Name the calling thread in the trace (e.g. "worker3"). */
void traceSetThreadName(const std::string &name);

/** Emit a completed span [tsUs, tsUs+durUs] on the calling thread. */
void traceComplete(const char *name, TraceDetail detail, double tsUs,
                   double durUs);

/** Emit a counter sample on the process counter track. */
void traceCounter(const char *name, double value,
                  TraceDetail detail = TraceDetail::Phase);

/** Emit an instant event (e.g. a work steal) on the calling thread. */
void traceInstant(const char *name,
                  TraceDetail detail = TraceDetail::Task);

/**
 * A virtual timeline: a (process, thread) pair that exists only in the
 * trace. Used to plot modeled hardware activity (each INAX PU, the DMA
 * engine, the sync channel) against a modeled-cycle time axis.
 */
struct TraceTrack
{
    int pid = 0;
    int tid = 0;
};

/**
 * Look up (or create) the virtual track named process/thread. Tracks
 * are stable for the lifetime of the trace session. Only call when
 * traceEnabled(TraceDetail::Hw) — returns {0,0} otherwise.
 */
TraceTrack traceTrack(const std::string &process,
                      const std::string &thread);

/** Emit a completed span with an explicit (modeled) timestamp. */
void traceCompleteOn(const TraceTrack &track, const char *name,
                     double tsUs, double durUs);

/** Emit a counter sample on a virtual track's process. */
void traceCounterOn(const TraceTrack &track, const char *name,
                    double tsUs, double value);

/**
 * Claim @p cycles on the global modeled-hardware clock and return the
 * cycle the claim starts at. Serializes modeled timeline segments
 * (setup, step windows) across sessions and generations so they never
 * overlap on the trace's time axis. Resets to 0 at traceStart().
 */
uint64_t traceClaimHwCycles(uint64_t cycles);

/** JSON string literal (quotes + escapes); shared with metrics. */
std::string jsonQuote(const std::string &text);

/**
 * RAII scoped span: records the start time at construction and emits a
 * complete event for the enclosed region at destruction. When tracing
 * is disabled (or below @p detail) both ends are a relaxed atomic load.
 */
class TraceSpan
{
  public:
    /** @p name must outlive the span (string literals in practice). */
    explicit TraceSpan(const char *name,
                       TraceDetail detail = TraceDetail::Phase);

    /** Dynamic-name variant; copies @p name only when recording. */
    TraceSpan(const std::string &name, TraceDetail detail);

    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    std::string owned_;     ///< backing storage for dynamic names
    const char *name_ = ""; ///< what gets recorded
    TraceDetail detail_;
    double startUs_ = 0.0;
    bool active_ = false;
};

} // namespace e3::obs

#endif // E3_OBS_TRACE_HH
