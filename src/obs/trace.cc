#include "obs/trace.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <vector>

#include "common/logging.hh"
#include "common/thread_annotations.hh"

namespace e3::obs {

namespace {

/** -1 = disabled, otherwise the active TraceDetail. */
std::atomic<int> g_detail{-1};

/** Global modeled-hardware cycle cursor (see traceClaimHwCycles). */
std::atomic<uint64_t> g_hwCycles{0};

const char *
categoryName(TraceDetail detail)
{
    switch (detail) {
      case TraceDetail::Phase: return "phase";
      case TraceDetail::Task: return "task";
      case TraceDetail::Hw: return "hw";
    }
    return "phase";
}

/** One buffered trace event; serialized only at flush time. */
struct Event
{
    char ph = 'X';      ///< 'X' complete, 'C' counter, 'i' instant
    int pid = 1;
    int tid = 0;
    double tsUs = 0.0;
    double durUs = 0.0; ///< 'X' only
    double value = 0.0; ///< 'C' only
    std::string name;
    const char *cat = "phase";
};

/**
 * Per-thread event buffer. The owning thread appends behind `mutex`
 * (uncontended except while a flush drains), so late appends from
 * still-running workers and the flusher never race.
 */
struct ThreadBuffer
{
    Mutex mutex;
    std::vector<Event> events E3_GUARDED_BY(mutex);
    /** Assigned once at registration, immutable after. */
    int tid = 0;
    std::string name E3_GUARDED_BY(mutex);
};

/** A virtual (modeled-hardware) process and its named threads. */
struct HwProcess
{
    int pid = 0;
    std::string name;
    std::map<std::string, int> tids;
    std::vector<std::pair<int, std::string>> tidNames;
};

struct Registry
{
    Mutex mutex;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers
        E3_GUARDED_BY(mutex);
    int nextTid E3_GUARDED_BY(mutex) = 1;
    std::map<std::string, HwProcess> hwProcesses E3_GUARDED_BY(mutex);
    int nextPid E3_GUARDED_BY(mutex) = 100;
};

Registry &
registry()
{
    static Registry instance;
    return instance;
}

std::chrono::steady_clock::time_point
anchor()
{
    static const auto start = std::chrono::steady_clock::now();
    return start;
}

ThreadBuffer &
localBuffer()
{
    thread_local std::shared_ptr<ThreadBuffer> buffer;
    if (!buffer) {
        buffer = std::make_shared<ThreadBuffer>();
        Registry &reg = registry();
        MutexLock lock(reg.mutex);
        buffer->tid = reg.nextTid++;
        {
            MutexLock bufLock(buffer->mutex);
            buffer->name = "thread" + std::to_string(buffer->tid);
        }
        reg.buffers.push_back(buffer);
    }
    return *buffer;
}

void
push(Event event)
{
    ThreadBuffer &buffer = localBuffer();
    MutexLock lock(buffer.mutex);
    buffer.events.push_back(std::move(event));
}

void
appendNumber(std::string &out, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    out += buf;
}

void
appendEvent(std::string &out, const Event &e)
{
    out += "{\"ph\":\"";
    out += e.ph;
    out += "\",\"pid\":" + std::to_string(e.pid) +
           ",\"tid\":" + std::to_string(e.tid) + ",\"ts\":";
    appendNumber(out, e.tsUs);
    out += ",\"name\":" + jsonQuote(e.name) + ",\"cat\":\"";
    out += e.cat;
    out += "\"";
    if (e.ph == 'X') {
        out += ",\"dur\":";
        appendNumber(out, e.durUs);
    } else if (e.ph == 'C') {
        char buf[40];
        std::snprintf(buf, sizeof buf, "%.9g", e.value);
        out += ",\"args\":{\"value\":";
        out += buf;
        out += "}";
    } else if (e.ph == 'i') {
        out += ",\"s\":\"t\"";
    }
    out += "}";
}

void
appendMetadata(std::string &out, int pid, int tid, const char *kind,
               const std::string &name, bool &first)
{
    if (!first)
        out += ",\n";
    first = false;
    out += "{\"ph\":\"M\",\"pid\":" + std::to_string(pid) +
           ",\"tid\":" + std::to_string(tid) + ",\"ts\":0,\"name\":\"";
    out += kind;
    out += "\",\"args\":{\"name\":" + jsonQuote(name) + "}}";
}

} // namespace

std::string
jsonQuote(const std::string &text)
{
    std::string out = "\"";
    for (char ch : text) {
        switch (ch) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(ch) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned char>(ch));
                out += buf;
            } else {
                out += ch;
            }
        }
    }
    out += "\"";
    return out;
}

bool
parseTraceDetail(const std::string &text, TraceDetail &out)
{
    if (text == "phase") {
        out = TraceDetail::Phase;
    } else if (text == "task") {
        out = TraceDetail::Task;
    } else if (text == "hw") {
        out = TraceDetail::Hw;
    } else {
        return false;
    }
    return true;
}

bool
traceEnabled()
{
    return g_detail.load(std::memory_order_relaxed) >= 0;
}

bool
traceEnabled(TraceDetail detail)
{
    return g_detail.load(std::memory_order_relaxed) >=
           static_cast<int>(detail);
}

double
traceNowUs()
{
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - anchor())
        .count();
}

void
traceStart(TraceDetail detail)
{
    anchor(); // pin the clock origin before any event
    Registry &reg = registry();
    {
        MutexLock lock(reg.mutex);
        for (auto &buffer : reg.buffers) {
            MutexLock bufLock(buffer->mutex);
            buffer->events.clear();
        }
        reg.hwProcesses.clear();
    }
    g_hwCycles.store(0, std::memory_order_relaxed);
    g_detail.store(static_cast<int>(detail),
                   std::memory_order_relaxed);
}

void
traceSetThreadName(const std::string &name)
{
    ThreadBuffer &buffer = localBuffer();
    MutexLock lock(buffer.mutex);
    buffer.name = name;
}

void
traceComplete(const char *name, TraceDetail detail, double tsUs,
              double durUs)
{
    if (!traceEnabled(detail))
        return;
    Event e;
    e.ph = 'X';
    e.tid = localBuffer().tid;
    e.tsUs = tsUs;
    e.durUs = durUs;
    e.name = name;
    e.cat = categoryName(detail);
    push(std::move(e));
}

void
traceCounter(const char *name, double value, TraceDetail detail)
{
    if (!traceEnabled(detail))
        return;
    Event e;
    e.ph = 'C';
    e.tid = localBuffer().tid;
    e.tsUs = traceNowUs();
    e.value = value;
    e.name = name;
    e.cat = categoryName(detail);
    push(std::move(e));
}

void
traceInstant(const char *name, TraceDetail detail)
{
    if (!traceEnabled(detail))
        return;
    Event e;
    e.ph = 'i';
    e.tid = localBuffer().tid;
    e.tsUs = traceNowUs();
    e.name = name;
    e.cat = categoryName(detail);
    push(std::move(e));
}

TraceTrack
traceTrack(const std::string &process, const std::string &thread)
{
    if (!traceEnabled(TraceDetail::Hw))
        return {};
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    auto [procIt, procNew] = reg.hwProcesses.try_emplace(process);
    HwProcess &proc = procIt->second;
    if (procNew) {
        proc.pid = reg.nextPid++;
        proc.name = process;
    }
    auto [tidIt, tidNew] =
        proc.tids.try_emplace(thread, 0);
    if (tidNew) {
        tidIt->second = static_cast<int>(proc.tids.size());
        proc.tidNames.emplace_back(tidIt->second, thread);
    }
    return {proc.pid, tidIt->second};
}

void
traceCompleteOn(const TraceTrack &track, const char *name, double tsUs,
                double durUs)
{
    if (!traceEnabled(TraceDetail::Hw) || track.pid == 0)
        return;
    Event e;
    e.ph = 'X';
    e.pid = track.pid;
    e.tid = track.tid;
    e.tsUs = tsUs;
    e.durUs = durUs;
    e.name = name;
    e.cat = "hw";
    push(std::move(e));
}

void
traceCounterOn(const TraceTrack &track, const char *name, double tsUs,
               double value)
{
    if (!traceEnabled(TraceDetail::Hw) || track.pid == 0)
        return;
    Event e;
    e.ph = 'C';
    e.pid = track.pid;
    e.tid = track.tid;
    e.tsUs = tsUs;
    e.value = value;
    e.name = name;
    e.cat = "hw";
    push(std::move(e));
}

uint64_t
traceClaimHwCycles(uint64_t cycles)
{
    return g_hwCycles.fetch_add(cycles, std::memory_order_relaxed);
}

std::string
traceStopToString()
{
    g_detail.store(-1, std::memory_order_relaxed);

    std::vector<Event> events;
    std::vector<std::pair<int, std::string>> threadNames;
    {
        Registry &reg = registry();
        MutexLock lock(reg.mutex);
        for (auto &buffer : reg.buffers) {
            MutexLock bufLock(buffer->mutex);
            for (auto &event : buffer->events)
                events.push_back(std::move(event));
            buffer->events.clear();
            threadNames.emplace_back(buffer->tid, buffer->name);
        }
        std::string out =
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
        bool first = true;
        appendMetadata(out, 1, 0, "process_name", "e3", first);
        for (const auto &[tid, name] : threadNames)
            appendMetadata(out, 1, tid, "thread_name", name, first);
        for (const auto &[name, proc] : reg.hwProcesses) {
            appendMetadata(out, proc.pid, 0, "process_name", proc.name,
                           first);
            for (const auto &[tid, tname] : proc.tidNames)
                appendMetadata(out, proc.pid, tid, "thread_name",
                               tname, first);
        }
        reg.hwProcesses.clear();

        std::stable_sort(events.begin(), events.end(),
                         [](const Event &a, const Event &b) {
                             return a.tsUs < b.tsUs;
                         });
        for (const Event &event : events) {
            if (!first)
                out += ",\n";
            first = false;
            appendEvent(out, event);
        }
        out += "\n]}\n";
        return out;
    }
}

bool
traceStop(const std::string &path)
{
    const std::string json = traceStopToString();
    std::ofstream out(path);
    if (!out) {
        warn("cannot open trace file '", path, "' for writing");
        return false;
    }
    out << json;
    return static_cast<bool>(out);
}

void
traceReset()
{
    g_detail.store(-1, std::memory_order_relaxed);
    Registry &reg = registry();
    MutexLock lock(reg.mutex);
    for (auto &buffer : reg.buffers) {
        MutexLock bufLock(buffer->mutex);
        buffer->events.clear();
    }
    reg.hwProcesses.clear();
    g_hwCycles.store(0, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char *name, TraceDetail detail)
    : name_(name), detail_(detail)
{
    if (!traceEnabled(detail_))
        return;
    active_ = true;
    startUs_ = traceNowUs();
}

TraceSpan::TraceSpan(const std::string &name, TraceDetail detail)
    : detail_(detail)
{
    if (!traceEnabled(detail_))
        return;
    owned_ = name;
    name_ = owned_.c_str();
    active_ = true;
    startUs_ = traceNowUs();
}

TraceSpan::~TraceSpan()
{
    if (!active_)
        return;
    traceComplete(name_, detail_, startUs_, traceNowUs() - startUs_);
}

} // namespace e3::obs
