#include "nn/layering.hh"

#include <algorithm>
#include <map>

#include "common/logging.hh"

namespace e3 {

std::set<int>
requiredNodes(const NetworkDef &def)
{
    // Backward reachability from the outputs, as in neat-python's
    // required_for_output(): walk connections in reverse until no new
    // node is discovered. Inputs are never "required" (they are sources,
    // not computed nodes).
    std::set<int> inputs(def.inputIds.begin(), def.inputIds.end());
    std::set<int> required(def.outputIds.begin(), def.outputIds.end());

    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &c : def.conns) {
            if (required.count(c.to) && !required.count(c.from) &&
                !inputs.count(c.from)) {
                required.insert(c.from);
                grew = true;
            }
        }
    }
    return required;
}

std::vector<std::vector<int>>
feedForwardLayers(const NetworkDef &def)
{
    const std::set<int> required = requiredNodes(def);

    // Ingress lists restricted to required nodes; connections from
    // unrequired nodes can never fire and are ignored.
    std::map<int, std::vector<int>> ingress;
    for (int id : required)
        ingress[id]; // ensure every required node has an entry
    std::set<int> inputs(def.inputIds.begin(), def.inputIds.end());
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (inputs.count(c.from) || required.count(c.from))
            ingress[c.to].push_back(c.from);
    }

    std::set<int> placed(inputs); // inputs are available from the start
    std::vector<std::vector<int>> layers;

    while (true) {
        std::vector<int> layer;
        for (const auto &[id, sources] : ingress) {
            if (placed.count(id))
                continue;
            // Readiness is vacuously true for ingress-free nodes (e.g.
            // an output whose last in-connection was deleted): they are
            // placed immediately since others may depend on them.
            const bool ready = std::all_of(
                sources.begin(), sources.end(),
                [&](int src) { return placed.count(src) > 0; });
            if (ready)
                layer.push_back(id);
        }
        if (layer.empty())
            break;
        for (int id : layer)
            placed.insert(id);
        layers.push_back(std::move(layer));
    }

    for (const auto &[id, sources] : ingress) {
        e3_assert(placed.count(id),
                  "unplaceable node ", id, " implies a cycle");
    }
    return layers;
}

bool
isAcyclic(const NetworkDef &def)
{
    // feedForwardLayers places every required node iff the graph is
    // acyclic over required nodes; detect the cycle case directly with
    // the same fixed-point but without the orphan panic.
    const std::set<int> required = requiredNodes(def);
    std::set<int> inputs(def.inputIds.begin(), def.inputIds.end());

    std::map<int, std::vector<int>> ingress;
    for (int id : required)
        ingress[id];
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (inputs.count(c.from) || required.count(c.from))
            ingress[c.to].push_back(c.from);
    }

    std::set<int> placed(inputs);
    bool grew = true;
    while (grew) {
        grew = false;
        for (const auto &[id, sources] : ingress) {
            if (placed.count(id))
                continue;
            const bool ready = std::all_of(
                sources.begin(), sources.end(),
                [&](int src) { return placed.count(src) > 0; });
            if (ready) {
                placed.insert(id);
                grew = true;
            }
        }
    }
    return std::all_of(ingress.begin(), ingress.end(),
                       [&](const auto &kv) {
                           return placed.count(kv.first) > 0;
                       });
}

} // namespace e3
