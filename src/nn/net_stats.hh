/**
 * @file
 * Structural statistics of irregular networks — the quantities behind
 * the paper's Fig. 4 (density trace, node-degree distribution,
 * layer-size histogram) and Tables IV/V (op and complexity counts).
 */

#ifndef E3_NN_NET_STATS_HH
#define E3_NN_NET_STATS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "nn/network.hh"

namespace e3 {

/** Structural summary of one network. */
struct NetStats
{
    size_t activeNodes = 0;       ///< required non-input nodes
    uint64_t activeConnections = 0; ///< connections among required nodes
    std::vector<size_t> layerSizes; ///< dependency layers (no inputs)
    std::vector<size_t> inDegrees;  ///< ingress count per active node

    /**
     * Paper's density metric: active connections divided by the
     * connection count of the dense MLP with the same layer sizes
     * (inputs + dependency layers, adjacent layers fully connected).
     * Cross-layer links can push this above 1.0 (Fig. 4(c)).
     */
    double density = 0.0;

    /** MAC operations for one inference (== activeConnections). */
    uint64_t forwardMacs() const { return activeConnections; }

    /**
     * Approximate forward op count: one multiply + one add per
     * connection, plus one bias add and one activation per node.
     */
    uint64_t forwardOps() const
    {
        return 2 * activeConnections + 2 * activeNodes;
    }

    /**
     * Model memory footprint in bytes at the given precision: one word
     * per connection weight, plus bias + activation slot per node.
     */
    uint64_t memoryBytes(size_t bytesPerWord = 4) const
    {
        return bytesPerWord * (activeConnections + 2 * activeNodes);
    }
};

/** Compute structural statistics for a network definition. */
NetStats computeNetStats(const NetworkDef &def);

/**
 * Activation density: the fraction of MAC operands that are non-zero
 * when the network runs on random inputs. Sigmoid nets are ~fully
 * dense; ReLU-heavy evolved nets leave many MACs with a zero operand —
 * the activation sparsity the paper flags as future work and the
 * zero-skip PE extension (InaxConfig::activationDensity) exploits.
 *
 * @param net compiled network (its value state is clobbered)
 * @param samples random input vectors to average over
 * @param rng input-sampling stream (inputs uniform in [-1, 1])
 * @return executed-MAC fraction in (0, 1]; 1.0 for link-free nets
 */
double measureActivationDensity(FeedForwardNetwork &net,
                                size_t samples, Rng &rng);

/**
 * Connection count of the dense layer-by-layer MLP with the given layer
 * sizes (first entry = input layer).
 */
uint64_t denseConnectionCount(const std::vector<size_t> &layerSizes);

} // namespace e3

#endif // E3_NN_NET_STATS_HH
