#include "nn/batch_eval.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

namespace {

/** Arity check shared by both engines' compile paths. */
Status
checkLaneArity(size_t lane, size_t numInputs, size_t numOutputs,
               size_t expectedInputs, size_t expectedOutputs)
{
    if (numInputs != expectedInputs || numOutputs != expectedOutputs) {
        return Status::error(
            "batch lane ", lane, " has arity ", numInputs, "x",
            numOutputs, " but the batch is ", expectedInputs, "x",
            expectedOutputs,
            " (all lanes must share input/output arity)");
    }
    return Status();
}

} // namespace

namespace detail {

/**
 * Sum-segment kernel with the activation hoisted to a template
 * parameter: each node's fold is a seeded multiply-add chain — the
 * exact operation sequence Aggregator performs (seed from the first
 * element, add the rest, 0.0 when empty) — with the activation inlined
 * via applyActivationT, so a node costs no out-of-line call.
 *
 * The kernel is noinline and aligned to a fixed boundary: the op-fold
 * loop's branches are hot enough that their placement relative to
 * fetch/predictor boundaries measurably changes throughput, and
 * keeping the kernel at a fixed alignment makes that placement (and
 * so the measured speedup) independent of whatever else is linked
 * into the binary.
 *
 * The node/op types are template parameters because they are private
 * to BatchEvaluator; deduction at the member-function call site is the
 * one place allowed to name them.
 */
template <Activation A, typename NodeRunT, typename OpT>
__attribute__((noinline, aligned(256))) void
runSumSegment(const NodeRunT *nodes, uint32_t nodeBegin,
              uint32_t nodeEnd, const OpT *ops, double *v)
{
    for (uint32_t n = nodeBegin; n != nodeEnd; ++n) {
        const NodeRunT &node = nodes[n];
        const OpT *op = ops + node.opBegin;
        const OpT *const end = ops + node.opEnd;
        double acc = 0.0;
        if (op != end) {
            acc = v[op->srcSlot] * op->weight;
            for (++op; op != end; ++op)
                acc += v[op->srcSlot] * op->weight;
        }
        v[node.dstSlot] = applyActivationT<A>(acc + node.bias);
    }
}

} // namespace detail

Result<std::unique_ptr<BatchEvaluator>>
BatchEvaluator::compile(const std::vector<NetworkDef> &defs,
                        const NetworkCompileOptions &options)
{
    if (defs.empty())
        return Status::error(
            "batch compile needs at least one definition");
    if (options.recurrent || options.quantization) {
        return Status::error(
            "the SoA batch evaluator supports plain feed-forward "
            "networks; use the loop adapter for recurrent or "
            "quantized evaluation");
    }

    auto eval = std::unique_ptr<BatchEvaluator>(new BatchEvaluator());
    eval->numInputs_ = defs.front().inputIds.size();
    eval->numOutputs_ = defs.front().outputIds.size();

    for (size_t i = 0; i < defs.size(); ++i) {
        if (Status invariants = checkDefInvariants(defs[i], false);
            !invariants.ok()) {
            return Status::error("genome ", i, ": malformed NetworkDef: ",
                                 invariants.message());
        }
        if (Status arity = checkLaneArity(
                i, defs[i].inputIds.size(), defs[i].outputIds.size(),
                eval->numInputs_, eval->numOutputs_);
            !arity.ok())
            return arity;
        eval->appendLane(FeedForwardNetwork::create(defs[i]));
    }
    eval->values_.assign(
        eval->lanePrograms_.back().valueBase +
            eval->lanePrograms_.back().slotCount,
        0.0);
    return eval;
}

Result<std::unique_ptr<BatchEvaluator>>
BatchEvaluator::compileReplicated(const NetworkDef &def, size_t lanes,
                                  const NetworkCompileOptions &options)
{
    if (lanes == 0)
        return Status::error("replicated batch needs at least one lane");
    if (options.recurrent || options.quantization) {
        return Status::error(
            "the SoA batch evaluator supports plain feed-forward "
            "networks; use the loop adapter for recurrent or "
            "quantized evaluation");
    }
    if (Status invariants = checkDefInvariants(def, false);
        !invariants.ok())
        return Status::error("malformed NetworkDef: ",
                             invariants.message());

    auto eval = std::unique_ptr<BatchEvaluator>(new BatchEvaluator());
    eval->numInputs_ = def.inputIds.size();
    eval->numOutputs_ = def.outputIds.size();
    eval->appendLane(FeedForwardNetwork::create(def));

    // One shared program; each further lane is just a fresh region of
    // the value arena (the output-slot table is lane-local, so it is
    // shared too).
    const LaneProgram proto = eval->lanePrograms_.front();
    for (size_t lane = 1; lane < lanes; ++lane) {
        LaneProgram p = proto;
        p.valueBase = static_cast<uint32_t>(lane) * proto.slotCount;
        eval->lanePrograms_.push_back(p);
    }
    eval->values_.assign(static_cast<size_t>(proto.slotCount) * lanes,
                         0.0);
    return eval;
}

void
BatchEvaluator::appendLane(const FeedForwardNetwork &net)
{
    LaneProgram p;
    p.segBegin = static_cast<uint32_t>(segments_.size());
    p.valueBase = lanePrograms_.empty()
                      ? 0
                      : lanePrograms_.back().valueBase +
                            lanePrograms_.back().slotCount;
    p.slotCount = static_cast<uint32_t>(net.valueSlots());
    p.outBase = static_cast<uint32_t>(outputSlots_.size());

    // Flatten in exactly FeedForwardNetwork's execution order — layer
    // by layer, node by node, link by link — so the fold order (and
    // thus every intermediate rounding) is preserved bit-for-bit.
    // Segments merge across layer boundaries when (act, agg) carries
    // over: the kernels execute in-segment nodes strictly in order, so
    // a later-layer node reading an earlier node's destination slot is
    // fine, and a uniform-activation lane collapses to one dispatch.
    for (const auto &layer : net.layers()) {
        for (const auto &node : layer) {
            const bool openNewSegment =
                segments_.size() == p.segBegin ||
                segments_.back().act != node.act ||
                segments_.back().agg != node.agg;
            if (openNewSegment) {
                segments_.push_back({static_cast<uint32_t>(nodes_.size()),
                                     static_cast<uint32_t>(nodes_.size()),
                                     node.act, node.agg});
            }
            NodeRun run;
            run.dstSlot = node.slot;
            run.opBegin = static_cast<uint32_t>(ops_.size());
            for (const auto &link : node.links)
                ops_.push_back({link.srcSlot, link.weight});
            run.opEnd = static_cast<uint32_t>(ops_.size());
            run.bias = node.bias;
            nodes_.push_back(run);
            segments_.back().nodeEnd =
                static_cast<uint32_t>(nodes_.size());
        }
    }
    p.segEnd = static_cast<uint32_t>(segments_.size());

    for (uint32_t slot : net.outputSlots())
        outputSlots_.push_back(slot);

    lanePrograms_.push_back(p);
}

void
BatchEvaluator::activateBatch(size_t count, const double *inputs,
                              size_t inputStride, double *outputs,
                              size_t outputStride)
{
    e3_assert(count <= lanePrograms_.size(), "batch count ", count,
              " exceeds ", lanePrograms_.size(), " lanes");
    // Qualified call: no per-lane virtual dispatch on the hot path.
    for (size_t lane = 0; lane < count; ++lane) {
        BatchEvaluator::activateLane(lane, inputs + lane * inputStride,
                                     outputs + lane * outputStride);
    }
}

void
BatchEvaluator::activateLane(size_t lane, const double *inputs,
                             double *outputs)
{
    const LaneProgram &p = lanePrograms_[lane];
    double *v = values_.data() + p.valueBase;
    for (size_t i = 0; i < numInputs_; ++i)
        v[i] = inputs[i];

    const NodeRun *const nodes = nodes_.data();
    const Op *const ops = ops_.data();
    for (uint32_t s = p.segBegin; s != p.segEnd; ++s) {
        const Segment seg = segments_[s];
        if (seg.agg == Aggregation::Sum) {
            // Fast path for the dominant aggregation: one activation
            // dispatch per *segment*, then a call-free inner loop
            // (see detail::runSumSegment).
            switch (seg.act) {
              case Activation::Sigmoid:
                detail::runSumSegment<Activation::Sigmoid>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Tanh:
                detail::runSumSegment<Activation::Tanh>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::ReLU:
                detail::runSumSegment<Activation::ReLU>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Identity:
                detail::runSumSegment<Activation::Identity>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Sin:
                detail::runSumSegment<Activation::Sin>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Gauss:
                detail::runSumSegment<Activation::Gauss>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Abs:
                detail::runSumSegment<Activation::Abs>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Clamped:
                detail::runSumSegment<Activation::Clamped>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
            }
        } else {
            for (uint32_t n = seg.nodeBegin; n != seg.nodeEnd; ++n) {
                const NodeRun &node = nodes[n];
                Aggregator agg(seg.agg);
                for (const Op *op = ops + node.opBegin;
                     op != ops + node.opEnd; ++op)
                    agg.add(v[op->srcSlot] * op->weight);
                v[node.dstSlot] =
                    applyActivation(seg.act, agg.result() + node.bias);
            }
        }
    }

    const uint32_t *const outSlots = outputSlots_.data() + p.outBase;
    for (size_t o = 0; o < numOutputs_; ++o)
        outputs[o] = v[outSlots[o]];
}

void
BatchEvaluator::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

Result<std::unique_ptr<NetworkBatchAdapter>>
NetworkBatchAdapter::create(std::vector<std::unique_ptr<Network>> nets)
{
    if (nets.empty())
        return Status::error("batch adapter needs at least one network");
    for (size_t i = 0; i < nets.size(); ++i) {
        if (!nets[i])
            return Status::error("batch adapter lane ", i, " is null");
        if (Status arity = checkLaneArity(
                i, nets[i]->numInputs(), nets[i]->numOutputs(),
                nets.front()->numInputs(), nets.front()->numOutputs());
            !arity.ok())
            return arity;
    }
    return std::unique_ptr<NetworkBatchAdapter>(
        new NetworkBatchAdapter(std::move(nets)));
}

NetworkBatchAdapter::NetworkBatchAdapter(
    std::vector<std::unique_ptr<Network>> nets)
    : numInputs_(nets.front()->numInputs()),
      numOutputs_(nets.front()->numOutputs()), nets_(std::move(nets))
{
}

void
NetworkBatchAdapter::activateBatch(size_t count, const double *inputs,
                                   size_t inputStride, double *outputs,
                                   size_t outputStride)
{
    e3_assert(count <= nets_.size(), "batch count ", count,
              " exceeds ", nets_.size(), " lanes");
    for (size_t lane = 0; lane < count; ++lane) {
        nets_[lane]->activateInto(inputs + lane * inputStride,
                                  outputs + lane * outputStride);
    }
}

void
NetworkBatchAdapter::activateLane(size_t lane, const double *inputs,
                                  double *outputs)
{
    nets_[lane]->activateInto(inputs, outputs);
}

void
NetworkBatchAdapter::reset()
{
    for (auto &net : nets_)
        net->reset();
}

Result<std::unique_ptr<BatchNetwork>>
compilePopulation(const std::vector<NetworkDef> &defs,
                  const NetworkCompileOptions &options,
                  BatchEngine engine)
{
    const bool soaCapable = !options.recurrent && !options.quantization;
    if (engine == BatchEngine::Soa && !soaCapable) {
        return Status::error(
            "the SoA engine requires plain feed-forward compilation "
            "options");
    }
    if (engine != BatchEngine::PerGenome && soaCapable) {
        auto soa = BatchEvaluator::compile(defs, options);
        if (!soa.ok())
            return soa.status();
        return std::unique_ptr<BatchNetwork>(std::move(soa.value()));
    }

    std::vector<std::unique_ptr<Network>> nets;
    nets.reserve(defs.size());
    for (const auto &def : defs) {
        auto net = compileNetwork(def, options);
        if (!net.ok())
            return Status::error("genome ", nets.size(), ": ",
                                 net.message());
        nets.push_back(std::move(net.value()));
    }
    auto adapter = NetworkBatchAdapter::create(std::move(nets));
    if (!adapter.ok())
        return adapter.status();
    return std::unique_ptr<BatchNetwork>(std::move(adapter.value()));
}

Result<std::unique_ptr<BatchNetwork>>
compileReplicated(const NetworkDef &def, size_t lanes,
                  const NetworkCompileOptions &options,
                  BatchEngine engine)
{
    const bool soaCapable = !options.recurrent && !options.quantization;
    if (engine == BatchEngine::Soa && !soaCapable) {
        return Status::error(
            "the SoA engine requires plain feed-forward compilation "
            "options");
    }
    if (engine != BatchEngine::PerGenome && soaCapable) {
        auto soa = BatchEvaluator::compileReplicated(def, lanes, options);
        if (!soa.ok())
            return soa.status();
        return std::unique_ptr<BatchNetwork>(std::move(soa.value()));
    }

    std::vector<std::unique_ptr<Network>> nets;
    nets.reserve(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
        auto net = compileNetwork(def, options);
        if (!net.ok())
            return net.status();
        nets.push_back(std::move(net.value()));
    }
    auto adapter = NetworkBatchAdapter::create(std::move(nets));
    if (!adapter.ok())
        return adapter.status();
    return std::unique_ptr<BatchNetwork>(std::move(adapter.value()));
}

} // namespace e3
