#include "nn/batch_eval.hh"

#include <algorithm>

#include "common/hot.hh"
#include "common/logging.hh"

namespace e3 {

namespace {

/** Arity check shared by both engines' compile paths. */
Status
checkLaneArity(size_t lane, size_t numInputs, size_t numOutputs,
               size_t expectedInputs, size_t expectedOutputs)
{
    if (numInputs != expectedInputs || numOutputs != expectedOutputs) {
        return Status::error(
            "batch lane ", lane, " has arity ", numInputs, "x",
            numOutputs, " but the batch is ", expectedInputs, "x",
            expectedOutputs,
            " (all lanes must share input/output arity)");
    }
    return Status();
}

} // namespace

namespace detail {

/**
 * Sum-segment kernel with the activation hoisted to a template
 * parameter: each node's fold is a seeded multiply-add chain — the
 * exact operation sequence Aggregator performs (seed from the first
 * element, add the rest, 0.0 when empty) — with the activation inlined
 * via applyActivationT, so a node costs no out-of-line call.
 *
 * The kernel is noinline and aligned to a fixed boundary: the op-fold
 * loop's branches are hot enough that their placement relative to
 * fetch/predictor boundaries measurably changes throughput, and
 * keeping the kernel at a fixed alignment makes that placement (and
 * so the measured speedup) independent of whatever else is linked
 * into the binary.
 *
 * The node/op types stay template parameters (deduced at the call
 * site), which keeps the kernel's instantiation independent of the
 * plan type's header.
 */
template <Activation A, typename NodeRunT, typename OpT>
__attribute__((noinline, aligned(256))) void
runSumSegment(const NodeRunT *nodes, uint32_t nodeBegin,
              uint32_t nodeEnd, const OpT *ops, double *v)
{
    for (uint32_t n = nodeBegin; n != nodeEnd; ++n) {
        const NodeRunT &node = nodes[n];
        const OpT *op = ops + node.opBegin;
        const OpT *const end = ops + node.opEnd;
        double acc = 0.0;
        if (op != end) {
            acc = v[op->srcSlot] * op->weight;
            for (++op; op != end; ++op)
                acc += v[op->srcSlot] * op->weight;
        }
        v[node.dstSlot] = applyActivationT<A>(acc + node.bias);
    }
}

} // namespace detail

Status
checkPlanInvariants(const BatchPlan &plan)
{
    if (plan.lanes.empty())
        return Status::error("plan has no lanes");
    for (size_t li = 0; li < plan.lanes.size(); ++li) {
        const BatchPlan::LaneProgram &lane = plan.lanes[li];
        if (lane.segBegin > lane.segEnd ||
            lane.segEnd > plan.segments.size())
            return Status::error("lane ", li, ": segment range [",
                                 lane.segBegin, ", ", lane.segEnd,
                                 ") outside ", plan.segments.size(),
                                 " segments");
        if (static_cast<uint64_t>(lane.valueBase) + lane.slotCount >
            plan.arenaSize)
            return Status::error("lane ", li, ": arena region [",
                                 lane.valueBase, ", ",
                                 lane.valueBase + lane.slotCount,
                                 ") outside arena of ", plan.arenaSize,
                                 " slots");
        if (plan.numInputs > lane.slotCount)
            return Status::error("lane ", li, ": ", plan.numInputs,
                                 " inputs but only ", lane.slotCount,
                                 " slots");
        if (static_cast<uint64_t>(lane.outBase) + plan.numOutputs >
            plan.outputSlots.size())
            return Status::error("lane ", li,
                                 ": output map outside the ",
                                 plan.outputSlots.size(),
                                 "-entry slot table");

        // Segments must tile the lane's node list back to back.
        uint32_t expectNode = lane.segBegin < lane.segEnd
                                  ? plan.segments[lane.segBegin].nodeBegin
                                  : 0;
        for (uint32_t s = lane.segBegin; s != lane.segEnd; ++s) {
            const BatchPlan::Segment &seg = plan.segments[s];
            if (seg.nodeBegin >= seg.nodeEnd ||
                seg.nodeEnd > plan.nodes.size())
                return Status::error("lane ", li, " segment ", s,
                                     ": node range [", seg.nodeBegin,
                                     ", ", seg.nodeEnd, ") invalid");
            if (seg.nodeBegin != expectNode)
                return Status::error(
                    "lane ", li, " segment ", s, ": starts at node ",
                    seg.nodeBegin, ", expected ", expectNode,
                    " (segments must partition the node list)");
            expectNode = seg.nodeEnd;
            if (static_cast<int>(seg.act) < 0 ||
                static_cast<int>(seg.act) >= kActivationCount)
                return Status::error("lane ", li, " segment ", s,
                                     ": unknown activation ",
                                     static_cast<int>(seg.act));
            if (static_cast<int>(seg.agg) < 0 ||
                static_cast<int>(seg.agg) >= kAggregationCount)
                return Status::error("lane ", li, " segment ", s,
                                     ": unknown aggregation ",
                                     static_cast<int>(seg.agg));
            for (uint32_t n = seg.nodeBegin; n != seg.nodeEnd; ++n) {
                const BatchPlan::NodeRun &node = plan.nodes[n];
                if (node.opBegin > node.opEnd ||
                    node.opEnd > plan.ops.size())
                    return Status::error("node ", n, ": op range [",
                                         node.opBegin, ", ",
                                         node.opEnd, ") outside ",
                                         plan.ops.size(), " ops");
                if (node.dstSlot >= lane.slotCount)
                    return Status::error("node ", n, ": dstSlot ",
                                         node.dstSlot, " outside ",
                                         lane.slotCount,
                                         " lane slots");
                for (uint32_t o = node.opBegin; o != node.opEnd; ++o) {
                    if (plan.ops[o].srcSlot >= lane.slotCount)
                        return Status::error(
                            "node ", n, " op ", o, ": srcSlot ",
                            plan.ops[o].srcSlot, " outside ",
                            lane.slotCount, " lane slots");
                }
            }
        }

        // Output map: distinct, in-range slots.
        for (size_t a = 0; a < plan.numOutputs; ++a) {
            const uint32_t slot = plan.outputSlots[lane.outBase + a];
            if (slot >= lane.slotCount)
                return Status::error("lane ", li, " output ", a,
                                     ": slot ", slot, " outside ",
                                     lane.slotCount, " lane slots");
            for (size_t b = a + 1; b < plan.numOutputs; ++b) {
                if (plan.outputSlots[lane.outBase + b] == slot)
                    return Status::error(
                        "lane ", li, ": outputs ", a, " and ", b,
                        " both read slot ", slot,
                        " (output map must be injective)");
            }
        }
    }

    // Arena regions must be pairwise disjoint across lanes.
    std::vector<std::pair<uint64_t, uint64_t>> regions;
    regions.reserve(plan.lanes.size());
    for (const BatchPlan::LaneProgram &lane : plan.lanes)
        regions.emplace_back(lane.valueBase,
                             static_cast<uint64_t>(lane.valueBase) +
                                 lane.slotCount);
    std::sort(regions.begin(), regions.end());
    for (size_t i = 1; i < regions.size(); ++i) {
        if (regions[i].first < regions[i - 1].second)
            return Status::error("lane arena regions [",
                                 regions[i - 1].first, ", ",
                                 regions[i - 1].second, ") and [",
                                 regions[i].first, ", ",
                                 regions[i].second, ") overlap");
    }
    return Status();
}

Result<std::unique_ptr<BatchEvaluator>>
BatchEvaluator::compile(const std::vector<NetworkDef> &defs,
                        const NetworkCompileOptions &options)
{
    if (defs.empty())
        return Status::error(
            "batch compile needs at least one definition");
    if (options.recurrent || options.quantization) {
        return Status::error(
            "the SoA batch evaluator supports plain feed-forward "
            "networks; use the loop adapter for recurrent or "
            "quantized evaluation");
    }

    auto eval = std::unique_ptr<BatchEvaluator>(new BatchEvaluator());
    eval->plan_.numInputs = defs.front().inputIds.size();
    eval->plan_.numOutputs = defs.front().outputIds.size();

    for (size_t i = 0; i < defs.size(); ++i) {
        if (Status invariants = checkDefInvariants(defs[i], false);
            !invariants.ok()) {
            return Status::error("genome ", i, ": malformed NetworkDef: ",
                                 invariants.message());
        }
        if (Status arity = checkLaneArity(
                i, defs[i].inputIds.size(), defs[i].outputIds.size(),
                eval->plan_.numInputs, eval->plan_.numOutputs);
            !arity.ok())
            return arity;
        eval->appendLane(FeedForwardNetwork::create(defs[i]));
    }
    eval->plan_.arenaSize = eval->plan_.lanes.back().valueBase +
                            eval->plan_.lanes.back().slotCount;
    eval->values_.assign(eval->plan_.arenaSize, 0.0);
#ifndef NDEBUG
    if (Status sound = checkPlanInvariants(eval->plan_); !sound.ok())
        e3_panic("population batch plan failed its invariant check: ",
                 sound.message());
#endif
    return eval;
}

Result<std::unique_ptr<BatchEvaluator>>
BatchEvaluator::compileReplicated(const NetworkDef &def, size_t lanes,
                                  const NetworkCompileOptions &options)
{
    if (lanes == 0)
        return Status::error("replicated batch needs at least one lane");
    if (options.recurrent || options.quantization) {
        return Status::error(
            "the SoA batch evaluator supports plain feed-forward "
            "networks; use the loop adapter for recurrent or "
            "quantized evaluation");
    }
    if (Status invariants = checkDefInvariants(def, false);
        !invariants.ok())
        return Status::error("malformed NetworkDef: ",
                             invariants.message());

    auto eval = std::unique_ptr<BatchEvaluator>(new BatchEvaluator());
    eval->plan_.numInputs = def.inputIds.size();
    eval->plan_.numOutputs = def.outputIds.size();
    eval->appendLane(FeedForwardNetwork::create(def));

    // One shared program; each further lane is just a fresh region of
    // the value arena (the output-slot table is lane-local, so it is
    // shared too).
    const BatchPlan::LaneProgram proto = eval->plan_.lanes.front();
    for (size_t lane = 1; lane < lanes; ++lane) {
        BatchPlan::LaneProgram p = proto;
        p.valueBase = static_cast<uint32_t>(lane) * proto.slotCount;
        eval->plan_.lanes.push_back(p);
    }
    eval->plan_.arenaSize = static_cast<size_t>(proto.slotCount) * lanes;
    eval->values_.assign(eval->plan_.arenaSize, 0.0);
#ifndef NDEBUG
    if (Status sound = checkPlanInvariants(eval->plan_); !sound.ok())
        e3_panic("replicated batch plan failed its invariant check: ",
                 sound.message());
#endif
    return eval;
}

void
BatchEvaluator::appendLane(const FeedForwardNetwork &net)
{
    BatchPlan::LaneProgram p;
    p.segBegin = static_cast<uint32_t>(plan_.segments.size());
    p.valueBase = plan_.lanes.empty()
                      ? 0
                      : plan_.lanes.back().valueBase +
                            plan_.lanes.back().slotCount;
    p.slotCount = static_cast<uint32_t>(net.valueSlots());
    p.outBase = static_cast<uint32_t>(plan_.outputSlots.size());

    // Flatten in exactly FeedForwardNetwork's execution order — layer
    // by layer, node by node, link by link — so the fold order (and
    // thus every intermediate rounding) is preserved bit-for-bit.
    // Segments merge across layer boundaries when (act, agg) carries
    // over: the kernels execute in-segment nodes strictly in order, so
    // a later-layer node reading an earlier node's destination slot is
    // fine, and a uniform-activation lane collapses to one dispatch.
    for (const auto &layer : net.layers()) {
        for (const auto &node : layer) {
            const bool openNewSegment =
                plan_.segments.size() == p.segBegin ||
                plan_.segments.back().act != node.act ||
                plan_.segments.back().agg != node.agg;
            if (openNewSegment) {
                plan_.segments.push_back(
                    {static_cast<uint32_t>(plan_.nodes.size()),
                     static_cast<uint32_t>(plan_.nodes.size()),
                     node.act, node.agg});
            }
            BatchPlan::NodeRun run;
            run.dstSlot = node.slot;
            run.opBegin = static_cast<uint32_t>(plan_.ops.size());
            for (const auto &link : node.links)
                plan_.ops.push_back({link.srcSlot, link.weight});
            run.opEnd = static_cast<uint32_t>(plan_.ops.size());
            run.bias = node.bias;
            plan_.nodes.push_back(run);
            plan_.segments.back().nodeEnd =
                static_cast<uint32_t>(plan_.nodes.size());
        }
    }
    p.segEnd = static_cast<uint32_t>(plan_.segments.size());

    for (uint32_t slot : net.outputSlots())
        plan_.outputSlots.push_back(slot);

    plan_.lanes.push_back(p);
}

E3_HOT void
BatchEvaluator::activateBatch(size_t count, const double *inputs,
                              size_t inputStride, double *outputs,
                              size_t outputStride)
{
    e3_assert(count <= plan_.lanes.size(), "batch count ", count,
              " exceeds ", plan_.lanes.size(), " lanes");
    // Qualified call: no per-lane virtual dispatch on the hot path.
    for (size_t lane = 0; lane < count; ++lane) {
        BatchEvaluator::activateLane(lane, inputs + lane * inputStride,
                                     outputs + lane * outputStride);
    }
}

E3_HOT void
BatchEvaluator::activateLane(size_t lane, const double *inputs,
                             double *outputs)
{
    const BatchPlan::LaneProgram &p = plan_.lanes[lane];
    double *v = values_.data() + p.valueBase;
    for (size_t i = 0; i < plan_.numInputs; ++i)
        v[i] = inputs[i];

    const BatchPlan::NodeRun *const nodes = plan_.nodes.data();
    const BatchPlan::Op *const ops = plan_.ops.data();
    for (uint32_t s = p.segBegin; s != p.segEnd; ++s) {
        const BatchPlan::Segment seg = plan_.segments[s];
        if (seg.agg == Aggregation::Sum) {
            // Fast path for the dominant aggregation: one activation
            // dispatch per *segment*, then a call-free inner loop
            // (see detail::runSumSegment).
            switch (seg.act) {
              case Activation::Sigmoid:
                detail::runSumSegment<Activation::Sigmoid>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Tanh:
                detail::runSumSegment<Activation::Tanh>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::ReLU:
                detail::runSumSegment<Activation::ReLU>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Identity:
                detail::runSumSegment<Activation::Identity>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Sin:
                detail::runSumSegment<Activation::Sin>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Gauss:
                detail::runSumSegment<Activation::Gauss>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Abs:
                detail::runSumSegment<Activation::Abs>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
              case Activation::Clamped:
                detail::runSumSegment<Activation::Clamped>(
                    nodes, seg.nodeBegin, seg.nodeEnd, ops, v);
                break;
            }
        } else {
            for (uint32_t n = seg.nodeBegin; n != seg.nodeEnd; ++n) {
                const BatchPlan::NodeRun &node = nodes[n];
                Aggregator agg(seg.agg);
                for (const BatchPlan::Op *op = ops + node.opBegin;
                     op != ops + node.opEnd; ++op)
                    agg.add(v[op->srcSlot] * op->weight);
                v[node.dstSlot] =
                    applyActivation(seg.act, agg.result() + node.bias);
            }
        }
    }

    const uint32_t *const outSlots =
        plan_.outputSlots.data() + p.outBase;
    for (size_t o = 0; o < plan_.numOutputs; ++o)
        outputs[o] = v[outSlots[o]];
}

void
BatchEvaluator::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

Result<std::unique_ptr<NetworkBatchAdapter>>
NetworkBatchAdapter::create(std::vector<std::unique_ptr<Network>> nets)
{
    if (nets.empty())
        return Status::error("batch adapter needs at least one network");
    for (size_t i = 0; i < nets.size(); ++i) {
        if (!nets[i])
            return Status::error("batch adapter lane ", i, " is null");
        if (Status arity = checkLaneArity(
                i, nets[i]->numInputs(), nets[i]->numOutputs(),
                nets.front()->numInputs(), nets.front()->numOutputs());
            !arity.ok())
            return arity;
    }
    return std::unique_ptr<NetworkBatchAdapter>(
        new NetworkBatchAdapter(std::move(nets)));
}

NetworkBatchAdapter::NetworkBatchAdapter(
    std::vector<std::unique_ptr<Network>> nets)
    : numInputs_(nets.front()->numInputs()),
      numOutputs_(nets.front()->numOutputs()), nets_(std::move(nets))
{
}

E3_HOT void
NetworkBatchAdapter::activateBatch(size_t count, const double *inputs,
                                   size_t inputStride, double *outputs,
                                   size_t outputStride)
{
    e3_assert(count <= nets_.size(), "batch count ", count,
              " exceeds ", nets_.size(), " lanes");
    for (size_t lane = 0; lane < count; ++lane) {
        nets_[lane]->activateInto(inputs + lane * inputStride,
                                  outputs + lane * outputStride);
    }
}

E3_HOT void
NetworkBatchAdapter::activateLane(size_t lane, const double *inputs,
                                  double *outputs)
{
    nets_[lane]->activateInto(inputs, outputs);
}

void
NetworkBatchAdapter::reset()
{
    for (auto &net : nets_)
        net->reset();
}

Result<std::unique_ptr<BatchNetwork>>
compilePopulation(const std::vector<NetworkDef> &defs,
                  const NetworkCompileOptions &options,
                  BatchEngine engine)
{
    const bool soaCapable = !options.recurrent && !options.quantization;
    if (engine == BatchEngine::Soa && !soaCapable) {
        return Status::error(
            "the SoA engine requires plain feed-forward compilation "
            "options");
    }
    if (engine != BatchEngine::PerGenome && soaCapable) {
        auto soa = BatchEvaluator::compile(defs, options);
        if (!soa.ok())
            return soa.status();
        return std::unique_ptr<BatchNetwork>(std::move(soa.value()));
    }

    std::vector<std::unique_ptr<Network>> nets;
    nets.reserve(defs.size());
    for (const auto &def : defs) {
        auto net = compileNetwork(def, options);
        if (!net.ok())
            return Status::error("genome ", nets.size(), ": ",
                                 net.message());
        nets.push_back(std::move(net.value()));
    }
    auto adapter = NetworkBatchAdapter::create(std::move(nets));
    if (!adapter.ok())
        return adapter.status();
    return std::unique_ptr<BatchNetwork>(std::move(adapter.value()));
}

Result<std::unique_ptr<BatchNetwork>>
compileReplicated(const NetworkDef &def, size_t lanes,
                  const NetworkCompileOptions &options,
                  BatchEngine engine)
{
    const bool soaCapable = !options.recurrent && !options.quantization;
    if (engine == BatchEngine::Soa && !soaCapable) {
        return Status::error(
            "the SoA engine requires plain feed-forward compilation "
            "options");
    }
    if (engine != BatchEngine::PerGenome && soaCapable) {
        auto soa = BatchEvaluator::compileReplicated(def, lanes, options);
        if (!soa.ok())
            return soa.status();
        return std::unique_ptr<BatchNetwork>(std::move(soa.value()));
    }

    std::vector<std::unique_ptr<Network>> nets;
    nets.reserve(lanes);
    for (size_t lane = 0; lane < lanes; ++lane) {
        auto net = compileNetwork(def, options);
        if (!net.ok())
            return net.status();
        nets.push_back(std::move(net.value()));
    }
    auto adapter = NetworkBatchAdapter::create(std::move(nets));
    if (!adapter.ok())
        return adapter.status();
    return std::unique_ptr<BatchNetwork>(std::move(adapter.value()));
}

} // namespace e3
