#include "nn/aggregations.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

double
applyAggregation(Aggregation agg, const std::vector<double> &values)
{
    Aggregator a(agg);
    for (double v : values)
        a.add(v);
    return a.result();
}

Aggregator::Aggregator(Aggregation agg) : agg_(agg)
{
}

void
Aggregator::add(double v)
{
    if (count_ == 0) {
        // Every aggregation seeds from its first element; sum/mean fold
        // additively afterwards.
        acc_ = v;
    } else {
        switch (agg_) {
          case Aggregation::Sum:
          case Aggregation::Mean:
            acc_ += v;
            break;
          case Aggregation::Product:
            acc_ *= v;
            break;
          case Aggregation::Max:
            acc_ = std::max(acc_, v);
            break;
          case Aggregation::Min:
            acc_ = std::min(acc_, v);
            break;
        }
    }
    ++count_;
}

double
Aggregator::result() const
{
    if (count_ == 0)
        return 0.0;
    if (agg_ == Aggregation::Mean)
        return acc_ / static_cast<double>(count_);
    return acc_;
}

std::string
aggregationName(Aggregation agg)
{
    switch (agg) {
      case Aggregation::Sum: return "sum";
      case Aggregation::Product: return "product";
      case Aggregation::Max: return "max";
      case Aggregation::Min: return "min";
      case Aggregation::Mean: return "mean";
    }
    e3_panic("unhandled aggregation");
}

Result<Aggregation>
parseAggregation(const std::string &name)
{
    Aggregation agg;
    if (!tryParseAggregation(name, agg))
        return Status::error("unknown aggregation '", name, "'");
    return agg;
}

bool
tryParseAggregation(const std::string &name, Aggregation &out)
{
    for (int i = 0; i < numAggregations; ++i) {
        const Aggregation agg = aggregationFromIndex(i);
        if (aggregationName(agg) == name) {
            out = agg;
            return true;
        }
    }
    return false;
}

Aggregation
aggregationFromIndex(int index)
{
    e3_assert(index >= 0 && index < numAggregations,
              "aggregation index ", index, " out of range");
    return static_cast<Aggregation>(index);
}

} // namespace e3
