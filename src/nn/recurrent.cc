#include "nn/recurrent.hh"

#include <map>
#include <set>

#include "common/logging.hh"
#include "nn/layering.hh"

namespace e3 {

RecurrentNetwork
RecurrentNetwork::create(const NetworkDef &def)
{
    e3_assert(!def.inputIds.empty(), "network needs at least one input");
    e3_assert(!def.outputIds.empty(),
              "network needs at least one output");

    RecurrentNetwork net;
    net.numInputs_ = def.inputIds.size();

    const std::set<int> required = requiredNodes(def);
    const std::set<int> inputs(def.inputIds.begin(),
                               def.inputIds.end());

    // Slot assignment: inputs first, then required nodes in id order
    // (no topological constraint exists for recurrent evaluation).
    std::map<int, uint32_t> slotOf;
    for (size_t i = 0; i < def.inputIds.size(); ++i)
        slotOf[def.inputIds[i]] = static_cast<uint32_t>(i);
    uint32_t nextSlot = static_cast<uint32_t>(def.inputIds.size());

    std::map<int, const NetworkDef::Node *> nodeOf;
    for (const auto &n : def.nodes) {
        e3_assert(!nodeOf.count(n.id), "duplicate node id ", n.id);
        nodeOf[n.id] = &n;
    }
    for (int id : def.outputIds)
        e3_assert(nodeOf.count(id), "output node ", id, " missing");

    for (int id : required) {
        e3_assert(nodeOf.count(id),
                  "connection references unknown node ", id);
        slotOf[id] = nextSlot++;
    }

    std::map<int, std::vector<EvalLink>> linksOf;
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (!inputs.count(c.from) && !required.count(c.from))
            continue;
        linksOf[c.to].push_back({slotOf.at(c.from), c.weight});
    }

    for (int id : required) {
        const auto *src = nodeOf.at(id);
        EvalNode en;
        en.id = id;
        en.slot = slotOf.at(id);
        en.bias = src->bias;
        en.act = src->act;
        en.agg = src->agg;
        en.links = linksOf.count(id) ? linksOf.at(id)
                                     : std::vector<EvalLink>{};
        net.nodes_.push_back(std::move(en));
    }

    for (int id : def.outputIds)
        net.outputSlots_.push_back(slotOf.at(id));

    net.prev_.assign(nextSlot, 0.0);
    net.next_.assign(nextSlot, 0.0);
    return net;
}

void
RecurrentNetwork::activateInto(const double *inputs, double *outputs)
{
    // Inputs are visible within the tick; node reads see the previous
    // tick's activations (neat-python RecurrentNetwork semantics).
    for (size_t i = 0; i < numInputs_; ++i) {
        prev_[i] = inputs[i];
        next_[i] = inputs[i];
    }

    for (const auto &node : nodes_) {
        Aggregator agg(node.agg);
        for (const auto &link : node.links)
            agg.add(prev_[link.srcSlot] * link.weight);
        next_[node.slot] =
            applyActivation(node.act, agg.result() + node.bias);
    }
    std::swap(prev_, next_);

    for (size_t o = 0; o < outputSlots_.size(); ++o)
        outputs[o] = prev_[outputSlots_[o]];
}

void
RecurrentNetwork::reset()
{
    std::fill(prev_.begin(), prev_.end(), 0.0);
    std::fill(next_.begin(), next_.end(), 0.0);
}

uint64_t
RecurrentNetwork::connectionCount() const
{
    uint64_t n = 0;
    for (const auto &node : nodes_)
        n += node.links.size();
    return n;
}

std::vector<size_t>
RecurrentNetwork::inDegreeProfile() const
{
    std::vector<size_t> profile;
    profile.reserve(nodes_.size());
    for (const auto &node : nodes_)
        profile.push_back(node.links.size());
    return profile;
}

} // namespace e3
