#include "nn/quantize.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

double
FixedPointFormat::maxValue() const
{
    const double steps =
        std::ldexp(1.0, totalBits - 1) - 1.0; // 2^(t-1) - 1
    return steps * resolution();
}

double
FixedPointFormat::minValue() const
{
    return -std::ldexp(1.0, totalBits - 1) * resolution();
}

double
FixedPointFormat::resolution() const
{
    return std::ldexp(1.0, -fracBits);
}

double
FixedPointFormat::quantize(double v) const
{
    const double scaled = std::round(v / resolution());
    const double lo = -std::ldexp(1.0, totalBits - 1);
    const double hi = std::ldexp(1.0, totalBits - 1) - 1.0;
    return std::clamp(scaled, lo, hi) * resolution();
}

Status
FixedPointFormat::validate() const
{
    if (totalBits < 2 || totalBits > 64)
        return Status::error("fixed-point total bits ", totalBits,
                             " out of range [2, 64]");
    if (fracBits < 0 || fracBits >= totalBits)
        return Status::error("fractional bits ", fracBits,
                             " must be in [0, totalBits)");
    return Status();
}

std::string
FixedPointFormat::describe() const
{
    std::ostringstream oss;
    oss << 'Q' << (totalBits - 1 - fracBits) << '.' << fracBits;
    return oss.str();
}

NetworkDef
quantizeDef(const NetworkDef &def, const FixedPointFormat &format)
{
    assertOk(format.validate());
    NetworkDef out = def;
    for (auto &node : out.nodes)
        node.bias = format.quantize(node.bias);
    for (auto &conn : out.conns)
        conn.weight = format.quantize(conn.weight);
    return out;
}

QuantizedNetwork::QuantizedNetwork(FeedForwardNetwork net,
                                   FixedPointFormat format)
    : net_(std::move(net)), format_(format)
{
    values_.assign(net_.valueSlots(), 0.0);
    // Output slots: the nodes with ids 0..numOutputs-1.
    outputSlots_.assign(net_.numOutputs(), 0);
    for (const auto &layer : net_.layers()) {
        for (const auto &node : layer) {
            if (node.id >= 0 &&
                node.id < static_cast<int>(net_.numOutputs()))
                outputSlots_[static_cast<size_t>(node.id)] = node.slot;
        }
    }
}

QuantizedNetwork
QuantizedNetwork::create(const NetworkDef &def,
                         const FixedPointFormat &format)
{
    assertOk(format.validate());
    return QuantizedNetwork(
        FeedForwardNetwork::create(quantizeDef(def, format)), format);
}

void
QuantizedNetwork::activateInto(const double *inputs, double *outputs)
{
    for (size_t i = 0; i < net_.numInputs(); ++i)
        values_[i] = format_.quantize(inputs[i]);

    for (const auto &layer : net_.layers()) {
        for (const auto &node : layer) {
            // Full-precision accumulation (wide DSP accumulator), then
            // quantize the activated output as it enters the value
            // buffer.
            Aggregator agg(node.agg);
            for (const auto &link : node.links)
                agg.add(values_[link.srcSlot] * link.weight);
            const double activated =
                applyActivation(node.act, agg.result() + node.bias);
            values_[node.slot] = format_.quantize(activated);
        }
    }

    for (size_t o = 0; o < outputSlots_.size(); ++o)
        outputs[o] = values_[outputSlots_[o]];
}

} // namespace e3
