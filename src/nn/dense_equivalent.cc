#include "nn/dense_equivalent.hh"

#include <map>
#include <set>

#include "common/logging.hh"
#include "nn/layering.hh"

namespace e3 {

uint64_t
DenseEquivalent::denseConnections() const
{
    uint64_t total = 0;
    for (size_t i = 0; i + 1 < layerSizes.size(); ++i) {
        total += static_cast<uint64_t>(layerSizes[i]) *
                 static_cast<uint64_t>(layerSizes[i + 1]);
    }
    return total;
}

DenseEquivalent
denseEquivalent(const NetworkDef &def)
{
    const std::set<int> required = requiredNodes(def);
    const std::set<int> inputs(def.inputIds.begin(), def.inputIds.end());
    const auto layers = feedForwardLayers(def);

    // Layer index per node: inputs at 0, dependency layers at 1..k.
    std::map<int, size_t> layerOf;
    for (int id : def.inputIds)
        layerOf[id] = 0;
    for (size_t l = 0; l < layers.size(); ++l) {
        for (int id : layers[l])
            layerOf[id] = l + 1;
    }

    DenseEquivalent eq;
    eq.layerSizes.assign(layers.size() + 1, 0);
    eq.layerSizes[0] = def.inputIds.size();
    for (size_t l = 0; l < layers.size(); ++l) {
        eq.layerSizes[l + 1] = layers[l].size();
        eq.realNodes += layers[l].size();
    }

    // A value produced in layer L(u) and consumed in layer L(v) > L(u)+1
    // must be relayed by a dummy node in every intermediate layer. Each
    // producer needs at most one relay per layer, up to its furthest
    // consumer.
    std::map<int, size_t> furthestConsumer;
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (!inputs.count(c.from) && !required.count(c.from))
            continue;
        const size_t lv = layerOf.at(c.to);
        auto [it, inserted] = furthestConsumer.try_emplace(c.from, lv);
        if (!inserted && lv > it->second)
            it->second = lv;
    }

    for (const auto &[u, far] : furthestConsumer) {
        const size_t lu = layerOf.at(u);
        e3_assert(far > lu, "connection does not point forward");
        for (size_t l = lu + 1; l < far; ++l) {
            ++eq.layerSizes[l];
            ++eq.dummyNodes;
        }
    }
    return eq;
}

} // namespace e3
