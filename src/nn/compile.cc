#include "nn/compile.hh"

#include <cmath>
#include <set>
#include <utility>

#include "common/logging.hh"
#include "nn/layering.hh"

namespace e3 {

Status
checkDefInvariants(const NetworkDef &def, bool recurrent)
{
    std::set<int> inputs;
    for (int id : def.inputIds) {
        if (!inputs.insert(id).second)
            return Status::error("duplicate input id ", id);
    }
    std::set<int> nodes;
    for (const auto &node : def.nodes) {
        if (!nodes.insert(node.id).second)
            return Status::error("duplicate node id ", node.id);
        if (inputs.count(node.id))
            return Status::error("input id ", node.id,
                                 " declared as a computed node");
        if (!std::isfinite(node.bias))
            return Status::error("non-finite bias on node ", node.id);
    }
    for (int id : def.outputIds) {
        if (!nodes.count(id))
            return Status::error("output node ", id, " is not defined");
    }
    std::set<std::pair<int, int>> conns;
    for (const auto &conn : def.conns) {
        if (!conns.insert({conn.from, conn.to}).second)
            return Status::error("duplicate connection ", conn.from,
                                 "->", conn.to);
        if (inputs.count(conn.to) || conn.to < 0)
            return Status::error("connection ", conn.from, "->",
                                 conn.to, " targets an input id");
        if (!nodes.count(conn.to))
            return Status::error("connection ", conn.from, "->",
                                 conn.to, " targets undefined node ",
                                 conn.to);
        if (!inputs.count(conn.from) && !nodes.count(conn.from))
            return Status::error("connection ", conn.from, "->",
                                 conn.to, " reads undefined node ",
                                 conn.from);
        if (!std::isfinite(conn.weight))
            return Status::error("non-finite weight on connection ",
                                 conn.from, "->", conn.to);
    }
    if (!recurrent && !isAcyclic(def))
        return Status::error(
            "connections form a cycle in a feed-forward definition");
    return Status();
}

Result<std::unique_ptr<Network>>
compileNetwork(const NetworkDef &def,
               const NetworkCompileOptions &options)
{
    if (options.recurrent && options.quantization)
        return Status::error(
            "quantized recurrent evaluation is not supported");
    if (Status invariants = checkDefInvariants(def, options.recurrent);
        !invariants.ok()) {
        return Status::error("malformed NetworkDef: ",
                             invariants.message());
    }
    if (options.quantization) {
        if (Status format = options.quantization->validate();
            !format.ok())
            return format;
        return std::unique_ptr<Network>(std::make_unique<QuantizedNetwork>(
            QuantizedNetwork::create(def, *options.quantization)));
    }
    if (options.recurrent) {
        return std::unique_ptr<Network>(std::make_unique<RecurrentNetwork>(
            RecurrentNetwork::create(def)));
    }
    return std::unique_ptr<Network>(std::make_unique<FeedForwardNetwork>(
        FeedForwardNetwork::create(def)));
}

} // namespace e3
