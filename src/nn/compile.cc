#include "nn/compile.hh"

#include "common/logging.hh"

namespace e3 {

std::unique_ptr<Network>
compileNetwork(const NetworkDef &def,
               const NetworkCompileOptions &options)
{
    e3_assert(!(options.recurrent && options.quantization),
              "quantized recurrent evaluation is not supported");
    if (options.quantization) {
        return std::make_unique<QuantizedNetwork>(
            QuantizedNetwork::create(def, *options.quantization));
    }
    if (options.recurrent) {
        return std::make_unique<RecurrentNetwork>(
            RecurrentNetwork::create(def));
    }
    return std::make_unique<FeedForwardNetwork>(
        FeedForwardNetwork::create(def));
}

} // namespace e3
