/**
 * @file
 * Required-node analysis and dependency layering for irregular networks,
 * following neat-python's feed_forward_layers algorithm.
 */

#ifndef E3_NN_LAYERING_HH
#define E3_NN_LAYERING_HH

#include <set>
#include <vector>

#include "nn/network.hh"

namespace e3 {

/**
 * Nodes required to compute the outputs: every non-input node from which
 * an output is reachable. Output nodes are always required.
 */
std::set<int> requiredNodes(const NetworkDef &def);

/**
 * Partition required non-input nodes into dependency layers.
 *
 * Layer k contains every not-yet-placed required node all of whose
 * ingress connections originate from inputs or layers < k. Connections
 * from unrequired nodes are ignored. Outputs with no ingress at all are
 * placed in a final layer so they always execute.
 *
 * @return layers of node ids, in execution order
 */
std::vector<std::vector<int>> feedForwardLayers(const NetworkDef &def);

/**
 * True if the connection set is acyclic over the required nodes (a
 * precondition for feed-forward execution).
 */
bool isAcyclic(const NetworkDef &def);

} // namespace e3

#endif // E3_NN_LAYERING_HH
