/**
 * @file
 * One front door for turning a NetworkDef into an executable Network.
 *
 * Callers describe *what* they need (recurrent evaluation? the
 * fixed-point deployment view?) and get back the right implementation
 * behind the shared Network interface — no more switching on concrete
 * network types in evaluators, benches or the replay path.
 */

#ifndef E3_NN_COMPILE_HH
#define E3_NN_COMPILE_HH

#include <memory>
#include <optional>

#include "common/result.hh"
#include "nn/quantize.hh"
#include "nn/recurrent.hh"

namespace e3 {

/** How a NetworkDef should be compiled for execution. */
struct NetworkCompileOptions
{
    /**
     * Evaluate with synchronous-tick recurrent semantics (required
     * when the genome was evolved with NeatConfig::feedForward off).
     */
    bool recurrent = false;

    /**
     * Run inference through the fixed-point evaluator at this format —
     * the accelerator's datapath view. Feed-forward only.
     */
    std::optional<FixedPointFormat> quantization;
};

/**
 * Compile a definition into the matching executable form:
 * quantized feed-forward when a format is given, recurrent when
 * requested, plain feed-forward otherwise. A malformed definition
 * (checkDefInvariants), an invalid fixed-point format, or the
 * unsupported recurrent+quantized combination comes back as an error
 * Status — compiling user-supplied genomes never aborts the process.
 */
Result<std::unique_ptr<Network>>
compileNetwork(const NetworkDef &def,
               const NetworkCompileOptions &options = {});

/**
 * Structural invariants every compilable definition must satisfy:
 * unique node ids and connection keys, every output id defined,
 * connection endpoints resolving to inputs or nodes, finite weights
 * and biases, and (unless @p recurrent) acyclicity. Returns the first
 * violation as an error Status. compileNetwork() checks this before
 * handing the def to the evaluators, whose own e3_asserts are
 * narrower; the full verifier (src/verify) reports the same defects
 * as cataloged diagnostics.
 */
Status checkDefInvariants(const NetworkDef &def, bool recurrent = false);

} // namespace e3

#endif // E3_NN_COMPILE_HH
