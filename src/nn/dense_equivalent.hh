/**
 * @file
 * Dense MLP counterpart of an irregular network (paper Fig. 4(d)).
 *
 * A regular layer-by-layer accelerator (e.g. a systolic array) can only
 * consume values produced by the immediately preceding layer. To execute
 * an irregular network whose connections skip layers, every skipped
 * value must be relayed through *dummy passthrough nodes* in each
 * intermediate layer, and each layer pair is then processed as a dense
 * matrix-vector product (absent connections become zeros). This module
 * computes that padded structure; the SystolicArray model charges cycles
 * against it (Fig. 11).
 */

#ifndef E3_NN_DENSE_EQUIVALENT_HH
#define E3_NN_DENSE_EQUIVALENT_HH

#include <cstdint>
#include <vector>

#include "nn/network.hh"

namespace e3 {

/** Padded dense structure equivalent to an irregular network. */
struct DenseEquivalent
{
    /**
     * Per-layer widths after dummy-node padding; entry 0 is the input
     * layer. A width counts real nodes plus relayed (dummy) values that
     * must flow through the layer.
     */
    std::vector<size_t> layerSizes;

    /** Total dummy relay nodes added across all layers. */
    size_t dummyNodes = 0;

    /** Real (non-dummy) nodes, excluding inputs. */
    size_t realNodes = 0;

    /**
     * Connections of the dense counterpart: adjacent padded layers fully
     * connected. This is the MAC work a dense accelerator performs.
     */
    uint64_t denseConnections() const;
};

/** Build the dense counterpart of a network definition. */
DenseEquivalent denseEquivalent(const NetworkDef &def);

} // namespace e3

#endif // E3_NN_DENSE_EQUIVALENT_HH
