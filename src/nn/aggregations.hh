/**
 * @file
 * Node aggregation functions: how a node combines its weighted inputs
 * before the bias and activation are applied. Sum is the MLP default;
 * the alternatives mirror neat-python's aggregation options.
 */

#ifndef E3_NN_AGGREGATIONS_HH
#define E3_NN_AGGREGATIONS_HH

#include <string>
#include <vector>

#include "common/result.hh"

namespace e3 {

/** Supported aggregation functions. */
enum class Aggregation
{
    Sum,
    Product,
    Max,
    Min,
    Mean,
};

/** Number of Aggregation enumerators (see kActivationCount). */
inline constexpr int kAggregationCount = 5;

/** Combine weighted input contributions; empty input yields 0. */
double applyAggregation(Aggregation agg,
                        const std::vector<double> &values);

/** Streaming form: fold one more value into an accumulator. */
class Aggregator
{
  public:
    explicit Aggregator(Aggregation agg);

    /** Fold in one weighted input contribution. */
    void add(double v);

    /** Final aggregate (0 if nothing was added). */
    double result() const;

  private:
    Aggregation agg_;
    double acc_ = 0.0;
    size_t count_ = 0;
};

/** Stable lowercase name, e.g. "sum". */
std::string aggregationName(Aggregation agg);

/** Parse a name produced by aggregationName(); error on unknown. */
Result<Aggregation> parseAggregation(const std::string &name);

/**
 * Parse a name into @p out and return true; false on unknown names
 * (for load paths that must not terminate the process).
 */
bool tryParseAggregation(const std::string &name, Aggregation &out);

/** Number of distinct aggregations (for mutation sampling). */
constexpr int numAggregations = 5;

/** Map a dense index [0, numAggregations) to an Aggregation. */
Aggregation aggregationFromIndex(int index);

} // namespace e3

#endif // E3_NN_AGGREGATIONS_HH
