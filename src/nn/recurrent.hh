/**
 * @file
 * Recurrent evaluation of evolved networks.
 *
 * The original NEAT formulation (and neat-python's RecurrentNetwork)
 * also evolves networks whose connection graph may contain cycles;
 * evaluation then advances one synchronous tick per activate() call,
 * with every node reading the *previous* tick's values. The paper's
 * prototype restricts itself to feed-forward topologies, but the
 * library supports both: set NeatConfig::feedForward = false to let
 * mutation create cycles, and evaluate the result with this class.
 * (A recurrent individual maps naturally onto an INAX PU: the value
 * buffer already holds all activations, and with no intra-tick
 * dependencies every node is schedulable in one wave set.)
 */

#ifndef E3_NN_RECURRENT_HH
#define E3_NN_RECURRENT_HH

#include "nn/network.hh"

namespace e3 {

/**
 * Synchronous-tick recurrent network.
 *
 * Per activate(): every node computes from the previous tick's value
 * buffer (inputs are updated immediately), then the buffers swap.
 * reset() zeroes the state between episodes.
 */
class RecurrentNetwork : public Network
{
  public:
    /**
     * Compile a definition; cycles are allowed. Nodes not required for
     * the outputs are pruned as in the feed-forward case.
     */
    static RecurrentNetwork create(const NetworkDef &def);

    /** Advance one tick; writes output values after the tick. */
    void activateInto(const double *inputs, double *outputs) override;

    /** Clear all state (start of an episode). */
    void reset() override;

    size_t numInputs() const override { return numInputs_; }
    size_t numOutputs() const override { return outputSlots_.size(); }
    size_t nodeCount() const { return nodes_.size(); }
    uint64_t connectionCount() const;

    /**
     * Per-tick node in-degrees as a single schedulable wave set
     * (every node independent within a tick) — feed this to the INAX
     * in-degree scheduling overload.
     */
    std::vector<size_t> inDegreeProfile() const;

  private:
    RecurrentNetwork() = default;

    size_t numInputs_ = 0;
    std::vector<EvalNode> nodes_;
    std::vector<uint32_t> outputSlots_;
    std::vector<double> prev_;
    std::vector<double> next_;
};

} // namespace e3

#endif // E3_NN_RECURRENT_HH
