/**
 * @file
 * Population-at-a-time batched inference (ROADMAP item 1).
 *
 * BatchNetwork is the batch-first counterpart of Network: N lanes,
 * each an independent network instance — one genome of a population,
 * or N replicas of one champion for request batching. BatchEvaluator
 * is the structure-of-arrays engine behind it: the whole population is
 * compiled once into flat computation lists (the burds-style
 * (srcSlot, dstSlot, weight) triples, factored as per-node op runs so
 * the destination slot is not repeated per edge), sorted at compile
 * time into dependency order and grouped into segments of consecutive
 * nodes sharing (activation, aggregation) so the inner loops are tight
 * folds with zero per-step allocation. Values live in one contiguous
 * arena with a disjoint region per lane, which is what makes
 * activateLane() safe to call concurrently for distinct lanes.
 *
 * Fold-order guarantee: per genome, nodes execute in exactly the
 * order FeedForwardNetwork compiles them (layer order, then node
 * order within the layer) and each node folds its ingress ops in
 * exactly FeedForwardNetwork's link order, seeding the accumulator
 * from the first element like Aggregator does. Results are therefore
 * bit-identical to per-genome FeedForwardNetwork::activate() at any
 * batch size and thread count, keeping RngAudit digests and
 * src/verify interval bounds valid unchanged.
 */

#ifndef E3_NN_BATCH_EVAL_HH
#define E3_NN_BATCH_EVAL_HH

#include <memory>
#include <vector>

#include "common/result.hh"
#include "nn/compile.hh"
#include "nn/network.hh"

namespace e3 {

/**
 * Batch-first evaluation interface: a fixed set of lanes, each lane an
 * independent network evaluated from strided input/output rows.
 *
 * Contract: lane i reads numInputs() doubles at inputs + i*inputStride
 * and writes numOutputs() doubles at outputs + i*outputStride;
 * activateLane() is the single-lane entry and must be safe to call
 * concurrently for *distinct* lanes (ParallelEval lanes run out of
 * lockstep). reset() clears any cross-step state on every lane.
 */
class BatchNetwork
{
  public:
    virtual ~BatchNetwork() = default;

    /** Evaluate lanes [0, count) from strided rows; count <= lanes(). */
    virtual void activateBatch(size_t count, const double *inputs,
                               size_t inputStride, double *outputs,
                               size_t outputStride) = 0;

    /** Evaluate one lane; thread-safe across distinct lanes. */
    virtual void activateLane(size_t lane, const double *inputs,
                              double *outputs) = 0;

    /** Clear cross-step state; default is stateless. */
    virtual void reset() {}

    virtual size_t lanes() const = 0;
    virtual size_t numInputs() const = 0;
    virtual size_t numOutputs() const = 0;
};

/**
 * SoA batch engine for plain feed-forward networks. Compile once per
 * generation (or once per champion, replicated), then activate with no
 * allocation: the per-lane programs are flat arrays of ops, node runs
 * and (activation, aggregation) segments over one contiguous value
 * arena.
 */
class BatchEvaluator : public BatchNetwork
{
  public:
    /**
     * Compile one program per definition (a population). All defs must
     * share input/output arity; options must be plain feed-forward
     * (no recurrence, no quantization — use the adapter for those).
     */
    static Result<std::unique_ptr<BatchEvaluator>>
    compile(const std::vector<NetworkDef> &defs,
            const NetworkCompileOptions &options = {});

    /**
     * Compile one definition shared by @p lanes value lanes — the
     * serve-side shape, where coalesced same-champion requests land in
     * one activateBatch() call.
     */
    static Result<std::unique_ptr<BatchEvaluator>>
    compileReplicated(const NetworkDef &def, size_t lanes,
                      const NetworkCompileOptions &options = {});

    void activateBatch(size_t count, const double *inputs,
                       size_t inputStride, double *outputs,
                       size_t outputStride) override;

    void activateLane(size_t lane, const double *inputs,
                      double *outputs) override;

    void reset() override;

    size_t lanes() const override { return lanePrograms_.size(); }
    size_t numInputs() const override { return numInputs_; }
    size_t numOutputs() const override { return numOutputs_; }

    /**
     * Distinct compiled ops across all lane programs. Replicated
     * lanes share one program, so a full-batch activation performs
     * totalOps() MACs for a population compile and lanes() *
     * totalOps() for a replicated one.
     */
    uint64_t totalOps() const { return ops_.size(); }

  private:
    /** One compiled node: a run [opBegin, opEnd) folded into dstSlot. */
    struct NodeRun
    {
        uint32_t dstSlot; ///< lane-local value slot written
        uint32_t opBegin;
        uint32_t opEnd;
        double bias;
    };

    /** Consecutive nodes sharing (activation, aggregation). */
    struct Segment
    {
        uint32_t nodeBegin;
        uint32_t nodeEnd;
        Activation act;
        Aggregation agg;
    };

    /** One lane's slice of the flat arrays and the value arena. */
    struct LaneProgram
    {
        uint32_t segBegin;
        uint32_t segEnd;
        uint32_t valueBase; ///< arena offset of this lane's slots
        uint32_t slotCount;
        uint32_t outBase; ///< offset into outputSlots_
    };

    BatchEvaluator() = default;

    /** Flatten one compiled network into the SoA arrays as a lane. */
    void appendLane(const FeedForwardNetwork &net);

    /**
     * One fold step: multiply a lane-local value slot by a weight.
     * Kept as an {slot, weight} pair (one sequential 16-byte stream)
     * rather than split parallel arrays — measured head-to-head on the
     * target, the single-stream layout is faster at population 128 and
     * no worse at 256.
     */
    struct Op
    {
        uint32_t srcSlot; ///< lane-local value slot read
        double weight;
    };

    size_t numInputs_ = 0;
    size_t numOutputs_ = 0;
    std::vector<Op> ops_;
    std::vector<NodeRun> nodes_;
    std::vector<Segment> segments_;
    std::vector<uint32_t> outputSlots_; ///< lane-local output slots
    std::vector<LaneProgram> lanePrograms_;
    std::vector<double> values_; ///< contiguous per-lane value arena
};

/**
 * Loop-over-Network adapter: the same BatchNetwork contract backed by
 * one compiled Network per lane, so recurrent and quantized options
 * (and any future Network implementation) keep working behind the
 * batch-first API.
 */
class NetworkBatchAdapter : public BatchNetwork
{
  public:
    /** Wrap pre-compiled networks; all must share arity. */
    static Result<std::unique_ptr<NetworkBatchAdapter>>
    create(std::vector<std::unique_ptr<Network>> nets);

    void activateBatch(size_t count, const double *inputs,
                       size_t inputStride, double *outputs,
                       size_t outputStride) override;

    void activateLane(size_t lane, const double *inputs,
                      double *outputs) override;

    void reset() override;

    size_t lanes() const override { return nets_.size(); }
    size_t numInputs() const override { return numInputs_; }
    size_t numOutputs() const override { return numOutputs_; }

    /** The lane's underlying network (tests, replay introspection). */
    Network &lane(size_t i) { return *nets_[i]; }

  private:
    explicit NetworkBatchAdapter(
        std::vector<std::unique_ptr<Network>> nets);

    size_t numInputs_ = 0;
    size_t numOutputs_ = 0;
    std::vector<std::unique_ptr<Network>> nets_;
};

/** Engine selection for the population-compile entry points. */
enum class BatchEngine
{
    Auto,      ///< SoA when the options allow it, adapter otherwise
    Soa,       ///< force the SoA engine (error on unsupported options)
    PerGenome, ///< force the loop-over-Network adapter
};

/**
 * The one population-compile entry point: turn a population of
 * definitions into a BatchNetwork. Both the platform's evaluation
 * path and serve go through here, so the batch engine can intercept
 * whole populations regardless of caller.
 */
Result<std::unique_ptr<BatchNetwork>>
compilePopulation(const std::vector<NetworkDef> &defs,
                  const NetworkCompileOptions &options = {},
                  BatchEngine engine = BatchEngine::Auto);

/** Same, for one definition replicated across @p lanes lanes. */
Result<std::unique_ptr<BatchNetwork>>
compileReplicated(const NetworkDef &def, size_t lanes,
                  const NetworkCompileOptions &options = {},
                  BatchEngine engine = BatchEngine::Auto);

} // namespace e3

#endif // E3_NN_BATCH_EVAL_HH
