/**
 * @file
 * Population-at-a-time batched inference (ROADMAP item 1).
 *
 * BatchNetwork is the batch-first counterpart of Network: N lanes,
 * each an independent network instance — one genome of a population,
 * or N replicas of one champion for request batching. BatchEvaluator
 * is the structure-of-arrays engine behind it: the whole population is
 * compiled once into flat computation lists (the burds-style
 * (srcSlot, dstSlot, weight) triples, factored as per-node op runs so
 * the destination slot is not repeated per edge), sorted at compile
 * time into dependency order and grouped into segments of consecutive
 * nodes sharing (activation, aggregation) so the inner loops are tight
 * folds with zero per-step allocation. Values live in one contiguous
 * arena with a disjoint region per lane, which is what makes
 * activateLane() safe to call concurrently for distinct lanes.
 *
 * Fold-order guarantee: per genome, nodes execute in exactly the
 * order FeedForwardNetwork compiles them (layer order, then node
 * order within the layer) and each node folds its ingress ops in
 * exactly FeedForwardNetwork's link order, seeding the accumulator
 * from the first element like Aggregator does. Results are therefore
 * bit-identical to per-genome FeedForwardNetwork::activate() at any
 * batch size and thread count, keeping RngAudit digests and
 * src/verify interval bounds valid unchanged.
 */

#ifndef E3_NN_BATCH_EVAL_HH
#define E3_NN_BATCH_EVAL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/result.hh"
#include "nn/compile.hh"
#include "nn/network.hh"

namespace e3 {

/**
 * Batch-first evaluation interface: a fixed set of lanes, each lane an
 * independent network evaluated from strided input/output rows.
 *
 * Contract: lane i reads numInputs() doubles at inputs + i*inputStride
 * and writes numOutputs() doubles at outputs + i*outputStride;
 * activateLane() is the single-lane entry and must be safe to call
 * concurrently for *distinct* lanes (ParallelEval lanes run out of
 * lockstep). reset() clears any cross-step state on every lane.
 */
struct BatchPlan;

class BatchNetwork
{
  public:
    virtual ~BatchNetwork() = default;

    /** Evaluate lanes [0, count) from strided rows; count <= lanes(). */
    virtual void activateBatch(size_t count, const double *inputs,
                               size_t inputStride, double *outputs,
                               size_t outputStride) = 0;

    /** Evaluate one lane; thread-safe across distinct lanes. */
    virtual void activateLane(size_t lane, const double *inputs,
                              double *outputs) = 0;

    /** Clear cross-step state; default is stateless. */
    virtual void reset() {}

    virtual size_t lanes() const = 0;
    virtual size_t numInputs() const = 0;
    virtual size_t numOutputs() const = 0;

    /**
     * The compiled SoA program when this implementation executes one
     * — the verify batch-plan pass (E3V301–E3V306) hooks in here.
     * nullptr for adapter-backed implementations, which have no flat
     * plan to certify.
     */
    virtual const BatchPlan *plan() const { return nullptr; }
};

/**
 * The compiled form of a batch: flat structure-of-arrays computation
 * lists over one contiguous value arena. This is BatchEvaluator's
 * entire execution state except the arena values themselves, exposed
 * as plain data so the src/verify batch-plan pass (E3V301–E3V306) can
 * check a compiled population without reaching into the engine — and
 * so a plan can be serialized, corrupted on purpose and re-verified
 * in fixtures.
 *
 * Invariants (checked by e3::checkPlanInvariants and, independently,
 * by verify::verifyBatchPlan):
 *  - every NodeRun's [opBegin, opEnd) lies inside ops, and every op's
 *    srcSlot (and the node's dstSlot) is inside its lane's slot range;
 *  - each lane's segments exactly partition its node list, in order;
 *  - per-lane arena regions [valueBase, valueBase+slotCount) never
 *    overlap and fit the arena;
 *  - every segment's (activation, aggregation) is a known enumerator,
 *    so the activate dispatch is complete;
 *  - each lane's output map reads numOutputs distinct in-range slots.
 */
struct BatchPlan
{
    /** One fold step: multiply a lane-local value slot by a weight. */
    struct Op
    {
        uint32_t srcSlot; ///< lane-local value slot read
        double weight;
    };

    /** One compiled node: a run [opBegin, opEnd) folded into dstSlot. */
    struct NodeRun
    {
        uint32_t dstSlot; ///< lane-local value slot written
        uint32_t opBegin;
        uint32_t opEnd;
        double bias;
    };

    /** Consecutive nodes sharing (activation, aggregation). */
    struct Segment
    {
        uint32_t nodeBegin;
        uint32_t nodeEnd;
        Activation act;
        Aggregation agg;
    };

    /** One lane's slice of the flat arrays and the value arena. */
    struct LaneProgram
    {
        uint32_t segBegin;
        uint32_t segEnd;
        uint32_t valueBase; ///< arena offset of this lane's slots
        uint32_t slotCount;
        uint32_t outBase; ///< offset into outputSlots
    };

    size_t numInputs = 0;
    size_t numOutputs = 0;
    size_t arenaSize = 0; ///< total value-arena slots, all lanes
    std::vector<Op> ops;
    std::vector<NodeRun> nodes;
    std::vector<Segment> segments;
    std::vector<uint32_t> outputSlots; ///< lane-local output slots
    std::vector<LaneProgram> lanes;
};

/**
 * Cheap structural soundness check over a compiled plan — the
 * invariants listed on BatchPlan, as one Status (first violation
 * wins). The compile paths assert this in debug builds; the full
 * diagnostic version with stable rule IDs is
 * verify::verifyBatchPlan().
 */
Status checkPlanInvariants(const BatchPlan &plan);

/**
 * SoA batch engine for plain feed-forward networks. Compile once per
 * generation (or once per champion, replicated), then activate with no
 * allocation: the per-lane programs are flat arrays of ops, node runs
 * and (activation, aggregation) segments over one contiguous value
 * arena.
 */
class BatchEvaluator : public BatchNetwork
{
  public:
    /**
     * Compile one program per definition (a population). All defs must
     * share input/output arity; options must be plain feed-forward
     * (no recurrence, no quantization — use the adapter for those).
     */
    static Result<std::unique_ptr<BatchEvaluator>>
    compile(const std::vector<NetworkDef> &defs,
            const NetworkCompileOptions &options = {});

    /**
     * Compile one definition shared by @p lanes value lanes — the
     * serve-side shape, where coalesced same-champion requests land in
     * one activateBatch() call.
     */
    static Result<std::unique_ptr<BatchEvaluator>>
    compileReplicated(const NetworkDef &def, size_t lanes,
                      const NetworkCompileOptions &options = {});

    void activateBatch(size_t count, const double *inputs,
                       size_t inputStride, double *outputs,
                       size_t outputStride) override;

    void activateLane(size_t lane, const double *inputs,
                      double *outputs) override;

    void reset() override;

    size_t lanes() const override { return plan_.lanes.size(); }
    size_t numInputs() const override { return plan_.numInputs; }
    size_t numOutputs() const override { return plan_.numOutputs; }

    /**
     * Distinct compiled ops across all lane programs. Replicated
     * lanes share one program, so a full-batch activation performs
     * totalOps() MACs for a population compile and lanes() *
     * totalOps() for a replicated one.
     */
    uint64_t totalOps() const { return plan_.ops.size(); }

    /** The compiled plan (the verifier's view of this engine). */
    const BatchPlan *plan() const override { return &plan_; }

  private:
    BatchEvaluator() = default;

    /** Flatten one compiled network into the SoA arrays as a lane. */
    void appendLane(const FeedForwardNetwork &net);

    /**
     * The compiled program. Op is kept as an {slot, weight} pair (one
     * sequential 16-byte stream) rather than split parallel arrays —
     * measured head-to-head on the target, the single-stream layout
     * is faster at population 128 and no worse at 256.
     */
    BatchPlan plan_;
    std::vector<double> values_; ///< contiguous per-lane value arena
};

/**
 * Loop-over-Network adapter: the same BatchNetwork contract backed by
 * one compiled Network per lane, so recurrent and quantized options
 * (and any future Network implementation) keep working behind the
 * batch-first API.
 */
class NetworkBatchAdapter : public BatchNetwork
{
  public:
    /** Wrap pre-compiled networks; all must share arity. */
    static Result<std::unique_ptr<NetworkBatchAdapter>>
    create(std::vector<std::unique_ptr<Network>> nets);

    void activateBatch(size_t count, const double *inputs,
                       size_t inputStride, double *outputs,
                       size_t outputStride) override;

    void activateLane(size_t lane, const double *inputs,
                      double *outputs) override;

    void reset() override;

    size_t lanes() const override { return nets_.size(); }
    size_t numInputs() const override { return numInputs_; }
    size_t numOutputs() const override { return numOutputs_; }

    /** The lane's underlying network (tests, replay introspection). */
    Network &lane(size_t i) { return *nets_[i]; }

  private:
    explicit NetworkBatchAdapter(
        std::vector<std::unique_ptr<Network>> nets);

    size_t numInputs_ = 0;
    size_t numOutputs_ = 0;
    std::vector<std::unique_ptr<Network>> nets_;
};

/** Engine selection for the population-compile entry points. */
enum class BatchEngine
{
    Auto,      ///< SoA when the options allow it, adapter otherwise
    Soa,       ///< force the SoA engine (error on unsupported options)
    PerGenome, ///< force the loop-over-Network adapter
};

/**
 * The one population-compile entry point: turn a population of
 * definitions into a BatchNetwork. Both the platform's evaluation
 * path and serve go through here, so the batch engine can intercept
 * whole populations regardless of caller.
 */
Result<std::unique_ptr<BatchNetwork>>
compilePopulation(const std::vector<NetworkDef> &defs,
                  const NetworkCompileOptions &options = {},
                  BatchEngine engine = BatchEngine::Auto);

/** Same, for one definition replicated across @p lanes lanes. */
Result<std::unique_ptr<BatchNetwork>>
compileReplicated(const NetworkDef &def, size_t lanes,
                  const NetworkCompileOptions &options = {},
                  BatchEngine engine = BatchEngine::Auto);

} // namespace e3

#endif // E3_NN_BATCH_EVAL_HH
