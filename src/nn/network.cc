#include "nn/network.hh"

#include <map>

#include "common/hot.hh"
#include "common/logging.hh"
#include "nn/layering.hh"

namespace e3 {

NetworkDef
NetworkDef::empty(size_t numInputs, size_t numOutputs)
{
    NetworkDef def;
    for (size_t i = 0; i < numInputs; ++i)
        def.inputIds.push_back(-1 - static_cast<int>(i));
    for (size_t o = 0; o < numOutputs; ++o) {
        def.outputIds.push_back(static_cast<int>(o));
        def.nodes.push_back({static_cast<int>(o), 0.0,
                             Activation::Sigmoid, Aggregation::Sum});
    }
    return def;
}

FeedForwardNetwork
FeedForwardNetwork::create(const NetworkDef &def)
{
    e3_assert(!def.inputIds.empty(), "network needs at least one input");
    e3_assert(!def.outputIds.empty(),
              "network needs at least one output");

    FeedForwardNetwork net;
    net.numInputs_ = def.inputIds.size();

    // Slot assignment: inputs first, then compiled nodes in layer order.
    std::map<int, uint32_t> slotOf;
    for (size_t i = 0; i < def.inputIds.size(); ++i)
        slotOf[def.inputIds[i]] = static_cast<uint32_t>(i);

    std::map<int, const NetworkDef::Node *> nodeOf;
    for (const auto &n : def.nodes) {
        e3_assert(!nodeOf.count(n.id), "duplicate node id ", n.id);
        nodeOf[n.id] = &n;
    }
    for (int id : def.outputIds)
        e3_assert(nodeOf.count(id), "output node ", id, " missing");

    const auto layerIds = feedForwardLayers(def);

    uint32_t nextSlot = static_cast<uint32_t>(def.inputIds.size());
    for (const auto &layer : layerIds) {
        for (int id : layer)
            slotOf[id] = nextSlot++;
    }
    // Outputs pruned as unreachable-from-required still need slots: an
    // output always exists. (feedForwardLayers keeps them, so this is a
    // consistency check rather than a fixup.)
    for (int id : def.outputIds)
        e3_assert(slotOf.count(id), "output ", id, " was not layered");

    net.slotCount_ = nextSlot;

    // Compile each layer's nodes with their ingress links.
    const std::set<int> required = requiredNodes(def);
    std::map<int, std::vector<EvalLink>> linksOf;
    std::set<int> inputSet(def.inputIds.begin(), def.inputIds.end());
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (!inputSet.count(c.from) && !required.count(c.from))
            continue;
        linksOf[c.to].push_back({slotOf.at(c.from), c.weight});
    }

    for (const auto &layer : layerIds) {
        std::vector<EvalNode> compiled;
        compiled.reserve(layer.size());
        for (int id : layer) {
            const auto *src = nodeOf.count(id) ? nodeOf.at(id) : nullptr;
            e3_assert(src, "connection references unknown node ", id);
            EvalNode en;
            en.id = id;
            en.slot = slotOf.at(id);
            en.bias = src->bias;
            en.act = src->act;
            en.agg = src->agg;
            en.links = linksOf.count(id) ? linksOf.at(id)
                                         : std::vector<EvalLink>{};
            compiled.push_back(std::move(en));
        }
        net.layers_.push_back(std::move(compiled));
    }

    for (int id : def.outputIds)
        net.outputSlots_.push_back(slotOf.at(id));

    net.values_.assign(net.slotCount_, 0.0);
    return net;
}

std::vector<double>
Network::activate(const std::vector<double> &inputs)
{
    e3_assert(inputs.size() == numInputs(),
              "expected ", numInputs(), " inputs, got ", inputs.size());
    std::vector<double> out(numOutputs());
    activateInto(inputs.data(), out.data());
    return out;
}

E3_HOT void
FeedForwardNetwork::activateInto(const double *inputs, double *outputs)
{
    for (size_t i = 0; i < numInputs_; ++i)
        values_[i] = inputs[i];

    for (const auto &layer : layers_) {
        for (const auto &node : layer) {
            Aggregator agg(node.agg);
            for (const auto &link : node.links)
                agg.add(values_[link.srcSlot] * link.weight);
            values_[node.slot] =
                applyActivation(node.act, agg.result() + node.bias);
        }
    }

    for (size_t o = 0; o < outputSlots_.size(); ++o)
        outputs[o] = values_[outputSlots_[o]];
}

size_t
FeedForwardNetwork::nodeCount() const
{
    size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.size();
    return n;
}

uint64_t
FeedForwardNetwork::connectionCount() const
{
    uint64_t n = 0;
    for (const auto &layer : layers_) {
        for (const auto &node : layer)
            n += node.links.size();
    }
    return n;
}

} // namespace e3
