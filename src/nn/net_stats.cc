#include "nn/net_stats.hh"

#include <set>

#include "common/logging.hh"
#include "nn/layering.hh"

namespace e3 {

NetStats
computeNetStats(const NetworkDef &def)
{
    NetStats stats;

    const std::set<int> required = requiredNodes(def);
    const std::set<int> inputs(def.inputIds.begin(), def.inputIds.end());

    // Cyclic (recurrent) definitions have no dependency layering; all
    // required nodes form one synchronous wave set per tick.
    const bool acyclic = isAcyclic(def);
    std::vector<std::vector<int>> layers;
    if (acyclic) {
        layers = feedForwardLayers(def);
    } else {
        layers.emplace_back(required.begin(), required.end());
    }

    stats.activeNodes = 0;
    for (const auto &layer : layers) {
        stats.layerSizes.push_back(layer.size());
        stats.activeNodes += layer.size();
    }

    // Count active connections and per-node in-degree.
    std::vector<size_t> degreeOf;
    for (const auto &layer : layers) {
        for (int id : layer) {
            size_t deg = 0;
            for (const auto &c : def.conns) {
                if (c.to != id)
                    continue;
                if (inputs.count(c.from) || required.count(c.from))
                    ++deg;
            }
            degreeOf.push_back(deg);
            stats.activeConnections += deg;
        }
    }
    stats.inDegrees = std::move(degreeOf);

    uint64_t dense = 0;
    if (acyclic) {
        std::vector<size_t> denseLayers;
        denseLayers.push_back(def.inputIds.size());
        for (size_t s : stats.layerSizes)
            denseLayers.push_back(s);
        dense = denseConnectionCount(denseLayers);
    } else {
        // Recurrent counterpart: every node may read every input and
        // every node's previous-tick value.
        dense = static_cast<uint64_t>(stats.activeNodes) *
                (def.inputIds.size() + stats.activeNodes);
    }
    stats.density = dense > 0
                        ? static_cast<double>(stats.activeConnections) /
                              static_cast<double>(dense)
                        : 0.0;
    return stats;
}

double
measureActivationDensity(FeedForwardNetwork &net, size_t samples,
                         Rng &rng)
{
    e3_assert(samples > 0, "need at least one sample");

    uint64_t totalMacs = 0;
    uint64_t liveMacs = 0;
    std::vector<double> values(net.valueSlots(), 0.0);
    std::vector<double> inputs(net.numInputs());

    for (size_t s = 0; s < samples; ++s) {
        for (auto &x : inputs)
            x = rng.uniform(-1.0, 1.0);
        for (size_t i = 0; i < inputs.size(); ++i)
            values[i] = inputs[i];
        // Re-run the layer evaluation here so per-link operand values
        // are observable (FeedForwardNetwork only exposes outputs).
        for (const auto &layer : net.layers()) {
            for (const auto &node : layer) {
                Aggregator agg(node.agg);
                for (const auto &link : node.links) {
                    const double v = values[link.srcSlot];
                    ++totalMacs;
                    // e3-lint: float-eq-ok -- exact zero-skip check, not a tolerance bug
                    liveMacs += v != 0.0 ? 1 : 0;
                    agg.add(v * link.weight);
                }
                values[node.slot] = applyActivation(
                    node.act, agg.result() + node.bias);
            }
        }
    }
    if (totalMacs == 0)
        return 1.0;
    return static_cast<double>(liveMacs) /
           static_cast<double>(totalMacs);
}

uint64_t
denseConnectionCount(const std::vector<size_t> &layerSizes)
{
    uint64_t total = 0;
    for (size_t i = 0; i + 1 < layerSizes.size(); ++i) {
        total += static_cast<uint64_t>(layerSizes[i]) *
                 static_cast<uint64_t>(layerSizes[i + 1]);
    }
    return total;
}

} // namespace e3
