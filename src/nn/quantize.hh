/**
 * @file
 * Fixed-point quantization of irregular networks.
 *
 * INAX's PEs are DSP-slice MACs operating on fixed-point words; the
 * software evolution loop works in double precision. This module
 * models the deployment step: weights, biases and activations quantize
 * to a Qm.n format (wide DSP accumulators keep the per-node partial
 * sum at full precision, matching DSP48 behaviour), so the co-design
 * question "how many bits does an evolved controller need?" can be
 * answered empirically (bench_ablation_quantization).
 */

#ifndef E3_NN_QUANTIZE_HH
#define E3_NN_QUANTIZE_HH

#include "common/result.hh"
#include "nn/network.hh"

namespace e3 {

/** Signed fixed-point format with saturation. */
struct FixedPointFormat
{
    int totalBits = 16; ///< including sign
    int fracBits = 8;   ///< fractional bits (Q7.8 at the defaults)

    /** Representable maximum. */
    double maxValue() const;

    /** Representable minimum. */
    double minValue() const;

    /** Quantization step. */
    double resolution() const;

    /** Round-to-nearest with saturation. */
    double quantize(double v) const;

    /** Error on nonsensical bit allocations. */
    Status validate() const;

    /** e.g. "Q7.8". */
    std::string describe() const;
};

/** Copy of a definition with quantized weights and biases. */
NetworkDef quantizeDef(const NetworkDef &def,
                       const FixedPointFormat &format);

/**
 * Irregular network evaluated with fixed-point value storage: inputs
 * and every node's activated output are quantized; MAC accumulation is
 * full-precision (wide DSP accumulator).
 */
class QuantizedNetwork : public Network
{
  public:
    /** Compile a (float) definition under a format. */
    static QuantizedNetwork create(const NetworkDef &def,
                                   const FixedPointFormat &format);

    /** Run one inference; outputs are quantized values. */
    void activateInto(const double *inputs, double *outputs) override;

    size_t numInputs() const override { return net_.numInputs(); }
    size_t numOutputs() const override { return net_.numOutputs(); }
    const FixedPointFormat &format() const { return format_; }

  private:
    QuantizedNetwork(FeedForwardNetwork net, FixedPointFormat format);

    FeedForwardNetwork net_;
    FixedPointFormat format_;
    std::vector<double> values_;
    std::vector<uint32_t> outputSlots_;
};

} // namespace e3

#endif // E3_NN_QUANTIZE_HH
