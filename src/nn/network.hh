/**
 * @file
 * Irregular feed-forward network: definition and executable form.
 *
 * A NetworkDef is the hardware-agnostic description produced by decoding
 * a NEAT genome ("CreateNet" in the paper's Table III): node ids with
 * bias/activation/aggregation, plus weighted directed connections.
 * Following neat-python's convention, input nodes have negative ids
 * (-1..-n), output nodes are 0..o-1, and hidden nodes are >= o. Inputs
 * are pure value sources and carry no bias/activation.
 *
 * FeedForwardNetwork is the compiled form: connections are pruned to the
 * nodes actually required for the outputs, nodes are partitioned into
 * dependency layers (every node's sources live in strictly earlier
 * layers), and activate() runs inference over a flat value array. The
 * layer structure is exactly what the INAX model schedules onto PEs.
 */

#ifndef E3_NN_NETWORK_HH
#define E3_NN_NETWORK_HH

#include <cstdint>
#include <vector>

#include "nn/activations.hh"
#include "nn/aggregations.hh"

namespace e3 {

/** Hardware-agnostic network description (decoded genome). */
struct NetworkDef
{
    /** Non-input node: carries bias, activation and aggregation. */
    struct Node
    {
        int id;
        double bias = 0.0;
        Activation act = Activation::Sigmoid;
        Aggregation agg = Aggregation::Sum;
    };

    /** Directed weighted connection (enabled genes only). */
    struct Conn
    {
        int from;
        int to;
        double weight;
    };

    std::vector<int> inputIds;  ///< by convention -1..-n
    std::vector<int> outputIds; ///< by convention 0..o-1
    std::vector<Node> nodes;    ///< output + hidden nodes
    std::vector<Conn> conns;    ///< enabled connections

    /** Convenience: a def with standard ids and no hidden nodes. */
    static NetworkDef empty(size_t numInputs, size_t numOutputs);
};

/** One weighted ingress edge of a compiled node. */
struct EvalLink
{
    uint32_t srcSlot; ///< index into the value array
    double weight;
};

/** One compiled (non-input, required) node. */
struct EvalNode
{
    int id;           ///< original node id
    uint32_t slot;    ///< value-array slot this node writes
    double bias;
    Activation act;
    Aggregation agg;
    std::vector<EvalLink> links; ///< ingress connections
};

/**
 * Common interface of every executable network form (feed-forward,
 * recurrent, quantized). Evaluators, benches and the replay path
 * program against this contract instead of switching on concrete
 * types; compileNetwork() (nn/compile.hh) picks the implementation.
 *
 * Contract: the span-style activateInto() core reads one value per
 * input in inputIds order and writes one value per output in outputIds
 * order; the std::vector activate() overload is a thin allocating
 * wrapper over it. reset() clears any cross-step state (a no-op for
 * stateless networks) and must be called between episodes.
 */
class Network
{
  public:
    virtual ~Network() = default;

    /**
     * Run one inference (one synchronous tick for stateful nets).
     * Reads exactly numInputs() doubles from @p inputs and writes
     * exactly numOutputs() doubles to @p outputs; implementations do
     * not allocate. This is the core every batch evaluator drives.
     */
    virtual void activateInto(const double *inputs,
                              double *outputs) = 0;

    /** Convenience wrapper over activateInto(). */
    std::vector<double> activate(const std::vector<double> &inputs);

    /** Clear cross-step state; default is stateless. */
    virtual void reset() {}

    virtual size_t numInputs() const = 0;
    virtual size_t numOutputs() const = 0;
};

/**
 * Compiled irregular feed-forward network.
 *
 * Invariants: layer k nodes only read slots written by inputs or layers
 * < k; every output id has a slot (an output never reached by any
 * connection still exists and emits its activated bias).
 */
class FeedForwardNetwork : public Network
{
  public:
    /** Compile a definition (prunes nodes not required for outputs). */
    static FeedForwardNetwork create(const NetworkDef &def);

    /**
     * Run one inference.
     * @param inputs one value per input id, in inputIds order
     * @param outputs one value per output id, in outputIds order
     */
    void activateInto(const double *inputs, double *outputs) override;

    size_t numInputs() const override { return numInputs_; }
    size_t numOutputs() const override { return outputSlots_.size(); }

    /** Dependency layers, in execution order. */
    const std::vector<std::vector<EvalNode>> &layers() const
    {
        return layers_;
    }

    /** Active (post-pruning) non-input node count. */
    size_t nodeCount() const;

    /** Active connection count == MAC operations per inference. */
    uint64_t connectionCount() const;

    /** Total value-array slots (inputs + compiled nodes). */
    size_t valueSlots() const { return slotCount_; }

    /** Value-array slot of each output, in outputIds order. */
    const std::vector<uint32_t> &outputSlots() const
    {
        return outputSlots_;
    }

    /**
     * The value array of the most recent activate() call: input slots
     * first, then one slot per compiled node. Indexed exactly like the
     * verifier's networkValueBounds(), which is what makes per-node
     * bound checks possible from the outside.
     */
    const std::vector<double> &values() const { return values_; }

  private:
    FeedForwardNetwork() = default;

    size_t numInputs_ = 0;
    size_t slotCount_ = 0;
    std::vector<std::vector<EvalNode>> layers_;
    std::vector<uint32_t> outputSlots_;
    std::vector<double> values_;
};

} // namespace e3

#endif // E3_NN_NETWORK_HH
