#include "nn/activations.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

double
applyActivation(Activation act, double x)
{
    switch (act) {
      case Activation::Sigmoid: {
        // neat-python clamps the argument to keep exp() in range.
        const double z = std::clamp(4.9 * x, -60.0, 60.0);
        return 1.0 / (1.0 + std::exp(-z));
      }
      case Activation::Tanh: {
        const double z = std::clamp(2.5 * x, -60.0, 60.0);
        return std::tanh(z);
      }
      case Activation::ReLU:
        return x > 0.0 ? x : 0.0;
      case Activation::Identity:
        return x;
      case Activation::Sin: {
        const double z = std::clamp(5.0 * x, -60.0, 60.0);
        return std::sin(z);
      }
      case Activation::Gauss: {
        const double z = std::clamp(x, -3.4, 3.4);
        return std::exp(-5.0 * z * z);
      }
      case Activation::Abs:
        return std::fabs(x);
      case Activation::Clamped:
        return std::clamp(x, -1.0, 1.0);
    }
    e3_panic("unhandled activation");
}

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Sigmoid: return "sigmoid";
      case Activation::Tanh: return "tanh";
      case Activation::ReLU: return "relu";
      case Activation::Identity: return "identity";
      case Activation::Sin: return "sin";
      case Activation::Gauss: return "gauss";
      case Activation::Abs: return "abs";
      case Activation::Clamped: return "clamped";
    }
    e3_panic("unhandled activation");
}

Activation
parseActivation(const std::string &name)
{
    Activation act;
    if (!tryParseActivation(name, act))
        // e3-lint: fatal-ok -- *OrDie boundary over tryParseActivation
        e3_fatal("unknown activation '", name, "'");
    return act;
}

bool
tryParseActivation(const std::string &name, Activation &out)
{
    for (int i = 0; i < numActivations; ++i) {
        const Activation act = activationFromIndex(i);
        if (activationName(act) == name) {
            out = act;
            return true;
        }
    }
    return false;
}

Activation
activationFromIndex(int index)
{
    e3_assert(index >= 0 && index < numActivations,
              "activation index ", index, " out of range");
    return static_cast<Activation>(index);
}

} // namespace e3
