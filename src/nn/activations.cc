#include "nn/activations.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace e3 {

double
applyActivation(Activation act, double x)
{
    switch (act) {
      case Activation::Sigmoid:
        return applyActivationT<Activation::Sigmoid>(x);
      case Activation::Tanh:
        return applyActivationT<Activation::Tanh>(x);
      case Activation::ReLU:
        return applyActivationT<Activation::ReLU>(x);
      case Activation::Identity:
        return applyActivationT<Activation::Identity>(x);
      case Activation::Sin:
        return applyActivationT<Activation::Sin>(x);
      case Activation::Gauss:
        return applyActivationT<Activation::Gauss>(x);
      case Activation::Abs:
        return applyActivationT<Activation::Abs>(x);
      case Activation::Clamped:
        return applyActivationT<Activation::Clamped>(x);
    }
    e3_panic("unhandled activation");
}

std::string
activationName(Activation act)
{
    switch (act) {
      case Activation::Sigmoid: return "sigmoid";
      case Activation::Tanh: return "tanh";
      case Activation::ReLU: return "relu";
      case Activation::Identity: return "identity";
      case Activation::Sin: return "sin";
      case Activation::Gauss: return "gauss";
      case Activation::Abs: return "abs";
      case Activation::Clamped: return "clamped";
    }
    e3_panic("unhandled activation");
}

Result<Activation>
parseActivation(const std::string &name)
{
    Activation act;
    if (!tryParseActivation(name, act))
        return Status::error("unknown activation '", name, "'");
    return act;
}

bool
tryParseActivation(const std::string &name, Activation &out)
{
    for (int i = 0; i < numActivations; ++i) {
        const Activation act = activationFromIndex(i);
        if (activationName(act) == name) {
            out = act;
            return true;
        }
    }
    return false;
}

Activation
activationFromIndex(int index)
{
    e3_assert(index >= 0 && index < numActivations,
              "activation index ", index, " out of range");
    return static_cast<Activation>(index);
}

} // namespace e3
