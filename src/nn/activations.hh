/**
 * @file
 * Node activation functions for evolved networks.
 *
 * The set mirrors neat-python's default activation repertoire; NEAT's
 * activation mutation picks among whichever subset the experiment config
 * allows. Each PE in INAX contains one activation unit applying exactly
 * these functions (paper Sec. IV-E).
 */

#ifndef E3_NN_ACTIVATIONS_HH
#define E3_NN_ACTIVATIONS_HH

#include <algorithm>
#include <cmath>
#include <string>

#include "common/result.hh"

namespace e3 {

/** Supported node activation functions. */
enum class Activation
{
    Sigmoid,  ///< 1 / (1 + exp(-4.9 x)) — neat-python's scaled sigmoid
    Tanh,     ///< tanh(2.5 x), matching neat-python's scaling
    ReLU,
    Identity,
    Sin,      ///< sin(5 x)
    Gauss,    ///< exp(-5 x^2)
    Abs,
    Clamped,  ///< clamp(x, -1, 1)
};

/**
 * Number of Activation enumerators — the bound the batch-plan
 * verifier checks dispatch completeness against. Keep in lockstep
 * with the enum (and the switch in BatchEvaluator::activateLane).
 */
inline constexpr int kActivationCount = 8;

/** Apply an activation to a pre-activation value. */
double applyActivation(Activation act, double x);

/**
 * Compile-time-dispatched twin of applyActivation() for inner loops
 * that hoist the activation switch out of their node loop (the SoA
 * batch engine dispatches once per segment). applyActivation()
 * delegates to these instantiations, so the two are bit-identical by
 * construction — there is exactly one copy of each formula.
 */
template <Activation A>
inline double
applyActivationT(double x)
{
    if constexpr (A == Activation::Sigmoid) {
        // neat-python clamps the argument to keep exp() in range.
        const double z = std::clamp(4.9 * x, -60.0, 60.0);
        return 1.0 / (1.0 + std::exp(-z));
    } else if constexpr (A == Activation::Tanh) {
        const double z = std::clamp(2.5 * x, -60.0, 60.0);
        return std::tanh(z);
    } else if constexpr (A == Activation::ReLU) {
        return x > 0.0 ? x : 0.0;
    } else if constexpr (A == Activation::Identity) {
        return x;
    } else if constexpr (A == Activation::Sin) {
        const double z = std::clamp(5.0 * x, -60.0, 60.0);
        return std::sin(z);
    } else if constexpr (A == Activation::Gauss) {
        const double z = std::clamp(x, -3.4, 3.4);
        return std::exp(-5.0 * z * z);
    } else if constexpr (A == Activation::Abs) {
        return std::fabs(x);
    } else {
        static_assert(A == Activation::Clamped, "unhandled activation");
        return std::clamp(x, -1.0, 1.0);
    }
}

/** Stable lowercase name, e.g. "sigmoid". */
std::string activationName(Activation act);

/** Parse a name produced by activationName(); error on unknown. */
Result<Activation> parseActivation(const std::string &name);

/**
 * Parse a name into @p out and return true; false on unknown names
 * (for load paths that must not terminate the process).
 */
bool tryParseActivation(const std::string &name, Activation &out);

/** Number of distinct activations (for mutation sampling). */
constexpr int numActivations = 8;

/** Map a dense index [0, numActivations) to an Activation. */
Activation activationFromIndex(int index);

} // namespace e3

#endif // E3_NN_ACTIVATIONS_HH
