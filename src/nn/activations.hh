/**
 * @file
 * Node activation functions for evolved networks.
 *
 * The set mirrors neat-python's default activation repertoire; NEAT's
 * activation mutation picks among whichever subset the experiment config
 * allows. Each PE in INAX contains one activation unit applying exactly
 * these functions (paper Sec. IV-E).
 */

#ifndef E3_NN_ACTIVATIONS_HH
#define E3_NN_ACTIVATIONS_HH

#include <string>

namespace e3 {

/** Supported node activation functions. */
enum class Activation
{
    Sigmoid,  ///< 1 / (1 + exp(-4.9 x)) — neat-python's scaled sigmoid
    Tanh,     ///< tanh(2.5 x), matching neat-python's scaling
    ReLU,
    Identity,
    Sin,      ///< sin(5 x)
    Gauss,    ///< exp(-5 x^2)
    Abs,
    Clamped,  ///< clamp(x, -1, 1)
};

/** Apply an activation to a pre-activation value. */
double applyActivation(Activation act, double x);

/** Stable lowercase name, e.g. "sigmoid". */
std::string activationName(Activation act);

/** Parse a name produced by activationName(). fatal() on unknown. */
Activation parseActivation(const std::string &name);

/**
 * Parse a name into @p out and return true; false on unknown names
 * (for load paths that must not terminate the process).
 */
bool tryParseActivation(const std::string &name, Activation &out);

/** Number of distinct activations (for mutation sampling). */
constexpr int numActivations = 8;

/** Map a dense index [0, numActivations) to an Activation. */
Activation activationFromIndex(int index);

} // namespace e3

#endif // E3_NN_ACTIVATIONS_HH
