/**
 * @file
 * Crash-safe, versioned checkpoints of the whole evolve loop.
 *
 * The paper's deployment story is power-cycle-tolerant edge learning:
 * evolve on device, persist, reload, continue. neat/serialize covers a
 * single champion genome; this module snapshots *everything* the loop
 * needs to continue bit-identically — population genomes, species
 * membership and stagnation history, the innovation and genome-key
 * allocators, both RNG streams, the generation counter, the fitness
 * trace and modeled phase seconds accumulated so far, and the run's
 * champion.
 *
 * Layout on disk: a checkpoint directory holds one file per retained
 * snapshot (ckpt-<generation>.e3) plus a MANIFEST listing them in
 * generation order. Both are written via atomicWriteFile(), so a crash
 * mid-write never corrupts an existing snapshot. The manifest records
 * the format version and a fingerprint of the run configuration; a
 * mismatched or unreadable checkpoint is reported as an error value —
 * never fatal() — so the platform can warn and fall back to a fresh
 * start.
 *
 * Determinism contract: restoring the latest checkpoint and continuing
 * reproduces the uninterrupted run's per-generation fitness trace
 * bit-identically, at any worker-thread count (the same guarantee the
 * parallel runtime gives for threads). Doubles are stored as C99 hex
 * floats, so every value round-trips exactly.
 */

#ifndef E3_PERSIST_CHECKPOINT_HH
#define E3_PERSIST_CHECKPOINT_HH

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hh"
#include "neat/population.hh"

namespace e3 {
namespace persist {

/** Bump when the on-disk layout changes incompatibly. */
inline constexpr int kFormatVersion = 1;

/** One per-generation point of the run's fitness trace. */
struct TraceRow
{
    int generation = 0;
    double bestFitness = 0.0;
    double meanFitness = 0.0;
    double normalizedBest = 0.0;
    double cumulativeSeconds = 0.0;
    double meanNodes = 0.0;
    double meanConnections = 0.0;
    double meanDensity = 0.0;
    size_t numSpecies = 0;
};

/** Complete snapshot of one evolve loop between generations. */
struct Checkpoint
{
    /** Fingerprint of the run configuration (resume guard). */
    uint64_t configHash = 0;

    /** Next generation to run after restore. */
    int generation = 0;

    /** Functional env steps executed so far. */
    uint64_t envSteps = 0;

    /** Best fitness achieved so far across the whole run. */
    double bestFitness = 0.0;

    /** The genome that achieved bestFitness, if any generation ran. */
    std::optional<Genome> champion;

    /** Full evolve-loop state (genomes, species, RNG, allocators). */
    PopulationState population;

    /** Modeled seconds accumulated per platform phase. */
    std::vector<std::pair<std::string, double>> phaseSeconds;

    /** Per-generation fitness trace accumulated so far. */
    std::vector<TraceRow> trace;
};

/** FNV-1a over a canonical config string (the manifest fingerprint). */
uint64_t fingerprint(const std::string &canonical);

/** File name a snapshot for @p generation is stored under. */
std::string checkpointFileName(int generation);

/** Serialize to the text format. */
void saveCheckpoint(const Checkpoint &checkpoint, std::ostream &out);

/** Serialize to a string. */
std::string checkpointToString(const Checkpoint &checkpoint);

/** Parse a checkpoint; malformed or truncated input is an error. */
Result<Checkpoint> loadCheckpoint(std::istream &in);

/** Parse from a string produced by checkpointToString(). */
Result<Checkpoint> checkpointFromString(const std::string &text);

/** Instrumentation of one checkpoint write (metrics feed). */
struct WriteStats
{
    double seconds = 0.0;   ///< wall time incl. manifest update
    uint64_t bytes = 0;     ///< snapshot size on disk
    std::string path;       ///< file the snapshot landed in
};

/**
 * Atomically write a snapshot into @p dir and update MANIFEST.
 * Entries for generations >= the new one are dropped (they belong to
 * an abandoned timeline after a resume from an older snapshot), then
 * the oldest entries beyond @p keep are deleted with their files.
 */
Status writeCheckpoint(const std::string &dir,
                       const Checkpoint &checkpoint, int keep,
                       WriteStats *stats = nullptr);

/**
 * Load the newest usable checkpoint listed in @p dir's MANIFEST.
 * A missing manifest, a format-version mismatch, or a fingerprint
 * different from @p expectedConfigHash is an error (the caller's cue
 * to warn and start fresh). Unreadable or corrupt snapshot files are
 * skipped with a warning, falling back to the next-newest entry.
 */
Result<Checkpoint> loadLatestCheckpoint(const std::string &dir,
                                        uint64_t expectedConfigHash);

/**
 * Read the configuration fingerprint recorded in @p dir's MANIFEST
 * without loading any snapshot. This is the stable identity of the
 * run that produced the directory's champion — the serving layer keys
 * its compiled-network cache on it.
 */
Result<uint64_t> manifestFingerprint(const std::string &dir);

/**
 * Enumerate the snapshot files @p dir's MANIFEST lists, oldest first,
 * as (generation, full path) pairs. Unlike loadLatestCheckpoint this
 * performs no fingerprint or version check — it is the audit-tool
 * entry point (`e3_cli verify --checkpoint-dir` walks every listed
 * snapshot regardless of which run configuration wrote it).
 */
Result<std::vector<std::pair<int, std::string>>>
listCheckpointFiles(const std::string &dir);

} // namespace persist
} // namespace e3

#endif // E3_PERSIST_CHECKPOINT_HH
