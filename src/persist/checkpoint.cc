#include "persist/checkpoint.hh"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "common/fs.hh"
#include "common/logging.hh"
#include "common/timing.hh"
#include "neat/serialize.hh"
#include "obs/trace.hh"
#include "verify/structural.hh"

namespace e3 {
namespace persist {

namespace {

const char *const kManifestName = "MANIFEST";

/** Exact double formatting: C99 hex floats round-trip every value. */
std::string
hexDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%a", v);
    return buf;
}

/** strtod with full-token consumption; handles hex, "nan", "inf". */
bool
parseDouble(const std::string &token, double &out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    out = std::strtod(token.c_str(), &end);
    return end == token.c_str() + token.size();
}

bool
parseUint64(const std::string &token, uint64_t &out)
{
    if (token.empty())
        return false;
    char *end = nullptr;
    out = std::strtoull(token.c_str(), &end, 16);
    return end == token.c_str() + token.size();
}

/**
 * Advance to the next non-blank, non-comment line and split off its
 * leading tag; false at end of stream.
 */
bool
nextRecord(std::istream &in, std::string &tag, std::istringstream &rest)
{
    std::string line;
    while (std::getline(in, line)) {
        rest.clear();
        rest.str(line);
        tag.clear();
        if (!(rest >> tag) || tag[0] == '#')
            continue;
        return true;
    }
    return false;
}

/** Read one expected record; error mentions what was wanted. */
Status
record(std::istream &in, const std::string &want,
       std::istringstream &rest)
{
    std::string tag;
    if (!nextRecord(in, tag, rest))
        return Status::error("checkpoint truncated: expected '", want,
                             "' record");
    if (tag != want)
        return Status::error("expected '", want, "' record, got '", tag,
                             "'");
    return Status();
}

/** Pull one hex-float token off a record. */
Status
readDouble(std::istringstream &rest, const std::string &what,
           double &out)
{
    std::string token;
    if (!(rest >> token) || !parseDouble(token, out))
        return Status::error("bad ", what, " value");
    return Status();
}

/**
 * Structural verification of a genome pulled out of a snapshot: a
 * corrupt or hand-edited checkpoint must degrade to an error value
 * (loadLatestCheckpoint then falls back to the next-newest snapshot),
 * never reach the compiler's asserts. Interface-agnostic — the
 * checkpoint does not record what environment its genomes were
 * evolved for.
 */
Status
verifyStoredGenome(const Genome &genome, const char *what)
{
    verify::Report report =
        verify::verifyGenome(genome, verify::GenomeInterface::lenient());
    if (!report.hasErrors())
        return Status();
    for (const verify::Diagnostic &d : report.diagnostics) {
        if (d.severity != verify::Severity::Error)
            continue;
        return Status::error(
            what, " genome ", genome.key(),
            " fails structural verification: ", d.ruleId, " [",
            d.locus, "] ", d.message,
            report.errorCount() > 1 ? " (and more)" : "");
    }
    return Status();
}

/** loadGenome + structural verification for one stored genome. */
Result<Genome>
loadStoredGenome(std::istream &in, const char *what)
{
    Result<Genome> genome = loadGenome(in, GenomeLoadMode::Raw);
    if (!genome.ok())
        return genome;
    if (Status st = verifyStoredGenome(genome.value(), what); !st.ok())
        return st;
    return genome;
}

void
saveRngState(const char *name, const RngState &state, std::ostream &out)
{
    out << "rng " << name;
    for (uint64_t word : state.s)
        out << ' ' << word;
    out << ' ' << hexDouble(state.cachedNormal) << ' '
        << (state.hasCachedNormal ? 1 : 0) << '\n';
}

Status
loadRngState(std::istream &in, const std::string &name, RngState &out)
{
    std::istringstream rest;
    if (Status st = record(in, "rng", rest); !st.ok())
        return st;
    std::string streamName;
    if (!(rest >> streamName) || streamName != name)
        return Status::error("expected rng stream '", name, "'");
    int hasCached = 0;
    for (uint64_t &word : out.s) {
        if (!(rest >> word))
            return Status::error("bad rng state for '", name, "'");
    }
    if (Status st = readDouble(rest, "rng cached normal",
                               out.cachedNormal);
        !st.ok())
        return st;
    if (!(rest >> hasCached))
        return Status::error("bad rng state for '", name, "'");
    out.hasCachedNormal = hasCached != 0;
    return Status();
}

/** The manifest: format header plus retained snapshots, oldest first. */
struct Manifest
{
    int version = kFormatVersion;
    uint64_t configHash = 0;
    std::vector<std::pair<int, std::string>> entries;
};

Result<Manifest>
parseManifest(const std::string &text)
{
    std::istringstream in(text);
    Manifest manifest;
    std::istringstream rest;
    if (Status st = record(in, "e3-checkpoint-manifest", rest);
        !st.ok())
        return st;
    std::string hash;
    if (!(rest >> manifest.version >> hash) ||
        !parseUint64(hash, manifest.configHash))
        return Status::error("malformed manifest header");

    std::string tag;
    while (nextRecord(in, tag, rest)) {
        if (tag != "checkpoint")
            return Status::error("unknown manifest record '", tag, "'");
        int generation = 0;
        std::string file;
        if (!(rest >> generation >> file))
            return Status::error("malformed manifest entry");
        manifest.entries.emplace_back(generation, file);
    }
    return manifest;
}

std::string
manifestToString(const Manifest &manifest)
{
    std::ostringstream out;
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016" PRIx64,
                  manifest.configHash);
    out << "e3-checkpoint-manifest " << manifest.version << ' ' << hash
        << '\n';
    for (const auto &[generation, file] : manifest.entries)
        out << "checkpoint " << generation << ' ' << file << '\n';
    return out.str();
}

std::string
joinPath(const std::string &dir, const std::string &file)
{
    return dir + "/" + file;
}

} // namespace

uint64_t
fingerprint(const std::string &canonical)
{
    uint64_t hash = 0xCBF29CE484222325ULL;
    for (unsigned char c : canonical) {
        hash ^= c;
        hash *= 0x100000001B3ULL;
    }
    return hash;
}

std::string
checkpointFileName(int generation)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "ckpt-%06d.e3", generation);
    return buf;
}

void
saveCheckpoint(const Checkpoint &checkpoint, std::ostream &out)
{
    char hash[32];
    std::snprintf(hash, sizeof(hash), "%016" PRIx64,
                  checkpoint.configHash);
    out << "e3-checkpoint " << kFormatVersion << ' ' << hash << '\n';
    out << "generation " << checkpoint.generation << '\n';
    out << "envsteps " << checkpoint.envSteps << '\n';
    out << "best-fitness " << hexDouble(checkpoint.bestFitness) << '\n';

    const PopulationState &pop = checkpoint.population;
    out << "pop-generation " << pop.generation << '\n';
    saveRngState("population", pop.rng, out);
    saveRngState("reproduction", pop.reproductionRng, out);
    out << "genomes-created " << pop.genomesCreated << '\n';
    out << "innovation " << pop.lastNodeId << '\n';
    out << "next-species-id " << pop.nextSpeciesId << '\n';

    out << "phases " << checkpoint.phaseSeconds.size() << '\n';
    for (const auto &[name, seconds] : checkpoint.phaseSeconds)
        out << "phase " << name << ' ' << hexDouble(seconds) << '\n';

    out << "trace " << checkpoint.trace.size() << '\n';
    for (const TraceRow &row : checkpoint.trace) {
        out << "row " << row.generation << ' '
            << hexDouble(row.bestFitness) << ' '
            << hexDouble(row.meanFitness) << ' '
            << hexDouble(row.normalizedBest) << ' '
            << hexDouble(row.cumulativeSeconds) << ' '
            << hexDouble(row.meanNodes) << ' '
            << hexDouble(row.meanConnections) << ' '
            << hexDouble(row.meanDensity) << ' ' << row.numSpecies
            << '\n';
    }

    out << "champion " << (checkpoint.champion ? 1 : 0) << '\n';
    if (checkpoint.champion)
        saveGenome(*checkpoint.champion, out);

    out << "population " << pop.genomes.size() << '\n';
    for (const auto &[key, genome] : pop.genomes)
        saveGenome(genome, out);

    out << "species " << pop.species.size() << '\n';
    for (const auto &[sid, sp] : pop.species) {
        out << "species-begin " << sid << ' ' << sp.created << ' '
            << sp.lastImproved << ' ' << hexDouble(sp.adjustedFitness)
            << '\n';
        out << "members " << sp.members.size();
        for (int member : sp.members)
            out << ' ' << member;
        out << '\n';
        out << "history " << sp.fitnessHistory.size();
        for (double h : sp.fitnessHistory)
            out << ' ' << hexDouble(h);
        out << '\n';
        saveGenome(sp.representative, out);
        out << "species-end\n";
    }
    out << "end-checkpoint\n";
}

std::string
checkpointToString(const Checkpoint &checkpoint)
{
    std::ostringstream oss;
    saveCheckpoint(checkpoint, oss);
    return oss.str();
}

Result<Checkpoint>
loadCheckpoint(std::istream &in)
{
    Checkpoint ck;
    std::istringstream rest;

    if (Status st = record(in, "e3-checkpoint", rest); !st.ok())
        return st;
    int version = 0;
    std::string hash;
    if (!(rest >> version >> hash) ||
        !parseUint64(hash, ck.configHash))
        return Status::error("malformed checkpoint header");
    if (version != kFormatVersion)
        return Status::error("checkpoint format version ", version,
                             ", this build reads version ",
                             kFormatVersion);

    if (Status st = record(in, "generation", rest); !st.ok())
        return st;
    if (!(rest >> ck.generation))
        return Status::error("bad generation");
    if (Status st = record(in, "envsteps", rest); !st.ok())
        return st;
    if (!(rest >> ck.envSteps))
        return Status::error("bad envsteps");
    if (Status st = record(in, "best-fitness", rest); !st.ok())
        return st;
    if (Status st = readDouble(rest, "best-fitness", ck.bestFitness);
        !st.ok())
        return st;

    PopulationState &pop = ck.population;
    if (Status st = record(in, "pop-generation", rest); !st.ok())
        return st;
    if (!(rest >> pop.generation))
        return Status::error("bad pop-generation");
    if (Status st = loadRngState(in, "population", pop.rng); !st.ok())
        return st;
    if (Status st = loadRngState(in, "reproduction",
                                 pop.reproductionRng);
        !st.ok())
        return st;
    if (Status st = record(in, "genomes-created", rest); !st.ok())
        return st;
    if (!(rest >> pop.genomesCreated))
        return Status::error("bad genomes-created");
    if (Status st = record(in, "innovation", rest); !st.ok())
        return st;
    if (!(rest >> pop.lastNodeId))
        return Status::error("bad innovation");
    if (Status st = record(in, "next-species-id", rest); !st.ok())
        return st;
    if (!(rest >> pop.nextSpeciesId))
        return Status::error("bad next-species-id");

    size_t phaseCount = 0;
    if (Status st = record(in, "phases", rest); !st.ok())
        return st;
    if (!(rest >> phaseCount))
        return Status::error("bad phase count");
    for (size_t i = 0; i < phaseCount; ++i) {
        if (Status st = record(in, "phase", rest); !st.ok())
            return st;
        std::string name;
        double seconds = 0.0;
        if (!(rest >> name))
            return Status::error("bad phase name");
        if (Status st = readDouble(rest, "phase seconds", seconds);
            !st.ok())
            return st;
        ck.phaseSeconds.emplace_back(name, seconds);
    }

    size_t rowCount = 0;
    if (Status st = record(in, "trace", rest); !st.ok())
        return st;
    if (!(rest >> rowCount))
        return Status::error("bad trace count");
    for (size_t i = 0; i < rowCount; ++i) {
        if (Status st = record(in, "row", rest); !st.ok())
            return st;
        TraceRow row;
        if (!(rest >> row.generation))
            return Status::error("bad trace row");
        for (double *field :
             {&row.bestFitness, &row.meanFitness, &row.normalizedBest,
              &row.cumulativeSeconds, &row.meanNodes,
              &row.meanConnections, &row.meanDensity}) {
            if (Status st = readDouble(rest, "trace row", *field);
                !st.ok())
                return st;
        }
        if (!(rest >> row.numSpecies))
            return Status::error("bad trace row");
        ck.trace.push_back(row);
    }

    int hasChampion = 0;
    if (Status st = record(in, "champion", rest); !st.ok())
        return st;
    if (!(rest >> hasChampion))
        return Status::error("bad champion flag");
    if (hasChampion) {
        Result<Genome> champion = loadStoredGenome(in, "champion");
        if (!champion.ok())
            return Status::error("bad champion genome: ",
                                 champion.message());
        ck.champion = std::move(champion).value();
    }

    size_t genomeCount = 0;
    if (Status st = record(in, "population", rest); !st.ok())
        return st;
    if (!(rest >> genomeCount))
        return Status::error("bad population count");
    for (size_t i = 0; i < genomeCount; ++i) {
        Result<Genome> genome = loadStoredGenome(in, "population");
        if (!genome.ok())
            return Status::error("bad population genome: ",
                                 genome.message());
        const int key = genome.value().key();
        if (!pop.genomes.emplace(key, std::move(genome).value()).second)
            return Status::error("duplicate genome key ", key);
    }

    size_t speciesCount = 0;
    if (Status st = record(in, "species", rest); !st.ok())
        return st;
    if (!(rest >> speciesCount))
        return Status::error("bad species count");
    for (size_t i = 0; i < speciesCount; ++i) {
        if (Status st = record(in, "species-begin", rest); !st.ok())
            return st;
        int sid = 0, created = 0, lastImproved = 0;
        double adjusted = 0.0;
        if (!(rest >> sid >> created >> lastImproved))
            return Status::error("bad species header");
        if (Status st = readDouble(rest, "species adjusted fitness",
                                   adjusted);
            !st.ok())
            return st;

        if (Status st = record(in, "members", rest); !st.ok())
            return st;
        size_t memberCount = 0;
        if (!(rest >> memberCount))
            return Status::error("bad species member count");
        std::vector<int> members(memberCount);
        for (int &member : members) {
            if (!(rest >> member))
                return Status::error("bad species member list");
        }

        if (Status st = record(in, "history", rest); !st.ok())
            return st;
        size_t historyCount = 0;
        if (!(rest >> historyCount))
            return Status::error("bad species history count");
        std::vector<double> history(historyCount);
        for (double &h : history) {
            std::string token;
            if (!(rest >> token) || !parseDouble(token, h))
                return Status::error("bad species history value");
        }

        Result<Genome> representative =
            loadStoredGenome(in, "species representative");
        if (!representative.ok())
            return Status::error("bad species representative: ",
                                 representative.message());
        if (Status st = record(in, "species-end", rest); !st.ok())
            return st;

        Species sp(sid, created, std::move(representative).value());
        sp.lastImproved = lastImproved;
        sp.adjustedFitness = adjusted;
        sp.members = std::move(members);
        sp.fitnessHistory = std::move(history);
        if (!pop.species.emplace(sid, std::move(sp)).second)
            return Status::error("duplicate species id ", sid);
    }

    if (Status st = record(in, "end-checkpoint", rest); !st.ok())
        return st;
    return ck;
}

Result<Checkpoint>
checkpointFromString(const std::string &text)
{
    std::istringstream iss(text);
    return loadCheckpoint(iss);
}

Status
writeCheckpoint(const std::string &dir, const Checkpoint &checkpoint,
                int keep, WriteStats *stats)
{
    Stopwatch watch;
    obs::TraceSpan span("checkpoint_write");
    if (Status st = ensureDirectory(dir); !st.ok())
        return st;

    const std::string file = checkpointFileName(checkpoint.generation);
    const std::string content = checkpointToString(checkpoint);
    if (Status st = atomicWriteFile(joinPath(dir, file), content);
        !st.ok())
        return st;

    // Carry over the existing manifest only if it belongs to this run
    // configuration and format; anything else starts a fresh timeline.
    Manifest manifest;
    manifest.configHash = checkpoint.configHash;
    const std::string manifestPath = joinPath(dir, kManifestName);
    if (fileExists(manifestPath)) {
        if (Result<std::string> text = readFile(manifestPath);
            text.ok()) {
            if (Result<Manifest> old = parseManifest(text.value());
                old.ok() && old.value().version == kFormatVersion &&
                old.value().configHash == checkpoint.configHash) {
                manifest.entries = std::move(old.value().entries);
            }
        }
    }

    // Entries at or past the new generation belong to an abandoned
    // timeline (we resumed from an older snapshot); drop their files.
    for (auto it = manifest.entries.begin();
         it != manifest.entries.end();) {
        if (it->first >= checkpoint.generation && it->second != file) {
            if (Status rm = removeFile(joinPath(dir, it->second));
                !rm.ok())
                warn("checkpoint cleanup: ", rm.message());
            it = manifest.entries.erase(it);
        } else if (it->first >= checkpoint.generation) {
            it = manifest.entries.erase(it);
        } else {
            ++it;
        }
    }
    manifest.entries.emplace_back(checkpoint.generation, file);

    // Retention: keep the newest `keep` snapshots.
    const size_t retained = keep < 1 ? 1 : static_cast<size_t>(keep);
    while (manifest.entries.size() > retained) {
        if (Status rm = removeFile(
                joinPath(dir, manifest.entries.front().second));
            !rm.ok())
            warn("checkpoint retention: ", rm.message());
        manifest.entries.erase(manifest.entries.begin());
    }

    if (Status st =
            atomicWriteFile(manifestPath, manifestToString(manifest));
        !st.ok())
        return st;

    if (stats) {
        stats->seconds = watch.seconds();
        stats->bytes = content.size();
        stats->path = joinPath(dir, file);
    }
    return Status();
}

Result<Checkpoint>
loadLatestCheckpoint(const std::string &dir,
                     uint64_t expectedConfigHash)
{
    obs::TraceSpan span("checkpoint_load");
    const std::string manifestPath = joinPath(dir, kManifestName);
    Result<std::string> text = readFile(manifestPath);
    if (!text.ok())
        return Status::error("no checkpoint manifest in '", dir,
                             "': ", text.message());
    Result<Manifest> parsed = parseManifest(text.value());
    if (!parsed.ok())
        return Status::error("unreadable manifest '", manifestPath,
                             "': ", parsed.message());
    const Manifest &manifest = parsed.value();
    if (manifest.version != kFormatVersion)
        return Status::error("manifest format version ",
                             manifest.version,
                             ", this build reads version ",
                             kFormatVersion);
    if (manifest.configHash != expectedConfigHash)
        return Status::error(
            "checkpoint was written by a different run configuration "
            "(fingerprint mismatch)");
    if (manifest.entries.empty())
        return Status::error("manifest lists no checkpoints");

    // Newest first; fall back to older snapshots if one is damaged.
    for (auto it = manifest.entries.rbegin();
         it != manifest.entries.rend(); ++it) {
        const std::string path = joinPath(dir, it->second);
        Result<std::string> bytes = readFile(path);
        if (!bytes.ok()) {
            warn("skipping checkpoint '", path,
                 "': ", bytes.message());
            continue;
        }
        Result<Checkpoint> ck = checkpointFromString(bytes.value());
        if (!ck.ok()) {
            warn("skipping checkpoint '", path, "': ", ck.message());
            continue;
        }
        if (ck.value().configHash != expectedConfigHash) {
            warn("skipping checkpoint '", path,
                 "': config fingerprint mismatch");
            continue;
        }
        return ck;
    }
    return Status::error("no usable checkpoint in '", dir, "'");
}

Result<uint64_t>
manifestFingerprint(const std::string &dir)
{
    const std::string manifestPath = joinPath(dir, kManifestName);
    Result<std::string> text = readFile(manifestPath);
    if (!text.ok())
        return Status::error("no checkpoint manifest in '", dir,
                             "': ", text.message());
    Result<Manifest> parsed = parseManifest(text.value());
    if (!parsed.ok())
        return Status::error("unreadable manifest '", manifestPath,
                             "': ", parsed.message());
    return parsed.value().configHash;
}

Result<std::vector<std::pair<int, std::string>>>
listCheckpointFiles(const std::string &dir)
{
    const std::string manifestPath = joinPath(dir, kManifestName);
    Result<std::string> text = readFile(manifestPath);
    if (!text.ok())
        return Status::error("no checkpoint manifest in '", dir,
                             "': ", text.message());
    Result<Manifest> parsed = parseManifest(text.value());
    if (!parsed.ok())
        return Status::error("unreadable manifest '", manifestPath,
                             "': ", parsed.message());
    std::vector<std::pair<int, std::string>> out;
    out.reserve(parsed.value().entries.size());
    for (const auto &[generation, file] : parsed.value().entries)
        out.emplace_back(generation, joinPath(dir, file));
    return out;
}

} // namespace persist
} // namespace e3
