// rl_profile.hh is header-only; this TU anchors it in the library so a
// future out-of-line addition has a home.
#include "rl/rl_profile.hh"
