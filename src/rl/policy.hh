/**
 * @file
 * Actor-critic policy for the RL baselines: an actor MLP emitting
 * categorical logits (discrete envs) or Gaussian means with a learned
 * state-independent log-std (continuous envs), and a separate critic MLP
 * estimating state value — stable-baselines' MlpPolicy arrangement.
 */

#ifndef E3_RL_POLICY_HH
#define E3_RL_POLICY_HH

#include "env/env_registry.hh"
#include "mlp/distributions.hh"
#include "mlp/mlp.hh"

namespace e3 {

/** Actor + critic network pair over one environment's spaces. */
class ActorCritic
{
  public:
    /**
     * @param spec environment whose spaces shape the networks
     * @param hidden hidden-layer widths, e.g. {64, 64} (paper Small)
     *        or {256, 256, 256} (paper Large)
     * @param seed weight-init seed
     */
    ActorCritic(const EnvSpec &spec, std::vector<size_t> hidden,
                uint64_t seed);

    /** Result of acting in one state. */
    struct ActResult
    {
        Action envAction;              ///< decoded for Environment::step
        std::vector<double> rawAction; ///< distribution sample
        double logProb = 0.0;
        double value = 0.0;
    };

    /** Sample (or take the mode of) the policy in one state. */
    ActResult act(const Observation &obs, Rng &rng,
                  bool deterministic = false);

    /** Value estimate for one state. */
    double value(const Observation &obs);

    bool discrete() const { return discrete_; }
    size_t actionDim() const { return actDim_; }

    Mlp &actor() { return actor_; }
    Mlp &critic() { return critic_; }

    /** Batched actor forward: logits or means, batch x actDim. */
    Mat actorForward(const Mat &obs) { return actor_.forward(obs); }

    /** Batched critic forward: values, batch x 1. */
    Mat criticForward(const Mat &obs) { return critic_.forward(obs); }

    /** Distribution at one actor output row. */
    Categorical categoricalAt(const Mat &actorOut, size_t row) const;
    DiagGaussian gaussianAt(const Mat &actorOut, size_t row) const;

    /** Learned log-std parameter (continuous only). */
    Mat &logStd() { return logStd_; }
    Mat &logStdGrad() { return gLogStd_; }

    /** All trainable parameters (actor + critic + logStd). */
    std::vector<Mat *> parameters();

    /** Gradients aligned with parameters(). */
    std::vector<Mat *> gradients();

    /** Zero every gradient. */
    void zeroGrad();

    /** Convert a raw sampled action into the env's action format. */
    Action toEnvAction(const std::vector<double> &rawAction) const;

    // --- complexity accounting (Tables IV/V) ---
    size_t nodeCount() const;
    uint64_t connectionCount() const;
    uint64_t forwardOpsPerStep() const;
    uint64_t backwardOpsPerStep() const;
    uint64_t activationBytesPerStep(size_t bytesPerWord = 4) const;

  private:
    const EnvSpec &spec_;
    bool discrete_;
    size_t actDim_;
    Mlp actor_;
    Mlp critic_;
    Mat logStd_;
    Mat gLogStd_;
};

} // namespace e3

#endif // E3_RL_POLICY_HH
