#include "rl/on_policy.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "obs/trace.hh"

namespace e3 {

OnPolicyAlgorithm::OnPolicyAlgorithm(const EnvSpec &spec,
                                     std::vector<size_t> hidden,
                                     size_t numEnvs, uint64_t seed)
    : spec_(spec), policy_(spec, std::move(hidden), seed), rng_(seed)
{
    e3_assert(numEnvs > 0, "need at least one environment lane");
    for (size_t i = 0; i < numEnvs; ++i) {
        Lane lane;
        lane.env = spec.make();
        lane.rng = rng_.split();
        lanes_.push_back(std::move(lane));
    }
    for (auto &lane : lanes_)
        resetLane(lane);
}

void
OnPolicyAlgorithm::resetLane(Lane &lane)
{
    lane.obs = lane.env->reset(lane.rng);
    lane.episodeReward = 0.0;
    lane.episodeSteps = 0;
}

Batch
OnPolicyAlgorithm::collectRollout(size_t numSteps, double gamma,
                                  double lambda)
{
    obs::TraceSpan span("rollout");
    RolloutBuffer buffer(lanes_.size(), numSteps);

    for (size_t t = 0; t < numSteps; ++t) {
        for (size_t l = 0; l < lanes_.size(); ++l) {
            Lane &lane = lanes_[l];

            ActorCritic::ActResult act;
            {
                PhaseTimer::Scope scope(profile_.timer,
                                        rl_phase::forward);
                act = policy_.act(lane.obs, rng_);
                profile_.forwardOps += policy_.forwardOpsPerStep();
            }

            StepResult sr;
            {
                PhaseTimer::Scope scope(profile_.timer, rl_phase::env);
                sr = lane.env->step(act.envAction);
            }
            ++profile_.envSteps;
            lane.episodeReward += sr.reward;
            ++lane.episodeSteps;
            const bool truncated =
                lane.episodeSteps >= lane.env->maxEpisodeSteps();
            const bool done = sr.done || truncated;

            Transition tr;
            tr.obs = lane.obs;
            tr.rawAction = act.rawAction;
            tr.reward = sr.reward;
            tr.done = done;
            tr.value = act.value;
            tr.logProb = act.logProb;
            buffer.push(l, std::move(tr));

            if (done) {
                recentEpisodes_.push_back(lane.episodeReward);
                if (recentEpisodes_.size() > 100)
                    recentEpisodes_.pop_front();
                ++profile_.episodes;
                resetLane(lane);
            } else {
                lane.obs = std::move(sr.observation);
            }
        }
    }

    // Flatten with per-lane GAE.
    Batch batch;
    const size_t n = lanes_.size() * numSteps;
    batch.obs = Mat(n, spec_.numInputs);
    batch.rawActions.reserve(n);

    size_t row = 0;
    for (size_t l = 0; l < lanes_.size(); ++l) {
        double lastValue;
        {
            PhaseTimer::Scope scope(profile_.timer, rl_phase::forward);
            lastValue = policy_.value(lanes_[l].obs);
            profile_.forwardOps += policy_.forwardOpsPerStep();
        }
        const auto gae =
            computeGae(buffer.rewards(l), buffer.values(l),
                       buffer.dones(l), lastValue, gamma, lambda);
        for (size_t t = 0; t < numSteps; ++t, ++row) {
            const Transition &tr = buffer.at(l, t);
            for (size_t c = 0; c < tr.obs.size(); ++c)
                batch.obs.at(row, c) = tr.obs[c];
            batch.rawActions.push_back(tr.rawAction);
            batch.advantages.push_back(gae.advantages[t]);
            batch.returns.push_back(gae.returns[t]);
            batch.oldLogProbs.push_back(tr.logProb);
        }
    }
    // Cumulative env-step/episode counter tracks for the Fig. 3-style
    // forward/training profile traces.
    obs::traceCounter("rl.env_steps",
                      static_cast<double>(profile_.envSteps));
    obs::traceCounter("rl.episodes",
                      static_cast<double>(profile_.episodes));
    return batch;
}

double
OnPolicyAlgorithm::accumulateGradients(const Batch &batch,
                                       const std::vector<size_t> &rows,
                                       double vfCoef, double entCoef,
                                       double clipRange)
{
    obs::TraceSpan span("train");
    e3_assert(!rows.empty(), "empty gradient minibatch");
    PhaseTimer::Scope scope(profile_.timer, rl_phase::training);

    // Gather the minibatch into contiguous matrices.
    const size_t n = rows.size();
    Mat obs(n, spec_.numInputs);
    for (size_t i = 0; i < n; ++i) {
        for (size_t c = 0; c < spec_.numInputs; ++c)
            obs.at(i, c) = batch.obs.at(rows[i], c);
    }

    const Mat actorOut = policy_.actorForward(obs);
    const Mat criticOut = policy_.criticForward(obs);
    profile_.trainForwardOps += n * policy_.forwardOpsPerStep();

    Mat gActor(n, actorOut.cols());
    Mat gCritic(n, 1);
    const double invN = 1.0 / static_cast<double>(n);
    double lossSum = 0.0;

    for (size_t i = 0; i < n; ++i) {
        const size_t r = rows[i];
        const double adv = batch.advantages[r];
        const auto &action = batch.rawActions[r];

        // --- policy-gradient weight (PPO ratio or plain advantage) ---
        double newLogProb;
        double entropy;
        std::vector<double> nll;     // d(-logpi)/d(head)
        std::vector<double> negEnt;  // d(-H)/d(head)
        std::vector<double> nllLogStd;
        std::vector<double> negEntLogStd;
        if (policy_.discrete()) {
            const Categorical dist = policy_.categoricalAt(actorOut, i);
            const int a = static_cast<int>(action[0]);
            newLogProb = dist.logProb(a);
            entropy = dist.entropy();
            nll = dist.nllGradient(a);
            negEnt = dist.negEntropyGradient();
        } else {
            const DiagGaussian dist = policy_.gaussianAt(actorOut, i);
            newLogProb = dist.logProb(action);
            entropy = dist.entropy();
            nll = dist.nllGradientMean(action);
            nllLogStd = dist.nllGradientLogStd(action);
            negEntLogStd = dist.negEntropyGradientLogStd();
            negEnt.assign(nll.size(), 0.0); // entropy free of the mean
        }

        double pgWeight; // multiplies nll in the head gradient
        if (clipRange > 0.0) {
            const double ratio =
                std::exp(newLogProb - batch.oldLogProbs[r]);
            const bool clipped =
                (adv >= 0.0 && ratio > 1.0 + clipRange) ||
                (adv < 0.0 && ratio < 1.0 - clipRange);
            pgWeight = clipped ? 0.0 : adv * ratio;
            const double surr1 = ratio * adv;
            const double surr2 =
                std::clamp(ratio, 1.0 - clipRange, 1.0 + clipRange) *
                adv;
            lossSum += -std::min(surr1, surr2);
        } else {
            pgWeight = adv;
            lossSum += -adv * newLogProb;
        }

        for (size_t c = 0; c < nll.size(); ++c) {
            gActor.at(i, c) =
                (pgWeight * nll[c] + entCoef * negEnt[c]) * invN;
        }
        if (!policy_.discrete()) {
            auto &gls = policy_.logStdGrad();
            for (size_t c = 0; c < nllLogStd.size(); ++c) {
                gls.at(0, c) += (pgWeight * nllLogStd[c] +
                                 entCoef * negEntLogStd[c]) *
                                invN;
            }
        }
        lossSum += -entCoef * entropy;

        // --- value loss: 0.5 * vfCoef * (v - return)^2 ---
        const double v = criticOut.at(i, 0);
        const double err = v - batch.returns[r];
        gCritic.at(i, 0) = vfCoef * err * invN;
        lossSum += 0.5 * vfCoef * err * err;
    }

    policy_.actor().backward(gActor);
    policy_.critic().backward(gCritic);
    profile_.backwardOps += n * policy_.backwardOpsPerStep();

    return lossSum * invN;
}

double
OnPolicyAlgorithm::recentMeanReward() const
{
    if (recentEpisodes_.empty())
        return 0.0;
    double sum = 0.0;
    for (double r : recentEpisodes_)
        sum += r;
    return sum / static_cast<double>(recentEpisodes_.size());
}

double
OnPolicyAlgorithm::evaluate(size_t episodes, uint64_t seed)
{
    e3_assert(episodes > 0, "evaluate() needs at least one episode");
    Rng rng(seed);
    double total = 0.0;
    for (size_t e = 0; e < episodes; ++e) {
        auto env = spec_.make();
        Observation obs = env->reset(rng);
        bool done = false;
        int steps = 0;
        while (!done && steps < env->maxEpisodeSteps()) {
            const auto act = policy_.act(obs, rng, /*deterministic=*/true);
            const auto sr = env->step(act.envAction);
            obs = sr.observation;
            total += sr.reward;
            done = sr.done;
            ++steps;
        }
    }
    return total / static_cast<double>(episodes);
}

} // namespace e3
