#include "rl/rollout.hh"

#include "common/logging.hh"

namespace e3 {

RolloutBuffer::RolloutBuffer(size_t numEnvs, size_t numSteps)
    : numSteps_(numSteps), lanes_(numEnvs)
{
    e3_assert(numEnvs > 0 && numSteps > 0,
              "rollout buffer needs positive dimensions");
    for (auto &lane : lanes_)
        lane.reserve(numSteps);
}

void
RolloutBuffer::push(size_t lane, Transition t)
{
    e3_assert(lane < lanes_.size(), "lane ", lane, " out of range");
    e3_assert(lanes_[lane].size() < numSteps_,
              "lane ", lane, " already full");
    lanes_[lane].push_back(std::move(t));
}

bool
RolloutBuffer::full() const
{
    for (const auto &lane : lanes_) {
        if (lane.size() < numSteps_)
            return false;
    }
    return true;
}

void
RolloutBuffer::clear()
{
    for (auto &lane : lanes_)
        lane.clear();
}

const Transition &
RolloutBuffer::at(size_t lane, size_t step) const
{
    return lanes_.at(lane).at(step);
}

std::vector<double>
RolloutBuffer::rewards(size_t lane) const
{
    std::vector<double> out;
    for (const auto &t : lanes_.at(lane))
        out.push_back(t.reward);
    return out;
}

std::vector<double>
RolloutBuffer::values(size_t lane) const
{
    std::vector<double> out;
    for (const auto &t : lanes_.at(lane))
        out.push_back(t.value);
    return out;
}

std::vector<bool>
RolloutBuffer::dones(size_t lane) const
{
    std::vector<bool> out;
    for (const auto &t : lanes_.at(lane))
        out.push_back(t.done);
    return out;
}

uint64_t
RolloutBuffer::bytes() const
{
    uint64_t total = 0;
    for (const auto &lane : lanes_) {
        for (const auto &t : lane) {
            total += sizeof(Transition);
            total += t.obs.size() * sizeof(double);
            total += t.rawAction.size() * sizeof(double);
        }
    }
    return total;
}

} // namespace e3
