#include "rl/ppo2.hh"

#include "common/logging.hh"

namespace e3 {

Ppo2::Ppo2(const EnvSpec &spec, std::vector<size_t> hidden,
           const Ppo2Config &cfg, uint64_t seed)
    : OnPolicyAlgorithm(spec, std::move(hidden), cfg.numEnvs, seed),
      cfg_(cfg),
      optimizer_(policy_.parameters(), policy_.gradients(),
                 cfg.learningRate)
{
    e3_assert(cfg.numMinibatches > 0 && cfg.numEpochs > 0,
              "PPO2 needs positive minibatch/epoch counts");
}

void
Ppo2::update()
{
    Batch batch =
        collectRollout(cfg_.numSteps, cfg_.gamma, cfg_.gaeLambda);
    normalizeAdvantages(batch.advantages);

    const size_t n = batch.size();
    const size_t mb =
        std::max<size_t>(1, n / cfg_.numMinibatches);

    for (size_t epoch = 0; epoch < cfg_.numEpochs; ++epoch) {
        const auto order = rng_.permutation(n);
        for (size_t start = 0; start < n; start += mb) {
            std::vector<size_t> rows;
            for (size_t i = start; i < std::min(start + mb, n); ++i)
                rows.push_back(order[i]);
            {
                PhaseTimer::Scope scope(profile_.timer,
                                        rl_phase::training);
                policy_.zeroGrad();
            }
            accumulateGradients(batch, rows, cfg_.vfCoef, cfg_.entCoef,
                                cfg_.clipRange);
            {
                PhaseTimer::Scope scope(profile_.timer,
                                        rl_phase::training);
                optimizer_.clipGradNorm(cfg_.maxGradNorm);
                optimizer_.step();
            }
        }
    }
    ++profile_.updates;
}

} // namespace e3
