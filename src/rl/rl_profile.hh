/**
 * @file
 * Runtime and operation-count accounting for the RL baselines.
 *
 * The paper's Fig. 3 splits RL runtime into "Forward" (action selection
 * during rollout) and "Training" (backpropagation and update rules), and
 * Table IV counts forward/backward operations and local memory. Both
 * algorithms report through this one structure.
 */

#ifndef E3_RL_RL_PROFILE_HH
#define E3_RL_RL_PROFILE_HH

#include <cstdint>
#include <string>

#include "common/timing.hh"

namespace e3 {

/** Phase names used by the RL profilers. */
namespace rl_phase {
inline const std::string forward = "forward";
inline const std::string training = "training";
inline const std::string env = "env";
} // namespace rl_phase

/** Aggregated profile of one RL run. */
struct RlProfile
{
    PhaseTimer timer;          ///< wall time per phase
    uint64_t forwardOps = 0;   ///< MACs spent selecting actions
    uint64_t backwardOps = 0;  ///< MACs spent in backprop
    uint64_t trainForwardOps = 0; ///< MACs of re-forward inside updates
    int64_t envSteps = 0;
    int64_t updates = 0;
    int64_t episodes = 0;

    /** Fraction of measured time spent training (Fig. 3's split). */
    double
    trainingFraction() const
    {
        return timer.fraction(rl_phase::training);
    }
};

} // namespace e3

#endif // E3_RL_RL_PROFILE_HH
