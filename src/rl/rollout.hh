/**
 * @file
 * Rollout storage for on-policy RL: nSteps x nEnvs transitions, the
 * "experience along the episodes" whose buffering the paper charges
 * against RL's memory footprint.
 */

#ifndef E3_RL_ROLLOUT_HH
#define E3_RL_ROLLOUT_HH

#include <cstdint>
#include <vector>

#include "env/environment.hh"

namespace e3 {

/** One stored environment transition. */
struct Transition
{
    Observation obs;
    std::vector<double> rawAction;
    double reward = 0.0;
    bool done = false;
    double value = 0.0;
    double logProb = 0.0;
};

/** Fixed-capacity segment buffer for nEnvs parallel lanes. */
class RolloutBuffer
{
  public:
    RolloutBuffer(size_t numEnvs, size_t numSteps);

    /** Append one step for one lane; lanes fill in lockstep. */
    void push(size_t lane, Transition t);

    /** All lanes have numSteps entries. */
    bool full() const;

    /** Drop all stored transitions. */
    void clear();

    size_t numEnvs() const { return lanes_.size(); }
    size_t numSteps() const { return numSteps_; }

    /** Lane-major access to a stored transition. */
    const Transition &at(size_t lane, size_t step) const;

    /** Per-lane reward sequence (for GAE). */
    std::vector<double> rewards(size_t lane) const;

    /** Per-lane value sequence. */
    std::vector<double> values(size_t lane) const;

    /** Per-lane done flags. */
    std::vector<bool> dones(size_t lane) const;

    /** Approximate resident bytes (Table IV memory accounting). */
    uint64_t bytes() const;

  private:
    size_t numSteps_;
    std::vector<std::vector<Transition>> lanes_;
};

} // namespace e3

#endif // E3_RL_ROLLOUT_HH
