/**
 * @file
 * Shared machinery of the on-policy RL baselines (A2C, PPO2): parallel
 * environment lanes, rollout collection with GAE, loss-gradient
 * assembly, greedy evaluation, and the Forward/Training profile split.
 */

#ifndef E3_RL_ON_POLICY_HH
#define E3_RL_ON_POLICY_HH

#include <deque>
#include <memory>

#include "rl/gae.hh"
#include "rl/policy.hh"
#include "rl/rl_profile.hh"
#include "rl/rollout.hh"

namespace e3 {

/** Flattened training batch over all lanes of one rollout. */
struct Batch
{
    Mat obs;                                 ///< N x obsDim
    std::vector<std::vector<double>> rawActions; ///< N entries
    std::vector<double> advantages;
    std::vector<double> returns;
    std::vector<double> oldLogProbs;

    size_t size() const { return rawActions.size(); }
};

/** Base class driving rollouts for an actor-critic learner. */
class OnPolicyAlgorithm
{
  public:
    /**
     * @param spec environment to learn
     * @param hidden policy hidden widths ({64,64} Small, {256,256,256}
     *        Large)
     * @param numEnvs parallel environment lanes
     * @param seed all randomness (env resets, sampling, init)
     */
    OnPolicyAlgorithm(const EnvSpec &spec, std::vector<size_t> hidden,
                      size_t numEnvs, uint64_t seed);
    virtual ~OnPolicyAlgorithm() = default;

    /** One rollout + one gradient update. */
    virtual void update() = 0;

    /** Mean reward of the last up-to-100 completed episodes. */
    double recentMeanReward() const;

    /** Deterministic-policy evaluation over fresh episodes. */
    double evaluate(size_t episodes, uint64_t seed);

    const RlProfile &profile() const { return profile_; }
    ActorCritic &policy() { return policy_; }
    const EnvSpec &spec() const { return spec_; }
    int64_t envSteps() const { return profile_.envSteps; }

  protected:
    /**
     * Advance every lane numSteps steps under the current policy,
     * recording transitions; computes GAE and returns the flattened
     * batch. Forward passes are charged to the "forward" phase, env
     * stepping to "env".
     */
    Batch collectRollout(size_t numSteps, double gamma, double lambda);

    /**
     * Accumulate policy-gradient + value + entropy gradients for the
     * given batch rows (PPO-clipped when clipRange > 0, plain advantage
     * weighting otherwise). Caller zeroes grads and steps the optimizer.
     * Charges op counts to the profile.
     *
     * @param rows indices into the batch (minibatch support)
     * @return mean total loss over the rows (diagnostic)
     */
    double accumulateGradients(const Batch &batch,
                               const std::vector<size_t> &rows,
                               double vfCoef, double entCoef,
                               double clipRange);

    EnvSpec spec_;
    ActorCritic policy_;
    Rng rng_;
    RlProfile profile_;

  private:
    struct Lane
    {
        std::unique_ptr<Environment> env;
        Rng rng;
        Observation obs;
        double episodeReward = 0.0;
        int episodeSteps = 0;
    };

    std::vector<Lane> lanes_;
    std::deque<double> recentEpisodes_;

    void resetLane(Lane &lane);
};

} // namespace e3

#endif // E3_RL_ON_POLICY_HH
