#include "rl/gae.hh"

#include <cmath>

#include "common/logging.hh"

namespace e3 {

GaeResult
computeGae(const std::vector<double> &rewards,
           const std::vector<double> &values,
           const std::vector<bool> &dones, double lastValue,
           double gamma, double lambda)
{
    const size_t t = rewards.size();
    e3_assert(values.size() == t && dones.size() == t,
              "GAE input length mismatch");

    GaeResult out;
    out.advantages.assign(t, 0.0);
    out.returns.assign(t, 0.0);

    double gae = 0.0;
    for (size_t i = t; i-- > 0;) {
        const double nextValue =
            i + 1 < t ? values[i + 1] : lastValue;
        const double notDone = dones[i] ? 0.0 : 1.0;
        const double delta =
            rewards[i] + gamma * nextValue * notDone - values[i];
        gae = delta + gamma * lambda * notDone * gae;
        out.advantages[i] = gae;
        out.returns[i] = gae + values[i];
    }
    return out;
}

void
normalizeAdvantages(std::vector<double> &advantages)
{
    if (advantages.size() < 2)
        return;
    double mean = 0.0;
    for (double a : advantages)
        mean += a;
    mean /= static_cast<double>(advantages.size());
    double var = 0.0;
    for (double a : advantages)
        var += (a - mean) * (a - mean);
    var /= static_cast<double>(advantages.size());
    const double std = std::sqrt(var) + 1e-8;
    for (double &a : advantages)
        a = (a - mean) / std;
}

} // namespace e3
