#include "rl/policy.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

namespace {

/** Layer sizes: obs -> hidden... -> out. */
std::vector<size_t>
stack(size_t in, const std::vector<size_t> &hidden, size_t out)
{
    std::vector<size_t> sizes{in};
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(out);
    return sizes;
}

/** Action dimensionality as the actor head sees it. */
size_t
headWidth(const EnvSpec &spec, bool discrete)
{
    if (discrete) {
        const auto env = spec.make();
        return static_cast<size_t>(env->actionSpace().count());
    }
    return spec.numOutputs;
}

bool
isDiscrete(const EnvSpec &spec)
{
    return spec.decode != EnvSpec::Decode::Continuous;
}

Rng
seeded(uint64_t seed, uint64_t salt)
{
    return Rng(seed ^ (salt * 0x9E3779B97F4A7C15ULL));
}

} // namespace

ActorCritic::ActorCritic(const EnvSpec &spec,
                         std::vector<size_t> hidden, uint64_t seed)
    : spec_(spec), discrete_(isDiscrete(spec)),
      actDim_(headWidth(spec, discrete_)),
      actor_([&] {
          Rng rng = seeded(seed, 1);
          return Mlp(stack(spec.numInputs, hidden, actDim_), rng);
      }()),
      critic_([&] {
          Rng rng = seeded(seed, 2);
          return Mlp(stack(spec.numInputs, hidden, 1), rng);
      }()),
      logStd_(1, discrete_ ? 1 : actDim_, 0.0),
      gLogStd_(1, discrete_ ? 1 : actDim_, 0.0)
{
}

ActorCritic::ActResult
ActorCritic::act(const Observation &obs, Rng &rng, bool deterministic)
{
    ActResult res;
    const auto head = actor_.forward1(obs);
    res.value = critic_.forward1(obs)[0];

    if (discrete_) {
        Categorical dist(head);
        const int a = deterministic ? dist.mode() : dist.sample(rng);
        res.rawAction = {static_cast<double>(a)};
        res.logProb = dist.logProb(a);
    } else {
        DiagGaussian dist(head, logStd_.row(0));
        res.rawAction = deterministic ? dist.mode() : dist.sample(rng);
        res.logProb = dist.logProb(res.rawAction);
    }
    res.envAction = toEnvAction(res.rawAction);
    return res;
}

double
ActorCritic::value(const Observation &obs)
{
    return critic_.forward1(obs)[0];
}

Categorical
ActorCritic::categoricalAt(const Mat &actorOut, size_t row) const
{
    e3_assert(discrete_, "categorical head on a continuous policy");
    return Categorical(actorOut.row(row));
}

DiagGaussian
ActorCritic::gaussianAt(const Mat &actorOut, size_t row) const
{
    e3_assert(!discrete_, "gaussian head on a discrete policy");
    return DiagGaussian(actorOut.row(row), logStd_.row(0));
}

std::vector<Mat *>
ActorCritic::parameters()
{
    auto ps = actor_.parameters();
    const auto cs = critic_.parameters();
    ps.insert(ps.end(), cs.begin(), cs.end());
    if (!discrete_)
        ps.push_back(&logStd_);
    return ps;
}

std::vector<Mat *>
ActorCritic::gradients()
{
    auto gs = actor_.gradients();
    const auto cs = critic_.gradients();
    gs.insert(gs.end(), cs.begin(), cs.end());
    if (!discrete_)
        gs.push_back(&gLogStd_);
    return gs;
}

void
ActorCritic::zeroGrad()
{
    actor_.zeroGrad();
    critic_.zeroGrad();
    gLogStd_.zero();
}

Action
ActorCritic::toEnvAction(const std::vector<double> &rawAction) const
{
    if (discrete_)
        return {rawAction[0]};
    Action a(rawAction.size());
    for (size_t i = 0; i < rawAction.size(); ++i)
        a[i] = std::clamp(rawAction[i], spec_.actionLo, spec_.actionHi);
    return a;
}

size_t
ActorCritic::nodeCount() const
{
    return actor_.nodeCount() + critic_.nodeCount();
}

uint64_t
ActorCritic::connectionCount() const
{
    return actor_.connectionCount() + critic_.connectionCount();
}

uint64_t
ActorCritic::forwardOpsPerStep() const
{
    return actor_.forwardOpsPerSample() + critic_.forwardOpsPerSample();
}

uint64_t
ActorCritic::backwardOpsPerStep() const
{
    return actor_.backwardOpsPerSample() +
           critic_.backwardOpsPerSample();
}

uint64_t
ActorCritic::activationBytesPerStep(size_t bytesPerWord) const
{
    return actor_.activationBytesPerSample(bytesPerWord) +
           critic_.activationBytesPerSample(bytesPerWord);
}

} // namespace e3
