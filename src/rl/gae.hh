/**
 * @file
 * Generalized Advantage Estimation (Schulman et al.), used by both RL
 * baselines: A2C with lambda = 1 (plain discounted returns) and PPO2
 * with lambda = 0.95.
 */

#ifndef E3_RL_GAE_HH
#define E3_RL_GAE_HH

#include <vector>

namespace e3 {

/** Advantages and value targets for one trajectory segment. */
struct GaeResult
{
    std::vector<double> advantages;
    std::vector<double> returns; ///< advantage + value (critic target)
};

/**
 * Compute GAE over one environment lane's segment.
 *
 * @param rewards   per-step rewards, length T
 * @param values    critic estimates for each step's state, length T
 * @param dones     whether the step ended its episode, length T
 * @param lastValue bootstrap value of the state after the segment
 * @param gamma     discount factor
 * @param lambda    GAE mixing parameter (1 = MC-style returns)
 */
GaeResult computeGae(const std::vector<double> &rewards,
                     const std::vector<double> &values,
                     const std::vector<bool> &dones, double lastValue,
                     double gamma, double lambda);

/** In-place mean/std normalization; no-op on fewer than two items. */
void normalizeAdvantages(std::vector<double> &advantages);

} // namespace e3

#endif // E3_RL_GAE_HH
