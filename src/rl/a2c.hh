/**
 * @file
 * A2C (Advantage Actor-Critic, Mnih et al. 2016), following
 * stable-baselines' synchronous implementation and defaults: 5-step
 * rollouts, RMSProp, gae_lambda = 1, entropy bonus 0.01.
 */

#ifndef E3_RL_A2C_HH
#define E3_RL_A2C_HH

#include "mlp/optimizer.hh"
#include "rl/on_policy.hh"

namespace e3 {

/** A2C hyperparameters (stable-baselines defaults). */
struct A2cConfig
{
    size_t numEnvs = 4;
    size_t numSteps = 5;
    double gamma = 0.99;
    double gaeLambda = 1.0;
    double learningRate = 7e-4;
    double vfCoef = 0.25;
    double entCoef = 0.01;
    double maxGradNorm = 0.5;
};

/** Synchronous advantage actor-critic learner. */
class A2c : public OnPolicyAlgorithm
{
  public:
    A2c(const EnvSpec &spec, std::vector<size_t> hidden,
        const A2cConfig &cfg, uint64_t seed);

    /** Collect one 5-step rollout and apply one RMSProp update. */
    void update() override;

    const A2cConfig &config() const { return cfg_; }

  private:
    A2cConfig cfg_;
    RmsProp optimizer_;
};

} // namespace e3

#endif // E3_RL_A2C_HH
