#include "rl/a2c.hh"

namespace e3 {

A2c::A2c(const EnvSpec &spec, std::vector<size_t> hidden,
         const A2cConfig &cfg, uint64_t seed)
    : OnPolicyAlgorithm(spec, std::move(hidden), cfg.numEnvs, seed),
      cfg_(cfg),
      optimizer_(policy_.parameters(), policy_.gradients(),
                 cfg.learningRate)
{
}

void
A2c::update()
{
    const Batch batch =
        collectRollout(cfg_.numSteps, cfg_.gamma, cfg_.gaeLambda);

    std::vector<size_t> rows(batch.size());
    for (size_t i = 0; i < rows.size(); ++i)
        rows[i] = i;

    {
        PhaseTimer::Scope scope(profile_.timer, rl_phase::training);
        policy_.zeroGrad();
    }
    accumulateGradients(batch, rows, cfg_.vfCoef, cfg_.entCoef,
                        /*clipRange=*/0.0);
    {
        PhaseTimer::Scope scope(profile_.timer, rl_phase::training);
        optimizer_.clipGradNorm(cfg_.maxGradNorm);
        optimizer_.step();
    }
    ++profile_.updates;
}

} // namespace e3
