/**
 * @file
 * PPO2 (Proximal Policy Optimization, Schulman et al. 2017), following
 * stable-baselines' clipped-surrogate implementation and defaults:
 * 128-step rollouts, 4 minibatches x 4 epochs, Adam, clip 0.2,
 * gae_lambda = 0.95.
 */

#ifndef E3_RL_PPO2_HH
#define E3_RL_PPO2_HH

#include "mlp/optimizer.hh"
#include "rl/on_policy.hh"

namespace e3 {

/** PPO2 hyperparameters (stable-baselines defaults). */
struct Ppo2Config
{
    size_t numEnvs = 4;
    size_t numSteps = 128;
    size_t numMinibatches = 4;
    size_t numEpochs = 4;
    double gamma = 0.99;
    double gaeLambda = 0.95;
    double learningRate = 2.5e-4;
    double clipRange = 0.2;
    double vfCoef = 0.5;
    double entCoef = 0.01;
    double maxGradNorm = 0.5;
};

/** Clipped-surrogate proximal policy optimization learner. */
class Ppo2 : public OnPolicyAlgorithm
{
  public:
    Ppo2(const EnvSpec &spec, std::vector<size_t> hidden,
         const Ppo2Config &cfg, uint64_t seed);

    /**
     * Collect one long rollout and run numEpochs passes of shuffled
     * minibatch Adam updates over it.
     */
    void update() override;

    const Ppo2Config &config() const { return cfg_; }

  private:
    Ppo2Config cfg_;
    Adam optimizer_;
};

} // namespace e3

#endif // E3_RL_PPO2_HH
