#include "common/csv.hh"

#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

void
CsvWriter::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
CsvWriter::row(std::vector<std::string> cells)
{
    e3_assert(cells.size() == header_.size(),
              "csv row width ", cells.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needsQuote =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needsQuote)
        return cell;
    std::string out = "\"";
    for (char ch : cell) {
        if (ch == '"')
            out += '"';
        out += ch;
    }
    out += '"';
    return out;
}

std::string
CsvWriter::str() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            oss << (i ? "," : "") << escape(cells[i]);
        oss << '\n';
    };
    emit(header_);
    for (const auto &r : rows_)
        emit(r);
    return oss.str();
}

bool
CsvWriter::writeFile(const std::string &path) const
{
    std::ofstream out(path);
    if (!out) {
        warn("cannot open '", path, "' for writing");
        return false;
    }
    out << str();
    return static_cast<bool>(out);
}

} // namespace e3
