#include "common/fs.hh"

#include "common/logging.hh"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace e3 {

namespace fs = std::filesystem;

Status
ensureDirectory(const std::string &dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        return Status::error("cannot create directory '", dir,
                             "': ", ec.message());
    return Status();
}

bool
fileExists(const std::string &path)
{
    std::error_code ec;
    return fs::is_regular_file(path, ec);
}

Result<std::string>
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return Status::error("cannot open '", path, "' for reading");
    std::ostringstream content;
    content << in.rdbuf();
    if (in.bad())
        return Status::error("read error on '", path, "'");
    return content.str();
}

Status
atomicWriteFile(const std::string &path, const std::string &content)
{
    const std::string tmp = path + ".tmp";

    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return Status::error("cannot open '", tmp, "' for writing");
    const size_t written =
        content.empty()
            ? 0
            : std::fwrite(content.data(), 1, content.size(), f);
    bool ok = written == content.size();
    ok = std::fflush(f) == 0 && ok;
#if defined(__unix__) || defined(__APPLE__)
    // Flush file contents to stable storage before the rename makes
    // them visible under the final name: otherwise a power cycle can
    // leave a renamed-but-empty file.
    ok = ::fsync(::fileno(f)) == 0 && ok;
#endif
    ok = std::fclose(f) == 0 && ok;
    if (!ok) {
        if (Status rm = removeFile(tmp); !rm.ok())
            warn("atomicWriteFile cleanup: ", rm.message());
        return Status::error("write to '", tmp, "' failed");
    }

    std::error_code ec;
    fs::rename(tmp, path, ec);
    if (ec) {
        if (Status rm = removeFile(tmp); !rm.ok())
            warn("atomicWriteFile cleanup: ", rm.message());
        return Status::error("cannot rename '", tmp, "' to '", path,
                             "': ", ec.message());
    }
    return Status();
}

Status
removeFile(const std::string &path)
{
    std::error_code ec;
    fs::remove(path, ec); // returns false (no error) if missing
    if (ec)
        return Status::error("cannot remove '", path,
                             "': ", ec.message());
    return Status();
}

} // namespace e3
