/**
 * @file
 * Minimal INI-style configuration parser, in the spirit of
 * neat-python's config files:
 *
 *   # comment
 *   [NEAT]
 *   pop_size = 200
 *   fitness_threshold = 475.0
 *
 * Sections group keys; values are strings with typed accessors.
 * Malformed input — an unclosed section header, a line without '=',
 * a value that fails numeric parsing — is reported as an error value
 * (Result<T>), never by terminating the process: config files are
 * user-supplied bytes and the caller decides how to degrade.
 */

#ifndef E3_COMMON_INI_HH
#define E3_COMMON_INI_HH

#include <iosfwd>
#include <map>
#include <set>
#include <string>

#include "common/result.hh"

namespace e3 {

/** Parsed INI document. */
class IniFile
{
  public:
    IniFile() = default;

    /** Parse from a stream; malformed lines are an error. */
    static Result<IniFile> parse(std::istream &in);

    /** Parse from a string. */
    static Result<IniFile> parseString(const std::string &text);

    /** Load from a file; error if unreadable or malformed. */
    static Result<IniFile> load(const std::string &path);

    /** True if [section] key exists. */
    [[nodiscard]] bool has(const std::string &section,
                           const std::string &key) const;

    /** String value; fallback when absent. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &fallback) const;

    /** Double value; fallback when absent, error if unparsable. */
    Result<double> getDouble(const std::string &section,
                             const std::string &key,
                             double fallback) const;

    /** Integer value; fallback when absent, error if unparsable. */
    Result<long> getInt(const std::string &section,
                        const std::string &key, long fallback) const;

    /** Boolean value: true/false/1/0/yes/no; error on anything else. */
    Result<bool> getBool(const std::string &section,
                         const std::string &key, bool fallback) const;

    /** Set (or overwrite) a value. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** All keys of a section (empty set if absent). */
    std::set<std::string> keys(const std::string &section) const;

    /** Serialize back to INI text. */
    std::string str() const;

  private:
    /** section -> key -> value */
    std::map<std::string, std::map<std::string, std::string>> data_;
};

} // namespace e3

#endif // E3_COMMON_INI_HH
