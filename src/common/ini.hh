/**
 * @file
 * Minimal INI-style configuration parser, in the spirit of
 * neat-python's config files:
 *
 *   # comment
 *   [NEAT]
 *   pop_size = 200
 *   fitness_threshold = 475.0
 *
 * Sections group keys; values are strings with typed accessors.
 */

#ifndef E3_COMMON_INI_HH
#define E3_COMMON_INI_HH

#include <iosfwd>
#include <map>
#include <set>
#include <string>

namespace e3 {

/** Parsed INI document. */
class IniFile
{
  public:
    /** Parse from a stream; fatal() on malformed lines. */
    static IniFile parse(std::istream &in);

    /** Parse from a string. */
    static IniFile parseString(const std::string &text);

    /** Load from a file; fatal() if unreadable. */
    static IniFile load(const std::string &path);

    /** True if [section] key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** String value; fallback when absent. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &fallback) const;

    /** Double value; fatal() if present but unparsable. */
    double getDouble(const std::string &section, const std::string &key,
                     double fallback) const;

    /** Integer value; fatal() if present but unparsable. */
    long getInt(const std::string &section, const std::string &key,
                long fallback) const;

    /** Boolean value: true/false/1/0/yes/no. */
    bool getBool(const std::string &section, const std::string &key,
                 bool fallback) const;

    /** Set (or overwrite) a value. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** All keys of a section (empty set if absent). */
    std::set<std::string> keys(const std::string &section) const;

    /** Serialize back to INI text. */
    std::string str() const;

  private:
    /** section -> key -> value */
    std::map<std::string, std::map<std::string, std::string>> data_;
};

} // namespace e3

#endif // E3_COMMON_INI_HH
