/**
 * @file
 * Minimal CSV writer so bench results can be exported for plotting.
 */

#ifndef E3_COMMON_CSV_HH
#define E3_COMMON_CSV_HH

#include <string>
#include <vector>

namespace e3 {

/** Accumulates rows and writes RFC-4180-style CSV to a file. */
class CsvWriter
{
  public:
    /** Set the header row. */
    void header(std::vector<std::string> cells);

    /** Append a data row (width-checked against the header). */
    void row(std::vector<std::string> cells);

    /** Serialize to a string. */
    std::string str() const;

    /**
     * Write to a file.
     * @return true on success; logs a warn() and returns false otherwise.
     */
    bool writeFile(const std::string &path) const;

  private:
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;

    static std::string escape(const std::string &cell);
};

} // namespace e3

#endif // E3_COMMON_CSV_HH
