#include "common/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

TextTable::TextTable(std::string title) : title_(std::move(title))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    e3_assert(!cells.empty(), "table header must be non-empty");
    header_ = std::move(cells);
}

void
TextTable::row(std::vector<std::string> cells)
{
    e3_assert(cells.size() == header_.size(),
              "row width ", cells.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

std::string
TextTable::num(long long v)
{
    return std::to_string(v);
}

std::string
TextTable::pct(double fraction, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << fraction * 100.0
        << '%';
    return oss.str();
}

std::string
TextTable::str() const
{
    std::vector<size_t> widths(header_.size(), 0);
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_) {
        for (size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());
    }

    auto renderRow = [&](const std::vector<std::string> &cells) {
        std::ostringstream oss;
        for (size_t c = 0; c < cells.size(); ++c) {
            oss << (c ? "  " : "") << std::left
                << std::setw(static_cast<int>(widths[c])) << cells[c];
        }
        return oss.str();
    };

    std::ostringstream oss;
    if (!title_.empty())
        oss << "== " << title_ << " ==\n";
    const std::string head = renderRow(header_);
    oss << head << '\n' << std::string(head.size(), '-') << '\n';
    for (const auto &r : rows_)
        oss << renderRow(r) << '\n';
    return oss.str();
}

std::ostream &
operator<<(std::ostream &os, const TextTable &t)
{
    return os << t.str();
}

} // namespace e3
