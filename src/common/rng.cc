#include "common/rng.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace e3 {

namespace {

/** SplitMix64 step, used for seeding and stream splitting. */
uint64_t
splitmix64(uint64_t &x)
{
    uint64_t z = (x += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

void
RngAudit::mix(uint64_t v)
{
    // FNV-1a folded a word at a time: xor-then-multiply keeps the
    // whole sentinel at two arithmetic ops per draw, cheap enough to
    // leave on in every build.
    hash = (hash ^ v) * 1099511628211ULL; // FNV prime
    ++draws;
}

void
RngAudit::mixAudit(const RngAudit &other)
{
    mix(other.hash);
    --draws; // mix() counts a draw; folding a digest is not one
    draws += other.draws;
}

Rng::Rng(uint64_t seed)
{
    // xoshiro state must not be all-zero; SplitMix64 guarantees a good
    // spread even for small seeds.
    uint64_t sm = seed;
    for (auto &s : s_)
        s = splitmix64(sm);
}

Rng::Rng(const Rng &other)
{
    e3_assert(other.audit_.draws == 0,
              "copying an Rng stream after ", other.audit_.draws,
              " draws duplicates its future; use split() or move");
    for (size_t i = 0; i < 4; ++i)
        s_[i] = other.s_[i];
    cachedNormal_ = other.cachedNormal_;
    hasCachedNormal_ = other.hasCachedNormal_;
    audit_ = other.audit_;
}

Rng &
Rng::operator=(const Rng &other)
{
    e3_assert(other.audit_.draws == 0,
              "copy-assigning an Rng stream after ", other.audit_.draws,
              " draws duplicates its future; use split() or move");
    for (size_t i = 0; i < 4; ++i)
        s_[i] = other.s_[i];
    cachedNormal_ = other.cachedNormal_;
    hasCachedNormal_ = other.hasCachedNormal_;
    audit_ = other.audit_;
    return *this;
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;

    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);

    audit_.mix(result);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return (next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

uint64_t
Rng::uniformInt(uint64_t n)
{
    e3_assert(n > 0, "uniformInt(0) is meaningless");
    // Rejection sampling to remove modulo bias.
    const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
    uint64_t v;
    do {
        v = next();
    } while (v >= limit);
    return v % n;
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    e3_assert(lo <= hi, "empty integer range [", lo, ", ", hi, "]");
    return lo + static_cast<int64_t>(
                    uniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller; u1 in (0,1] to avoid log(0).
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cachedNormal_ = r * std::sin(theta);
    hasCachedNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return uniform() < p;
}

size_t
Rng::weightedIndex(const std::vector<double> &weights)
{
    double total = 0.0;
    for (double w : weights) {
        e3_assert(w >= 0.0, "negative weight ", w);
        total += w;
    }
    e3_assert(total > 0.0, "all weights are zero");
    double r = uniform() * total;
    for (size_t i = 0; i < weights.size(); ++i) {
        r -= weights[i];
        if (r < 0.0)
            return i;
    }
    return weights.size() - 1; // floating-point slack
}

std::vector<size_t>
Rng::permutation(size_t n)
{
    std::vector<size_t> idx(n);
    for (size_t i = 0; i < n; ++i)
        idx[i] = i;
    for (size_t i = n; i > 1; --i) {
        const size_t j = uniformInt(i);
        std::swap(idx[i - 1], idx[j]);
    }
    return idx;
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xD6E8FEB86659FD93ULL);
}

RngState
Rng::state() const
{
    RngState st;
    for (size_t i = 0; i < 4; ++i)
        st.s[i] = s_[i];
    st.cachedNormal = cachedNormal_;
    st.hasCachedNormal = hasCachedNormal_;
    return st;
}

void
Rng::setState(const RngState &state)
{
    for (size_t i = 0; i < 4; ++i)
        s_[i] = state.s[i];
    cachedNormal_ = state.cachedNormal;
    hasCachedNormal_ = state.hasCachedNormal;
    // Re-base the sentinel: RngState deliberately excludes the audit
    // fields (checkpoint format stability), so a restored stream
    // digests its post-restore draws only.
    audit_ = RngAudit{};
}

} // namespace e3
