/**
 * @file
 * E3_HOT — the hot-path annotation.
 *
 * Marks a function as part of the per-step inference surface: the code
 * that runs once per environment step per lane in steady state
 * (network activation, lane stepping, the serve batch evaluate). The
 * marker does two jobs:
 *
 *  - The compiler sees `__attribute__((hot))` and optimizes placement
 *    and inlining accordingly.
 *  - e3_lint rule E3L015 sees the token and bans allocation inside the
 *    function body: new/malloc/container growth there is a latency
 *    spike on the edge target and a throughput bug under load. All
 *    buffers a hot function needs must be sized during compile/setup.
 *
 * Convention: put E3_HOT on the out-of-line *definition* (the line
 * above the qualified name, next to the return type), not only the
 * declaration — the linter recovers functions per translation unit and
 * reads the definition's header.
 */

#ifndef E3_COMMON_HOT_HH
#define E3_COMMON_HOT_HH

#if defined(__GNUC__) || defined(__clang__)
#define E3_HOT __attribute__((hot))
#else
#define E3_HOT
#endif

#endif // E3_COMMON_HOT_HH
