#include "common/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hh"

namespace e3 {

void
Distribution::add(double x)
{
    if (count_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
}

void
Distribution::merge(const Distribution &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    // Chan et al. parallel combination of Welford accumulators.
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

double
Distribution::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_);
}

double
Distribution::stddev() const
{
    return std::sqrt(variance());
}

double
Distribution::min() const
{
    e3_assert(count_ > 0, "min() of empty distribution");
    return min_;
}

double
Distribution::max() const
{
    e3_assert(count_ > 0, "max() of empty distribution");
    return max_;
}

std::string
Distribution::summary() const
{
    std::ostringstream oss;
    if (count_ == 0) {
        oss << "(empty)";
        return oss.str();
    }
    oss.precision(4);
    oss << mean() << " +/- " << stddev() << " [" << min_ << ", " << max_
        << "] (n=" << count_ << ")";
    return oss.str();
}

Histogram::Histogram(double lo, double hi, size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0)
{
    e3_assert(bins >= 1, "histogram needs at least one bin");
    e3_assert(hi > lo, "histogram range [", lo, ", ", hi, ") is empty");
}

void
Histogram::add(double x)
{
    const double span = hi_ - lo_;
    double f = (x - lo_) / span;
    f = std::clamp(f, 0.0, std::nexttoward(1.0, 0.0));
    const auto bin = static_cast<size_t>(
        f * static_cast<double>(counts_.size()));
    ++counts_[std::min(bin, counts_.size() - 1)];
    ++total_;
}

double
Histogram::binLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::binHi(size_t i) const
{
    return binLo(i + 1);
}

double
Histogram::fraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_.at(i)) /
           static_cast<double>(total_);
}

std::string
Histogram::ascii(size_t width) const
{
    uint64_t peak = 1;
    for (uint64_t c : counts_)
        peak = std::max(peak, c);
    std::ostringstream oss;
    oss.precision(3);
    for (size_t i = 0; i < counts_.size(); ++i) {
        const auto bar = static_cast<size_t>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            static_cast<double>(width));
        oss << "[" << binLo(i) << ", " << binHi(i) << ") "
            << std::string(bar, '#') << " " << counts_[i] << "\n";
    }
    return oss.str();
}

void
Counters::add(const std::string &name, double delta)
{
    values_[indexOf(name, true)] += delta;
}

double
Counters::get(const std::string &name) const
{
    const size_t i = findIndex(name);
    return i == values_.size() ? 0.0 : values_[i];
}

double
Counters::total() const
{
    double t = 0.0;
    for (double v : values_)
        t += v;
    return t;
}

void
Counters::reset()
{
    std::fill(values_.begin(), values_.end(), 0.0);
}

void
Counters::merge(const Counters &other)
{
    for (size_t i = 0; i < other.order_.size(); ++i)
        add(other.order_[i], other.values_[i]);
}

size_t
Counters::indexOf(const std::string &name, bool create)
{
    const size_t i = findIndex(name);
    if (i != values_.size())
        return i;
    e3_assert(create, "unknown counter '", name, "'");
    order_.push_back(name);
    values_.push_back(0.0);
    return values_.size() - 1;
}

size_t
Counters::findIndex(const std::string &name) const
{
    for (size_t i = 0; i < order_.size(); ++i) {
        if (order_[i] == name)
            return i;
    }
    return values_.size();
}

} // namespace e3
