/**
 * @file
 * Error reporting as values: Status and Result<T>.
 *
 * The logging layer's fatal()/panic() terminate the process, which is
 * the right call for CLI argument errors and internal bugs — but a
 * library routine that parses user-supplied bytes (a genome file, a
 * checkpoint) must be able to say "this input is bad" without taking
 * the process down, so callers can degrade gracefully (warn + fresh
 * start is the checkpoint contract). Persistence APIs therefore return
 * Status (operations with no payload) or Result<T> (operations that
 * produce a value), and thin ...OrDie wrappers recover the old
 * die-on-error behaviour at the application boundary.
 */

#ifndef E3_COMMON_RESULT_HH
#define E3_COMMON_RESULT_HH

#include <optional>
#include <string>
#include <utility>

#include "common/logging.hh"

namespace e3 {

/** Success, or an error described by a message. */
class [[nodiscard]] Status
{
  public:
    /** Default status is success. */
    Status() = default;

    /** Build an error from message fragments (operator<< folded). */
    template <typename... Args>
    static Status
    error(Args &&...args)
    {
        Status s;
        s.failed_ = true;
        s.message_ = detail::format(std::forward<Args>(args)...);
        return s;
    }

    bool ok() const { return !failed_; }
    explicit operator bool() const { return ok(); }

    /** Error description; empty for success. */
    const std::string &message() const { return message_; }

  private:
    bool failed_ = false;
    std::string message_;
};

/**
 * Either a value of type T or an error Status.
 *
 * Implicitly constructible from both, so functions can `return value;`
 * on success and `return Status::error(...);` on failure. Accessing
 * value() of an error Result is a programming bug and panics.
 */
template <typename T>
class [[nodiscard]] Result
{
  public:
    /** Success. */
    Result(T value) : value_(std::move(value)) {}

    /** Failure; @p status must not be ok. */
    Result(Status status) : status_(std::move(status))
    {
        e3_assert(!status_.ok(),
                  "Result constructed from an ok Status without a value");
    }

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    /** The error (Status::ok() if this holds a value). */
    const Status &status() const { return status_; }

    /** Error description; empty on success. */
    const std::string &message() const { return status_.message(); }

    T &
    value() &
    {
        e3_assert(ok(), "value() on error Result: ", message());
        return *value_;
    }

    const T &
    value() const &
    {
        e3_assert(ok(), "value() on error Result: ", message());
        return *value_;
    }

    T &&
    value() &&
    {
        e3_assert(ok(), "value() on error Result: ", message());
        return std::move(*value_);
    }

    /** The value, or @p fallback if this holds an error. */
    T
    valueOr(T fallback) const &
    {
        return ok() ? *value_ : std::move(fallback);
    }

    T &operator*() & { return value(); }
    const T &operator*() const & { return value(); }
    T *operator->() { return &value(); }
    const T *operator->() const { return &value(); }

  private:
    Status status_;
    std::optional<T> value_;
};

/**
 * Panic unless @p status is ok. For library-internal preconditions:
 * user input is validated at the boundary with a Status-returning
 * check, so an invalid value reaching deeper layers is a caller bug.
 */
inline void
assertOk(const Status &status)
{
    e3_assert(status.ok(), status.message());
}

} // namespace e3

#endif // E3_COMMON_RESULT_HH
