/**
 * @file
 * Annotated synchronization wrappers: Clang thread-safety analysis
 * as a build-time property.
 *
 * Every mutex-bearing type in the tree holds an e3::Mutex and declares
 * which members it protects with E3_GUARDED_BY; functions that must be
 * entered with a lock held say so with E3_REQUIRES. Under clang,
 * -Wthread-safety then proves lock discipline statically — a member
 * read outside its lock, a lock released twice, or a REQUIRES function
 * called unlocked is a compile error in the thread-safety CI job
 * (-Werror=thread-safety). Under GCC the attributes expand to nothing
 * and the wrappers cost exactly a std::mutex.
 *
 * Raw std::mutex / std::lock_guard / std::unique_lock are forbidden
 * outside src/common by lint rule E3L010: unannotated locks are
 * invisible to the analysis, so one raw site would punch a hole in
 * the proof.
 *
 * The one analysis limitation to know about: CondVar::wait() releases
 * and reacquires the mutex internally, which the analysis cannot see —
 * it treats the capability as held across the call. That matches the
 * invariant callers must maintain anyway (the predicate is only ever
 * examined with the lock held), so no suppression is needed; just
 * remember that *other* threads run between wait() entry and return,
 * and re-check your predicate in a loop.
 */

#ifndef E3_COMMON_THREAD_ANNOTATIONS_HH
#define E3_COMMON_THREAD_ANNOTATIONS_HH

#include <chrono>
#include <condition_variable>
#include <mutex>

#if defined(__clang__)
#define E3_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define E3_THREAD_ANNOTATION(x) // no-op outside clang
#endif

/** Type declares a capability (a lock) the analysis can track. */
#define E3_CAPABILITY(x) E3_THREAD_ANNOTATION(capability(x))

/** RAII type whose lifetime equals a capability acquisition. */
#define E3_SCOPED_CAPABILITY E3_THREAD_ANNOTATION(scoped_lockable)

/** Member is protected by the named mutex. */
#define E3_GUARDED_BY(x) E3_THREAD_ANNOTATION(guarded_by(x))

/** Pointee (not the pointer) is protected by the named mutex. */
#define E3_PT_GUARDED_BY(x) E3_THREAD_ANNOTATION(pt_guarded_by(x))

/** Function must be called with the capability held. */
#define E3_REQUIRES(...) \
    E3_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))

/** Function acquires the capability and returns holding it. */
#define E3_ACQUIRE(...) \
    E3_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))

/** Function releases the capability. */
#define E3_RELEASE(...) \
    E3_THREAD_ANNOTATION(release_capability(__VA_ARGS__))

/** Function acquires the capability when returning the given value. */
#define E3_TRY_ACQUIRE(...) \
    E3_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

/** Function must be called with the capability NOT held. */
#define E3_EXCLUDES(...) E3_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

/**
 * Opt this one function out of the analysis. Every use is a reviewed,
 * per-site exception with a comment saying why the analysis cannot see
 * the invariant — never a blanket suppression.
 */
#define E3_NO_THREAD_SAFETY_ANALYSIS \
    E3_THREAD_ANNOTATION(no_thread_safety_analysis)

namespace e3 {

/**
 * A std::mutex the analysis can reason about. Prefer MutexLock over
 * manual lock()/unlock() pairs; the manual entry points exist for the
 * rare structure RAII cannot express.
 */
class E3_CAPABILITY("mutex") Mutex
{
  public:
    Mutex() = default;
    Mutex(const Mutex &) = delete;
    Mutex &operator=(const Mutex &) = delete;

    void lock() E3_ACQUIRE() { m_.lock(); }
    void unlock() E3_RELEASE() { m_.unlock(); }
    [[nodiscard]] bool try_lock() E3_TRY_ACQUIRE(true)
    {
        return m_.try_lock();
    }

  private:
    friend class MutexLock;
    friend class MutexLockPair;
    std::mutex m_;
};

/** std::unique_lock-style RAII guard over one e3::Mutex. */
class E3_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &m) E3_ACQUIRE(m) : lock_(m.m_) {}
    ~MutexLock() E3_RELEASE() = default;

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

  private:
    friend class CondVar;
    std::unique_lock<std::mutex> lock_;
};

/**
 * Deadlock-free acquisition of two mutexes at once (std::scoped_lock
 * underneath) — the copy-assignment shape, where both the source and
 * the destination registry must be stable for the duration.
 */
class E3_SCOPED_CAPABILITY MutexLockPair
{
  public:
    MutexLockPair(Mutex &a, Mutex &b) E3_ACQUIRE(a, b)
        : lock_(a.m_, b.m_)
    {
    }
    ~MutexLockPair() E3_RELEASE() = default;

    MutexLockPair(const MutexLockPair &) = delete;
    MutexLockPair &operator=(const MutexLockPair &) = delete;

  private:
    std::scoped_lock<std::mutex, std::mutex> lock_;
};

/**
 * Condition variable over e3::Mutex. Callers hold a MutexLock and
 * re-check their predicate in a while loop (see the file comment for
 * why predicate-lambda overloads are deliberately absent: the lambda
 * body would be analyzed without the capability and every guarded
 * read inside it would need a suppression).
 */
class CondVar
{
  public:
    void wait(MutexLock &lock) { cv_.wait(lock.lock_); }

    template <typename Clock, typename Duration>
    std::cv_status
    wait_until(MutexLock &lock,
               const std::chrono::time_point<Clock, Duration> &deadline)
    {
        return cv_.wait_until(lock.lock_, deadline);
    }

    void notify_one() { cv_.notify_one(); }
    void notify_all() { cv_.notify_all(); }

  private:
    std::condition_variable cv_;
};

} // namespace e3

#endif // E3_COMMON_THREAD_ANNOTATIONS_HH
