/**
 * @file
 * Wall-clock timing utilities for software profiling.
 *
 * The paper's Fig. 1(b) / Fig. 3 / Fig. 9 timing profiles attribute
 * runtime to named phases ("evaluate", "evolve", "mutate", ...). The
 * PhaseTimer here accumulates wall time per phase with scoped guards so
 * profiling code cannot leak an un-stopped phase.
 */

#ifndef E3_COMMON_TIMING_HH
#define E3_COMMON_TIMING_HH

#include <chrono>
#include <string>
#include <vector>

namespace e3 {

/** Simple monotonic stopwatch reporting seconds. */
class Stopwatch
{
  public:
    Stopwatch() { restart(); }

    /** Reset the origin to now. */
    void restart() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or last restart(). */
    double seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_).count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

/**
 * Accumulates wall-clock time per named phase.
 *
 * Phases may nest (a scope inside another scope attributes its time to
 * both), matching how the paper nests "mutate" etc. inside "evolve".
 */
class PhaseTimer
{
  public:
    /** RAII guard that charges elapsed time to one phase. */
    class Scope
    {
      public:
        Scope(PhaseTimer &timer, const std::string &phase);
        ~Scope();

        Scope(const Scope &) = delete;
        Scope &operator=(const Scope &) = delete;

      private:
        PhaseTimer &timer_;
        size_t index_;
        Stopwatch watch_;
    };

    /** Directly add seconds to a phase (for modeled, not measured, time). */
    void add(const std::string &phase, double seconds);

    /** Accumulated seconds for a phase; 0 if never entered. */
    double seconds(const std::string &phase) const;

    /** Sum over all phases. */
    double totalSeconds() const;

    /** Phase names in first-use order. */
    const std::vector<std::string> &phases() const { return names_; }

    /** Fraction of total time spent in a phase (0 if total is 0). */
    double fraction(const std::string &phase) const;

    /** Zero all accumulators, keeping phase names. */
    void reset();

    /** Merge another timer's accumulators into this one. */
    void merge(const PhaseTimer &other);

  private:
    std::vector<std::string> names_;
    std::vector<double> seconds_;

    size_t indexOf(const std::string &phase);
};

} // namespace e3

#endif // E3_COMMON_TIMING_HH
