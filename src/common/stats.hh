/**
 * @file
 * Statistics primitives used throughout the platform: scalar counters,
 * running distributions (mean/stddev/min/max), and fixed-bin histograms.
 *
 * These are deliberately simple value types: experiments aggregate them,
 * benches print them. They exist so the irregularity analysis (Fig. 4),
 * utilization accounting (Figs. 6/7/9a) and the runtime/energy tables all
 * report through one audited code path.
 */

#ifndef E3_COMMON_STATS_HH
#define E3_COMMON_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace e3 {

/**
 * Running scalar distribution with O(1) updates.
 *
 * Tracks count, mean, variance (Welford), min and max.
 */
class Distribution
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another distribution into this one. */
    void merge(const Distribution &other);

    uint64_t count() const { return count_; }
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Population variance; 0 for fewer than two samples. */
    double variance() const;

    /** Population standard deviation. */
    double stddev() const;

    double min() const;
    double max() const;
    double sum() const { return mean_ * static_cast<double>(count_); }

    /** Render as "mean +/- sd [min, max] (n)". */
    std::string summary() const;

  private:
    uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width-bin histogram over [lo, hi); out-of-range samples clamp to
 * the edge bins so nothing is silently dropped.
 */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower edge of the first bin
     * @param hi exclusive upper edge of the last bin
     * @param bins number of bins, must be >= 1
     */
    Histogram(double lo, double hi, size_t bins);

    /** Add one sample (clamped into range). */
    void add(double x);

    size_t bins() const { return counts_.size(); }
    uint64_t binCount(size_t i) const { return counts_.at(i); }
    uint64_t total() const { return total_; }

    /** Inclusive lower edge of bin i. */
    double binLo(size_t i) const;

    /** Exclusive upper edge of bin i. */
    double binHi(size_t i) const;

    /** Fraction of samples in bin i (0 if empty histogram). */
    double fraction(size_t i) const;

    /** Render a fixed-width ASCII bar chart, one line per bin. */
    std::string ascii(size_t width = 40) const;

  private:
    double lo_;
    double hi_;
    std::vector<uint64_t> counts_;
    uint64_t total_ = 0;
};

/**
 * Named scalar counter group — a tiny stat registry for cycle/op/byte
 * accounting inside the INAX and E3 models.
 */
class Counters
{
  public:
    /** Add delta to the named counter (creating it at zero). */
    void add(const std::string &name, double delta);

    /** Current value; 0 if never touched. */
    double get(const std::string &name) const;

    /** All names in insertion order. */
    const std::vector<std::string> &names() const { return order_; }

    /** Sum of all counters. */
    double total() const;

    /** Reset every counter to zero (names are kept). */
    void reset();

    /** Merge another group into this one (union of names). */
    void merge(const Counters &other);

  private:
    std::vector<std::string> order_;
    std::vector<double> values_;

    size_t indexOf(const std::string &name, bool create);
    size_t findIndex(const std::string &name) const;
};

} // namespace e3

#endif // E3_COMMON_STATS_HH
