#include "common/timing.hh"

#include <algorithm>

namespace e3 {

PhaseTimer::Scope::Scope(PhaseTimer &timer, const std::string &phase)
    : timer_(timer), index_(timer.indexOf(phase))
{
}

PhaseTimer::Scope::~Scope()
{
    timer_.seconds_[index_] += watch_.seconds();
}

void
PhaseTimer::add(const std::string &phase, double seconds)
{
    seconds_[indexOf(phase)] += seconds;
}

double
PhaseTimer::seconds(const std::string &phase) const
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == phase)
            return seconds_[i];
    }
    return 0.0;
}

double
PhaseTimer::totalSeconds() const
{
    double t = 0.0;
    for (double s : seconds_)
        t += s;
    return t;
}

double
PhaseTimer::fraction(const std::string &phase) const
{
    const double total = totalSeconds();
    return total > 0.0 ? seconds(phase) / total : 0.0;
}

void
PhaseTimer::reset()
{
    std::fill(seconds_.begin(), seconds_.end(), 0.0);
}

void
PhaseTimer::merge(const PhaseTimer &other)
{
    for (size_t i = 0; i < other.names_.size(); ++i)
        add(other.names_[i], other.seconds_[i]);
}

size_t
PhaseTimer::indexOf(const std::string &phase)
{
    for (size_t i = 0; i < names_.size(); ++i) {
        if (names_[i] == phase)
            return i;
    }
    names_.push_back(phase);
    seconds_.push_back(0.0);
    return seconds_.size() - 1;
}

} // namespace e3
