/**
 * @file
 * Small filesystem helpers for the persistence layer.
 *
 * The one that matters is atomicWriteFile(): checkpoints are the
 * platform's crash-safety story, so a write interrupted by a power
 * cycle must never leave a half-written file under the final name.
 * Content goes to a sibling temporary, is flushed to stable storage,
 * and only then renamed over the target (rename within one directory
 * is atomic on POSIX filesystems).
 */

#ifndef E3_COMMON_FS_HH
#define E3_COMMON_FS_HH

#include <string>

#include "common/result.hh"

namespace e3 {

/** Create @p dir (and parents) if missing. */
Status ensureDirectory(const std::string &dir);

/** True if @p path names an existing regular file. */
[[nodiscard]] bool fileExists(const std::string &path);

/** Read a whole file into a string. */
Result<std::string> readFile(const std::string &path);

/**
 * Crash-safe whole-file write: write @p content to a temporary in the
 * target's directory, flush it to disk, then atomically rename it to
 * @p path. Readers observe either the old file or the complete new
 * one, never a prefix.
 */
Status atomicWriteFile(const std::string &path,
                       const std::string &content);

/** Delete a file; missing files are not an error. */
Status removeFile(const std::string &path);

} // namespace e3

#endif // E3_COMMON_FS_HH
