/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the platform (NEAT mutation, RL
 * exploration, environment resets, synthetic genome generation) draw from
 * an explicit Rng instance so every experiment is bit-reproducible from
 * its seed. The generator is xoshiro256** seeded via SplitMix64, which is
 * fast, high-quality and identical on every platform (unlike
 * std::mt19937 distributions, whose outputs vary across standard library
 * implementations).
 */

#ifndef E3_COMMON_RNG_HH
#define E3_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace e3 {

/**
 * Complete serializable state of an Rng: the xoshiro256** words plus
 * the Box-Muller cache. Restoring it resumes the stream exactly where
 * the snapshot was taken — the checkpoint subsystem's determinism
 * contract depends on this.
 */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

/**
 * Determinism-sentinel digest of an RNG stream (or a fold of many):
 * how many raw draws were consumed and an FNV-1a hash of the exact
 * draw sequence. Two runs that consumed identical streams have equal
 * digests; a single scheduling-dependent draw diverges both fields.
 */
struct RngAudit
{
    uint64_t draws = 0;
    uint64_t hash = 14695981039346656037ULL; ///< FNV-1a offset basis

    /** Fold one 64-bit word into the digest (FNV-1a over words). */
    void mix(uint64_t v);

    /** Fold another digest in (order-sensitive, like the draws). */
    void mixAudit(const RngAudit &other);

    bool operator==(const RngAudit &other) const
    {
        return draws == other.draws && hash == other.hash;
    }
};

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Distribution sampling (uniform, normal, ...) is implemented in-house so
 * streams are reproducible across standard libraries.
 *
 * Every generator carries a determinism sentinel: a draw counter and an
 * FNV-1a hash over the raw draw sequence (see audit()). The runtime
 * cross-checks these digests between serial and parallel evaluation, so
 * a scheduling-dependent draw is caught at its source instead of
 * twenty generations later in a fitness trace. The sentinel costs two
 * arithmetic ops per draw and is therefore always on.
 *
 * Copying an in-use stream is a silent determinism foot-gun (two
 * owners replay identical "random" sequences); the copy constructor
 * and copy assignment panic unless the source is fresh. Moves and
 * split() are the sanctioned ways to hand a stream around.
 */
class Rng
{
  public:
    /** Seed the generator; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Copying a stream that already drew panics (foot-gun guard). */
    Rng(const Rng &other);
    Rng &operator=(const Rng &other);
    Rng(Rng &&other) noexcept = default;
    Rng &operator=(Rng &&other) noexcept = default;

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Sample an index from unnormalized non-negative weights.
     * @pre at least one weight is positive.
     */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /** Snapshot the generator state (for checkpointing). */
    RngState state() const;

    /**
     * Resume exactly from a snapshot taken with state(). Re-bases the
     * determinism sentinel: drawCount()/streamHash() then digest the
     * draws consumed since the restore, not since the original seed.
     */
    void setState(const RngState &state);

    /** Raw draws consumed since seeding (or the last setState()). */
    uint64_t drawCount() const { return audit_.draws; }

    /** FNV-1a hash of the raw draw sequence since seeding/restore. */
    uint64_t streamHash() const { return audit_.hash; }

    /** Both sentinel fields as one digest. */
    const RngAudit &audit() const { return audit_; }

  private:
    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
    RngAudit audit_;
};

} // namespace e3

#endif // E3_COMMON_RNG_HH
