/**
 * @file
 * Deterministic random number generation.
 *
 * All stochastic components of the platform (NEAT mutation, RL
 * exploration, environment resets, synthetic genome generation) draw from
 * an explicit Rng instance so every experiment is bit-reproducible from
 * its seed. The generator is xoshiro256** seeded via SplitMix64, which is
 * fast, high-quality and identical on every platform (unlike
 * std::mt19937 distributions, whose outputs vary across standard library
 * implementations).
 */

#ifndef E3_COMMON_RNG_HH
#define E3_COMMON_RNG_HH

#include <cstddef>
#include <cstdint>
#include <vector>

namespace e3 {

/**
 * Complete serializable state of an Rng: the xoshiro256** words plus
 * the Box-Muller cache. Restoring it resumes the stream exactly where
 * the snapshot was taken — the checkpoint subsystem's determinism
 * contract depends on this.
 */
struct RngState
{
    uint64_t s[4] = {0, 0, 0, 0};
    double cachedNormal = 0.0;
    bool hasCachedNormal = false;
};

/**
 * xoshiro256** pseudo-random generator with convenience distributions.
 *
 * Distribution sampling (uniform, normal, ...) is implemented in-house so
 * streams are reproducible across standard libraries.
 */
class Rng
{
  public:
    /** Seed the generator; equal seeds give equal streams. */
    explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    uint64_t uniformInt(uint64_t n);

    /** Uniform integer in [lo, hi] inclusive. @pre lo <= hi. */
    int64_t uniformInt(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (cached pair). */
    double normal();

    /** Normal with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with success probability p. */
    bool chance(double p);

    /**
     * Sample an index from unnormalized non-negative weights.
     * @pre at least one weight is positive.
     */
    size_t weightedIndex(const std::vector<double> &weights);

    /** Fisher-Yates shuffle of an index permutation [0, n). */
    std::vector<size_t> permutation(size_t n);

    /** Derive an independent child generator (for parallel streams). */
    Rng split();

    /** Snapshot the generator state (for checkpointing). */
    RngState state() const;

    /** Resume exactly from a snapshot taken with state(). */
    void setState(const RngState &state);

  private:
    uint64_t s_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

} // namespace e3

#endif // E3_COMMON_RNG_HH
