#include "common/ini.hh"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace e3 {

namespace {

std::string
trim(const std::string &s)
{
    const auto first = s.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = s.find_last_not_of(" \t\r");
    return s.substr(first, last - first + 1);
}

} // namespace

Result<IniFile>
IniFile::parse(std::istream &in)
{
    IniFile ini;
    std::string line;
    std::string section;
    int lineNo = 0;
    while (std::getline(in, line)) {
        ++lineNo;
        const std::string t = trim(line);
        if (t.empty() || t[0] == '#' || t[0] == ';')
            continue;
        if (t.front() == '[') {
            if (t.back() != ']' || t.size() < 3)
                return Status::error("ini line ", lineNo,
                                     ": malformed section '", t, "'");
            section = trim(t.substr(1, t.size() - 2));
            continue;
        }
        const auto eq = t.find('=');
        if (eq == std::string::npos)
            return Status::error("ini line ", lineNo,
                                 ": expected key = value, got '", t,
                                 "'");
        const std::string key = trim(t.substr(0, eq));
        const std::string value = trim(t.substr(eq + 1));
        if (key.empty())
            return Status::error("ini line ", lineNo, ": empty key");
        ini.data_[section][key] = value;
    }
    return ini;
}

Result<IniFile>
IniFile::parseString(const std::string &text)
{
    std::istringstream iss(text);
    return parse(iss);
}

Result<IniFile>
IniFile::load(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return Status::error("cannot open config file '", path, "'");
    return parse(in);
}

bool
IniFile::has(const std::string &section, const std::string &key) const
{
    const auto sit = data_.find(section);
    return sit != data_.end() && sit->second.count(key) > 0;
}

std::string
IniFile::get(const std::string &section, const std::string &key,
             const std::string &fallback) const
{
    const auto sit = data_.find(section);
    if (sit == data_.end())
        return fallback;
    const auto kit = sit->second.find(key);
    return kit == sit->second.end() ? fallback : kit->second;
}

Result<double>
IniFile::getDouble(const std::string &section, const std::string &key,
                   double fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string v = get(section, key, "");
    try {
        size_t pos = 0;
        const double parsed = std::stod(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return parsed;
    } catch (const std::exception &) {
        return Status::error("[", section, "] ", key, " = '", v,
                             "' is not a number");
    }
}

Result<long>
IniFile::getInt(const std::string &section, const std::string &key,
                long fallback) const
{
    if (!has(section, key))
        return fallback;
    const std::string v = get(section, key, "");
    try {
        size_t pos = 0;
        const long parsed = std::stol(v, &pos);
        if (pos != v.size())
            throw std::invalid_argument(v);
        return parsed;
    } catch (const std::exception &) {
        return Status::error("[", section, "] ", key, " = '", v,
                             "' is not an integer");
    }
}

Result<bool>
IniFile::getBool(const std::string &section, const std::string &key,
                 bool fallback) const
{
    if (!has(section, key))
        return fallback;
    std::string v = get(section, key, "");
    std::transform(v.begin(), v.end(), v.begin(), ::tolower);
    if (v == "true" || v == "1" || v == "yes")
        return true;
    if (v == "false" || v == "0" || v == "no")
        return false;
    return Status::error("[", section, "] ", key, " = '", v,
                         "' is not a boolean");
}

void
IniFile::set(const std::string &section, const std::string &key,
             const std::string &value)
{
    data_[section][key] = value;
}

std::set<std::string>
IniFile::keys(const std::string &section) const
{
    std::set<std::string> out;
    const auto sit = data_.find(section);
    if (sit != data_.end()) {
        for (const auto &[key, value] : sit->second)
            out.insert(key);
    }
    return out;
}

std::string
IniFile::str() const
{
    std::ostringstream oss;
    for (const auto &[section, kvs] : data_) {
        if (!section.empty())
            oss << '[' << section << "]\n";
        for (const auto &[key, value] : kvs)
            oss << key << " = " << value << '\n';
        oss << '\n';
    }
    return oss.str();
}

} // namespace e3
