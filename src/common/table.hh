/**
 * @file
 * Aligned text-table printer for bench output.
 *
 * Every bench prints the paper's rows/series through this one printer so
 * output formatting is uniform and easy to diff against EXPERIMENTS.md.
 */

#ifndef E3_COMMON_TABLE_HH
#define E3_COMMON_TABLE_HH

#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

namespace e3 {

/** Column-aligned table with a header row and an optional title. */
class TextTable
{
  public:
    explicit TextTable(std::string title = "");

    /** Set the header row (defines the column count). */
    void header(std::vector<std::string> cells);

    /** Append a data row; must match the header width. */
    void row(std::vector<std::string> cells);

    /** Format a double with the given precision. */
    static std::string num(double v, int precision = 3);

    /** Format an integer. */
    static std::string num(long long v);

    /** Format a ratio as a percentage string, e.g. "97.2%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render the table. */
    std::string str() const;

    /** Stream the rendered table. */
    friend std::ostream &operator<<(std::ostream &os, const TextTable &t);

    size_t rows() const { return rows_.size(); }
    size_t columns() const { return header_.size(); }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace e3

#endif // E3_COMMON_TABLE_HH
