#include "common/logging.hh"

#include <atomic>
#include <iostream>

namespace e3 {

namespace {

std::atomic<LogLevel> g_level{LogLevel::Inform};

} // namespace

LogLevel
logLevel()
{
    return g_level.load(std::memory_order_relaxed);
}

void
setLogLevel(LogLevel level)
{
    g_level.store(level, std::memory_order_relaxed);
}

bool
parseLogLevel(const std::string &name, LogLevel &out)
{
    if (name == "debug") {
        out = LogLevel::Debug;
    } else if (name == "info") {
        out = LogLevel::Inform;
    } else if (name == "warn") {
        out = LogLevel::Warn;
    } else if (name == "error" || name == "silent") {
        out = LogLevel::Silent;
    } else {
        return false;
    }
    return true;
}

namespace detail {

void
emit(const char *prefix, const std::string &msg)
{
    std::cerr << prefix << msg << '\n';
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  @ " << file << ':' << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  @ " << file << ':' << line
              << std::endl;
    std::exit(1);
}

} // namespace detail

} // namespace e3
