/**
 * @file
 * gem5-style status and error reporting.
 *
 * Two error functions with distinct purposes:
 *  - panic():  something happened that should never happen regardless of
 *              what the user does (an internal bug). Calls std::abort().
 *  - fatal():  the run cannot continue due to a user-caused condition
 *              (bad configuration, invalid arguments). Calls exit(1).
 *
 * Three status functions that never stop execution:
 *  - inform(): normal operating message.
 *  - warn():   functionality may not behave exactly as expected.
 *  - hack():   functionality is implemented expediently, not ideally.
 */

#ifndef E3_COMMON_LOGGING_HH
#define E3_COMMON_LOGGING_HH

#include <cstdlib>
#include <sstream>
#include <string>

namespace e3 {

/** Verbosity levels for status messages. */
enum class LogLevel { Silent = 0, Warn = 1, Inform = 2, Debug = 3 };

/** Get the process-wide log level (default: Inform). */
LogLevel logLevel();

/** Set the process-wide log level. */
void setLogLevel(LogLevel level);

/**
 * Parse a CLI-style level name into @p out and return true, or return
 * false for anything unrecognized. Accepted: "debug", "info", "warn",
 * "error" (and "silent", an alias of "error" — panic/fatal always
 * print regardless).
 */
bool parseLogLevel(const std::string &name, LogLevel &out);

namespace detail {

/** Emit a formatted message to stderr with a severity prefix. */
void emit(const char *prefix, const std::string &msg);

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);

/** Fold a variadic pack into one string via operator<<. */
template <typename... Args>
std::string
format(Args &&...args)
{
    std::ostringstream oss;
    if constexpr (sizeof...(Args) > 0)
        (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** Informative message users should know but not worry about. */
template <typename... Args>
void
inform(Args &&...args)
{
    if (logLevel() >= LogLevel::Inform)
        detail::emit("info: ", detail::format(std::forward<Args>(args)...));
}

/** Something might not behave exactly as expected. */
template <typename... Args>
void
warn(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::format(std::forward<Args>(args)...));
}

/** Functionality implemented expediently rather than ideally. */
template <typename... Args>
void
hack(Args &&...args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("hack: ", detail::format(std::forward<Args>(args)...));
}

/** Debug chatter, off by default. */
template <typename... Args>
void
debug(Args &&...args)
{
    if (logLevel() >= LogLevel::Debug)
        detail::emit("debug: ", detail::format(std::forward<Args>(args)...));
}

} // namespace e3

/** Internal invariant violated: abort with location info. */
#define e3_panic(...) \
    ::e3::detail::panicImpl(__FILE__, __LINE__, \
                            ::e3::detail::format(__VA_ARGS__))

/** User-caused unrecoverable condition: exit(1) with location info. */
#define e3_fatal(...) \
    ::e3::detail::fatalImpl(__FILE__, __LINE__, \
                            ::e3::detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define e3_assert(cond, ...) \
    do { \
        if (!(cond)) \
            e3_panic("assertion '" #cond "' failed. ", ##__VA_ARGS__); \
    } while (0)

#endif // E3_COMMON_LOGGING_HH
