/**
 * @file
 * PU-internal scheduling of one irregular network onto a PE cluster
 * (paper Sec. V-A).
 *
 * Per dependency layer with m nodes and n PEs, nodes execute in
 * ceil(m/n) waves; all PEs of a wave synchronize on the slowest node
 * (variable in-degree), and layers synchronize before the next begins.
 * The three utilization-loss mechanisms the paper names — dynamic
 * topology, PE (non-)alignment, and synchronization — all fall out of
 * this schedule.
 */

#ifndef E3_INAX_SCHEDULE_HH
#define E3_INAX_SCHEDULE_HH

#include <cstdint>

#include "inax/hw_config.hh"
#include "nn/network.hh"

namespace e3 {

/** Per-inference cost of one individual on one PU. */
struct InferenceCost
{
    uint64_t cycles = 0;         ///< wall cycles for one inference
    uint64_t peActiveCycles = 0; ///< sum of per-PE busy cycles
    uint64_t waves = 0;          ///< total PE waves across layers

    /** Provisioned PE-cycles for one inference at numPEs. */
    uint64_t
    peProvisionedCycles(size_t numPEs) const
    {
        return cycles * static_cast<uint64_t>(numPEs);
    }

    /** U(PE) of one isolated inference. */
    double
    peUtilization(size_t numPEs) const
    {
        const uint64_t prov = peProvisionedCycles(numPEs);
        return prov ? static_cast<double>(peActiveCycles) /
                          static_cast<double>(prov)
                    : 1.0;
    }
};

/**
 * Schedule one compiled network onto cfg.numPEs PEs with the
 * output-stationary wave schedule.
 */
InferenceCost scheduleInference(const FeedForwardNetwork &net,
                                const InaxConfig &cfg);

/**
 * Schedule a synthetic network given only its layer profile: per layer,
 * the list of node in-degrees. Used by the design-space benches.
 */
InferenceCost scheduleInference(
    const std::vector<std::vector<size_t>> &layerInDegrees,
    const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_SCHEDULE_HH
