#include "inax/schedule.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inax/pe.hh"

namespace e3 {

namespace {

/** Wave-schedule one layer's node costs onto n PEs. */
void
scheduleLayer(const std::vector<uint64_t> &nodeCycles, size_t numPEs,
              InferenceCost &cost)
{
    for (size_t start = 0; start < nodeCycles.size(); start += numPEs) {
        const size_t end =
            std::min(start + numPEs, nodeCycles.size());
        uint64_t waveCycles = 0;
        for (size_t i = start; i < end; ++i) {
            waveCycles = std::max(waveCycles, nodeCycles[i]);
            cost.peActiveCycles += nodeCycles[i];
        }
        cost.cycles += waveCycles;
        ++cost.waves;
    }
}

} // namespace

InferenceCost
scheduleInference(const FeedForwardNetwork &net, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    InferenceCost cost;
    for (const auto &layer : net.layers()) {
        std::vector<uint64_t> nodeCycles;
        nodeCycles.reserve(layer.size());
        for (const auto &node : layer)
            nodeCycles.push_back(peNodeCycles(node, cfg));
        scheduleLayer(nodeCycles, cfg.numPEs, cost);
        cost.cycles += cfg.layerSyncCycles;
    }
    return cost;
}

InferenceCost
scheduleInference(
    const std::vector<std::vector<size_t>> &layerInDegrees,
    const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    InferenceCost cost;
    for (const auto &layer : layerInDegrees) {
        std::vector<uint64_t> nodeCycles;
        nodeCycles.reserve(layer.size());
        for (size_t deg : layer)
            nodeCycles.push_back(peNodeCycles(deg, cfg));
        scheduleLayer(nodeCycles, cfg.numPEs, cost);
        cost.cycles += cfg.layerSyncCycles;
    }
    return cost;
}

} // namespace e3
