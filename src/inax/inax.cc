#include "inax/inax.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"
#include "inax/dma.hh"

namespace e3 {

uint64_t
InaxReport::evaluateControlCycles() const
{
    // Useful PE work normalized to the full PE array: active cycles
    // divided by the array size would undercount the paper's notion, so
    // follow Fig. 9(a): control = total - setup - (PE-active fraction
    // of compute). Compute windows where PEs idle, plus io and sync,
    // are control overhead.
    const uint64_t provisioned = pe.provisionedCycles();
    const uint64_t useful =
        provisioned
            ? static_cast<uint64_t>(pe.rate() *
                                    static_cast<double>(computeCycles))
            : 0;
    return totalCycles() - setupCycles - useful;
}

void
InaxReport::merge(const InaxReport &other)
{
    setupCycles += other.setupCycles;
    computeCycles += other.computeCycles;
    ioCycles += other.ioCycles;
    syncCycles += other.syncCycles;
    steps += other.steps;
    batches += other.batches;
    pe.merge(other.pe);
    pu.merge(other.pu);
}

AcceleratorSession::AcceleratorSession(const InaxConfig &cfg) : cfg_(cfg)
{
    assertOk(cfg_.validate());
}

void
AcceleratorSession::traceBatchSetup()
{
    usPerCycle_ = cfg_.secondsPerCycle() * 1e6;
    puTracks_.clear();
    puTracks_.reserve(batch_.size());
    char name[24];
    for (size_t i = 0; i < batch_.size(); ++i) {
        std::snprintf(name, sizeof name, "pu%02zu", i);
        puTracks_.push_back(obs::traceTrack("INAX (modeled)", name));
    }
    weightTrack_ = obs::traceTrack("INAX (modeled)", "weights");
    dmaTrack_ = obs::traceTrack("INAX (modeled)", "io-dma");
    ctrlTrack_ = obs::traceTrack("INAX (modeled)", "sig");

    // The shared weight channel serializes the configuration streams:
    // one setup span per individual, back to back.
    for (const auto &ind : batch_) {
        const uint64_t base = obs::traceClaimHwCycles(ind.setupCycles);
        obs::traceCompleteOn(
            weightTrack_, "setup",
            static_cast<double>(base) * usPerCycle_,
            static_cast<double>(ind.setupCycles) * usPerCycle_);
    }
}

void
AcceleratorSession::loadBatch(std::vector<IndividualCost> batch)
{
    e3_assert(!batch.empty(), "empty accelerator batch");
    e3_assert(batch.size() <= cfg_.numPUs,
              "batch of ", batch.size(), " exceeds ", cfg_.numPUs,
              " PUs");
    batch_ = std::move(batch);
    for (const auto &ind : batch_)
        report_.setupCycles += ind.setupCycles;
    ++report_.batches;

    tracing_ = obs::traceEnabled(obs::TraceDetail::Hw);
    if (tracing_)
        traceBatchSetup();
}

void
AcceleratorSession::step(const std::vector<bool> &live)
{
    e3_assert(live.size() == batch_.size(),
              "live mask size ", live.size(), " != batch ",
              batch_.size());

    uint64_t window = 0;
    uint64_t puActive = 0;
    uint64_t peActive = 0;
    size_t liveLanes = 0;
    size_t maxInputs = 0;
    size_t maxOutputs = 0;
    for (size_t i = 0; i < batch_.size(); ++i) {
        if (!live[i])
            continue;
        ++liveLanes;
        window = std::max(window, batch_[i].inferenceCycles);
        puActive += batch_[i].inferenceCycles;
        peActive += batch_[i].peActiveCycles;
        maxInputs = std::max(maxInputs, batch_[i].numInputs);
        maxOutputs = std::max(maxOutputs, batch_[i].numOutputs);
    }
    if (liveLanes == 0)
        return; // nothing to do; the CPU would not raise "start"

    const uint64_t inCycles =
        inputTransferCycles(maxInputs, liveLanes, cfg_);
    const uint64_t outCycles =
        outputTransferCycles(maxOutputs, liveLanes, cfg_);

    report_.computeCycles += window;
    report_.ioCycles += inCycles + outCycles;
    report_.syncCycles += cfg_.stepSyncCycles;
    ++report_.steps;

    if (tracing_) {
        // One modeled step window: scatter -> lockstep compute ->
        // gather -> handshake, laid out contiguously on the global
        // modeled-cycle axis. Each live PU's inference span starts at
        // the window's compute edge and ends on its own schedule; the
        // gap to the slowest PU *is* the U(PU) loss of paper Sec. V-B,
        // visible directly in Perfetto.
        const uint64_t base = obs::traceClaimHwCycles(
            inCycles + window + outCycles + cfg_.stepSyncCycles);
        const double us = usPerCycle_;
        const double inStart = static_cast<double>(base) * us;
        const double computeStart =
            static_cast<double>(base + inCycles) * us;
        obs::traceCompleteOn(dmaTrack_, "scatter_in", inStart,
                             static_cast<double>(inCycles) * us);
        for (size_t i = 0; i < batch_.size(); ++i) {
            if (!live[i])
                continue;
            obs::traceCompleteOn(
                puTracks_[i], "infer", computeStart,
                static_cast<double>(batch_[i].inferenceCycles) * us);
        }
        obs::traceCompleteOn(
            dmaTrack_, "gather_out",
            static_cast<double>(base + inCycles + window) * us,
            static_cast<double>(outCycles) * us);
        obs::traceCompleteOn(
            ctrlTrack_, "sync",
            static_cast<double>(base + inCycles + window + outCycles) *
                us,
            static_cast<double>(cfg_.stepSyncCycles) * us);
        const obs::TraceTrack counterTrack{dmaTrack_.pid, 0};
        obs::traceCounterOn(counterTrack, "live_pus", computeStart,
                            static_cast<double>(liveLanes));
        obs::traceCounterOn(counterTrack, "pe_active_cycles",
                            computeStart,
                            static_cast<double>(peActive));
    }

    // Provisioning charges the whole PU array for the window, and the
    // whole PE array of every PU for the same window.
    report_.pu.record(puActive, window * cfg_.numPUs);
    report_.pe.record(peActive,
                      window * cfg_.numPUs * cfg_.numPEs);
}

InaxReport
runAccelerator(const std::vector<IndividualCost> &individuals,
               const std::vector<int> &episodeLengths,
               const InaxConfig &cfg, BatchPolicy policy)
{
    e3_assert(individuals.size() == episodeLengths.size(),
              "episode-length list size mismatch");

    // Dispatch order per the batching policy.
    std::vector<size_t> order(individuals.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (policy == BatchPolicy::SortedByCost) {
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return individuals[a].inferenceCycles <
                   individuals[b].inferenceCycles;
        });
    } else if (policy == BatchPolicy::SortedByLength) {
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return episodeLengths[a] < episodeLengths[b];
        });
    }

    InaxReport total;
    for (size_t start = 0; start < individuals.size();
         start += cfg.numPUs) {
        const size_t end =
            std::min(start + cfg.numPUs, individuals.size());

        std::vector<IndividualCost> batch;
        std::vector<int> remaining;
        for (size_t i = start; i < end; ++i) {
            batch.push_back(individuals[order[i]]);
            remaining.push_back(episodeLengths[order[i]]);
        }

        AcceleratorSession session(cfg);
        session.loadBatch(std::move(batch));
        bool any = true;
        while (any) {
            any = false;
            std::vector<bool> live(remaining.size());
            for (size_t i = 0; i < remaining.size(); ++i) {
                live[i] = remaining[i] > 0;
                any = any || live[i];
                if (remaining[i] > 0)
                    --remaining[i];
            }
            if (any)
                session.step(live);
        }
        total.merge(session.report());
    }
    return total;
}

} // namespace e3
