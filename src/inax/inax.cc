#include "inax/inax.hh"

#include <algorithm>

#include "common/logging.hh"
#include "inax/dma.hh"

namespace e3 {

uint64_t
InaxReport::evaluateControlCycles() const
{
    // Useful PE work normalized to the full PE array: active cycles
    // divided by the array size would undercount the paper's notion, so
    // follow Fig. 9(a): control = total - setup - (PE-active fraction
    // of compute). Compute windows where PEs idle, plus io and sync,
    // are control overhead.
    const uint64_t provisioned = pe.provisionedCycles();
    const uint64_t useful =
        provisioned
            ? static_cast<uint64_t>(pe.rate() *
                                    static_cast<double>(computeCycles))
            : 0;
    return totalCycles() - setupCycles - useful;
}

void
InaxReport::merge(const InaxReport &other)
{
    setupCycles += other.setupCycles;
    computeCycles += other.computeCycles;
    ioCycles += other.ioCycles;
    syncCycles += other.syncCycles;
    steps += other.steps;
    batches += other.batches;
    pe.merge(other.pe);
    pu.merge(other.pu);
}

AcceleratorSession::AcceleratorSession(const InaxConfig &cfg) : cfg_(cfg)
{
    cfg_.validate();
}

void
AcceleratorSession::loadBatch(std::vector<IndividualCost> batch)
{
    e3_assert(!batch.empty(), "empty accelerator batch");
    e3_assert(batch.size() <= cfg_.numPUs,
              "batch of ", batch.size(), " exceeds ", cfg_.numPUs,
              " PUs");
    batch_ = std::move(batch);
    for (const auto &ind : batch_)
        report_.setupCycles += ind.setupCycles;
    ++report_.batches;
}

void
AcceleratorSession::step(const std::vector<bool> &live)
{
    e3_assert(live.size() == batch_.size(),
              "live mask size ", live.size(), " != batch ",
              batch_.size());

    uint64_t window = 0;
    uint64_t puActive = 0;
    uint64_t peActive = 0;
    size_t liveLanes = 0;
    size_t maxInputs = 0;
    size_t maxOutputs = 0;
    for (size_t i = 0; i < batch_.size(); ++i) {
        if (!live[i])
            continue;
        ++liveLanes;
        window = std::max(window, batch_[i].inferenceCycles);
        puActive += batch_[i].inferenceCycles;
        peActive += batch_[i].peActiveCycles;
        maxInputs = std::max(maxInputs, batch_[i].numInputs);
        maxOutputs = std::max(maxOutputs, batch_[i].numOutputs);
    }
    if (liveLanes == 0)
        return; // nothing to do; the CPU would not raise "start"

    report_.computeCycles += window;
    report_.ioCycles +=
        inputTransferCycles(maxInputs, liveLanes, cfg_) +
        outputTransferCycles(maxOutputs, liveLanes, cfg_);
    report_.syncCycles += cfg_.stepSyncCycles;
    ++report_.steps;

    // Provisioning charges the whole PU array for the window, and the
    // whole PE array of every PU for the same window.
    report_.pu.record(puActive, window * cfg_.numPUs);
    report_.pe.record(peActive,
                      window * cfg_.numPUs * cfg_.numPEs);
}

InaxReport
runAccelerator(const std::vector<IndividualCost> &individuals,
               const std::vector<int> &episodeLengths,
               const InaxConfig &cfg, BatchPolicy policy)
{
    e3_assert(individuals.size() == episodeLengths.size(),
              "episode-length list size mismatch");

    // Dispatch order per the batching policy.
    std::vector<size_t> order(individuals.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    if (policy == BatchPolicy::SortedByCost) {
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return individuals[a].inferenceCycles <
                   individuals[b].inferenceCycles;
        });
    } else if (policy == BatchPolicy::SortedByLength) {
        std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
            return episodeLengths[a] < episodeLengths[b];
        });
    }

    InaxReport total;
    for (size_t start = 0; start < individuals.size();
         start += cfg.numPUs) {
        const size_t end =
            std::min(start + cfg.numPUs, individuals.size());

        std::vector<IndividualCost> batch;
        std::vector<int> remaining;
        for (size_t i = start; i < end; ++i) {
            batch.push_back(individuals[order[i]]);
            remaining.push_back(episodeLengths[order[i]]);
        }

        AcceleratorSession session(cfg);
        session.loadBatch(std::move(batch));
        bool any = true;
        while (any) {
            any = false;
            std::vector<bool> live(remaining.size());
            for (size_t i = 0; i < remaining.size(); ++i) {
                live[i] = remaining[i] > 0;
                any = any || live[i];
                if (remaining[i] > 0)
                    --remaining[i];
            }
            if (any)
                session.step(live);
        }
        total.merge(session.report());
    }
    return total;
}

} // namespace e3
