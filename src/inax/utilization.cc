#include "inax/utilization.hh"

#include "common/logging.hh"

namespace e3 {

void
UtilizationTracker::record(uint64_t active, uint64_t provisioned)
{
    e3_assert(active <= provisioned,
              "active cycles ", active, " exceed provisioned ",
              provisioned);
    active_ += active;
    provisioned_ += provisioned;
}

double
UtilizationTracker::rate() const
{
    if (provisioned_ == 0)
        return 1.0;
    return static_cast<double>(active_) /
           static_cast<double>(provisioned_);
}

void
UtilizationTracker::merge(const UtilizationTracker &other)
{
    active_ += other.active_;
    provisioned_ += other.provisioned_;
}

} // namespace e3
