/**
 * @file
 * Dataflow-choice analysis (paper Sec. IV-E).
 *
 * The paper argues for the output-stationary (OS) dataflow by analysis:
 * weight-stationary (WS) is pointless because MLP weights have no
 * within-inference reuse, and input-stationary (IS) must provision a
 * partial-sum slot for every possible egress node — the worst case is
 * every node in the network, so the hardware is over-provisioned most
 * of its lifetime. This module quantifies that argument for concrete
 * networks so the ablation bench can print it.
 */

#ifndef E3_INAX_DATAFLOW_HH
#define E3_INAX_DATAFLOW_HH

#include <string>

#include "inax/hw_config.hh"
#include "nn/network.hh"

namespace e3 {

/** Per-dataflow resource and cycle requirements for one network. */
struct DataflowRequirements
{
    std::string name;

    /** Partial-sum registers/accumulators a PU must provision. */
    uint64_t accumulators = 0;

    /** Scratch (value / partial-sum) buffer words per PU. */
    uint64_t bufferWords = 0;

    /** Single-inference cycles on cfg.numPEs PEs. */
    uint64_t inferenceCycles = 0;

    /**
     * Accumulators the network actually keeps live at once; the gap to
     * `accumulators` is the over-provisioning the paper warns about.
     */
    uint64_t peakLiveAccumulators = 0;
};

/** The paper's chosen dataflow: one accumulator per PE. */
DataflowRequirements analyzeOutputStationary(const NetworkDef &def,
                                             const InaxConfig &cfg);

/**
 * Input-stationary: each input/activation value is held while its
 * egress contributions stream out, so every destination needs a live
 * partial sum.
 */
DataflowRequirements analyzeInputStationary(const NetworkDef &def,
                                            const InaxConfig &cfg);

/**
 * Weight-stationary: weights pinned to PEs. With zero within-inference
 * weight reuse in MLP-type networks, the array re-loads constantly and
 * destination partial sums must be buffered like IS.
 */
DataflowRequirements analyzeWeightStationary(const NetworkDef &def,
                                             const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_DATAFLOW_HH
