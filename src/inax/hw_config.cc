#include "inax/hw_config.hh"

#include <sstream>

namespace e3 {

Status
InaxConfig::validate() const
{
    if (numPUs == 0 || numPEs == 0)
        return Status::error("INAX needs at least one PU and one PE");
    if (clockMhz <= 0.0)
        return Status::error("non-positive INAX clock");
    if (weightChannelWidth == 0 || ioChannelWidth == 0)
        return Status::error("zero-width DMA channel");
    if (activationDensity <= 0.0 || activationDensity > 1.0)
        return Status::error("activation density must be in (0, 1]");
    return Status();
}

std::string
InaxConfig::describe() const
{
    std::ostringstream oss;
    oss << "INAX{PU=" << numPUs << ", PE=" << numPEs << ", "
        << clockMhz << " MHz}";
    return oss.str();
}

InaxConfig
InaxConfig::paperDefault(size_t numOutputs)
{
    InaxConfig cfg;
    cfg.numPEs = numOutputs > 0 ? numOutputs : 1;
    cfg.numPUs = 50;
    assertOk(cfg.validate());
    return cfg;
}

} // namespace e3
