#include "inax/hw_config.hh"

#include <sstream>

#include "common/logging.hh"

namespace e3 {

void
InaxConfig::validate() const
{
    if (numPUs == 0 || numPEs == 0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("INAX needs at least one PU and one PE");
    if (clockMhz <= 0.0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("non-positive INAX clock");
    if (weightChannelWidth == 0 || ioChannelWidth == 0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("zero-width DMA channel");
    if (activationDensity <= 0.0 || activationDensity > 1.0)
        // e3-lint: fatal-ok -- user-input validation; Result<T> port pending
        e3_fatal("activation density must be in (0, 1]");
}

std::string
InaxConfig::describe() const
{
    std::ostringstream oss;
    oss << "INAX{PU=" << numPUs << ", PE=" << numPEs << ", "
        << clockMhz << " MHz}";
    return oss.str();
}

InaxConfig
InaxConfig::paperDefault(size_t numOutputs)
{
    InaxConfig cfg;
    cfg.numPEs = numOutputs > 0 ? numOutputs : 1;
    cfg.numPUs = 50;
    cfg.validate();
    return cfg;
}

} // namespace e3
