/**
 * @file
 * GeneSys-style systolic-array baseline (paper Sec. VI-F).
 *
 * A 1-D systolic array of k PEs executes MLP-type matrix-vector
 * products layer by layer. To run an *irregular* network it must first
 * be regularized into its dense MLP counterpart (Fig. 4(d)): dummy
 * passthrough nodes relay values across skipped layers, and absent
 * connections become zero weights that the array still streams
 * ("zero filling"). The model charges, per layer of the padded
 * network, ceil(n_out / k) output tiles of (n_in + k) cycles (stream +
 * pipeline fill) plus an input-alignment pass — the two inefficiency
 * sources the paper names.
 */

#ifndef E3_INAX_SYSTOLIC_HH
#define E3_INAX_SYSTOLIC_HH

#include "inax/pu.hh"
#include "nn/dense_equivalent.hh"

namespace e3 {

/**
 * Cost of one individual on a systolic-array PU of cfg.numPEs MACs.
 * Interchangeable with puIndividualCost() so the same session machinery
 * drives both accelerators.
 */
IndividualCost systolicIndividualCost(const NetworkDef &def,
                                      const InaxConfig &cfg);

/** Per-inference cycles of the dense counterpart on a k-wide array. */
uint64_t systolicInferenceCycles(const DenseEquivalent &eq, size_t k,
                                 const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_SYSTOLIC_HH
