/**
 * @file
 * Processing-Unit cost model (paper Sec. IV-D).
 *
 * A PU owns one individual for the whole "evaluate": its weight buffer
 * holds the network configuration (weights are reused across env steps,
 * so set-up is paid once per generation), its value buffer holds all
 * intermediate activations (irregular nets may read any earlier value),
 * and its PE cluster executes the wave schedule. IndividualCost is the
 * distilled per-individual cost the accelerator-level model consumes.
 */

#ifndef E3_INAX_PU_HH
#define E3_INAX_PU_HH

#include "inax/schedule.hh"

namespace e3 {

/** Accelerator-relevant cost profile of one individual. */
struct IndividualCost
{
    uint64_t inferenceCycles = 0; ///< one evaluate iteration on the PU
    uint64_t peActiveCycles = 0;  ///< useful PE cycles per iteration
    uint64_t setupCycles = 0;     ///< config streaming, paid per batch
    size_t numInputs = 0;
    size_t numOutputs = 0;

    /** Words held in the PU's weight buffer. */
    uint64_t weightBufferWords = 0;

    /** Words held in the PU's value buffer (all node activations). */
    uint64_t valueBufferWords = 0;
};

/** Cost of one individual on an INAX PU. */
IndividualCost puIndividualCost(const NetworkDef &def,
                                const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_PU_HH
