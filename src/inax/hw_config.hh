/**
 * @file
 * Hardware configuration of the INAX accelerator model.
 *
 * INAX (paper Sec. IV) is a cluster of Processing Units (PUs), each a
 * cluster of Processing Elements (PEs). PUs parallelize across
 * individuals of the population; PEs parallelize across independent
 * nodes within one individual's network. The knobs here are the design
 * points the paper sweeps in Figs. 6/7/9/11.
 */

#ifndef E3_INAX_HW_CONFIG_HH
#define E3_INAX_HW_CONFIG_HH

#include <cstddef>
#include <string>

#include "common/result.hh"

namespace e3 {

/** Design-time configuration of the accelerator. */
struct InaxConfig
{
    size_t numPUs = 1;  ///< individuals computed in parallel
    size_t numPEs = 1;  ///< nodes computed in parallel inside a PU

    /** Fabric clock in MHz (Zynq UltraScale+ class fabric). */
    double clockMhz = 200.0;

    /** Words per cycle on the weight (configuration) DMA channel. */
    size_t weightChannelWidth = 4;

    /** Words per cycle on the input/output DMA channels. */
    size_t ioChannelWidth = 4;

    /** Fixed cycles of DMA transaction latency per transfer. */
    size_t dmaLatency = 8;

    /** PE pipeline depth: bias add + activation stages after the MACs. */
    size_t pePipelineLatency = 4;

    /** Controller cycles to synchronize PEs between layers. */
    size_t layerSyncCycles = 2;

    /**
     * Largest network (in non-input nodes) a PU's buffers support —
     * the design-time capacity that worst-case dataflows must
     * provision against (paper Sec. IV-E: "HW needs to meet the worst
     * case").
     */
    size_t maxSupportedNodes = 128;

    /** sig-channel start/done handshake cycles per evaluate iteration. */
    size_t stepSyncCycles = 16;

    /**
     * Zero-skip PE extension (the paper's "activation sparsity ...
     * ripe for future work"): the expected fraction of MAC operands
     * that are non-zero. 1.0 models the paper's baseline PE (every
     * ingress connection costs a cycle); pass the value measured by
     * measureActivationDensity() to model PEs that skip zero operands.
     */
    double activationDensity = 1.0;

    /** Seconds per cycle. */
    double secondsPerCycle() const { return 1e-6 / clockMhz; }

    /** Error if any knob is out of range. */
    Status validate() const;

    /** One-line description for bench output. */
    std::string describe() const;

    /**
     * The paper's heuristic configuration (Sec. V / VI-C): one PE per
     * output node, 50 PUs.
     */
    static InaxConfig paperDefault(size_t numOutputs);
};

} // namespace e3

#endif // E3_INAX_HW_CONFIG_HH
