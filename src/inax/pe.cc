#include "inax/pe.hh"

#include <cmath>

namespace e3 {

uint64_t
peNodeCycles(const EvalNode &node, const InaxConfig &cfg)
{
    return peNodeCycles(node.links.size(), cfg);
}

uint64_t
peNodeCycles(size_t inDegree, const InaxConfig &cfg)
{
    // One MAC per ingress connection — reduced by the zero-skip
    // extension to the expected non-zero operands — then the
    // bias/activation pipeline. An ingress-free node (disconnected
    // output) still flows through the pipeline to emit its activated
    // bias.
    const auto macs = static_cast<uint64_t>(
        std::ceil(static_cast<double>(inDegree) *
                  cfg.activationDensity));
    return macs + cfg.pePipelineLatency;
}

} // namespace e3
