/**
 * @file
 * DMA channel cost model. The CPU master moves data to and from INAX
 * through weight / input / output channels (paper Fig. 5); each
 * transfer pays a fixed transaction latency plus streaming cycles at
 * the channel width.
 */

#ifndef E3_INAX_DMA_HH
#define E3_INAX_DMA_HH

#include <cstdint>

#include "inax/hw_config.hh"

namespace e3 {

/** Cycles to move `words` over a channel `width` words wide. */
uint64_t dmaTransferCycles(uint64_t words, size_t width,
                           size_t latency);

/** Configuration-stream size of one individual, in words. */
uint64_t configWords(size_t nodes, size_t connections);

/** Set-up phase cycles to stream one individual's configuration. */
uint64_t setupCycles(size_t nodes, size_t connections,
                     const InaxConfig &cfg);

/** Per-evaluate-iteration input-scatter cycles. */
uint64_t inputTransferCycles(size_t numInputs, size_t liveLanes,
                             const InaxConfig &cfg);

/** Per-evaluate-iteration output-gather cycles. */
uint64_t outputTransferCycles(size_t numOutputs, size_t liveLanes,
                              const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_DMA_HH
