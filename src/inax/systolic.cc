#include "inax/systolic.hh"

#include "common/logging.hh"
#include "inax/dma.hh"
#include "nn/net_stats.hh"

namespace e3 {

uint64_t
systolicInferenceCycles(const DenseEquivalent &eq, size_t k,
                        const InaxConfig &cfg)
{
    e3_assert(k > 0, "zero-wide systolic array");
    uint64_t cycles = 0;
    for (size_t l = 0; l + 1 < eq.layerSizes.size(); ++l) {
        const uint64_t nIn = eq.layerSizes[l];
        const uint64_t nOut = eq.layerSizes[l + 1];
        if (nOut == 0)
            continue;
        const uint64_t tiles = (nOut + k - 1) / k;
        // Each output tile streams every input once plus the array
        // fill/drain; the alignment pass re-fetches and orders the
        // previous layer's values (dummy nodes included).
        cycles += tiles * (nIn + k);
        cycles += nIn; // input-data alignment
        cycles += cfg.layerSyncCycles;
    }
    return cycles;
}

IndividualCost
systolicIndividualCost(const NetworkDef &def, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const DenseEquivalent eq = denseEquivalent(def);
    const NetStats stats = computeNetStats(def);

    IndividualCost cost;
    cost.inferenceCycles =
        systolicInferenceCycles(eq, cfg.numPEs, cfg);
    // Useful work is only the irregular network's real MACs plus its
    // real nodes' activation; everything else is zero-fill and padding.
    cost.peActiveCycles =
        stats.activeConnections +
        static_cast<uint64_t>(stats.activeNodes) *
            cfg.pePipelineLatency;

    // The array streams the full dense weight matrices.
    const uint64_t denseWords =
        eq.denseConnections() +
        2 * static_cast<uint64_t>(eq.realNodes + eq.dummyNodes);
    cost.setupCycles = dmaTransferCycles(
        denseWords, cfg.weightChannelWidth, cfg.dmaLatency);
    cost.weightBufferWords = denseWords;
    cost.valueBufferWords = 0;
    for (size_t s : eq.layerSizes)
        cost.valueBufferWords = std::max<uint64_t>(
            cost.valueBufferWords, s); // double-buffered adjacent layers
    cost.valueBufferWords *= 2;

    cost.numInputs = def.inputIds.size();
    cost.numOutputs = def.outputIds.size();
    return cost;
}

} // namespace e3
