#include "inax/dataflow.hh"

#include <algorithm>
#include <map>
#include <set>

#include "inax/schedule.hh"
#include "nn/layering.hh"

namespace e3 {

namespace {

/** Egress fan-out per producer (inputs and required nodes). */
std::map<int, size_t>
egressCounts(const NetworkDef &def)
{
    const std::set<int> required = requiredNodes(def);
    const std::set<int> inputs(def.inputIds.begin(),
                               def.inputIds.end());
    std::map<int, size_t> egress;
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (inputs.count(c.from) || required.count(c.from))
            ++egress[c.from];
    }
    return egress;
}

/**
 * Peak count of simultaneously-live partial sums when values are
 * consumed producer-by-producer: a destination's partial sum is live
 * from its first contribution until its last. Upper-bounded here by
 * the widest "destinations fed by producers processed so far but not
 * yet complete" cut, computed with a simple forward sweep in layer
 * order.
 */
uint64_t
peakLivePartialSums(const NetworkDef &def)
{
    const std::set<int> required = requiredNodes(def);
    const std::set<int> inputs(def.inputIds.begin(),
                               def.inputIds.end());
    const auto layers = feedForwardLayers(def);

    // Producer processing order: inputs, then layer by layer.
    std::vector<int> order(def.inputIds.begin(), def.inputIds.end());
    for (const auto &layer : layers)
        order.insert(order.end(), layer.begin(), layer.end());

    std::map<int, size_t> position;
    for (size_t i = 0; i < order.size(); ++i)
        position[order[i]] = i;

    // A destination's partial sum is live over [first producer pos,
    // last producer pos].
    std::map<int, std::pair<size_t, size_t>> window;
    for (const auto &c : def.conns) {
        if (!required.count(c.to))
            continue;
        if (!inputs.count(c.from) && !required.count(c.from))
            continue;
        const size_t pos = position.at(c.from);
        auto [it, inserted] =
            window.try_emplace(c.to, std::make_pair(pos, pos));
        if (!inserted) {
            it->second.first = std::min(it->second.first, pos);
            it->second.second = std::max(it->second.second, pos);
        }
    }

    uint64_t peak = 0;
    for (size_t t = 0; t < order.size(); ++t) {
        uint64_t live = 0;
        for (const auto &[dst, w] : window)
            live += (w.first <= t && t <= w.second) ? 1 : 0;
        peak = std::max(peak, live);
    }
    return peak;
}

} // namespace

DataflowRequirements
analyzeOutputStationary(const NetworkDef &def, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const auto net = FeedForwardNetwork::create(def);
    DataflowRequirements req;
    req.name = "output-stationary";
    // One accumulator per PE, full stop.
    req.accumulators = cfg.numPEs;
    req.peakLiveAccumulators = std::min<uint64_t>(
        cfg.numPEs, std::max<size_t>(net.nodeCount(), 1));
    // Value buffer holds every activation (irregular nets may read any
    // earlier value).
    req.bufferWords = net.valueSlots();
    req.inferenceCycles = scheduleInference(net, cfg).cycles;
    return req;
}

DataflowRequirements
analyzeInputStationary(const NetworkDef &def, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const auto net = FeedForwardNetwork::create(def);
    const auto egress = egressCounts(def);

    DataflowRequirements req;
    req.name = "input-stationary";
    // Provisioning is decided at design time for the worst case: any
    // supported node could be an egress destination of the value being
    // held, so a partial-sum slot must exist for every node the PU can
    // host — not just the ones this network uses.
    req.accumulators = cfg.maxSupportedNodes;
    req.peakLiveAccumulators = peakLivePartialSums(def);
    // Buffer: partial sums for the full capacity plus the held values.
    req.bufferWords = cfg.maxSupportedNodes + net.valueSlots();

    // Cycles: each producer broadcasts to its egress destinations,
    // numPEs partial-sum updates per cycle; activation pipeline per
    // node at the end of its window.
    uint64_t cycles = 0;
    for (const auto &[producer, count] : egress)
        cycles += (count + cfg.numPEs - 1) / cfg.numPEs;
    cycles += net.nodeCount() * cfg.pePipelineLatency / cfg.numPEs;
    cycles += net.layers().size() * cfg.layerSyncCycles;
    req.inferenceCycles = std::max<uint64_t>(cycles, 1);
    return req;
}

DataflowRequirements
analyzeWeightStationary(const NetworkDef &def, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const auto net = FeedForwardNetwork::create(def);

    DataflowRequirements req;
    req.name = "weight-stationary";
    // Same design-time worst-case destination partial sums as IS, plus
    // the weights pinned in PEs buy nothing: every weight is used
    // exactly once per inference, so the array reloads weights
    // ceil(conns / numPEs) times.
    req.accumulators = cfg.maxSupportedNodes;
    req.peakLiveAccumulators = peakLivePartialSums(def);
    req.bufferWords = cfg.maxSupportedNodes + net.valueSlots();

    const uint64_t conns = net.connectionCount();
    const uint64_t reloadRounds =
        (conns + cfg.numPEs - 1) / cfg.numPEs;
    // Each round: load numPEs weights over the weight channel, then
    // one MAC cycle.
    req.inferenceCycles =
        reloadRounds *
            (1 + cfg.numPEs / cfg.weightChannelWidth) +
        net.nodeCount() * cfg.pePipelineLatency / cfg.numPEs +
        net.layers().size() * cfg.layerSyncCycles;
    return req;
}

} // namespace e3
