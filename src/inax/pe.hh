/**
 * @file
 * Processing-Element cost model (paper Sec. IV-E).
 *
 * Each PE holds a DSP (multiply-accumulate) plus an activation unit and
 * runs an output-stationary dataflow: it owns one node's output,
 * accumulates the partial sum over the node's ingress connections one
 * MAC per cycle, then spends the pipeline latency on bias add and
 * activation. The node's execution time therefore varies with its
 * in-degree — the source of the PE-synchronization issue in Sec. V-A.
 */

#ifndef E3_INAX_PE_HH
#define E3_INAX_PE_HH

#include <cstdint>

#include "inax/hw_config.hh"
#include "nn/network.hh"

namespace e3 {

/** Cycles for one PE to compute one node's output. */
uint64_t peNodeCycles(const EvalNode &node, const InaxConfig &cfg);

/** Cycles for a node with the given in-degree (synthetic studies). */
uint64_t peNodeCycles(size_t inDegree, const InaxConfig &cfg);

} // namespace e3

#endif // E3_INAX_PE_HH
