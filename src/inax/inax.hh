/**
 * @file
 * Accelerator-level cycle model (paper Sec. IV-C).
 *
 * INAX executes "evaluate" in two phases: set-up (a batch of up to
 * numPUs individuals' configurations streams in over the weight
 * channel) and compute (per env step: scatter inputs, every live PU
 * runs one inference, gather outputs, handshake with the CPU).
 * PUs synchronize per step — the lockstep the CPU-side env loop imposes
 * — so early-terminating individuals idle their PU, and slow networks
 * stall the whole batch (the U(PU) issues of Sec. V-B).
 *
 * The same session machinery also runs the systolic-array baseline:
 * anything that can express an IndividualCost can be scheduled.
 */

#ifndef E3_INAX_INAX_HH
#define E3_INAX_INAX_HH

#include <vector>

#include "inax/pu.hh"
#include "inax/utilization.hh"
#include "obs/trace.hh"

namespace e3 {

/** Cycle/utilization report of one accelerator run. */
struct InaxReport
{
    uint64_t setupCycles = 0;   ///< configuration streaming
    uint64_t computeCycles = 0; ///< lockstep inference windows
    uint64_t ioCycles = 0;      ///< input scatter + output gather
    uint64_t syncCycles = 0;    ///< CPU handshake (sig channel)
    uint64_t steps = 0;         ///< evaluate iterations executed
    uint64_t batches = 0;       ///< PU-batch rounds

    UtilizationTracker pe; ///< PE-level utilization, U(PE)
    UtilizationTracker pu; ///< PU-level utilization, U(PU)

    /** Total accelerator-busy cycles. */
    uint64_t totalCycles() const
    {
        return setupCycles + computeCycles + ioCycles + syncCycles;
    }

    /**
     * "Evaluate control" of Fig. 9(a): everything in the compute phase
     * that is not useful PE work, plus transfer and handshake overhead.
     */
    uint64_t evaluateControlCycles() const;

    /** Wall-clock seconds at the config's clock. */
    double seconds(const InaxConfig &cfg) const
    {
        return static_cast<double>(totalCycles()) *
               cfg.secondsPerCycle();
    }

    /** Merge another report (e.g. across generations). */
    void merge(const InaxReport &other);
};

/**
 * Step-accurate accelerator session, driven by the E3 platform: load a
 * batch, then call step() once per env iteration with the live mask.
 */
class AcceleratorSession
{
  public:
    explicit AcceleratorSession(const InaxConfig &cfg);

    /**
     * Set-up phase for a batch of at most cfg.numPUs individuals; the
     * shared weight channel serializes their configuration streams.
     */
    void loadBatch(std::vector<IndividualCost> batch);

    /**
     * One evaluate iteration: every live lane's PU computes; the window
     * closes on the slowest live PU.
     * @param live one flag per loaded lane
     */
    void step(const std::vector<bool> &live);

    const InaxReport &report() const { return report_; }
    const InaxConfig &config() const { return cfg_; }
    size_t batchSize() const { return batch_.size(); }

  private:
    /** Lay the batch's modeled timeline onto virtual trace tracks. */
    void traceBatchSetup();

    InaxConfig cfg_;
    std::vector<IndividualCost> batch_;
    InaxReport report_;

    // Modeled-timeline tracing (hw detail), latched per batch so the
    // per-step fast path is a single bool check when tracing is off.
    bool tracing_ = false;
    double usPerCycle_ = 0.0;
    std::vector<obs::TraceTrack> puTracks_;
    obs::TraceTrack dmaTrack_;
    obs::TraceTrack ctrlTrack_;
    obs::TraceTrack weightTrack_;
};

/**
 * How individuals are assigned to PU batches. The paper dispatches in
 * population order; grouping similar-cost individuals shrinks each
 * step's synchronization window (an "enhancing utilization" heuristic
 * in the spirit of Sec. V, evaluated by bench_ablation_batching).
 */
enum class BatchPolicy
{
    InOrder,        ///< population order (the paper's dispatch)
    SortedByCost,   ///< group individuals of similar inference cost
    SortedByLength, ///< group individuals of similar episode length
};

/**
 * Whole-run convenience: execute `individuals` with the given episode
 * lengths, batching cfg.numPUs at a time.
 */
InaxReport runAccelerator(const std::vector<IndividualCost> &individuals,
                          const std::vector<int> &episodeLengths,
                          const InaxConfig &cfg,
                          BatchPolicy policy = BatchPolicy::InOrder);

} // namespace e3

#endif // E3_INAX_INAX_HH
