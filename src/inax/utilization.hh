/**
 * @file
 * Utilization-rate accounting, Eq. (1) of the paper:
 * U(r) = T_active(r) / T_total(r).
 */

#ifndef E3_INAX_UTILIZATION_HH
#define E3_INAX_UTILIZATION_HH

#include <cstdint>

namespace e3 {

/** Accumulates active vs provisioned cycles for one resource class. */
class UtilizationTracker
{
  public:
    /**
     * Record one scheduling window.
     * @param active cycles the resource instances actually computed
     * @param provisioned instance-count x window-length cycles offered
     */
    void record(uint64_t active, uint64_t provisioned);

    uint64_t activeCycles() const { return active_; }
    uint64_t provisionedCycles() const { return provisioned_; }

    /** U(r); 1.0 when nothing has been provisioned yet. */
    double rate() const;

    /** Merge another tracker. */
    void merge(const UtilizationTracker &other);

  private:
    uint64_t active_ = 0;
    uint64_t provisioned_ = 0;
};

} // namespace e3

#endif // E3_INAX_UTILIZATION_HH
