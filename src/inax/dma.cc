#include "inax/dma.hh"

#include "common/logging.hh"

namespace e3 {

uint64_t
dmaTransferCycles(uint64_t words, size_t width, size_t latency)
{
    e3_assert(width > 0, "zero-width DMA channel");
    if (words == 0)
        return 0;
    return latency + (words + width - 1) / width;
}

uint64_t
configWords(size_t nodes, size_t connections)
{
    // Per connection: source id, destination id, weight. Per node: bias
    // plus a packed activation/aggregation descriptor.
    return 3 * static_cast<uint64_t>(connections) +
           2 * static_cast<uint64_t>(nodes);
}

uint64_t
setupCycles(size_t nodes, size_t connections, const InaxConfig &cfg)
{
    return dmaTransferCycles(configWords(nodes, connections),
                             cfg.weightChannelWidth, cfg.dmaLatency);
}

uint64_t
inputTransferCycles(size_t numInputs, size_t liveLanes,
                    const InaxConfig &cfg)
{
    return dmaTransferCycles(
        static_cast<uint64_t>(numInputs) * liveLanes,
        cfg.ioChannelWidth, cfg.dmaLatency);
}

uint64_t
outputTransferCycles(size_t numOutputs, size_t liveLanes,
                     const InaxConfig &cfg)
{
    return dmaTransferCycles(
        static_cast<uint64_t>(numOutputs) * liveLanes,
        cfg.ioChannelWidth, cfg.dmaLatency);
}

} // namespace e3
