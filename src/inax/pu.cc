#include "inax/pu.hh"

#include "inax/dma.hh"
#include "nn/net_stats.hh"

namespace e3 {

IndividualCost
puIndividualCost(const NetworkDef &def, const InaxConfig &cfg)
{
    assertOk(cfg.validate());
    const auto net = FeedForwardNetwork::create(def);
    const InferenceCost inference = scheduleInference(net, cfg);

    IndividualCost cost;
    cost.inferenceCycles = inference.cycles;
    cost.peActiveCycles = inference.peActiveCycles;
    cost.setupCycles =
        setupCycles(net.nodeCount(), net.connectionCount(), cfg);
    cost.numInputs = net.numInputs();
    cost.numOutputs = net.numOutputs();
    cost.weightBufferWords =
        configWords(net.nodeCount(), net.connectionCount());
    cost.valueBufferWords = net.valueSlots();
    return cost;
}

} // namespace e3
