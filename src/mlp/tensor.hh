/**
 * @file
 * Minimal dense matrix type for the MLP training substrate.
 *
 * The RL baselines (A2C/PPO2) need batched dense linear algebra with
 * backpropagation — exactly the workload the paper contrasts NEAT
 * against in Table IV. Mat is a row-major double matrix with the small
 * set of operations the MLP and optimizers require; no BLAS, no views,
 * no broadcasting magic beyond row-vector addition.
 */

#ifndef E3_MLP_TENSOR_HH
#define E3_MLP_TENSOR_HH

#include <cstddef>
#include <vector>

#include "common/rng.hh"

namespace e3 {

/** Row-major dense matrix of doubles. */
class Mat
{
  public:
    Mat() = default;

    /** rows x cols matrix filled with `init`. */
    Mat(size_t rows, size_t cols, double init = 0.0);

    /** Matrix with i.i.d. N(0, stdev^2) entries. */
    static Mat randn(size_t rows, size_t cols, double stdev, Rng &rng);

    /** 1 x n row vector from values. */
    static Mat rowVector(const std::vector<double> &values);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double &at(size_t r, size_t c);
    double at(size_t r, size_t c) const;

    std::vector<double> &data() { return data_; }
    const std::vector<double> &data() const { return data_; }

    /** Extract row r as a plain vector. */
    std::vector<double> row(size_t r) const;

    /** this (m x k) times other (k x n) -> m x n. */
    Mat matmul(const Mat &other) const;

    /** Transpose copy. */
    Mat transposed() const;

    /** Elementwise sum; shapes must match. */
    Mat operator+(const Mat &other) const;

    /** Elementwise difference; shapes must match. */
    Mat operator-(const Mat &other) const;

    /** Elementwise (Hadamard) product; shapes must match. */
    Mat hadamard(const Mat &other) const;

    /** Multiply every element by s. */
    Mat scaled(double s) const;

    /** Add a 1 x cols row vector to every row (bias broadcast). */
    void addRowBroadcast(const Mat &rowVec);

    /** Column-wise sum -> 1 x cols (bias gradient reduction). */
    Mat sumRows() const;

    /** Apply f elementwise in place. */
    template <typename F>
    void
    apply(F &&f)
    {
        for (double &v : data_)
            v = f(v);
    }

    /** Fill with zeros. */
    void zero();

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

} // namespace e3

#endif // E3_MLP_TENSOR_HH
