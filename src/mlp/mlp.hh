/**
 * @file
 * Dense multi-layer perceptron with manual backpropagation.
 *
 * This is the training substrate under the RL baselines: tanh hidden
 * layers (stable-baselines' MlpPolicy default) and a linear output.
 * forward() caches per-layer activations; backward() consumes the loss
 * gradient w.r.t. the output and accumulates parameter gradients —
 * exactly the "store the intermediate values along the forward path"
 * memory behaviour the paper charges against BP methods (Table IV).
 */

#ifndef E3_MLP_MLP_HH
#define E3_MLP_MLP_HH

#include <cstdint>
#include <vector>

#include "mlp/tensor.hh"

namespace e3 {

/** Dense feed-forward network with tanh hidden layers. */
class Mlp
{
  public:
    /**
     * @param sizes layer widths, e.g. {4, 64, 64, 2} for the paper's
     *        Small networks; at least {in, out}
     * @param rng weight init source (orthogonal-ish scaled gaussians)
     */
    Mlp(std::vector<size_t> sizes, Rng &rng);

    /**
     * Batched forward pass.
     * @param x batch x inputDim
     * @return batch x outputDim (linear outputs)
     */
    Mat forward(const Mat &x);

    /** Forward pass for a single observation. */
    std::vector<double> forward1(const std::vector<double> &x);

    /**
     * Backpropagate from the output gradient of the *last* forward()
     * call, accumulating parameter gradients.
     * @param gradOut batch x outputDim, dLoss/dOutput
     */
    void backward(const Mat &gradOut);

    /** Clear accumulated gradients. */
    void zeroGrad();

    /** Flat list of parameter matrices (weights and biases). */
    std::vector<Mat *> parameters();

    /** Gradients, index-aligned with parameters(). */
    std::vector<Mat *> gradients();

    size_t inputSize() const { return sizes_.front(); }
    size_t outputSize() const { return sizes_.back(); }
    const std::vector<size_t> &sizes() const { return sizes_; }

    /** Total scalar parameters. */
    size_t parameterCount() const;

    /** Node count (all layers incl. input), as Table V counts it. */
    size_t nodeCount() const;

    /** Connection count = sum of adjacent layer products (Table V). */
    uint64_t connectionCount() const;

    /** Multiply-accumulate ops for one sample's forward pass. */
    uint64_t forwardOpsPerSample() const { return connectionCount(); }

    /**
     * MAC ops for one sample's backward pass: roughly two matmuls per
     * layer (input gradient + weight gradient), minus the input-layer
     * gradient nobody needs.
     */
    uint64_t backwardOpsPerSample() const;

    /**
     * Bytes of activation storage backward() needs per sample (the BP
     * memory overhead of Table IV), at the given word size.
     */
    uint64_t activationBytesPerSample(size_t bytesPerWord = 4) const;

  private:
    struct Layer
    {
        Mat w;  ///< in x out
        Mat b;  ///< 1 x out
        Mat gw; ///< gradient of w
        Mat gb; ///< gradient of b
        Mat input;  ///< cached forward input (batch x in)
        Mat preact; ///< cached pre-activation (batch x out)
    };

    std::vector<size_t> sizes_;
    std::vector<Layer> layers_;
};

} // namespace e3

#endif // E3_MLP_MLP_HH
