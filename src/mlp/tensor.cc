#include "mlp/tensor.hh"

#include <algorithm>

#include "common/logging.hh"

namespace e3 {

Mat::Mat(size_t rows, size_t cols, double init)
    : rows_(rows), cols_(cols), data_(rows * cols, init)
{
}

Mat
Mat::randn(size_t rows, size_t cols, double stdev, Rng &rng)
{
    Mat m(rows, cols);
    for (double &v : m.data_)
        v = rng.normal(0.0, stdev);
    return m;
}

Mat
Mat::rowVector(const std::vector<double> &values)
{
    Mat m(1, values.size());
    m.data_ = values;
    return m;
}

double &
Mat::at(size_t r, size_t c)
{
    e3_assert(r < rows_ && c < cols_, "Mat index (", r, ", ", c,
              ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

double
Mat::at(size_t r, size_t c) const
{
    e3_assert(r < rows_ && c < cols_, "Mat index (", r, ", ", c,
              ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

std::vector<double>
Mat::row(size_t r) const
{
    e3_assert(r < rows_, "row ", r, " out of ", rows_);
    return {data_.begin() + static_cast<long>(r * cols_),
            data_.begin() + static_cast<long>((r + 1) * cols_)};
}

Mat
Mat::matmul(const Mat &other) const
{
    e3_assert(cols_ == other.rows_, "matmul shape mismatch: ", rows_,
              "x", cols_, " * ", other.rows_, "x", other.cols_);
    Mat out(rows_, other.cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t k = 0; k < cols_; ++k) {
            const double a = data_[i * cols_ + k];
            // e3-lint: float-eq-ok -- exact zero-skip check, not a tolerance bug
            if (a == 0.0)
                continue;
            const double *brow = &other.data_[k * other.cols_];
            double *orow = &out.data_[i * other.cols_];
            for (size_t j = 0; j < other.cols_; ++j)
                orow[j] += a * brow[j];
        }
    }
    return out;
}

Mat
Mat::transposed() const
{
    Mat out(cols_, rows_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = 0; j < cols_; ++j)
            out.data_[j * rows_ + i] = data_[i * cols_ + j];
    }
    return out;
}

Mat
Mat::operator+(const Mat &other) const
{
    e3_assert(rows_ == other.rows_ && cols_ == other.cols_,
              "elementwise shape mismatch");
    Mat out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] += other.data_[i];
    return out;
}

Mat
Mat::operator-(const Mat &other) const
{
    e3_assert(rows_ == other.rows_ && cols_ == other.cols_,
              "elementwise shape mismatch");
    Mat out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] -= other.data_[i];
    return out;
}

Mat
Mat::hadamard(const Mat &other) const
{
    e3_assert(rows_ == other.rows_ && cols_ == other.cols_,
              "elementwise shape mismatch");
    Mat out = *this;
    for (size_t i = 0; i < data_.size(); ++i)
        out.data_[i] *= other.data_[i];
    return out;
}

Mat
Mat::scaled(double s) const
{
    Mat out = *this;
    for (double &v : out.data_)
        v *= s;
    return out;
}

void
Mat::addRowBroadcast(const Mat &rowVec)
{
    e3_assert(rowVec.rows_ == 1 && rowVec.cols_ == cols_,
              "broadcast vector must be 1x", cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = 0; j < cols_; ++j)
            data_[i * cols_ + j] += rowVec.data_[j];
    }
}

Mat
Mat::sumRows() const
{
    Mat out(1, cols_);
    for (size_t i = 0; i < rows_; ++i) {
        for (size_t j = 0; j < cols_; ++j)
            out.data_[j] += data_[i * cols_ + j];
    }
    return out;
}

void
Mat::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0);
}

} // namespace e3
