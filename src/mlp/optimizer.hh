/**
 * @file
 * First-order optimizers for the MLP substrate: RMSProp (stable-baselines
 * A2C default) and Adam (PPO2 default).
 */

#ifndef E3_MLP_OPTIMIZER_HH
#define E3_MLP_OPTIMIZER_HH

#include <vector>

#include "mlp/tensor.hh"

namespace e3 {

/** Abstract gradient-descent step over a fixed parameter list. */
class Optimizer
{
  public:
    /**
     * @param params parameter matrices updated in place
     * @param grads gradient matrices, index-aligned with params
     */
    Optimizer(std::vector<Mat *> params, std::vector<Mat *> grads);
    virtual ~Optimizer() = default;

    /** Apply one update step from the current gradients. */
    virtual void step() = 0;

    /**
     * Scale gradients so their global L2 norm is at most maxNorm
     * (stable-baselines' max_grad_norm). Returns the pre-clip norm.
     */
    double clipGradNorm(double maxNorm);

  protected:
    std::vector<Mat *> params_;
    std::vector<Mat *> grads_;
};

/** RMSProp with epsilon inside the root, as TF1/stable-baselines. */
class RmsProp : public Optimizer
{
  public:
    RmsProp(std::vector<Mat *> params, std::vector<Mat *> grads,
            double lr = 7e-4, double decay = 0.99, double eps = 1e-5);

    void step() override;

    void setLearningRate(double lr) { lr_ = lr; }

  private:
    double lr_;
    double decay_;
    double eps_;
    std::vector<Mat> meanSquare_;
};

/** Adam with bias correction. */
class Adam : public Optimizer
{
  public:
    Adam(std::vector<Mat *> params, std::vector<Mat *> grads,
         double lr = 2.5e-4, double beta1 = 0.9, double beta2 = 0.999,
         double eps = 1e-8);

    void step() override;

    void setLearningRate(double lr) { lr_ = lr; }

  private:
    double lr_;
    double beta1_;
    double beta2_;
    double eps_;
    int t_ = 0;
    std::vector<Mat> m_;
    std::vector<Mat> v_;
};

} // namespace e3

#endif // E3_MLP_OPTIMIZER_HH
