#include "mlp/distributions.hh"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace e3 {

Categorical::Categorical(std::vector<double> logits)
    : logits_(std::move(logits))
{
    e3_assert(!logits_.empty(), "categorical over zero actions");
    const double peak = *std::max_element(logits_.begin(), logits_.end());
    probs_.resize(logits_.size());
    double total = 0.0;
    for (size_t i = 0; i < logits_.size(); ++i) {
        probs_[i] = std::exp(logits_[i] - peak);
        total += probs_[i];
    }
    for (double &p : probs_)
        p /= total;
}

int
Categorical::sample(Rng &rng) const
{
    return static_cast<int>(rng.weightedIndex(probs_));
}

int
Categorical::mode() const
{
    return static_cast<int>(
        std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

double
Categorical::logProb(int action) const
{
    e3_assert(action >= 0 && action < static_cast<int>(probs_.size()),
              "action ", action, " out of range");
    return std::log(std::max(probs_[action], 1e-300));
}

double
Categorical::entropy() const
{
    double h = 0.0;
    for (double p : probs_) {
        if (p > 0.0)
            h -= p * std::log(p);
    }
    return h;
}

std::vector<double>
Categorical::nllGradient(int action) const
{
    e3_assert(action >= 0 && action < static_cast<int>(probs_.size()),
              "action ", action, " out of range");
    std::vector<double> g = probs_;
    g[action] -= 1.0;
    return g;
}

std::vector<double>
Categorical::negEntropyGradient() const
{
    // dH/dlogit_i = -p_i * (log p_i + H); we return -dH/dlogit.
    const double h = entropy();
    std::vector<double> g(probs_.size());
    for (size_t i = 0; i < probs_.size(); ++i) {
        const double logp = std::log(std::max(probs_[i], 1e-300));
        g[i] = probs_[i] * (logp + h);
    }
    return g;
}

DiagGaussian::DiagGaussian(std::vector<double> mean,
                           std::vector<double> logStd)
    : mean_(std::move(mean)), logStd_(std::move(logStd))
{
    e3_assert(mean_.size() == logStd_.size() && !mean_.empty(),
              "gaussian mean/logStd size mismatch");
}

std::vector<double>
DiagGaussian::sample(Rng &rng) const
{
    std::vector<double> a(mean_.size());
    for (size_t i = 0; i < mean_.size(); ++i)
        a[i] = mean_[i] + std::exp(logStd_[i]) * rng.normal();
    return a;
}

double
DiagGaussian::logProb(const std::vector<double> &action) const
{
    e3_assert(action.size() == mean_.size(), "action size mismatch");
    double lp = 0.0;
    for (size_t i = 0; i < mean_.size(); ++i) {
        const double std = std::exp(logStd_[i]);
        const double z = (action[i] - mean_[i]) / std;
        lp += -0.5 * z * z - logStd_[i] -
              0.5 * std::log(2.0 * std::numbers::pi);
    }
    return lp;
}

double
DiagGaussian::entropy() const
{
    double h = 0.0;
    for (double ls : logStd_)
        h += ls + 0.5 * std::log(2.0 * std::numbers::pi * std::numbers::e);
    return h;
}

std::vector<double>
DiagGaussian::nllGradientMean(const std::vector<double> &action) const
{
    e3_assert(action.size() == mean_.size(), "action size mismatch");
    std::vector<double> g(mean_.size());
    for (size_t i = 0; i < mean_.size(); ++i) {
        const double var = std::exp(2.0 * logStd_[i]);
        g[i] = (mean_[i] - action[i]) / var;
    }
    return g;
}

std::vector<double>
DiagGaussian::nllGradientLogStd(const std::vector<double> &action) const
{
    e3_assert(action.size() == mean_.size(), "action size mismatch");
    std::vector<double> g(mean_.size());
    for (size_t i = 0; i < mean_.size(); ++i) {
        const double var = std::exp(2.0 * logStd_[i]);
        const double d = action[i] - mean_[i];
        g[i] = 1.0 - d * d / var;
    }
    return g;
}

std::vector<double>
DiagGaussian::negEntropyGradientLogStd() const
{
    return std::vector<double>(logStd_.size(), -1.0);
}

} // namespace e3
