#include "mlp/mlp.hh"

#include <cmath>

#include "common/logging.hh"

namespace e3 {

Mlp::Mlp(std::vector<size_t> sizes, Rng &rng) : sizes_(std::move(sizes))
{
    e3_assert(sizes_.size() >= 2, "MLP needs at least input and output");
    for (size_t s : sizes_)
        e3_assert(s > 0, "zero-width MLP layer");

    layers_.resize(sizes_.size() - 1);
    for (size_t l = 0; l < layers_.size(); ++l) {
        const size_t in = sizes_[l];
        const size_t out = sizes_[l + 1];
        // Xavier-style scale keeps tanh activations in range.
        const double stdev = std::sqrt(2.0 / static_cast<double>(in + out));
        layers_[l].w = Mat::randn(in, out, stdev, rng);
        layers_[l].b = Mat(1, out, 0.0);
        layers_[l].gw = Mat(in, out, 0.0);
        layers_[l].gb = Mat(1, out, 0.0);
    }
}

Mat
Mlp::forward(const Mat &x)
{
    e3_assert(x.cols() == sizes_.front(),
              "expected input width ", sizes_.front(), ", got ",
              x.cols());
    Mat h = x;
    for (size_t l = 0; l < layers_.size(); ++l) {
        Layer &layer = layers_[l];
        layer.input = h;
        h = h.matmul(layer.w);
        h.addRowBroadcast(layer.b);
        layer.preact = h;
        if (l + 1 < layers_.size())
            h.apply([](double v) { return std::tanh(v); });
    }
    return h;
}

std::vector<double>
Mlp::forward1(const std::vector<double> &x)
{
    return forward(Mat::rowVector(x)).row(0);
}

void
Mlp::backward(const Mat &gradOut)
{
    e3_assert(!layers_.empty() && !layers_.back().preact.empty(),
              "backward() before forward()");
    e3_assert(gradOut.rows() == layers_.back().preact.rows() &&
                  gradOut.cols() == sizes_.back(),
              "output gradient shape mismatch");

    Mat grad = gradOut;
    for (size_t l = layers_.size(); l-- > 0;) {
        Layer &layer = layers_[l];
        if (l + 1 < layers_.size()) {
            // Undo the tanh: dtanh(z) = 1 - tanh(z)^2.
            Mat dact = layer.preact;
            dact.apply([](double z) {
                const double t = std::tanh(z);
                return 1.0 - t * t;
            });
            grad = grad.hadamard(dact);
        }
        layer.gw = layer.gw + layer.input.transposed().matmul(grad);
        layer.gb = layer.gb + grad.sumRows();
        if (l > 0)
            grad = grad.matmul(layer.w.transposed());
    }
}

void
Mlp::zeroGrad()
{
    for (auto &layer : layers_) {
        layer.gw.zero();
        layer.gb.zero();
    }
}

std::vector<Mat *>
Mlp::parameters()
{
    std::vector<Mat *> ps;
    for (auto &layer : layers_) {
        ps.push_back(&layer.w);
        ps.push_back(&layer.b);
    }
    return ps;
}

std::vector<Mat *>
Mlp::gradients()
{
    std::vector<Mat *> gs;
    for (auto &layer : layers_) {
        gs.push_back(&layer.gw);
        gs.push_back(&layer.gb);
    }
    return gs;
}

size_t
Mlp::parameterCount() const
{
    size_t n = 0;
    for (const auto &layer : layers_)
        n += layer.w.size() + layer.b.size();
    return n;
}

size_t
Mlp::nodeCount() const
{
    size_t n = 0;
    for (size_t s : sizes_)
        n += s;
    return n;
}

uint64_t
Mlp::connectionCount() const
{
    uint64_t n = 0;
    for (size_t l = 0; l + 1 < sizes_.size(); ++l)
        n += static_cast<uint64_t>(sizes_[l]) * sizes_[l + 1];
    return n;
}

uint64_t
Mlp::backwardOpsPerSample() const
{
    // Per layer: weight-gradient matmul (in x out) and, except for the
    // first layer, the input-gradient matmul (in x out again).
    uint64_t n = 0;
    for (size_t l = 0; l + 1 < sizes_.size(); ++l) {
        const uint64_t macs =
            static_cast<uint64_t>(sizes_[l]) * sizes_[l + 1];
        n += macs;            // dL/dW
        if (l > 0)
            n += macs;        // dL/dInput
    }
    return n;
}

uint64_t
Mlp::activationBytesPerSample(size_t bytesPerWord) const
{
    // backward() needs every layer's input plus its pre-activation.
    uint64_t words = 0;
    for (size_t l = 0; l + 1 < sizes_.size(); ++l)
        words += sizes_[l] + sizes_[l + 1];
    return words * bytesPerWord;
}

} // namespace e3
