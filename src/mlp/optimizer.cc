#include "mlp/optimizer.hh"

#include <cmath>

#include "common/logging.hh"

namespace e3 {

Optimizer::Optimizer(std::vector<Mat *> params, std::vector<Mat *> grads)
    : params_(std::move(params)), grads_(std::move(grads))
{
    e3_assert(params_.size() == grads_.size(),
              "parameter/gradient list size mismatch");
    for (size_t i = 0; i < params_.size(); ++i) {
        e3_assert(params_[i]->size() == grads_[i]->size(),
                  "parameter ", i, " shape mismatch with its gradient");
    }
}

double
Optimizer::clipGradNorm(double maxNorm)
{
    double sq = 0.0;
    for (Mat *g : grads_) {
        for (double v : g->data())
            sq += v * v;
    }
    const double norm = std::sqrt(sq);
    if (norm > maxNorm && norm > 0.0) {
        const double scale = maxNorm / norm;
        for (Mat *g : grads_) {
            for (double &v : g->data())
                v *= scale;
        }
    }
    return norm;
}

RmsProp::RmsProp(std::vector<Mat *> params, std::vector<Mat *> grads,
                 double lr, double decay, double eps)
    : Optimizer(std::move(params), std::move(grads)), lr_(lr),
      decay_(decay), eps_(eps)
{
    for (Mat *p : params_)
        meanSquare_.emplace_back(p->rows(), p->cols(), 0.0);
}

void
RmsProp::step()
{
    for (size_t i = 0; i < params_.size(); ++i) {
        auto &ms = meanSquare_[i].data();
        auto &p = params_[i]->data();
        const auto &g = grads_[i]->data();
        for (size_t j = 0; j < p.size(); ++j) {
            ms[j] = decay_ * ms[j] + (1.0 - decay_) * g[j] * g[j];
            p[j] -= lr_ * g[j] / std::sqrt(ms[j] + eps_);
        }
    }
}

Adam::Adam(std::vector<Mat *> params, std::vector<Mat *> grads,
           double lr, double beta1, double beta2, double eps)
    : Optimizer(std::move(params), std::move(grads)), lr_(lr),
      beta1_(beta1), beta2_(beta2), eps_(eps)
{
    for (Mat *p : params_) {
        m_.emplace_back(p->rows(), p->cols(), 0.0);
        v_.emplace_back(p->rows(), p->cols(), 0.0);
    }
}

void
Adam::step()
{
    ++t_;
    const double c1 = 1.0 - std::pow(beta1_, t_);
    const double c2 = 1.0 - std::pow(beta2_, t_);
    for (size_t i = 0; i < params_.size(); ++i) {
        auto &m = m_[i].data();
        auto &v = v_[i].data();
        auto &p = params_[i]->data();
        const auto &g = grads_[i]->data();
        for (size_t j = 0; j < p.size(); ++j) {
            m[j] = beta1_ * m[j] + (1.0 - beta1_) * g[j];
            v[j] = beta2_ * v[j] + (1.0 - beta2_) * g[j] * g[j];
            const double mhat = m[j] / c1;
            const double vhat = v[j] / c2;
            p[j] -= lr_ * mhat / (std::sqrt(vhat) + eps_);
        }
    }
}

} // namespace e3
