/**
 * @file
 * Policy output distributions for the RL baselines: categorical over
 * discrete actions and diagonal Gaussian over continuous actions, with
 * the log-probability and entropy terms the A2C/PPO2 losses need, plus
 * analytic gradients w.r.t. the distribution parameters.
 */

#ifndef E3_MLP_DISTRIBUTIONS_HH
#define E3_MLP_DISTRIBUTIONS_HH

#include <vector>

#include "common/rng.hh"

namespace e3 {

/** Softmax-categorical distribution over n discrete actions. */
class Categorical
{
  public:
    /** @param logits unnormalized log-probabilities */
    explicit Categorical(std::vector<double> logits);

    /** Normalized probabilities. */
    const std::vector<double> &probs() const { return probs_; }

    /** Sample an action index. */
    int sample(Rng &rng) const;

    /** Greedy (argmax) action. */
    int mode() const;

    /** log P(action). */
    double logProb(int action) const;

    /** Shannon entropy. */
    double entropy() const;

    /**
     * d(-logProb(action))/d(logits): the softmax-cross-entropy gradient
     * probs - onehot(action).
     */
    std::vector<double> nllGradient(int action) const;

    /**
     * d(-entropy)/d(logits), for the entropy-bonus term of the loss.
     */
    std::vector<double> negEntropyGradient() const;

  private:
    std::vector<double> logits_;
    std::vector<double> probs_;
};

/** Diagonal Gaussian over continuous actions. */
class DiagGaussian
{
  public:
    /**
     * @param mean per-dimension means
     * @param logStd per-dimension log standard deviations
     */
    DiagGaussian(std::vector<double> mean, std::vector<double> logStd);

    /** Sample an action vector. */
    std::vector<double> sample(Rng &rng) const;

    /** Distribution mode (the mean). */
    const std::vector<double> &mode() const { return mean_; }

    /** log p(action). */
    double logProb(const std::vector<double> &action) const;

    /** Differential entropy. */
    double entropy() const;

    /** d(-logProb)/d(mean). */
    std::vector<double>
    nllGradientMean(const std::vector<double> &action) const;

    /** d(-logProb)/d(logStd). */
    std::vector<double>
    nllGradientLogStd(const std::vector<double> &action) const;

    /** d(-entropy)/d(logStd) == -1 per dimension. */
    std::vector<double> negEntropyGradientLogStd() const;

  private:
    std::vector<double> mean_;
    std::vector<double> logStd_;
};

} // namespace e3

#endif // E3_MLP_DISTRIBUTIONS_HH
