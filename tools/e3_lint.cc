/**
 * @file
 * e3_lint — the repo's determinism linter, as a CLI.
 *
 *   e3_lint [--root DIR] [--json] [paths...]
 *   e3_lint --list-rules
 *
 * Paths (files or directories, relative to --root) default to the
 * whole lintable tree: src tools bench tests examples. Exit status is
 * 0 when clean, 1 on violations, 2 on usage or I/O errors — so CI can
 * tell "found bugs" from "linter broke". There is deliberately no
 * --fix: every waiver is a reviewed, audited comment, not a rewrite.
 */

#include <cstdio>
#include <iterator>
#include <string>
#include <vector>

#include "common/fs.hh"
#include "lint/lint.hh"

namespace {

int
usage()
{
    std::fprintf(stderr,
                 "usage: e3_lint [--root DIR] [--json] [paths...]\n"
                 "       e3_lint --list-rules\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string rootDir = ".";
    bool json = false;
    std::vector<std::string> roots;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list-rules") {
            std::fputs(e3::lint::ruleCatalog().c_str(), stdout);
            return 0;
        }
        if (arg == "--json") {
            json = true;
        } else if (arg == "--root") {
            if (i + 1 >= argc)
                return usage();
            rootDir = argv[++i];
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "e3_lint: unknown option '%s'\n",
                         arg.c_str());
            return usage();
        } else {
            roots.push_back(arg);
        }
    }
    if (roots.empty())
        roots = {"src", "tools", "bench", "tests", "examples"};

    const e3::lint::Policy policy = e3::lint::defaultPolicy();
    const std::vector<std::string> files =
        e3::lint::collectSources(rootDir, roots, policy);
    if (files.empty()) {
        std::fprintf(stderr, "e3_lint: nothing to lint under '%s'\n",
                     rootDir.c_str());
        return 2;
    }

    // Pass one: harvest per-function summaries from every file so the
    // flow rules (E3L013+) see cross-TU facts — which names return
    // Status/Result, which block, which allocate. Sources are read
    // once and cached for the lint pass.
    std::vector<std::string> contents;
    contents.reserve(files.size());
    e3::lint::CallSummary summary;
    for (const std::string &file : files) {
        const std::string full = rootDir + "/" + file;
        e3::Result<std::string> source = e3::readFile(full);
        if (!source.ok()) {
            std::fprintf(stderr, "e3_lint: %s\n",
                         source.message().c_str());
            return 2;
        }
        for (const e3::lint::FunctionSummary &fn :
             e3::lint::summarizeSource(file, *source))
            summary.add(fn);
        contents.push_back(std::move(*source));
    }
    summary.finalize();

    // Pass two: lint each file against the merged summary.
    std::vector<e3::lint::Diagnostic> all;
    for (size_t i = 0; i < files.size(); ++i) {
        std::vector<e3::lint::Diagnostic> diags = e3::lint::lintSource(
            files[i], contents[i], policy, &summary);
        all.insert(all.end(),
                   std::make_move_iterator(diags.begin()),
                   std::make_move_iterator(diags.end()));
    }

    if (json) {
        std::fputs(e3::lint::toJson(all).c_str(), stdout);
    } else {
        for (const auto &d : all) {
            std::printf("%s:%d: [%s %s] %s\n", d.file.c_str(), d.line,
                        d.ruleId.c_str(), d.ruleName.c_str(),
                        d.message.c_str());
        }
        if (!all.empty()) {
            std::printf("e3_lint: %zu violation(s) in %zu file(s) "
                        "scanned\n",
                        all.size(), files.size());
        }
    }
    return all.empty() ? 0 : 1;
}
