/**
 * @file
 * e3_cli — command-line front end to the platform.
 *
 *   e3_cli list-envs
 *   e3_cli run --env pendulum --backend inax [--pu 50] [--pe 4]
 *          [--pop 200] [--generations 100] [--episodes 3] [--seed 1]
 *          [--checkpoint-dir ckpt] [--checkpoint-every 10]
 *          [--checkpoint-keep 3] [--resume]
 *          [--save champion.genome] [--csv trace.csv] [--audit file]
 *          [--trace out.json] [--trace-detail phase|task|hw]
 *          [--metrics out.csv] [--log-level debug|info|warn|error]
 *          [--quiet]
 *   e3_cli replay --env pendulum --genome champion.genome
 *          [--episodes 5] [--seed 1]
 *   e3_cli verify --env pendulum --genome champion.genome [--json]
 *   e3_cli verify --env pendulum --checkpoint-dir ckpt [--strict]
 *   e3_cli verify --batch --env pendulum --genome champion.genome
 *          [--lanes 8] [--plan plan.txt] [--dump-plan plan.txt]
 *
 * `run` evolves a controller and prints the generation trace; `replay`
 * loads a saved champion and flies fresh episodes with it. --trace
 * records a Chrome trace-event JSON (open in Perfetto or
 * chrome://tracing); --metrics exports the per-generation metrics
 * registry as CSV (or JSON if the path ends in .json).
 *
 * `verify` is the offline static analyzer: structural genome rules
 * (E3V0xx), interval/quantization safety (E3V1xx, with --bits/--frac)
 * and INAX schedule legality (E3V2xx) over a saved genome or every
 * snapshot in a checkpoint directory. `verify --batch` runs the
 * batch-plan pass (E3V3xx) over a compiled SoA population program —
 * from a genome (optionally replicated across --lanes) or a plan text
 * file — and --dump-plan writes the plan's text form. Exit 0 means
 * clean, 1 means findings (errors; or any finding under --strict).
 * `run --verify` gates every decoded network through the structural
 * pass and exits 3 if anything fired.
 *
 * `serve` loads verified champions from checkpoint directories and
 * answers observation -> action requests over the length-prefixed TCP
 * protocol (src/serve). --port 0 binds an ephemeral port; --port-file
 * publishes whichever port was bound; --serve-seconds bounds the run
 * (otherwise serve until SIGINT/SIGTERM, then drain gracefully).
 */

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <thread>

#include "common/csv.hh"
#include "common/fs.hh"
#include "common/logging.hh"
#include "e3/experiment.hh"
#include "neat/serialize.hh"
#include "nn/compile.hh"
#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "persist/checkpoint.hh"
#include "serve/server.hh"
#include "verify/verify.hh"

using namespace e3;

namespace {

/** Tiny --key value parser; fatal() on unknown keys. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i < argc; ++i) {
            std::string key = argv[i];
            if (key.rfind("--", 0) != 0)
                e3_fatal("expected --option, got '", key, "'");
            key = key.substr(2);
            // A key followed by another --option (or nothing) is a
            // boolean flag, stored as "1": e.g. --quiet.
            if (i + 1 >= argc ||
                std::string(argv[i + 1]).rfind("--", 0) == 0) {
                values_[key] = std::string("1");
                continue;
            }
            values_[key] = std::string(argv[++i]);
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        if (it != values_.end()) {
            used_.insert(it->first);
            return it->second;
        }
        return fallback;
    }

    long
    getInt(const std::string &key, long fallback) const
    {
        auto it = values_.find(key);
        if (it == values_.end())
            return fallback;
        used_.insert(it->first);
        return std::stol(it->second);
    }

    /** fatal() on any unconsumed option (catches typos). */
    void
    checkAllUsed() const
    {
        for (const auto &[key, value] : values_) {
            if (!used_.count(key))
                e3_fatal("unknown option --", key);
        }
    }

  private:
    std::map<std::string, std::string> values_;
    mutable std::set<std::string> used_;
};

int
cmdListEnvs()
{
    std::printf("%-26s %6s %8s %9s %15s\n", "env", "inputs", "outputs",
                "paperIdx", "requiredFitness");
    for (const auto &name : envNames()) {
        const EnvSpec &spec = envSpec(name);
        std::printf("%-26s %6zu %8zu %9d %15.1f\n", spec.name.c_str(),
                    spec.numInputs, spec.numOutputs, spec.paperIndex,
                    spec.requiredFitness);
    }
    return 0;
}

/** Resolve a user-supplied env name; fatal if unknown (CLI boundary). */
const EnvSpec &
requireEnvSpec(const std::string &name)
{
    const EnvSpec *spec = findEnvSpec(name);
    if (!spec) {
        std::string known;
        for (const auto &n : envNames())
            known += (known.empty() ? "" : "|") + n;
        e3_fatal("unknown environment '", name, "' (", known, ")");
    }
    return *spec;
}

/** Resolve a --backend name against the registry; fatal if unknown. */
std::string
parseBackend(const std::string &name)
{
    const BackendRegistry &registry = BackendRegistry::instance();
    if (!registry.known(name)) {
        std::string known;
        for (const auto &n : registry.names())
            known += (known.empty() ? "" : "|") + n;
        e3_fatal("unknown backend '", name, "' (", known, ")");
    }
    return name;
}

int
cmdRun(const Args &args)
{
    const std::string envName = args.get("env", "cartpole");
    const std::string backend = parseBackend(args.get("backend", "inax"));

    ExperimentOptions options;
    options.seed = static_cast<uint64_t>(args.getInt("seed", 1));
    options.populationSize =
        static_cast<size_t>(args.getInt("pop", 200));
    options.episodesPerEval =
        static_cast<size_t>(args.getInt("episodes", 3));
    options.maxGenerations = static_cast<int>(
        args.getInt("generations", suiteGenerationBudget(envName)));
    options.threads =
        static_cast<size_t>(args.getInt("threads", 1));
    options.asyncOverlap = args.getInt("async", 0) != 0;
    options.verifyGenomes = args.getInt("verify", 0) != 0;

    const EnvSpec &spec = requireEnvSpec(envName);
    InaxConfig inaxCfg = InaxConfig::paperDefault(spec.numOutputs);
    inaxCfg.numPUs =
        static_cast<size_t>(args.getInt("pu", inaxCfg.numPUs));
    inaxCfg.numPEs =
        static_cast<size_t>(args.getInt("pe", inaxCfg.numPEs));
    if (Status valid = inaxCfg.validate(); !valid.ok())
        e3_fatal(valid.message());
    options.inaxConfig = inaxCfg;

    const std::string neatConfigPath = args.get("neat-config", "");
    if (!neatConfigPath.empty())
        options.neatConfigPath = neatConfigPath;

    options.checkpointDir = args.get("checkpoint-dir", "");
    options.checkpointEvery =
        static_cast<int>(args.getInt("checkpoint-every", 10));
    options.checkpointKeep =
        static_cast<int>(args.getInt("checkpoint-keep", 3));
    options.resume = args.getInt("resume", 0) != 0;
    if (options.resume && options.checkpointDir.empty())
        e3_fatal("--resume needs --checkpoint-dir <dir>");

    const std::string savePath = args.get("save", "");
    const std::string csvPath = args.get("csv", "");
    const std::string auditPath = args.get("audit", "");

    // Observability / verbosity knobs.
    const std::string tracePath = args.get("trace", "");
    const std::string traceDetailName = args.get("trace-detail", "phase");
    const std::string metricsPath = args.get("metrics", "");
    const std::string logLevelName = args.get("log-level", "");
    const bool quiet = args.getInt("quiet", 0) != 0;
    args.checkAllUsed();

    if (!logLevelName.empty()) {
        LogLevel level;
        if (!parseLogLevel(logLevelName, level))
            e3_fatal("unknown log level '", logLevelName,
                     "' (debug|info|warn|error)");
        setLogLevel(level);
    } else if (quiet) {
        setLogLevel(LogLevel::Warn);
    }

    obs::TraceDetail detail;
    if (!obs::parseTraceDetail(traceDetailName, detail))
        e3_fatal("unknown trace detail '", traceDetailName,
                 "' (phase|task|hw)");
    if (!tracePath.empty())
        obs::traceStart(detail);

    if (!quiet) {
        std::printf("running %s on %s (pop %zu, %zu episode(s)/eval, "
                    "seed %llu, %zu thread(s)%s)\n",
                    envName.c_str(),
                    BackendRegistry::instance()
                        .displayName(backend)
                        .c_str(),
                    options.populationSize, options.episodesPerEval,
                    static_cast<unsigned long long>(options.seed),
                    options.threads,
                    options.asyncOverlap ? ", async overlap" : "");
    }

    Result<RunResult> run = runExperiment(envName, backend, options);
    if (!run.ok())
        e3_fatal(run.message());
    const RunResult result = std::move(run).value();

    if (!tracePath.empty() && obs::traceStop(tracePath) && !quiet)
        std::printf("trace written to %s\n", tracePath.c_str());
    if (!metricsPath.empty()) {
        const bool json = metricsPath.size() > 5 &&
                          metricsPath.compare(metricsPath.size() - 5, 5,
                                              ".json") == 0;
        const bool ok = json ? result.metrics.writeJson(metricsPath)
                             : result.metrics.writeCsv(metricsPath);
        if (ok && !quiet)
            std::printf("metrics written to %s\n", metricsPath.c_str());
    }

    if (!quiet) {
        for (const auto &p : result.trace) {
            std::printf("  gen %3d  best %9.2f  mean %9.2f  "
                        "species %2zu  t=%.4fs\n",
                        p.generation, p.bestFitness, p.meanFitness,
                        p.numSpecies, p.cumulativeSeconds);
        }
    }
    std::printf("%s after %d generations; best fitness %.2f "
                "(required %.2f); modeled %.4f s\n",
                result.solved ? "SOLVED" : "stopped",
                result.generations, result.bestFitness,
                spec.requiredFitness, result.totalSeconds());
    if (!quiet && backend == "inax") {
        std::printf("INAX: %llu cycles, U(PE)=%.2f, U(PU)=%.2f\n",
                    static_cast<unsigned long long>(
                        result.inaxReport.totalCycles()),
                    result.inaxReport.pe.rate(),
                    result.inaxReport.pu.rate());
    }
    if (!quiet && options.threads > 1) {
        const Counters &rt = result.runtimeCounters;
        std::printf("runtime: %zu workers, %.0f tasks run "
                    "(%.0f stolen), %.2f s worker idle\n",
                    options.threads, rt.get("runtime.tasks_run"),
                    rt.get("runtime.tasks_stolen"),
                    rt.get("runtime.idle_seconds"));
    }

    // Determinism-sentinel digest: the same experiment must write the
    // same two numbers at every --threads/--async setting, so CI can
    // `cmp` the files across worker counts.
    if (!auditPath.empty()) {
        char buf[64];
        std::snprintf(buf, sizeof buf, "draws=%llu hash=%016llx\n",
                      static_cast<unsigned long long>(
                          result.rngAudit.draws),
                      static_cast<unsigned long long>(
                          result.rngAudit.hash));
        const Status written = atomicWriteFile(auditPath, buf);
        if (!written.ok())
            e3_fatal(written.message());
        std::printf("rng audit: %s", buf);
    }

    if (!csvPath.empty()) {
        CsvWriter csv;
        csv.header({"generation", "best", "mean", "species",
                    "cumulative_seconds"});
        for (const auto &p : result.trace) {
            csv.row({std::to_string(p.generation),
                     std::to_string(p.bestFitness),
                     std::to_string(p.meanFitness),
                     std::to_string(p.numSpecies),
                     std::to_string(p.cumulativeSeconds)});
        }
        if (csv.writeFile(csvPath))
            std::printf("trace written to %s\n", csvPath.c_str());
    }

    if (!savePath.empty()) {
        const Genome champion = evolvedChampion(
            envName, options.maxGenerations, options.populationSize,
            options.seed);
        const Status saved = saveGenomeFile(champion, savePath);
        if (!saved.ok())
            e3_fatal(saved.message());
        std::printf("champion (fitness %.2f, %zu nodes, %zu "
                    "conns) saved to %s\n",
                    champion.fitness, champion.size().first,
                    champion.size().second, savePath.c_str());
    }

    // The --verify gate: an evolved genome should never produce a
    // structural error, so any finding outranks the solved/unsolved
    // exit distinction.
    if (!result.verifyReport.empty()) {
        std::fputs(verify::formatText(result.verifyReport).c_str(),
                   stderr);
        if (result.verifyReport.hasErrors())
            return 3;
    }
    return result.solved ? 0 : 2;
}

int
cmdReplay(const Args &args)
{
    const std::string envName = args.get("env", "cartpole");
    const std::string genomePath = args.get("genome", "");
    const auto episodes =
        static_cast<size_t>(args.getInt("episodes", 3));
    const auto seed = static_cast<uint64_t>(args.getInt("seed", 1));
    args.checkAllUsed();
    if (genomePath.empty())
        e3_fatal("replay needs --genome <file>");

    const EnvSpec &spec = requireEnvSpec(envName);
    Result<Genome> loaded = loadGenomeFile(genomePath);
    if (!loaded.ok())
        e3_fatal(loaded.message());
    const Genome genome = *std::move(loaded);
    const NeatConfig cfg = NeatConfig::forTask(
        spec.numInputs, spec.numOutputs, spec.requiredFitness);
    Result<std::unique_ptr<Network>> compiledNet =
        compileNetwork(genome.toNetworkDef(cfg));
    if (!compiledNet.ok())
        e3_fatal(compiledNet.message());
    const std::unique_ptr<Network> net = std::move(compiledNet).value();

    Rng rng(seed);
    double total = 0.0;
    for (size_t e = 0; e < episodes; ++e) {
        auto env = spec.make();
        Observation obs = env->reset(rng);
        double episodeReward = 0.0;
        for (int t = 0; t < env->maxEpisodeSteps(); ++t) {
            const StepResult r =
                env->step(decodeAction(spec, net->activate(obs)));
            obs = r.observation;
            episodeReward += r.reward;
            if (r.done)
                break;
        }
        std::printf("episode %zu: reward %.2f\n", e, episodeReward);
        total += episodeReward;
    }
    std::printf("mean reward over %zu episodes: %.2f (required %.2f)\n",
                episodes, total / static_cast<double>(episodes),
                spec.requiredFitness);
    return 0;
}

/**
 * Print a verify report and return the process exit code — the shared
 * tail of `verify` and `verify --batch`.
 */
int
reportVerifyResult(const verify::Report &full, size_t artifacts,
                   bool json, bool strict)
{
    if (json) {
        std::fputs(verify::toJson(full).c_str(), stdout);
    } else {
        if (!full.empty())
            std::fputs(verify::formatText(full).c_str(), stdout);
        std::printf("verify: %zu artifact(s), %zu error(s), "
                    "%zu warning(s)%s\n",
                    artifacts, full.errorCount(), full.warningCount(),
                    full.failed(strict) ? "" : " -- clean");
    }
    return full.failed(strict) ? 1 : 0;
}

/**
 * `verify --batch`: the batch-plan pass (E3V301–E3V306) over either a
 * freshly compiled plan for --genome (replicated across --lanes) or a
 * plan text file (--plan), optionally cross-checked for fold-order
 * equivalence against the genome when both are given. --dump-plan
 * writes the compiled plan's text form, which is how the seeded
 * fixture plans were produced.
 */
int
cmdVerifyBatch(const EnvSpec &spec, const verify::GenomeInterface &iface,
               const std::string &genomePath,
               const std::string &planPath,
               const std::string &dumpPlanPath, size_t lanes,
               bool json, bool strict)
{
    verify::Report full;
    size_t artifacts = 0;

    std::vector<NetworkDef> defs;
    if (!genomePath.empty()) {
        ++artifacts;
        Result<Genome> loaded =
            loadGenomeFile(genomePath, GenomeLoadMode::Raw);
        if (!loaded.ok()) {
            verify::Diagnostic d = verify::makeDiagnostic(
                verify::rules::kLoadError, "", loaded.message());
            d.artifact = genomePath;
            full.add(std::move(d));
            return reportVerifyResult(full, artifacts, json, strict);
        }
        verify::Report structural =
            verify::verifyGenome(*loaded, iface);
        structural.setArtifact(genomePath);
        const bool genomeBroken = structural.hasErrors();
        full.merge(std::move(structural));
        if (genomeBroken)
            return reportVerifyResult(full, artifacts, json, strict);
        const NeatConfig cfg = NeatConfig::forTask(
            spec.numInputs, spec.numOutputs, spec.requiredFitness);
        defs.push_back(loaded->toNetworkDef(cfg));
    }

    BatchPlan plan;
    std::string planArtifact;
    if (!planPath.empty()) {
        ++artifacts;
        planArtifact = planPath;
        Result<std::string> text = readFile(planPath);
        Result<BatchPlan> parsed =
            text.ok() ? verify::batchPlanFromText(*text)
                      : Result<BatchPlan>(text.status());
        if (!parsed.ok()) {
            verify::Diagnostic d = verify::makeDiagnostic(
                verify::rules::kLoadError, "", parsed.message());
            d.artifact = planPath;
            full.add(std::move(d));
            return reportVerifyResult(full, artifacts, json, strict);
        }
        plan = *std::move(parsed);
    } else {
        ++artifacts;
        planArtifact = genomePath + ":plan";
        Result<std::unique_ptr<BatchEvaluator>> compiled =
            lanes > 1
                ? BatchEvaluator::compileReplicated(defs.front(), lanes)
                : BatchEvaluator::compile(defs);
        if (!compiled.ok())
            e3_fatal("batch compile failed: ", compiled.message());
        plan = *(*compiled)->plan();
    }

    if (!dumpPlanPath.empty()) {
        if (Status written = atomicWriteFile(
                dumpPlanPath, verify::batchPlanToText(plan));
            !written.ok())
            e3_fatal(written.message());
    }

    verify::Report report = verify::verifyBatchPlan(plan, defs);
    report.setArtifact(planArtifact);
    full.merge(std::move(report));
    return reportVerifyResult(full, artifacts, json, strict);
}

/**
 * Static analyzer front end. One genome file or a whole checkpoint
 * directory is verified against the environment's interface, the INAX
 * hardware description, and (optionally) a fixed-point format; every
 * finding is printed with its stable rule ID. Malformed artifacts
 * degrade to E3V010 diagnostics — this command never crashes on bad
 * input, that is its whole point. With --batch the population
 * batch-plan pass (E3V301–E3V306) runs instead.
 */
int
cmdVerify(const Args &args)
{
    const std::string envName = args.get("env", "cartpole");
    const std::string genomePath = args.get("genome", "");
    const std::string checkpointDir = args.get("checkpoint-dir", "");
    const bool recurrent = args.getInt("recurrent", 0) != 0;
    const long bits = args.getInt("bits", 0);
    const long frac = args.getInt("frac", 8);
    const bool json = args.getInt("json", 0) != 0;
    const bool strict = args.getInt("strict", 0) != 0;
    const bool batch = args.getInt("batch", 0) != 0;
    const long lanes = args.getInt("lanes", 1);
    const std::string planPath = args.get("plan", "");
    const std::string dumpPlanPath = args.get("dump-plan", "");

    const EnvSpec &spec = requireEnvSpec(envName);
    InaxConfig inaxCfg = InaxConfig::paperDefault(spec.numOutputs);
    inaxCfg.numPUs =
        static_cast<size_t>(args.getInt("pu", inaxCfg.numPUs));
    inaxCfg.numPEs =
        static_cast<size_t>(args.getInt("pe", inaxCfg.numPEs));
    inaxCfg.maxSupportedNodes = static_cast<size_t>(
        args.getInt("max-nodes", inaxCfg.maxSupportedNodes));
    if (Status valid = inaxCfg.validate(); !valid.ok())
        e3_fatal(valid.message());
    args.checkAllUsed();

    if (batch) {
        if (!checkpointDir.empty())
            e3_fatal("verify --batch works on one genome/plan, "
                     "not --checkpoint-dir");
        if (genomePath.empty() && planPath.empty())
            e3_fatal("verify --batch needs --genome <file> and/or "
                     "--plan <file>");
        if (lanes < 1)
            e3_fatal("--lanes must be >= 1");
        if (lanes > 1 && genomePath.empty())
            e3_fatal("--lanes needs --genome to replicate");
        return cmdVerifyBatch(spec, verify::interfaceFor(spec, !recurrent),
                              genomePath, planPath, dumpPlanPath,
                              static_cast<size_t>(lanes), json, strict);
    }
    if (!planPath.empty() || !dumpPlanPath.empty())
        e3_fatal("--plan/--dump-plan need --batch");

    if (genomePath.empty() == checkpointDir.empty())
        e3_fatal("verify needs exactly one of --genome <file> or "
                 "--checkpoint-dir <dir>");

    std::optional<FixedPointFormat> format;
    if (bits > 0) {
        format = FixedPointFormat{static_cast<int>(bits),
                                  static_cast<int>(frac)};
        if (Status valid = format->validate(); !valid.ok())
            e3_fatal(valid.message());
    }
    const verify::GenomeInterface iface =
        verify::interfaceFor(spec, !recurrent);
    const std::vector<verify::Interval> inputBounds =
        verify::observationIntervals(spec.make()->observationSpace());

    verify::Report full;
    size_t artifacts = 0;

    // All three passes over one genome, stamped with its artifact
    // name. Compile-dependent passes (hardware, quantization) only run
    // on structurally clean genomes: toNetworkDef/create assert the
    // invariants the structural pass just reported as diagnostics.
    const auto verifyOne = [&](const Genome &genome,
                               const std::string &artifact) {
        ++artifacts;
        verify::Report report = verify::verifyGenome(genome, iface);
        if (!report.hasErrors()) {
            const NeatConfig cfg = NeatConfig::forTask(
                spec.numInputs, spec.numOutputs, spec.requiredFitness);
            const NetworkDef def = genome.toNetworkDef(cfg);
            report.merge(verify::verifyDefOnHardware(
                def, inaxCfg, spec.numInputs, spec.numOutputs));
            if (format && !report.hasErrors()) {
                verify::QuantizationAnalysis analysis =
                    verify::analyzeQuantization(def, inputBounds,
                                                *format);
                report.merge(std::move(analysis.report));
                if (!json && analysis.suggestionValid &&
                    !analysis.guaranteedSafe) {
                    std::printf("%s: note: minimal safe format at "
                                "%d fractional bits is %s\n",
                                artifact.c_str(), format->fracBits,
                                analysis.suggested.describe().c_str());
                }
            }
        }
        report.setArtifact(artifact);
        full.merge(std::move(report));
    };

    const auto loadFailure = [&](const std::string &artifact,
                                 const std::string &message) {
        ++artifacts;
        verify::Diagnostic d =
            verify::makeDiagnostic(verify::rules::kLoadError, "", message);
        d.artifact = artifact;
        full.add(std::move(d));
    };

    if (!genomePath.empty()) {
        Result<Genome> loaded =
            loadGenomeFile(genomePath, GenomeLoadMode::Raw);
        if (!loaded.ok())
            loadFailure(genomePath, loaded.message());
        else
            verifyOne(*loaded, genomePath);
    } else {
        Result<std::vector<std::pair<int, std::string>>> files =
            persist::listCheckpointFiles(checkpointDir);
        if (!files.ok())
            e3_fatal(files.message());
        for (const auto &[generation, path] : *files) {
            Result<std::string> text = readFile(path);
            if (!text.ok()) {
                loadFailure(path, text.message());
                continue;
            }
            Result<persist::Checkpoint> ck =
                persist::checkpointFromString(*text);
            if (!ck.ok()) {
                loadFailure(path, ck.message());
                continue;
            }
            for (const auto &[key, genome] : ck->population.genomes)
                verifyOne(genome,
                          path + ":genome " + std::to_string(key));
            if (ck->champion)
                verifyOne(*ck->champion, path + ":champion");
        }
    }

    if (json) {
        std::fputs(verify::toJson(full).c_str(), stdout);
    } else {
        if (!full.empty())
            std::fputs(verify::formatText(full).c_str(), stdout);
        std::printf("verify: %zu artifact(s), %zu error(s), "
                    "%zu warning(s)%s\n",
                    artifacts, full.errorCount(), full.warningCount(),
                    full.failed(strict) ? "" : " -- clean");
    }
    return full.failed(strict) ? 1 : 0;
}

std::atomic<bool> serveStopRequested{false};

void
serveSignalHandler(int)
{
    serveStopRequested.store(true);
}

/**
 * Parse "--champion env=dir[,env=dir...]" (plus the --env/
 * --checkpoint-dir single-champion shorthand) into sources.
 */
std::vector<serve::ChampionSource>
parseChampionSources(const Args &args)
{
    std::vector<serve::ChampionSource> sources;
    const std::string spec = args.get("champion", "");
    size_t start = 0;
    while (start < spec.size()) {
        size_t end = spec.find(',', start);
        if (end == std::string::npos)
            end = spec.size();
        const std::string item = spec.substr(start, end - start);
        start = end + 1;
        if (item.empty())
            continue;
        const size_t eq = item.find('=');
        if (eq == std::string::npos || eq == 0 ||
            eq + 1 == item.size())
            e3_fatal("--champion expects env=checkpoint-dir, got '",
                     item, "'");
        sources.push_back({item.substr(eq + 1), item.substr(0, eq)});
    }
    const std::string envName = args.get("env", "");
    const std::string dir = args.get("checkpoint-dir", "");
    if (envName.empty() != dir.empty())
        e3_fatal("serve needs both --env and --checkpoint-dir "
                 "(or --champion env=dir)");
    if (!envName.empty())
        sources.push_back({dir, envName});
    return sources;
}

int
cmdServe(const Args &args)
{
    serve::ServeOptions options;
    options.sources = parseChampionSources(args);
    options.cacheCapacity =
        static_cast<size_t>(args.getInt("cache", 8));
    options.maxBatchSize =
        static_cast<size_t>(args.getInt("batch", 16));
    options.maxBatchDelay =
        std::chrono::microseconds(args.getInt("batch-delay-us", 200));
    options.maxQueueDepth =
        static_cast<size_t>(args.getInt("queue", 256));
    options.threads = static_cast<size_t>(args.getInt("threads", 1));
    options.strictVerify = args.getInt("strict", 0) != 0;

    const long port = args.getInt("port", 0);
    const std::string portFile = args.get("port-file", "");
    const double serveSeconds =
        static_cast<double>(args.getInt("serve-seconds", 0));
    const std::string metricsPath = args.get("metrics", "");
    const std::string tracePath = args.get("trace", "");
    const std::string traceDetailName =
        args.get("trace-detail", "task");
    const bool quiet = args.getInt("quiet", 0) != 0;
    args.checkAllUsed();

    if (quiet)
        setLogLevel(LogLevel::Warn);
    if (!tracePath.empty()) {
        obs::TraceDetail detail;
        if (!obs::parseTraceDetail(traceDetailName, detail))
            e3_fatal("unknown trace detail '", traceDetailName,
                     "' (phase|task|hw)");
        obs::traceStart(detail);
    }

    Result<std::unique_ptr<serve::ChampionServer>> server =
        serve::ChampionServer::create(options);
    if (!server.ok())
        e3_fatal(server.message());

    if (Status st =
            (*server)->listen(static_cast<uint16_t>(port));
        !st.ok())
        e3_fatal(st.message());

    std::printf("serving on 127.0.0.1:%u\n", (*server)->port());
    for (const auto &champion : (*server)->champions())
        std::printf("  champion %016" PRIx64 "  %-16s gen %-5d "
                    "best %.2f  (%s)\n",
                    champion.fingerprint, champion.envName.c_str(),
                    champion.generation, champion.bestFitness,
                    champion.checkpointDir.c_str());
    std::fflush(stdout);

    if (!portFile.empty()) {
        if (Status st = atomicWriteFile(
                portFile, std::to_string((*server)->port()) + "\n");
            !st.ok())
            e3_fatal(st.message());
    }

    std::signal(SIGINT, serveSignalHandler);
    std::signal(SIGTERM, serveSignalHandler);
    const auto started = std::chrono::steady_clock::now();
    while (!serveStopRequested.load()) {
        if (serveSeconds > 0.0 &&
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - started)
                    .count() >= serveSeconds)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }

    (*server)->stop();

    const serve::ServerCounters counters = (*server)->counters();
    const serve::BatcherStats batcher = (*server)->batcherStats();
    const serve::LatencySummary lat = (*server)->latency();
    std::printf("served %llu requests (%llu ok, %llu overloaded, "
                "%llu unknown, %llu bad, %llu draining, "
                "%llu protocol errors)\n",
                static_cast<unsigned long long>(counters.requests),
                static_cast<unsigned long long>(counters.ok),
                static_cast<unsigned long long>(
                    counters.rejectedOverload),
                static_cast<unsigned long long>(
                    counters.rejectedUnknown),
                static_cast<unsigned long long>(
                    counters.rejectedBadRequest),
                static_cast<unsigned long long>(
                    counters.rejectedDraining),
                static_cast<unsigned long long>(
                    counters.protocolErrors));
    std::printf("batches %llu (max size %zu)  cache hit %llu / miss "
                "%llu / evict %llu\n",
                static_cast<unsigned long long>(batcher.batches),
                batcher.maxBatchSize,
                static_cast<unsigned long long>(
                    (*server)->cache().hits()),
                static_cast<unsigned long long>(
                    (*server)->cache().misses()),
                static_cast<unsigned long long>(
                    (*server)->cache().evictions()));
    if (lat.count > 0)
        std::printf("latency ms: p50 %.3f  p95 %.3f  p99 %.3f  "
                    "max %.3f\n",
                    lat.p50 * 1e3, lat.p95 * 1e3, lat.p99 * 1e3,
                    lat.max * 1e3);

    if (!metricsPath.empty()) {
        obs::MetricsRegistry registry;
        (*server)->exportMetrics(registry);
        registry.snapshotGeneration(0);
        const bool isJson =
            metricsPath.size() >= 5 &&
            metricsPath.rfind(".json") == metricsPath.size() - 5;
        if (!(isJson ? registry.writeJson(metricsPath)
                     : registry.writeCsv(metricsPath)))
            return 1;
    }
    if (!tracePath.empty() && !obs::traceStop(tracePath))
        return 1;
    return 0;
}

void
usage()
{
    std::printf(
        "usage:\n"
        "  e3_cli list-envs\n"
        "  e3_cli run --env <name> --backend cpu|cpu-batch|gpu|inax\n"
        "         [--pu N] [--pe N] [--pop N] [--generations N]\n"
        "         [--episodes N] [--seed N] [--csv file]\n"
        "         [--threads N] [--async 0|1] [--audit file]\n"
        "         [--checkpoint-dir dir] [--checkpoint-every N]\n"
        "         [--checkpoint-keep K] [--resume]\n"
        "         [--neat-config file.ini] [--save champion.genome]\n"
        "         [--trace out.json] [--trace-detail phase|task|hw]\n"
        "         [--metrics out.csv|out.json]\n"
        "         [--log-level debug|info|warn|error] [--quiet]\n"
        "         [--verify]\n"
        "  e3_cli replay --env <name> --genome <file>\n"
        "         [--episodes N] [--seed N]\n"
        "  e3_cli verify --env <name>\n"
        "         (--genome <file> | --checkpoint-dir <dir>)\n"
        "         [--recurrent] [--bits N] [--frac N]\n"
        "         [--pu N] [--pe N] [--max-nodes N]\n"
        "         [--json] [--strict]\n"
        "  e3_cli verify --batch --env <name>\n"
        "         (--genome <file> [--lanes N] | --plan <file>)\n"
        "         [--dump-plan <file>] [--recurrent]\n"
        "         [--json] [--strict]\n"
        "  e3_cli serve (--champion env=dir[,env=dir...] |\n"
        "         --env <name> --checkpoint-dir <dir>)\n"
        "         [--port N] [--port-file file] [--serve-seconds S]\n"
        "         [--threads N] [--cache N] [--batch N]\n"
        "         [--batch-delay-us N] [--queue N] [--strict]\n"
        "         [--metrics out.csv|out.json] [--trace out.json]\n"
        "         [--trace-detail phase|task|hw] [--quiet]\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 1;
    }
    const std::string command = argv[1];
    if (command == "list-envs")
        return cmdListEnvs();
    if (command == "run")
        return cmdRun(Args(argc, argv, 2));
    if (command == "replay")
        return cmdReplay(Args(argc, argv, 2));
    if (command == "verify")
        return cmdVerify(Args(argc, argv, 2));
    if (command == "serve")
        return cmdServe(Args(argc, argv, 2));
    usage();
    return 1;
}
