/**
 * @file
 * Function recovery and per-function control-flow graphs.
 *
 * The parser is deliberately lighter than a C++ front end: it scans
 * the code-token stream for `name ( params ) ... {` definition shapes
 * (skipping ctor-init lists, trailing cv/ref/noexcept/attribute
 * clutter and declarations), then walks each body with a
 * recursive-descent statement grammar that understands if/else,
 * while/for/do, switch/case, try/catch, return/throw/break/continue
 * and nested compounds. Everything else — expression statements,
 * declarations, lambdas, brace initializers — is consumed as one
 * opaque statement appended to the current block, which is exactly the
 * granularity the flow rules need: reachability of reads, liveness of
 * lock scopes, try coverage of throws.
 *
 * Approximations, chosen to under-report rather than over-report:
 * goto terminates its block with no successor; a catch block is
 * reachable from both the try entry and the try exit (exceptions can
 * arise anywhere in between); preprocessor-conditional arms are parsed
 * as one linear sequence (the union of both sides).
 */

#include "lint/lint.hh"

namespace e3::lint {

namespace {

/** Names that look like `name (` but never open a function. */
bool
reservedName(const std::string &s)
{
    static const char *const kReserved[] = {
        "if",       "for",      "while",    "switch",   "catch",
        "return",   "new",      "delete",   "sizeof",   "alignof",
        "decltype", "throw",    "operator", "constexpr", "noexcept",
        "alignas",  "defined",  "template", "requires", "static_assert",
        "case",     "do",       "else",     "goto",
    };
    for (const char *r : kReserved) {
        if (s == r)
            return true;
    }
    return false;
}

bool
ppTok(const FileContext &ctx, size_t i)
{
    const Token &t = ctx.codeTok(i);
    return t.pp || t.kind == TokKind::Directive;
}

/**
 * From the token after a ctor's `:`, skip the member-init list
 * (`name(args), base<T>{args}, ...`) and return the code index of the
 * body '{', or n when the shape is not an init list after all.
 */
size_t
skipCtorInit(const FileContext &ctx, size_t i, size_t n)
{
    while (i < n) {
        const Token &t = ctx.codeTok(i);
        if (t.kind == TokKind::Identifier || isPunctTok(t, "::") ||
            isPunctTok(t, "<") || isPunctTok(t, ">") ||
            isPunctTok(t, ",")) {
            ++i;
            continue;
        }
        if (isPunctTok(t, "(")) {
            const size_t c = matchClose(ctx, i);
            if (c >= n)
                return n;
            i = c + 1;
            continue;
        }
        if (isPunctTok(t, "{")) {
            // Brace-init of a member when the previous token names
            // one; otherwise this is the constructor body.
            if (i >= 1 && (ctx.codeTok(i - 1).kind ==
                               TokKind::Identifier ||
                           isPunctTok(ctx.codeTok(i - 1), ">"))) {
                const size_t c = matchClose(ctx, i);
                if (c >= n)
                    return n;
                i = c + 1;
                continue;
            }
            return i;
        }
        return n;
    }
    return n;
}

/** Statement-level CFG builder over one function body. */
struct CfgBuilder
{
    const FileContext &ctx;
    FlowFunction &fn;
    int cur = 0;
    bool terminated = false;

    CfgBuilder(const FileContext &c, FlowFunction &f) : ctx(c), fn(f)
    {
        fn.blocks.emplace_back(); // entry block
    }

    int
    newBlock()
    {
        fn.blocks.emplace_back();
        return static_cast<int>(fn.blocks.size()) - 1;
    }

    void edge(int a, int b) { fn.blocks[a].succs.push_back(b); }

    void
    append(size_t b, size_t e)
    {
        if (b < e)
            fn.blocks[cur].ranges.emplace_back(b, e);
    }

    bool
    at(size_t i, size_t end, const char *p) const
    {
        return i < end && isPunctTok(ctx.codeTok(i), p);
    }

    bool
    kw(size_t i, size_t end, const char *k) const
    {
        return i < end && isIdentTok(ctx.codeTok(i), k);
    }

    /** Start a fresh block if the previous statement terminated. */
    void
    freshIfTerminated()
    {
        if (terminated) {
            cur = newBlock();
            terminated = false;
        }
    }

    /**
     * Consume one opaque statement: everything to the `;` at nesting
     * depth zero. Lambdas, initializer lists and parenthesized
     * subexpressions (which may contain their own `;`, as in a lambda
     * body) nest; a `}` or `)` at depth zero means the statement ran
     * into the enclosing scope and is left unconsumed.
     */
    size_t
    opaqueStmt(size_t i, size_t end, size_t scopeEnd)
    {
        size_t j = i;
        int pd = 0, bd = 0, sd = 0;
        while (j < end) {
            const Token &t = ctx.codeTok(j);
            if (t.kind == TokKind::Punct) {
                if (t.text == "(") {
                    ++pd;
                } else if (t.text == ")") {
                    if (pd == 0)
                        break;
                    --pd;
                } else if (t.text == "{") {
                    ++bd;
                } else if (t.text == "}") {
                    if (bd == 0)
                        break;
                    --bd;
                } else if (t.text == "[") {
                    ++sd;
                } else if (t.text == "]") {
                    if (sd > 0)
                        --sd;
                } else if (t.text == ";" && pd == 0 && bd == 0 &&
                           sd == 0) {
                    ++j;
                    break;
                }
            }
            ++j;
        }
        if (j == i)
            ++j; // never stall on a stray close token
        append(i, j);
        recordLockDecls(ctx, fn, i, j, scopeEnd);
        return j;
    }

    /** Consume to past the `;` at depth zero (no append). */
    size_t
    toSemi(size_t i, size_t end)
    {
        size_t j = i;
        int pd = 0, bd = 0, sd = 0;
        while (j < end) {
            const Token &t = ctx.codeTok(j);
            if (t.kind == TokKind::Punct) {
                if (t.text == "(")
                    ++pd;
                else if (t.text == ")" && pd > 0)
                    --pd;
                else if (t.text == "{")
                    ++bd;
                else if (t.text == "}") {
                    if (bd == 0)
                        break;
                    --bd;
                } else if (t.text == "[")
                    ++sd;
                else if (t.text == "]" && sd > 0)
                    --sd;
                else if (t.text == ";" && pd == 0 && bd == 0 &&
                         sd == 0) {
                    ++j;
                    break;
                }
            }
            ++j;
        }
        if (j == i)
            ++j;
        return j;
    }

    size_t
    parseSeq(size_t i, size_t end, int brk, int cont, size_t scopeEnd)
    {
        while (i < end) {
            if (at(i, end, "}"))
                break;
            i = parseStmt(i, end, brk, cont, scopeEnd);
        }
        return i;
    }

    size_t
    parseStmt(size_t i, size_t end, int brk, int cont,
              size_t scopeEnd)
    {
        freshIfTerminated();

        // Preprocessor lines are not statements; both arms of an
        // #if/#else parse as one linear union.
        if (ppTok(ctx, i)) {
            size_t j = i + 1;
            while (j < end && ppTok(ctx, j))
                ++j;
            return j;
        }

        if (at(i, end, "{")) {
            const size_t close = matchClose(ctx, i);
            parseSeq(i + 1, close < end ? close : end, brk, cont,
                     close);
            return close < end ? close + 1 : end;
        }

        if (at(i, end, ";")) {
            append(i, i + 1);
            return i + 1;
        }

        if (kw(i, end, "if"))
            return parseIf(i, end, brk, cont, scopeEnd);
        if (kw(i, end, "while"))
            return parseWhile(i, end, scopeEnd);
        if (kw(i, end, "for"))
            return parseFor(i, end, scopeEnd);
        if (kw(i, end, "do"))
            return parseDo(i, end, scopeEnd);
        if (kw(i, end, "switch"))
            return parseSwitch(i, end, cont, scopeEnd);
        if (kw(i, end, "try"))
            return parseTry(i, end, brk, cont, scopeEnd);

        if (kw(i, end, "return")) {
            const size_t j = toSemi(i, end);
            append(i, j);
            terminated = true;
            return j;
        }
        if (kw(i, end, "throw")) {
            fn.throwSites.push_back(i);
            const size_t j = toSemi(i, end);
            append(i, j);
            terminated = true;
            return j;
        }
        if (kw(i, end, "break")) {
            append(i, i + 1);
            if (brk >= 0)
                edge(cur, brk);
            terminated = true;
            return at(i + 1, end, ";") ? i + 2 : i + 1;
        }
        if (kw(i, end, "continue")) {
            append(i, i + 1);
            if (cont >= 0)
                edge(cur, cont);
            terminated = true;
            return at(i + 1, end, ";") ? i + 2 : i + 1;
        }
        if (kw(i, end, "goto")) {
            // Conservative: no successor; the label's block keeps its
            // own reachability from fall-through.
            const size_t j = toSemi(i, end);
            append(i, j);
            terminated = true;
            return j;
        }

        return opaqueStmt(i, end, scopeEnd);
    }

    size_t
    parseIf(size_t i, size_t end, int brk, int cont, size_t scopeEnd)
    {
        size_t p = i + 1;
        if (kw(p, end, "constexpr"))
            ++p;
        if (!at(p, end, "("))
            return opaqueStmt(i, end, scopeEnd);
        const size_t close = matchClose(ctx, p);
        if (close >= end)
            return opaqueStmt(i, end, scopeEnd);
        append(i, close + 1);
        const int condB = cur;
        const int thenB = newBlock();
        edge(condB, thenB);
        cur = thenB;
        size_t k = parseStmt(close + 1, end, brk, cont, scopeEnd);
        const int thenEnd = cur;
        const bool thenTerm = terminated;
        terminated = false;
        if (kw(k, end, "else")) {
            const int elseB = newBlock();
            edge(condB, elseB);
            cur = elseB;
            k = parseStmt(k + 1, end, brk, cont, scopeEnd);
            const int elseEnd = cur;
            const bool elseTerm = terminated;
            terminated = false;
            const int join = newBlock();
            if (!thenTerm)
                edge(thenEnd, join);
            if (!elseTerm)
                edge(elseEnd, join);
            cur = join;
            return k;
        }
        const int join = newBlock();
        edge(condB, join);
        if (!thenTerm)
            edge(thenEnd, join);
        cur = join;
        return k;
    }

    size_t
    parseWhile(size_t i, size_t end, size_t scopeEnd)
    {
        if (!at(i + 1, end, "("))
            return opaqueStmt(i, end, scopeEnd);
        const size_t close = matchClose(ctx, i + 1);
        if (close >= end)
            return opaqueStmt(i, end, scopeEnd);
        const int head = newBlock();
        edge(cur, head);
        cur = head;
        append(i, close + 1);
        const int body = newBlock();
        const int exitB = newBlock();
        edge(head, body);
        edge(head, exitB);
        cur = body;
        const size_t k =
            parseStmt(close + 1, end, exitB, head, scopeEnd);
        if (!terminated)
            edge(cur, head);
        terminated = false;
        cur = exitB;
        return k;
    }

    size_t
    parseFor(size_t i, size_t end, size_t scopeEnd)
    {
        if (!at(i + 1, end, "("))
            return opaqueStmt(i, end, scopeEnd);
        const size_t close = matchClose(ctx, i + 1);
        if (close >= end)
            return opaqueStmt(i, end, scopeEnd);
        const int head = newBlock();
        edge(cur, head);
        cur = head;
        append(i, close + 1);
        const int body = newBlock();
        const int exitB = newBlock();
        edge(head, body);
        edge(head, exitB);
        cur = body;
        const size_t k =
            parseStmt(close + 1, end, exitB, head, scopeEnd);
        if (!terminated)
            edge(cur, head);
        terminated = false;
        cur = exitB;
        return k;
    }

    size_t
    parseDo(size_t i, size_t end, size_t scopeEnd)
    {
        const int body = newBlock();
        edge(cur, body);
        const int condB = newBlock();
        const int exitB = newBlock();
        cur = body;
        size_t k = parseStmt(i + 1, end, exitB, condB, scopeEnd);
        if (!terminated)
            edge(cur, condB);
        terminated = false;
        cur = condB;
        if (kw(k, end, "while") && at(k + 1, end, "(")) {
            const size_t close = matchClose(ctx, k + 1);
            if (close < end) {
                append(k, close + 1);
                k = close + 1;
                if (at(k, end, ";"))
                    ++k;
            }
        }
        edge(condB, body);
        edge(condB, exitB);
        cur = exitB;
        return k;
    }

    size_t
    parseSwitch(size_t i, size_t end, int cont, size_t scopeEnd)
    {
        if (!at(i + 1, end, "("))
            return opaqueStmt(i, end, scopeEnd);
        const size_t close = matchClose(ctx, i + 1);
        if (close >= end || !at(close + 1, end, "{"))
            return opaqueStmt(i, end, scopeEnd);
        append(i, close + 1);
        const int head = cur;
        const int exitB = newBlock();
        const size_t bodyClose = matchClose(ctx, close + 1);
        const size_t bend = bodyClose < end ? bodyClose : end;
        size_t k = close + 2;
        terminated = true; // code before the first label is dead
        while (k < bend) {
            const bool isCase = kw(k, bend, "case");
            const bool isDefault =
                kw(k, bend, "default") && at(k + 1, bend, ":");
            if (isCase || isDefault) {
                size_t j = k + 1;
                while (j < bend && !isPunctTok(ctx.codeTok(j), ":"))
                    ++j;
                const bool fellThrough = !terminated;
                const int prevB = cur;
                const int lab = newBlock();
                edge(head, lab);
                if (fellThrough)
                    edge(prevB, lab);
                terminated = false;
                cur = lab;
                k = j + 1;
                continue;
            }
            k = parseStmt(k, bend, exitB, cont, bend);
        }
        if (!terminated)
            edge(cur, exitB);
        terminated = false;
        edge(head, exitB); // no matching label
        cur = exitB;
        return bodyClose < end ? bodyClose + 1 : end;
    }

    size_t
    parseTry(size_t i, size_t end, int brk, int cont, size_t scopeEnd)
    {
        if (!at(i + 1, end, "{"))
            return opaqueStmt(i, end, scopeEnd);
        const size_t open = i + 1;
        const size_t close = matchClose(ctx, open);
        if (close >= end)
            return opaqueStmt(i, end, scopeEnd);
        fn.tryRanges.emplace_back(open, close);
        const int preB = cur;
        const int tryB = newBlock();
        edge(preB, tryB);
        cur = tryB;
        parseSeq(open + 1, close, brk, cont, close);
        const int tryEnd = cur;
        const bool tryTerm = terminated;
        terminated = false;
        const int join = newBlock();
        if (!tryTerm)
            edge(tryEnd, join);
        size_t k = close + 1;
        while (kw(k, end, "catch") && at(k + 1, end, "(")) {
            const size_t pclose = matchClose(ctx, k + 1);
            if (pclose >= end || !at(pclose + 1, end, "{"))
                break;
            const size_t bclose = matchClose(ctx, pclose + 1);
            if (bclose >= end)
                break;
            const int cb = newBlock();
            // An exception can surface anywhere inside the try body,
            // so the handler is reachable from both its entry and its
            // exit (which makes try-assigned locals visible in it).
            edge(preB, cb);
            edge(tryEnd, cb);
            cur = cb;
            append(k, pclose + 1);
            parseSeq(pclose + 2, bclose, brk, cont, bclose);
            if (!terminated)
                edge(cur, join);
            terminated = false;
            k = bclose + 1;
        }
        cur = join;
        return k;
    }
};

} // namespace

size_t
matchClose(const FileContext &ctx, size_t openIdx)
{
    const std::string &open = ctx.codeTok(openIdx).text;
    const std::string close =
        open == "(" ? ")" : open == "{" ? "}" : "]";
    int depth = 0;
    for (size_t j = openIdx; j < ctx.code.size(); ++j) {
        const Token &t = ctx.codeTok(j);
        if (t.kind != TokKind::Punct)
            continue;
        if (t.text == open)
            ++depth;
        else if (t.text == close && --depth == 0)
            return j;
    }
    return ctx.code.size();
}

std::vector<FlowFunction>
parseFunctions(const FileContext &ctx)
{
    std::vector<FlowFunction> out;
    const size_t n = ctx.code.size();
    size_t i = 0;
    while (i < n) {
        const Token &t = ctx.codeTok(i);
        if (ppTok(ctx, i) || t.kind != TokKind::Identifier ||
            reservedName(t.text) || i + 1 >= n ||
            !isPunctTok(ctx.codeTok(i + 1), "(")) {
            ++i;
            continue;
        }
        const size_t parClose = matchClose(ctx, i + 1);
        if (parClose >= n) {
            ++i;
            continue;
        }

        // Post-parameter scan: cv/ref/noexcept/override/attribute
        // clutter until the body '{', a ctor-init ':', or evidence
        // this is a declaration/call after all.
        size_t bodyOpen = n;
        size_t j = parClose + 1;
        while (j < n) {
            const Token &h = ctx.codeTok(j);
            if (isPunctTok(h, "{")) {
                bodyOpen = j;
                break;
            }
            if (h.kind == TokKind::Identifier) {
                if (j + 1 < n && isPunctTok(ctx.codeTok(j + 1), "(")) {
                    const size_t c = matchClose(ctx, j + 1);
                    if (c >= n)
                        break;
                    j = c + 1; // noexcept(...) / E3_REQUIRES(...)
                    continue;
                }
                ++j;
                continue;
            }
            if (isPunctTok(h, "->") || isPunctTok(h, "&") ||
                isPunctTok(h, "&&") || isPunctTok(h, "*") ||
                isPunctTok(h, "::") || isPunctTok(h, "<") ||
                isPunctTok(h, ">") || isPunctTok(h, "[") ||
                isPunctTok(h, "]")) {
                ++j;
                continue;
            }
            if (isPunctTok(h, ":")) {
                bodyOpen = skipCtorInit(ctx, j + 1, n);
                break;
            }
            break;
        }
        if (bodyOpen >= n) {
            ++i;
            continue;
        }
        const size_t bodyClose = matchClose(ctx, bodyOpen);
        if (bodyClose >= n) {
            ++i;
            continue;
        }

        FlowFunction fn;
        fn.name = t.text;
        fn.nameIdx = i;
        fn.line = t.line;
        if (i >= 2 && isPunctTok(ctx.codeTok(i - 1), "::") &&
            ctx.codeTok(i - 2).kind == TokKind::Identifier)
            fn.qualifier = ctx.codeTok(i - 2).text;

        // Header: walk back to the previous statement/scope boundary;
        // what lies between is the return type, specifiers, template
        // header and attributes.
        size_t hb = i;
        while (hb > 0) {
            const Token &p = ctx.codeTok(hb - 1);
            if (ppTok(ctx, hb - 1) || isPunctTok(p, ";") ||
                isPunctTok(p, "{") || isPunctTok(p, "}") ||
                isPunctTok(p, ":") || isPunctTok(p, ",") ||
                isPunctTok(p, "(") || isPunctTok(p, ")"))
                break;
            --hb;
        }
        fn.headerBegin = hb;
        for (size_t h = hb; h < i; ++h) {
            const Token &p = ctx.codeTok(h);
            if (isIdentTok(p, "E3_HOT"))
                fn.hot = true;
            if (isIdentTok(p, "Status") || isIdentTok(p, "Result"))
                fn.returnsErrorType = true;
        }
        fn.bodyBegin = bodyOpen + 1;
        fn.bodyEnd = bodyClose;

        CfgBuilder builder(ctx, fn);
        builder.parseSeq(fn.bodyBegin, fn.bodyEnd, -1, -1,
                         fn.bodyEnd);
        out.push_back(std::move(fn));
        i = bodyClose + 1;
    }
    return out;
}

} // namespace e3::lint
