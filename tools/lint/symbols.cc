/**
 * @file
 * Scoped symbol tracking over recovered functions: error-typed local
 * declarations, live lock regions, and the CFG-reachability read query
 * the discarded-error rule (E3L013) is built on.
 *
 * Liveness here is deliberately read-oriented: a local "lives" past a
 * point when any CFG-reachable later token reads it. An occurrence
 * immediately followed by plain `=` is a write (overwriting an
 * unchecked Status is exactly the laundering E3L013 exists to catch);
 * `==`, `+=` and friends lex as single tokens, so compound reads still
 * count.
 */

#include "lint/lint.hh"

namespace e3::lint {

namespace {

/** Skip a balanced `<...>` template-argument list, if one opens at i. */
size_t
skipTemplateArgs(const FileContext &ctx, size_t i, size_t end)
{
    if (i >= end || !isPunctTok(ctx.codeTok(i), "<"))
        return i;
    int depth = 0;
    for (size_t j = i; j < end; ++j) {
        const Token &t = ctx.codeTok(j);
        if (isPunctTok(t, "<")) {
            ++depth;
        } else if (isPunctTok(t, ">")) {
            if (--depth == 0)
                return j + 1;
        } else if (isPunctTok(t, ";") || isPunctTok(t, "{")) {
            break; // a comparison, not a template list
        }
    }
    return i;
}

} // namespace

std::vector<LocalVar>
collectLocals(const FileContext &ctx, const FlowFunction &fn)
{
    std::vector<LocalVar> out;
    std::vector<size_t> scopes; // close indices of open '{' scopes
    size_t i = fn.bodyBegin;
    while (i < fn.bodyEnd) {
        const Token &t = ctx.codeTok(i);
        if (isPunctTok(t, "{")) {
            scopes.push_back(matchClose(ctx, i));
            ++i;
            continue;
        }
        if (isPunctTok(t, "}")) {
            if (!scopes.empty() && scopes.back() == i)
                scopes.pop_back();
            ++i;
            continue;
        }
        if (!isIdentTok(t, "Status") && !isIdentTok(t, "Result")) {
            ++i;
            continue;
        }
        // `Status::error(...)` et al. are calls, not declarations.
        size_t j = i + 1;
        j = skipTemplateArgs(ctx, j, fn.bodyEnd);
        while (j < fn.bodyEnd && (isPunctTok(ctx.codeTok(j), "&") ||
                                  isPunctTok(ctx.codeTok(j), "*") ||
                                  isIdentTok(ctx.codeTok(j), "const")))
            ++j;
        if (j < fn.bodyEnd &&
            ctx.codeTok(j).kind == TokKind::Identifier &&
            j + 1 < fn.bodyEnd) {
            const Token &after = ctx.codeTok(j + 1);
            if (isPunctTok(after, "=") || isPunctTok(after, ";") ||
                isPunctTok(after, "(") || isPunctTok(after, "{")) {
                LocalVar v;
                v.name = ctx.codeTok(j).text;
                v.declIdx = j;
                v.scopeEnd =
                    scopes.empty() ? fn.bodyEnd : scopes.back();
                out.push_back(std::move(v));
            }
        }
        i = j > i ? j : i + 1;
    }
    return out;
}

void
recordLockDecls(const FileContext &ctx, FlowFunction &fn,
                size_t stmtBegin, size_t stmtEnd, size_t scopeEnd)
{
    // Only depth-zero declarations count: a guard inside a lambda or
    // brace initializer within this statement locks some other scope,
    // not this one.
    int pd = 0, bd = 0, sd = 0;
    for (size_t i = stmtBegin; i < stmtEnd; ++i) {
        const Token &t = ctx.codeTok(i);
        if (t.kind == TokKind::Punct) {
            if (t.text == "(")
                ++pd;
            else if (t.text == ")")
                --pd;
            else if (t.text == "{")
                ++bd;
            else if (t.text == "}")
                --bd;
            else if (t.text == "[")
                ++sd;
            else if (t.text == "]")
                --sd;
            continue;
        }
        if (pd != 0 || bd != 0 || sd != 0)
            continue;
        const bool isLock = isIdentTok(t, "MutexLock");
        const bool isPair = isIdentTok(t, "MutexLockPair");
        if (!isLock && !isPair)
            continue;
        if (i + 2 >= stmtEnd ||
            ctx.codeTok(i + 1).kind != TokKind::Identifier ||
            !isPunctTok(ctx.codeTok(i + 2), "("))
            continue;
        LockRegion region;
        region.begin = stmtEnd; // live from the statement's end
        region.end = scopeEnd;  // to the enclosing scope's close
        region.pair = isPair;
        region.name = ctx.codeTok(i + 1).text;
        region.line = t.line;
        fn.locks.push_back(std::move(region));
    }
}

bool
identifierReadAfter(const FileContext &ctx, const FlowFunction &fn,
                    size_t fromIdx, const std::string &name)
{
    auto readIn = [&](size_t b, size_t e) {
        for (size_t k = b; k < e; ++k) {
            const Token &t = ctx.codeTok(k);
            if (t.kind != TokKind::Identifier || t.text != name)
                continue;
            if (k + 1 < ctx.code.size() &&
                isPunctTok(ctx.codeTok(k + 1), "="))
                continue; // plain assignment: a write
            return true;
        }
        return false;
    };

    // Locate the (block, range) holding fromIdx.
    int startB = -1;
    size_t startR = 0;
    for (size_t b = 0; b < fn.blocks.size() && startB < 0; ++b) {
        const CfgBlock &blk = fn.blocks[b];
        for (size_t r = 0; r < blk.ranges.size(); ++r) {
            if (fromIdx >= blk.ranges[r].first &&
                fromIdx < blk.ranges[r].second) {
                startB = static_cast<int>(b);
                startR = r;
                break;
            }
        }
    }
    if (startB < 0) {
        // Not inside any modeled range (malformed body): fall back to
        // a linear scan, which can only under-report violations.
        return readIn(fromIdx + 1, fn.bodyEnd);
    }

    const CfgBlock &sb = fn.blocks[startB];
    if (readIn(fromIdx + 1, sb.ranges[startR].second))
        return true;
    for (size_t r = startR + 1; r < sb.ranges.size(); ++r) {
        if (readIn(sb.ranges[r].first, sb.ranges[r].second))
            return true;
    }

    // BFS over successors. The start block is deliberately not marked
    // visited: a loop back-edge may legitimately re-enter it, at which
    // point even its pre-fromIdx tokens are reachable reads.
    std::vector<char> seen(fn.blocks.size(), 0);
    std::vector<int> work(sb.succs.begin(), sb.succs.end());
    while (!work.empty()) {
        const int b = work.back();
        work.pop_back();
        if (seen[b])
            continue;
        seen[b] = 1;
        for (const auto &range : fn.blocks[b].ranges) {
            if (readIn(range.first, range.second))
                return true;
        }
        for (int s : fn.blocks[b].succs)
            work.push_back(s);
    }
    return false;
}

} // namespace e3::lint
