/**
 * @file
 * e3_lint driver: policy evaluation, waiver filtering, file
 * collection, and output formatting. The linter core is kept free of
 * process concerns (no exit(), no stdout) so tests can drive it on
 * in-memory snippets; tools/e3_lint.cc owns the CLI.
 */

#include "lint/lint.hh"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>

namespace e3::lint {

namespace {

bool
hasPrefix(const std::string &path, const std::string &prefix)
{
    if (prefix.empty())
        return true;
    if (path.rfind(prefix, 0) != 0)
        return false;
    // "src/nn" must not match "src/nn_extras/foo.cc".
    return path.size() == prefix.size() ||
           path[prefix.size()] == '/' || prefix.back() == '/';
}

bool
lintableExtension(const std::string &path)
{
    static const char *const kExts[] = {".cc", ".hh", ".cpp", ".hpp",
                                        ".h"};
    for (const char *ext : kExts) {
        const size_t len = std::string(ext).size();
        if (path.size() > len &&
            path.compare(path.size() - len, len, ext) == 0)
            return true;
    }
    return false;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (char c : s) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        case '\r': out += "\\r"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::set<int>
FileContext::waivedLines(const std::string &waiverToken) const
{
    std::set<int> lines;
    int prevCodeLine = 0; // last line holding a code token so far
    size_t codeIdx = 0;
    for (size_t i = 0; i < tokens.size(); ++i) {
        while (codeIdx < code.size() && code[codeIdx] < i) {
            prevCodeLine = tokens[code[codeIdx]].line;
            ++codeIdx;
        }
        const Token &t = tokens[i];
        if (t.kind != TokKind::Comment)
            continue;
        const size_t marker = t.text.find("e3-lint:");
        if (marker == std::string::npos)
            continue;
        const std::string rest = t.text.substr(marker + 8);
        if (rest.find(waiverToken) == std::string::npos)
            continue;
        lines.insert(t.line);
        // A standalone waiver comment (no code before it on its own
        // line) also covers the line that follows.
        if (prevCodeLine != t.line)
            lines.insert(t.line + 1);
    }
    return lines;
}

void
Policy::add(const std::string &pathPrefix, const std::string &ruleId,
            bool enabled)
{
    directives_.push_back(Directive{pathPrefix, ruleId, enabled});
}

void
Policy::skipTree(const std::string &pathPrefix)
{
    skips_.push_back(pathPrefix);
}

bool
Policy::enabled(const std::string &ruleId,
                const std::string &path) const
{
    bool on = true;
    for (const Directive &d : directives_) {
        if (!d.ruleId.empty() && d.ruleId != ruleId)
            continue;
        if (hasPrefix(path, d.prefix))
            on = d.enabled;
    }
    return on;
}

bool
Policy::skipped(const std::string &path) const
{
    return std::any_of(skips_.begin(), skips_.end(),
                       [&](const std::string &prefix) {
                           return hasPrefix(path, prefix);
                       });
}

Policy
defaultPolicy()
{
    Policy p;
    // Determinism-scoped rules are off by default and switched on for
    // the evolve/evaluate path. src/env joins the issue's five: lane
    // episode dynamics feed fitness directly.
    static const char *const kDeterminismDirs[] = {
        "src/neat", "src/nn", "src/e3", "src/runtime", "src/persist",
        "src/env"};
    p.add("", "E3L002", false);
    p.add("", "E3L004", false);
    for (const char *dir : kDeterminismDirs) {
        p.add(dir, "E3L002", true);
        p.add(dir, "E3L004", true);
    }

    // random_device: the rng module is its one sanctioned home.
    p.add("src/common/rng.hh", "E3L003", false);
    p.add("src/common/rng.cc", "E3L003", false);

    // Float equality: tests assert bit-exactness on purpose.
    p.add("tests", "E3L006", false);

    // Library-exit rule: src/ only — tools, benches, examples and
    // tests are application code where fatal() is the right call.
    p.add("", "E3L008", false);
    p.add("src", "E3L008", true);
    p.add("src/common/logging.hh", "E3L008", false); // defines it

    // Lock discipline: the annotated wrappers are mandatory
    // everywhere except src/common, where they are implemented.
    p.add("src/common", "E3L010", false);

    // Thread spawning is concentrated in the pool and the server.
    p.add("src/runtime", "E3L011", false);
    p.add("src/serve", "E3L011", false);

    // Explicit memory orders: determinism dirs plus the concurrent
    // observability/common layers, where orderings carry real intent.
    p.add("", "E3L012", false);
    for (const char *dir : kDeterminismDirs)
        p.add(dir, "E3L012", true);
    p.add("src/obs", "E3L012", true);
    p.add("src/common", "E3L012", true);

    // Discarded errors: tests assert on Status values their own way
    // (CHECK macros, expected-failure probes), so the rule is scoped
    // out of tests/ — except the lint fixtures, which exist to fire.
    p.add("tests", "E3L013", false);

    // Throw containment is a library (src/) contract; application code
    // and tests may let exceptions propagate to their own harness.
    p.add("", "E3L016", false);
    p.add("src", "E3L016", true);

    // The flow rules must all fire inside their fixture pairs, which
    // are linted by explicit path from the process tests.
    static const char *const kFlowRules[] = {"E3L013", "E3L014",
                                             "E3L015", "E3L016",
                                             "E3L017", "E3L018"};
    for (const char *id : kFlowRules)
        p.add("tests/fixtures/lint", id, true);

    // Deliberately-broken lint fixtures live here.
    p.skipTree("tests/fixtures");
    return p;
}

FileContext
buildFileContext(const std::string &path, const std::string &source,
                 const CallSummary *summary)
{
    FileContext ctx;
    ctx.path = path;
    ctx.tokens = tokenize(source);
    ctx.code.reserve(ctx.tokens.size());
    for (size_t i = 0; i < ctx.tokens.size(); ++i) {
        if (ctx.tokens[i].kind != TokKind::Comment)
            ctx.code.push_back(i);
    }
    ctx.summary = summary;
    ctx.functions = parseFunctions(ctx);
    return ctx;
}

std::vector<Diagnostic>
lintSource(const std::string &path, const std::string &source,
           const Policy &policy, const CallSummary *summary)
{
    // With no merged summary (unit tests on in-memory snippets), build
    // a single-TU one from the file itself so the flow rules still see
    // same-file definitions.
    CallSummary selfSummary;
    if (summary == nullptr) {
        for (const FunctionSummary &fn : summarizeSource(path, source))
            selfSummary.add(fn);
        selfSummary.finalize();
        summary = &selfSummary;
    }
    const FileContext ctx = buildFileContext(path, source, summary);

    std::vector<Diagnostic> out;
    // Pre-waiver fired lines per waiver token: the stale-waiver rule
    // needs to know what each rule found before waivers filtered it.
    std::map<std::string, std::set<int>> firedByToken;
    std::vector<const Rule *> checkedRules;
    const Rule *staleRule = nullptr;
    for (const auto &rule : allRules()) {
        if (!policy.enabled(rule->id(), path))
            continue;
        if (rule->id() == "E3L018") {
            staleRule = rule.get();
            continue;
        }
        checkedRules.push_back(rule.get());
        std::vector<Diagnostic> found;
        rule->check(ctx, found);
        std::set<int> &fired = firedByToken[rule->waiver()];
        for (const Diagnostic &d : found)
            fired.insert(d.line);
        if (found.empty())
            continue;
        const std::set<int> waived = ctx.waivedLines(rule->waiver());
        for (Diagnostic &d : found) {
            if (!waived.count(d.line))
                out.push_back(std::move(d));
        }
    }

    // E3L018: an e3-lint waiver naming an enabled rule's token must
    // suppress at least one of that rule's pre-waiver findings on a
    // line it covers; otherwise the waiver is stale. Tokens of rules
    // disabled at this path are left alone — their waivers document
    // intent for paths where the rule does apply.
    if (staleRule != nullptr) {
        const std::set<int> staleWaived =
            ctx.waivedLines(staleRule->waiver());
        int prevCodeLine = 0;
        size_t codeIdx = 0;
        for (size_t i = 0; i < ctx.tokens.size(); ++i) {
            while (codeIdx < ctx.code.size() && ctx.code[codeIdx] < i) {
                prevCodeLine = ctx.tokens[ctx.code[codeIdx]].line;
                ++codeIdx;
            }
            const Token &t = ctx.tokens[i];
            if (t.kind != TokKind::Comment)
                continue;
            const size_t marker = t.text.find("e3-lint:");
            if (marker == std::string::npos)
                continue;
            const std::string rest = t.text.substr(marker + 8);
            const bool standalone = prevCodeLine != t.line;
            for (const Rule *rule : checkedRules) {
                if (rest.find(rule->waiver()) == std::string::npos)
                    continue;
                const std::set<int> &fired =
                    firedByToken[rule->waiver()];
                const bool live =
                    fired.count(t.line) != 0 ||
                    (standalone && fired.count(t.line + 1) != 0);
                if (!live && staleWaived.count(t.line) == 0) {
                    out.push_back(Diagnostic{
                        ctx.path, t.line, staleRule->id(),
                        staleRule->name(),
                        "waiver '" + rule->waiver() +
                            "' no longer suppresses any " +
                            rule->id() + " finding on the lines "
                            "it covers"});
                }
            }
        }
    }
    std::sort(out.begin(), out.end(),
              [](const Diagnostic &a, const Diagnostic &b) {
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.ruleId < b.ruleId;
              });
    return out;
}

std::vector<std::string>
collectSources(const std::string &rootDir,
               const std::vector<std::string> &roots,
               const Policy &policy)
{
    namespace fs = std::filesystem;
    std::vector<std::string> out;
    const fs::path base(rootDir);
    for (const std::string &root : roots) {
        const fs::path abs = base / root;
        std::error_code ec;
        if (fs::is_directory(abs, ec)) {
            for (fs::recursive_directory_iterator
                     it(abs, fs::directory_options::skip_permission_denied,
                        ec),
                 end;
                 it != end; it.increment(ec)) {
                if (ec)
                    break;
                if (!it->is_regular_file(ec))
                    continue;
                const std::string rel =
                    fs::relative(it->path(), base, ec).generic_string();
                if (lintableExtension(rel) && !policy.skipped(rel))
                    out.push_back(rel);
            }
        } else if (fs::is_regular_file(abs, ec)) {
            // Explicitly named files are always linted, even inside
            // skipped trees (the fixture process test relies on this).
            out.push_back(fs::path(root).generic_string());
        }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
}

std::string
toJson(const std::vector<Diagnostic> &diags)
{
    std::ostringstream oss;
    oss << "{\"diagnostics\":[";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        if (i)
            oss << ',';
        oss << "{\"file\":\"" << jsonEscape(d.file) << "\""
            << ",\"line\":" << d.line << ",\"rule\":\"" << d.ruleId
            << "\"" << ",\"name\":\"" << d.ruleName << "\""
            << ",\"message\":\"" << jsonEscape(d.message) << "\"}";
    }
    oss << "],\"count\":" << diags.size() << "}\n";
    return oss.str();
}

std::string
ruleCatalog()
{
    std::ostringstream oss;
    for (const auto &rule : allRules()) {
        oss << rule->id() << "  " << rule->name() << "\n"
            << "    waiver: // e3-lint: " << rule->waiver() << "\n"
            << "    " << rule->summary() << "\n";
    }
    return oss.str();
}

} // namespace e3::lint
