/**
 * @file
 * The e3_lint rule registry.
 *
 * Every rule is a small pass over one file's token stream. Rules are
 * conservative approximations by design — a linter without semantic
 * analysis cannot prove "this loop iterates an unordered container",
 * so E3L004 flags any unordered-container use in determinism-critical
 * directories and lets an audited `// e3-lint: ordered-ok` waiver
 * record why a specific use is safe. The full catalog, the waiver
 * policy and each rule's rationale live in DESIGN.md §10.
 */

#include "lint/lint.hh"

#include <algorithm>

namespace e3::lint {

namespace {

bool
isIdent(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

bool
isPunct(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Is code token i preceded by `std ::` (or just `::`)? */
bool
stdQualified(const FileContext &ctx, size_t i)
{
    if (i < 1 || !isPunct(ctx.codeTok(i - 1), "::"))
        return false;
    return i < 2 || isIdent(ctx.codeTok(i - 2), "std");
}

/**
 * E3L001 — libc random number generators.
 *
 * rand()/srand() share hidden global state, have terrible statistical
 * quality, and (worse, here) seed from whatever the call site felt
 * like. Every draw in this codebase must come from an explicit
 * e3::Rng so streams are a pure function of the experiment seed.
 */
class NoStdRand : public Rule
{
  public:
    NoStdRand()
        : Rule("E3L001", "no-std-rand", "rand-ok",
               "libc rand/srand/rand_r/drand48 are banned; draw from "
               "an explicit e3::Rng stream instead")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        static const char *const kBanned[] = {"rand", "srand", "rand_r",
                                              "drand48", "lrand48"};
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier)
                continue;
            const bool banned =
                std::any_of(std::begin(kBanned), std::end(kBanned),
                            [&](const char *b) { return t.text == b; });
            if (!banned)
                continue;
            // Require a call or std:: qualification so a local
            // variable named `rand` does not fire.
            const bool call = i + 1 < ctx.code.size() &&
                              isPunct(ctx.codeTok(i + 1), "(");
            if (call || stdQualified(ctx, i)) {
                out.push_back(diag(ctx, t.line,
                                   "'" + t.text +
                                       "' draws from hidden global "
                                       "state; use e3::Rng"));
            }
        }
    }
};

/**
 * E3L002 — wall-clock reads in determinism-critical code.
 *
 * time(nullptr) seeding and chrono ::now() reads are how runs become
 * irreproducible. In the evolve/evaluate path the only sanctioned
 * clock is the modeled timing layer; real-time measurement belongs in
 * common/timing and src/obs. Measurement-only sites (e.g. the thread
 * pool's idle accounting) carry a wall-clock-ok waiver.
 */
class NoWallClock : public Rule
{
  public:
    NoWallClock()
        : Rule("E3L002", "no-wall-clock", "wall-clock-ok",
               "wall-clock reads (time(), clock(), chrono ::now(), "
               "gettimeofday) are banned in determinism-critical "
               "directories")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier)
                continue;
            const bool call = i + 1 < ctx.code.size() &&
                              isPunct(ctx.codeTok(i + 1), "(");
            const bool clockFn =
                call && (t.text == "time" || t.text == "clock" ||
                         t.text == "gettimeofday" ||
                         t.text == "localtime" || t.text == "mktime");
            const bool chronoNow =
                call && t.text == "now" && i >= 1 &&
                isPunct(ctx.codeTok(i - 1), "::");
            if (clockFn || chronoNow) {
                out.push_back(
                    diag(ctx, t.line,
                         "wall-clock read '" + t.text +
                             "' in a determinism-critical path"));
            }
        }
    }
};

/**
 * E3L003 — std::random_device outside common/rng.
 *
 * random_device is the canonical "seed from entropy" footgun: one call
 * and the run is unreproducible. Only the rng module may ever touch
 * it (it currently does not — seeds always come from configuration).
 */
class NoRandomDevice : public Rule
{
  public:
    NoRandomDevice()
        : Rule("E3L003", "no-random-device", "random-device-ok",
               "std::random_device is banned outside common/rng; "
               "seeds come from configuration")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (isIdent(t, "random_device")) {
                out.push_back(diag(
                    ctx, t.line,
                    "std::random_device makes runs unreproducible"));
            }
        }
    }
};

/**
 * E3L004 — unordered containers in determinism-critical directories.
 *
 * unordered_map/unordered_set iteration order depends on the standard
 * library, the hash seed and the insertion history; one range-for in
 * the evolve path and reproduce() draws RNG in a different order on a
 * different libstdc++. Without semantic analysis "declares" is the
 * conservative proxy for "iterates": any unordered-container use in
 * these directories needs an ordered-ok waiver stating why its
 * iteration order can never reach an RNG draw or an output.
 */
class NoUnorderedIter : public Rule
{
  public:
    NoUnorderedIter()
        : Rule("E3L004", "no-unordered-iter", "ordered-ok",
               "unordered_map/unordered_set are banned in "
               "determinism-critical directories (iteration order is "
               "implementation-defined)")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        static const char *const kBanned[] = {
            "unordered_map", "unordered_set", "unordered_multimap",
            "unordered_multiset"};
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier)
                continue;
            for (const char *b : kBanned) {
                if (t.text == b) {
                    out.push_back(
                        diag(ctx, t.line,
                             "'" + t.text +
                                 "' in a determinism-critical "
                                 "directory; use std::map or a "
                                 "sorted vector"));
                    break;
                }
            }
        }
    }
};

/**
 * E3L005 — ordered containers keyed by pointer.
 *
 * std::map<T*, ...> iterates in address order, and addresses change
 * run to run (ASLR, allocation history). Key by a stable id — genome
 * key, species id, name — never by pointer.
 */
class NoPointerKey : public Rule
{
  public:
    NoPointerKey()
        : Rule("E3L005", "no-pointer-key", "pointer-key-ok",
               "std::map/std::set keyed by a pointer iterate in "
               "address order, which differs run to run; key by a "
               "stable id")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        static const char *const kContainers[] = {"map", "set",
                                                  "multimap",
                                                  "multiset"};
        for (size_t i = 0; i + 1 < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier ||
                !isPunct(ctx.codeTok(i + 1), "<"))
                continue;
            const bool container = std::any_of(
                std::begin(kContainers), std::end(kContainers),
                [&](const char *c) { return t.text == c; });
            if (!container)
                continue;
            // Scan the first template argument (up to a ',' or the
            // matching '>' at depth 1) for a raw pointer declarator.
            int depth = 1;
            for (size_t j = i + 2;
                 j < ctx.code.size() && depth > 0; ++j) {
                const Token &a = ctx.codeTok(j);
                if (isPunct(a, "<"))
                    ++depth;
                else if (isPunct(a, ">"))
                    --depth;
                else if (depth == 1 && isPunct(a, ","))
                    break;
                else if (depth == 1 && isPunct(a, "*")) {
                    out.push_back(
                        diag(ctx, t.line,
                             "'" + t.text +
                                 "' keyed by a pointer iterates in "
                                 "address order"));
                    break;
                }
                else if (isPunct(a, ";") || isPunct(a, "{"))
                    break; // not a template argument list after all
            }
        }
    }
};

/**
 * E3L006 — floating-point equality against a literal.
 *
 * `x == 0.3` is almost always a rounding bug. The rule fires when
 * either operand of ==/!= is a floating literal; exact-representation
 * comparisons (sparsity checks against 0.0) carry a float-eq-ok
 * waiver. Tests are exempt by policy — bit-exactness assertions are
 * their job.
 */
class NoFloatEq : public Rule
{
  public:
    NoFloatEq()
        : Rule("E3L006", "no-float-eq", "float-eq-ok",
               "==/!= against a floating-point literal; compare with "
               "a tolerance (or waive an intentional exact check)")
    {
    }

    static bool
    isFloatLiteral(const Token &t)
    {
        if (t.kind != TokKind::Number)
            return false;
        if (t.text.size() > 1 && t.text[0] == '0' &&
            (t.text[1] == 'x' || t.text[1] == 'X'))
            return false; // hex integer
        const bool hasPoint =
            t.text.find('.') != std::string::npos;
        const bool hasExp =
            t.text.find('e') != std::string::npos ||
            t.text.find('E') != std::string::npos;
        const bool floatSuffix =
            t.text.back() == 'f' || t.text.back() == 'F';
        return hasPoint || hasExp || floatSuffix;
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Punct ||
                (t.text != "==" && t.text != "!="))
                continue;
            const bool floaty =
                (i >= 1 && isFloatLiteral(ctx.codeTok(i - 1))) ||
                (i + 1 < ctx.code.size() &&
                 isFloatLiteral(ctx.codeTok(i + 1)));
            if (floaty) {
                out.push_back(
                    diag(ctx, t.line,
                         "floating-point '" + t.text +
                             "' against a literal"));
            }
        }
    }
};

/**
 * E3L007 — headers must open with an include guard.
 *
 * Accepts either `#pragma once` or a classic `#ifndef X` / `#define X`
 * pair as the first preprocessor business of the file (this repo uses
 * the classic style; both are machine-checkable).
 */
class HeaderGuard : public Rule
{
  public:
    HeaderGuard()
        : Rule("E3L007", "header-guard", "header-guard-ok",
               "headers must open with #pragma once or a matching "
               "#ifndef/#define guard")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        const bool header =
            ctx.path.size() > 3 &&
            (ctx.path.rfind(".hh") == ctx.path.size() - 3 ||
             ctx.path.rfind(".hpp") == ctx.path.size() - 4 ||
             ctx.path.rfind(".h") == ctx.path.size() - 2);
        if (!header || ctx.code.empty())
            return;
        const auto &c = ctx.code;
        const Token &first = ctx.tokens[c[0]];
        if (first.kind == TokKind::Directive) {
            if (first.text == "pragma" && c.size() > 1 &&
                isIdent(ctx.tokens[c[1]], "once"))
                return;
            if (first.text == "ifndef" && c.size() > 3 &&
                ctx.tokens[c[1]].kind == TokKind::Identifier &&
                ctx.tokens[c[2]].kind == TokKind::Directive &&
                ctx.tokens[c[2]].text == "define" &&
                ctx.tokens[c[3]].text == ctx.tokens[c[1]].text)
                return;
        }
        out.push_back(diag(ctx, 1,
                           "header is not guarded (#pragma once or "
                           "#ifndef/#define pair)"));
    }
};

/**
 * E3L008 — e3_fatal in library code.
 *
 * Library code (src/) has no business calling exit(): a user-caused
 * error must surface as Result<T>/Status so embedding applications
 * (and the checkpoint-resume path, which degrades errors to warnings)
 * can decide. e3_panic/e3_assert stay legal — an internal invariant
 * violation has no meaningful recovery. Pre-existing app-boundary
 * sites carry audited fatal-ok waivers until they are ported.
 */
class NoFatalInLib : public Rule
{
  public:
    NoFatalInLib()
        : Rule("E3L008", "no-fatal-in-lib", "fatal-ok",
               "e3_fatal (exit(1)) in library code; return "
               "Result<T>/Status and keep process exit at the app "
               "boundary")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (isIdent(t, "e3_fatal")) {
                out.push_back(diag(ctx, t.line,
                                   "library code exits the process; "
                                   "return Result<T> instead"));
            }
        }
    }
};

/**
 * E3L009 — module dependency layering under src/.
 *
 * The build encodes a strict module DAG (common at the bottom, the e3
 * platform at the top); one stray `#include "e3/..."` from a leaf
 * module and the layering — and with it, what the verifier may verify
 * and what neat/nn may know about — silently erodes. The rule reads
 * every quoted #include in files under src/<module>/ and checks the
 * included module against an allow-list mirroring the CMake link
 * graph. Genuinely sanctioned exceptions carry a layering-ok waiver.
 */
class ModuleDeps : public Rule
{
  public:
    ModuleDeps()
        : Rule("E3L009", "module-deps", "layering-ok",
               "#include crossing the src/ module DAG (e.g. nn "
               "including e3); depend only on lower layers")
    {
    }

    /** Allowed quoted-include targets per src module (self implied). */
    struct ModuleRule
    {
        const char *module;
        std::vector<const char *> allowed;
    };

    static const std::vector<ModuleRule> &
    table()
    {
        // Keep in sync with target_link_libraries in src/CMakeLists.txt
        // and the DAG documented in DESIGN.md §11.
        static const std::vector<ModuleRule> t = {
            {"common", {}},
            {"obs", {"common"}},
            {"env", {"common", "obs"}},
            {"nn", {"common"}},
            {"mlp", {"common"}},
            {"neat", {"common", "nn", "obs"}},
            {"rl", {"common", "env", "mlp", "obs"}},
            {"inax", {"common", "nn", "obs"}},
            {"runtime", {"common", "env", "obs"}},
            {"verify", {"common", "env", "inax", "neat", "nn", "obs"}},
            {"persist", {"common", "neat", "nn", "obs", "verify"}},
            {"serve",
             {"common", "env", "neat", "nn", "obs", "persist",
              "verify"}},
            {"e3",
             {"common", "env", "inax", "mlp", "neat", "nn", "obs",
              "persist", "rl", "runtime", "verify"}},
        };
        return t;
    }

    static const ModuleRule *
    findModule(const std::string &name)
    {
        for (const ModuleRule &m : table()) {
            if (name == m.module)
                return &m;
        }
        return nullptr;
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        // Only files under src/<module>/ participate; tools, tests,
        // benches and examples may include anything.
        if (ctx.path.rfind("src/", 0) != 0)
            return;
        const size_t slash = ctx.path.find('/', 4);
        if (slash == std::string::npos)
            return;
        const std::string own = ctx.path.substr(4, slash - 4);
        const ModuleRule *rule = findModule(own);
        if (!rule)
            return; // unknown module: nothing to enforce yet

        for (size_t i = 0; i + 1 < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Directive || t.text != "include")
                continue;
            const Token &path = ctx.codeTok(i + 1);
            if (path.kind != TokKind::String)
                continue; // <system> includes are not module paths
            const size_t sep = path.text.find('/');
            if (sep == std::string::npos)
                continue;
            const std::string target = path.text.substr(0, sep);
            if (target == own || !findModule(target))
                continue;
            const bool allowed = std::any_of(
                rule->allowed.begin(), rule->allowed.end(),
                [&](const char *a) { return target == a; });
            if (!allowed) {
                out.push_back(
                    diag(ctx, path.line,
                         "src/" + own + " must not include \"" +
                             path.text + "\": '" + target +
                             "' is not among its allowed "
                             "dependencies"));
            }
        }
    }
};

/**
 * E3L010 — raw standard mutex primitives.
 *
 * std::mutex/std::lock_guard/std::unique_lock carry no thread-safety
 * annotations, so clang's -Wthread-safety analysis cannot see which
 * data they guard. All locking goes through the annotated e3::Mutex /
 * e3::MutexLock wrappers (common/thread_annotations.hh); only
 * src/common may touch the raw primitives, because that is where the
 * wrappers are built.
 */
class NoRawMutex : public Rule
{
  public:
    NoRawMutex()
        : Rule("E3L010", "no-raw-mutex", "raw-mutex-ok",
               "raw std::mutex/std::lock_guard/std::unique_lock are "
               "banned outside src/common; use the annotated "
               "e3::Mutex/e3::MutexLock wrappers")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        static const char *const kBanned[] = {
            "mutex",           "timed_mutex",
            "recursive_mutex", "shared_mutex",
            "lock_guard",      "unique_lock",
            "scoped_lock",     "condition_variable",
            "condition_variable_any"};
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier)
                continue;
            const bool banned =
                std::any_of(std::begin(kBanned), std::end(kBanned),
                            [&](const char *b) { return t.text == b; });
            // `::`-qualification keeps `#include <mutex>` and member
            // names like `mutex_` from firing.
            if (banned && stdQualified(ctx, i)) {
                out.push_back(
                    diag(ctx, t.line,
                         "raw 'std::" + t.text +
                             "' is invisible to -Wthread-safety; use "
                             "e3::Mutex/e3::MutexLock"));
            }
        }
    }
};

/**
 * E3L011 — raw std::thread outside the sanctioned spawners.
 *
 * Thread lifetime is a correctness liability (detached threads, joins
 * forgotten on early return), so spawning is concentrated in
 * src/runtime (the pool) and src/serve (the network front end).
 * Everything else submits work to the pool; genuinely standalone
 * threads (test race drivers, the bench load generator) carry an
 * audited raw-thread-ok waiver. `std::thread::hardware_concurrency()`
 * stays legal — the rule skips `std::thread` followed by `::`.
 */
class NoRawThread : public Rule
{
  public:
    NoRawThread()
        : Rule("E3L011", "no-raw-thread", "raw-thread-ok",
               "raw std::thread is banned outside src/runtime and "
               "src/serve; submit work to the runtime pool instead")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 0; i < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier ||
                (t.text != "thread" && t.text != "jthread"))
                continue;
            if (!stdQualified(ctx, i))
                continue;
            // std::thread::hardware_concurrency() and friends are
            // queries, not spawns.
            if (i + 1 < ctx.code.size() &&
                isPunct(ctx.codeTok(i + 1), "::"))
                continue;
            out.push_back(diag(ctx, t.line,
                               "raw 'std::" + t.text +
                                   "' outside the sanctioned "
                                   "spawners; use the runtime pool"));
        }
    }
};

/**
 * E3L012 — atomic accesses without an explicit memory order.
 *
 * `.load()` / `.store(x)` / `fetch_add(1)` default to seq_cst, which
 * both hides the author's intent (was seq_cst required, or just the
 * default?) and invites silent weakening during refactors. In
 * determinism-critical directories every atomic access spells its
 * ordering out. The check is a conservative token approximation: a
 * `.load(`/`.store(`/`.fetch_*(` call whose argument list contains no
 * `memory_order` identifier.
 */
class ExplicitMemoryOrder : public Rule
{
  public:
    ExplicitMemoryOrder()
        : Rule("E3L012", "explicit-memory-order", "memory-order-ok",
               "atomic .load()/.store()/fetch_*() without an explicit "
               "std::memory_order argument in a determinism-critical "
               "directory")
    {
    }

    static bool
    isAtomicAccessName(const std::string &text)
    {
        return text == "load" || text == "store" ||
               text.rfind("fetch_", 0) == 0;
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (size_t i = 1; i + 1 < ctx.code.size(); ++i) {
            const Token &t = ctx.codeTok(i);
            if (t.kind != TokKind::Identifier ||
                !isAtomicAccessName(t.text))
                continue;
            // Member call syntax only: `x.load(` or `p->load(`.
            const Token &prev = ctx.codeTok(i - 1);
            if (!isPunct(prev, ".") && !isPunct(prev, "->"))
                continue;
            if (!isPunct(ctx.codeTok(i + 1), "("))
                continue;
            // Scan the argument list (to the matching close paren)
            // for a memory_order mention.
            bool ordered = false;
            int depth = 0;
            for (size_t j = i + 1; j < ctx.code.size(); ++j) {
                const Token &a = ctx.codeTok(j);
                if (isPunct(a, "("))
                    ++depth;
                else if (isPunct(a, ")")) {
                    if (--depth == 0)
                        break;
                } else if (a.kind == TokKind::Identifier &&
                           a.text.rfind("memory_order", 0) == 0) {
                    ordered = true;
                    break;
                }
            }
            if (!ordered) {
                out.push_back(
                    diag(ctx, t.line,
                         "atomic '" + t.text +
                             "' relies on the implicit seq_cst "
                             "default; spell the memory order out"));
            }
        }
    }
};

/**
 * E3L013 — discarded Status/Result.
 *
 * Both error types are class-level [[nodiscard]], but the attribute is
 * launderable: a `(void)` cast or a named local that is never read
 * compiles clean and still drops the error on the floor. This rule
 * uses the call summary to know which calls return Status/Result and
 * the CFG to know whether a bound local is read on any path after its
 * binding — a read inside only one branch of an if counts, code after
 * a return does not.
 */
class DiscardedError : public Rule
{
  public:
    DiscardedError()
        : Rule("E3L013", "discarded-error", "discard-ok",
               "a Status/Result-returning call whose value is "
               "void-cast or bound to a local that is never read on "
               "any path")
    {
    }

    /** Is the expression starting at @p e a whole statement? */
    static bool
    statementStart(const FileContext &ctx, const FlowFunction &fn,
                   size_t e)
    {
        const Token &p = ctx.codeTok(e - 1);
        if (isPunct(p, ";") || isPunct(p, "{") || isPunct(p, "}"))
            return true;
        if (isIdent(p, "else") || isIdent(p, "do"))
            return true;
        if (isPunct(p, ":")) {
            // `case X:` and `label:` start a statement; a ternary's
            // ':' or a range-for's ':' do not. Walk back to whatever
            // owns the colon.
            size_t j = e - 1;
            int depth = 0;
            size_t steps = 0;
            while (j > fn.headerBegin && steps++ < 64) {
                --j;
                const Token &q = ctx.codeTok(j);
                if (isPunct(q, ")") || isPunct(q, "]") ||
                    isPunct(q, "}")) {
                    ++depth;
                    continue;
                }
                if (isPunct(q, "(") || isPunct(q, "[") ||
                    isPunct(q, "{")) {
                    if (depth == 0)
                        return isPunct(q, "{");
                    --depth;
                    continue;
                }
                if (depth != 0)
                    continue;
                if (isPunct(q, "?"))
                    return false;
                if (isIdent(q, "case") || isIdent(q, "default") ||
                    isPunct(q, ";"))
                    return true;
            }
            return false;
        }
        if (isPunct(p, ")")) {
            // The close of a control clause (`if (...) call();`) is a
            // statement start; the close of a cast or call is not.
            int depth = 0;
            size_t j = e - 1;
            while (true) {
                const Token &q = ctx.codeTok(j);
                if (isPunct(q, ")"))
                    ++depth;
                else if (isPunct(q, "(") && --depth == 0)
                    break;
                if (j == fn.headerBegin || j == 0)
                    return false;
                --j;
            }
            if (j == 0)
                return false;
            const Token &kw = ctx.codeTok(j - 1);
            return isIdent(kw, "if") || isIdent(kw, "while") ||
                   isIdent(kw, "for") || isIdent(kw, "switch");
        }
        return false;
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        if (!ctx.summary)
            return;
        for (const FlowFunction &fn : ctx.functions) {
            const std::vector<LocalVar> locals =
                collectLocals(ctx, fn);
            for (size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
                const Token &t = ctx.codeTok(i);
                if (t.kind != TokKind::Identifier ||
                    i + 1 >= fn.bodyEnd ||
                    !isPunct(ctx.codeTok(i + 1), "("))
                    continue;
                const bool memberCall =
                    i >= 1 && (isPunct(ctx.codeTok(i - 1), ".") ||
                               isPunct(ctx.codeTok(i - 1), "->"));
                if (!ctx.summary->returnsErrorType(t.text, memberCall))
                    continue;
                const size_t close = matchClose(ctx, i + 1);
                if (close >= fn.bodyEnd)
                    continue;

                // Expression start: collapse `ns::`, `obj.`, `p->`.
                size_t e = i;
                while (e >= fn.bodyBegin + 2 &&
                       (isPunct(ctx.codeTok(e - 1), "::") ||
                        isPunct(ctx.codeTok(e - 1), ".") ||
                        isPunct(ctx.codeTok(e - 1), "->")) &&
                       ctx.codeTok(e - 2).kind == TokKind::Identifier)
                    e -= 2;
                // e == bodyBegin is fine: the previous token is the
                // body's '{', which statementStart handles.
                if (e < fn.bodyBegin)
                    continue;
                const Token &prev = ctx.codeTok(e - 1);

                // (void)call(...)
                if (isPunct(prev, ")") && e >= 3 &&
                    isIdent(ctx.codeTok(e - 2), "void") &&
                    isPunct(ctx.codeTok(e - 3), "(")) {
                    out.push_back(diag(
                        ctx, t.line,
                        "'" + t.text +
                            "' returns Status/Result but the value "
                            "is cast to void; handle the error"));
                    continue;
                }
                // static_cast<void>(call(...))
                if (isPunct(prev, "(") && e >= 5 &&
                    isPunct(ctx.codeTok(e - 2), ">") &&
                    isIdent(ctx.codeTok(e - 3), "void") &&
                    isPunct(ctx.codeTok(e - 4), "<") &&
                    isIdent(ctx.codeTok(e - 5), "static_cast")) {
                    out.push_back(diag(
                        ctx, t.line,
                        "'" + t.text +
                            "' returns Status/Result but the value "
                            "is cast to void; handle the error"));
                    continue;
                }
                // Bare statement: call(...);
                if (statementStart(ctx, fn, e) &&
                    close + 1 < fn.bodyEnd + 1 &&
                    isPunct(ctx.codeTok(close + 1), ";")) {
                    out.push_back(diag(
                        ctx, t.line,
                        "result of '" + t.text +
                            "' (Status/Result) is discarded"));
                    continue;
                }
                // NAME = call(...): a declaration with an error type
                // (or auto), or a reassignment of a tracked local.
                if (!isPunct(prev, "=") || e < 2 ||
                    ctx.codeTok(e - 2).kind != TokKind::Identifier)
                    continue;
                const size_t nameAt = e - 2;
                const std::string name = ctx.codeTok(nameAt).text;
                bool declared = false, errorTyped = false;
                size_t b = nameAt;
                while (b > fn.headerBegin) {
                    const Token &q = ctx.codeTok(b - 1);
                    const bool typeTok =
                        q.kind == TokKind::Identifier ||
                        isPunct(q, "::") || isPunct(q, "<") ||
                        isPunct(q, ">") || isPunct(q, "&") ||
                        isPunct(q, "*");
                    if (!typeTok)
                        break;
                    declared = true;
                    if (isIdent(q, "Status") || isIdent(q, "Result") ||
                        isIdent(q, "auto"))
                        errorTyped = true;
                    --b;
                }
                if (declared && !errorTyped)
                    continue; // bound into a non-error local/member
                if (!declared) {
                    // Reassignment: only tracked error-typed locals.
                    const bool tracked = std::any_of(
                        locals.begin(), locals.end(),
                        [&](const LocalVar &v) {
                            return v.name == name && v.declIdx < i &&
                                   i < v.scopeEnd;
                        });
                    if (!tracked)
                        continue;
                }
                // Statement end: the ';' at depth zero after the call.
                size_t endIdx = close + 1;
                int depth = 0;
                while (endIdx < fn.bodyEnd) {
                    const Token &q = ctx.codeTok(endIdx);
                    if (isPunct(q, "(") || isPunct(q, "{"))
                        ++depth;
                    else if (isPunct(q, ")") || isPunct(q, "}"))
                        --depth;
                    else if (isPunct(q, ";") && depth <= 0)
                        break;
                    ++endIdx;
                }
                if (endIdx >= fn.bodyEnd)
                    continue;
                if (!identifierReadAfter(ctx, fn, endIdx, name)) {
                    out.push_back(diag(
                        ctx, t.line,
                        "Status/Result of '" + t.text +
                            "' is bound to '" + name +
                            "' but never read on any path"));
                }
            }
        }
    }
};

/**
 * E3L014 — blocking call while a lock is live.
 *
 * A condvar wait, file/socket I/O, a join or a transitively-blocking
 * repo call under an e3::MutexLock turns every other thread contending
 * for that mutex into a convoy — on the serve path that is tail
 * latency, in the pool it is a deadlock risk. Lock regions are
 * lexical (declaration to end of enclosing scope, the guard's
 * destructor point). The one sanctioned shape is the condvar wait
 * loop itself: `cv.wait(lock)` with exactly that single non-pair lock
 * live releases the mutex inside wait by contract.
 */
class BlockingUnderLock : public Rule
{
  public:
    BlockingUnderLock()
        : Rule("E3L014", "blocking-under-lock", "blocking-ok",
               "blocking call (condvar wait, file/socket I/O, join, "
               "or a transitively blocking repo function) while an "
               "e3::MutexLock/MutexLockPair is live")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (const FlowFunction &fn : ctx.functions) {
            if (fn.locks.empty())
                continue;
            // A call written inside a lambda under a live guard is
            // deferred work: it usually runs on another thread or
            // after the guard died (thread bodies, pool tasks), so it
            // is not "under" this lock.
            const auto lambdas = lambdaBodies(ctx, fn);
            for (size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
                const Token &t = ctx.codeTok(i);
                if (t.kind != TokKind::Identifier ||
                    i + 1 >= fn.bodyEnd ||
                    !isPunct(ctx.codeTok(i + 1), "("))
                    continue;
                const bool deferred = std::any_of(
                    lambdas.begin(), lambdas.end(),
                    [&](const std::pair<size_t, size_t> &body) {
                        return i > body.first && i < body.second;
                    });
                if (deferred)
                    continue;
                size_t liveCount = 0;
                bool livePair = false;
                for (const LockRegion &lock : fn.locks) {
                    if (i >= lock.begin && i < lock.end) {
                        ++liveCount;
                        livePair = livePair || lock.pair;
                    }
                }
                if (liveCount == 0)
                    continue;
                const bool member =
                    isPunct(ctx.codeTok(i - 1), ".") ||
                    isPunct(ctx.codeTok(i - 1), "->");
                const bool waitFamily =
                    member && (t.text == "wait" ||
                               t.text == "wait_for" ||
                               t.text == "wait_until");
                if (waitFamily) {
                    // cv.wait(lock) releases its single lock inside;
                    // a second live lock (or a pair) stays held.
                    if (liveCount > 1 || livePair) {
                        out.push_back(diag(
                            ctx, t.line,
                            "condvar '" + t.text +
                                "' with more than its own lock "
                                "live; the extra lock stays held "
                                "for the whole wait"));
                    }
                    continue;
                }
                const bool blocking =
                    directBlockingAt(ctx, i) ||
                    (ctx.summary && ctx.summary->blocks(t.text));
                if (blocking) {
                    out.push_back(diag(
                        ctx, t.line,
                        "blocking call '" + t.text +
                            "' while a lock is live in the "
                            "enclosing scope"));
                }
            }
        }
    }
};

/**
 * E3L015 — allocation inside an E3_HOT function.
 *
 * Functions marked E3_HOT (common/hot.hh) are the per-step inference
 * surface: activateBatch/activateLane, the env stepLane, the serve
 * batch evaluate. One malloc there is a latency spike on the edge
 * target and a throughput bug under load. Direct new/malloc/container
 * growth fires, as does a call to a repo function whose summary says
 * it directly allocates; deeper (transitive) allocation is left to
 * the callee's own E3_HOT marking, by design.
 */
class AllocInHotPath : public Rule
{
  public:
    AllocInHotPath()
        : Rule("E3L015", "alloc-in-hot-path", "alloc-ok",
               "new/malloc/container growth (or a call to a directly "
               "allocating repo function) inside an E3_HOT function")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (const FlowFunction &fn : ctx.functions) {
            if (!fn.hot)
                continue;
            for (size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
                const Token &t = ctx.codeTok(i);
                if (directAllocationAt(ctx, i)) {
                    out.push_back(diag(
                        ctx, t.line,
                        "'" + t.text + "' allocates inside E3_HOT '" +
                            fn.name + "'"));
                    continue;
                }
                if (t.kind == TokKind::Identifier &&
                    i + 1 < fn.bodyEnd &&
                    isPunct(ctx.codeTok(i + 1), "(") &&
                    t.text != fn.name && ctx.summary &&
                    ctx.summary->allocates(t.text)) {
                    out.push_back(diag(
                        ctx, t.line,
                        "E3_HOT '" + fn.name + "' calls '" + t.text +
                            "', which allocates"));
                }
            }
        }
    }
};

/**
 * E3L016 — throw escaping library code.
 *
 * src/ reports errors as Status/Result; a throw that leaves a library
 * function rides an invisible control path the callers (and the
 * checkpoint-resume degrade-to-warning story) do not handle. A throw
 * inside a try in the same function is fine — that is the sanctioned
 * local-validation shape (see common/ini.cc).
 */
class ThrowEscapesLibrary : public Rule
{
  public:
    ThrowEscapesLibrary()
        : Rule("E3L016", "throw-escapes-library", "throw-ok",
               "a throw in src/ outside any try of the same "
               "function escapes as an exception instead of a "
               "Status/Result")
    {
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (const FlowFunction &fn : ctx.functions) {
            for (size_t site : fn.throwSites) {
                const bool covered = std::any_of(
                    fn.tryRanges.begin(), fn.tryRanges.end(),
                    [&](const std::pair<size_t, size_t> &range) {
                        return site > range.first &&
                               site < range.second;
                    });
                if (!covered) {
                    out.push_back(diag(
                        ctx, ctx.codeTok(site).line,
                        "throw in '" + fn.name +
                            "' escapes the function; return "
                            "Status/Result instead"));
                }
            }
        }
    }
};

/**
 * E3L017 — phase-level entry points without a TraceSpan.
 *
 * The observability contract (DESIGN.md §6) is that every phase-level
 * subsystem entry emits a span, so a stalled generation or a slow
 * checkpoint shows up in the trace rather than in a debugger. The
 * table below names the entry points; a listed function with no
 * TraceSpan anywhere in its body fires.
 */
class MissingSpan : public Rule
{
  public:
    MissingSpan()
        : Rule("E3L017", "missing-span", "span-ok",
               "a phase-level subsystem entry point with no "
               "obs::TraceSpan on any path")
    {
    }

    struct Entry
    {
        const char *path;
        const char *function;
    };

    static const std::vector<Entry> &
    table()
    {
        static const std::vector<Entry> t = {
            {"src/e3/platform.cc", "run"},
            {"src/runtime/parallel_eval.cc", "evaluate"},
            {"src/serve/server.cc", "evaluateBatch"},
            {"src/persist/checkpoint.cc", "writeCheckpoint"},
            {"src/persist/checkpoint.cc", "loadLatestCheckpoint"},
            {"tests/fixtures/lint/e3l017_violation.cc",
             "handleRequest"},
            {"tests/fixtures/lint/e3l017_clean.cc", "handleRequest"},
        };
        return t;
    }

    void
    check(const FileContext &ctx, std::vector<Diagnostic> &out) const
        override
    {
        for (const Entry &entry : table()) {
            if (ctx.path != entry.path)
                continue;
            for (const FlowFunction &fn : ctx.functions) {
                if (fn.name != entry.function)
                    continue;
                bool hasSpan = false;
                for (size_t i = fn.bodyBegin;
                     i < fn.bodyEnd && !hasSpan; ++i)
                    hasSpan = isIdent(ctx.codeTok(i), "TraceSpan");
                if (!hasSpan) {
                    out.push_back(diag(
                        ctx, fn.line,
                        "'" + fn.name +
                            "' is a phase-level entry point but "
                            "opens no TraceSpan"));
                }
            }
        }
    }
};

/**
 * E3L018 — stale waivers.
 *
 * A waiver that no longer suppresses anything is worse than dead code:
 * it documents a hazard that moved, and it will silently swallow the
 * next real finding that lands on its line. The check itself lives in
 * the lint driver (lintSource), which is the only place that sees
 * every rule's pre-waiver findings; this registry entry carries the
 * ID, the catalog text and the waiver token.
 */
class StaleWaiver : public Rule
{
  public:
    StaleWaiver()
        : Rule("E3L018", "stale-waiver", "stale-waiver-ok",
               "an e3-lint waiver comment whose rule produces no "
               "finding on the lines it covers")
    {
    }

    void
    check(const FileContext &, std::vector<Diagnostic> &) const
        override
    {
        // Implemented by the driver; see lintSource().
    }
};

} // namespace

const std::vector<std::unique_ptr<Rule>> &
allRules()
{
    static const std::vector<std::unique_ptr<Rule>> rules = [] {
        std::vector<std::unique_ptr<Rule>> r;
        r.push_back(std::make_unique<NoStdRand>());
        r.push_back(std::make_unique<NoWallClock>());
        r.push_back(std::make_unique<NoRandomDevice>());
        r.push_back(std::make_unique<NoUnorderedIter>());
        r.push_back(std::make_unique<NoPointerKey>());
        r.push_back(std::make_unique<NoFloatEq>());
        r.push_back(std::make_unique<HeaderGuard>());
        r.push_back(std::make_unique<NoFatalInLib>());
        r.push_back(std::make_unique<ModuleDeps>());
        r.push_back(std::make_unique<NoRawMutex>());
        r.push_back(std::make_unique<NoRawThread>());
        r.push_back(std::make_unique<ExplicitMemoryOrder>());
        r.push_back(std::make_unique<DiscardedError>());
        r.push_back(std::make_unique<BlockingUnderLock>());
        r.push_back(std::make_unique<AllocInHotPath>());
        r.push_back(std::make_unique<ThrowEscapesLibrary>());
        r.push_back(std::make_unique<MissingSpan>());
        r.push_back(std::make_unique<StaleWaiver>());
        return r;
    }();
    return rules;
}

} // namespace e3::lint
