/**
 * @file
 * e3_lint — a fast, dependency-free determinism linter for this repo.
 *
 * The platform's headline invariant is that a NEAT run is bit-identical
 * across thread counts, async overlap, and checkpoint/resume. End-to-end
 * trace-equality tests guard the invariant after the fact; this linter
 * guards it at the source: it statically bans the classic ways
 * nondeterminism sneaks into a codebase (wall-clock seeding, libc rand,
 * unordered-container iteration in the evolve path, pointer-keyed
 * ordered containers) plus a handful of general correctness rules
 * (header guards, float equality, library code exiting the process).
 *
 * Design: a lightweight C++ tokenizer (comments, strings — including
 * raw strings — numbers, identifiers, preprocessor directives,
 * multi-char operators) feeds a registry of token-stream rules. A
 * per-directory policy decides which rules apply where (e.g. the
 * unordered-iteration ban only covers determinism-critical
 * directories, float-equality is relaxed under tests/). Individual
 * lines are waived with an audited comment:
 *
 *     // e3-lint: ordered-ok — insertion order is rebuilt by key below
 *
 * A waiver comment covers its own line and, when it stands alone, the
 * line that follows. Every rule has its own waiver token so a waiver
 * never silences more than it names.
 */

#ifndef E3_TOOLS_LINT_LINT_HH
#define E3_TOOLS_LINT_LINT_HH

#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace e3::lint {

/** Token categories the rules dispatch on. */
enum class TokKind {
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< integer or floating literal (suffixes included)
    String,     ///< "..." (verbatim contents) or R"(...)" (collapsed)
    Char,       ///< '...'
    Punct,      ///< single punctuation or multi-char operator
    Directive,  ///< preprocessor keyword: text is e.g. "pragma"
    Comment,    ///< // or block comment, text includes full body
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
    /**
     * Token belongs to a preprocessor directive line (the keyword
     * itself or anything after it up to the unspliced end of line).
     * The flow passes skip these: a macro body is not a statement.
     */
    bool pp = false;
};

/** Token text tests shared by the rules and the flow passes. */
inline bool
isIdentTok(const Token &t, const char *text)
{
    return t.kind == TokKind::Identifier && t.text == text;
}

inline bool
isPunctTok(const Token &t, const char *text)
{
    return t.kind == TokKind::Punct && t.text == text;
}

/** Tokenize C++ source; never fails (unknown bytes become Punct). */
std::vector<Token> tokenize(const std::string &source);

/** One rule violation, pointing at a file:line. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string ruleId;   ///< e.g. "E3L004"
    std::string ruleName; ///< e.g. "no-unordered-iter"
    std::string message;
};

// ---------------------------------------------------------------------------
// Flow-sensitive core (cfg.cc, symbols.cc, callgraph.cc)
//
// A lightweight recursive-descent pass recovers function definitions
// from the token stream and builds one control-flow graph per body:
// basic blocks of code-token ranges linked by successor edges, with
// if/else joins, loop back-edges, switch fan-out, early-return
// termination and try/catch fan-in modeled. On top of the CFG sit a
// scoped symbol view (error-typed locals, live lock regions) and a
// cross-TU call summary built in a first pass over the tree and
// consumed by the flow rules (E3L013–E3L017) in the second.
// ---------------------------------------------------------------------------

/** One CFG basic block: ordered code-token ranges plus successors. */
struct CfgBlock
{
    /** Half-open [begin, end) ranges of code-token indices. */
    std::vector<std::pair<size_t, size_t>> ranges;
    std::vector<int> succs;
};

/**
 * A live e3::MutexLock / e3::MutexLockPair region: from just past the
 * guard's declaration statement to the close of the lexical scope the
 * guard was declared in (its destructor point).
 */
struct LockRegion
{
    size_t begin = 0; ///< code index just past the declaration
    size_t end = 0;   ///< code index of the enclosing scope's '}'
    bool pair = false;
    std::string name; ///< declared guard variable
    int line = 0;
};

/** One recovered function definition with its CFG. */
struct FlowFunction
{
    std::string name;
    std::string qualifier; ///< class name for out-of-line members
    int line = 0;          ///< line of the function name
    size_t headerBegin = 0; ///< code index of the first header token
    size_t nameIdx = 0;     ///< code index of the name token
    size_t bodyBegin = 0;   ///< code index just inside the body '{'
    size_t bodyEnd = 0;     ///< code index of the body's closing '}'
    bool hot = false;              ///< E3_HOT in the header
    bool returnsErrorType = false; ///< Status/Result return type
    std::vector<CfgBlock> blocks;  ///< blocks[0] is the entry
    /** (open, close) code-index pairs of try-statement bodies. */
    std::vector<std::pair<size_t, size_t>> tryRanges;
    std::vector<size_t> throwSites; ///< code indices of `throw`
    std::vector<LockRegion> locks;
};

/** An error-typed (Status/Result) local declaration. */
struct LocalVar
{
    std::string name;
    size_t declIdx = 0;  ///< code index of the declared name
    size_t scopeEnd = 0; ///< code index of the enclosing scope's '}'
};

/**
 * What the cross-TU pass knows about one function, keyed by unqualified
 * name. Same-name functions (overloads, same-name members of different
 * classes) are merged conservatively: any-of for the flags, union for
 * the callees.
 */
struct FunctionSummary
{
    std::string name;
    bool returnsErrorType = false; ///< returns Status / Result<T>
    /**
     * Error-type flag split by definition kind: a free function and an
     * out-of-line member sharing a name are different functions, and a
     * member call site (`obj.record(...)`) can only reach the member —
     * so `errMember` alone decides it, killing the collision where a
     * void member shares its name with a Status-returning free helper.
     * Unqualified calls could be either (implicit-this members) and
     * consult both.
     */
    bool errFree = false;
    bool errMember = false;
    bool blocks = false;    ///< condvar wait, file/socket I/O, join
    bool allocates = false; ///< new/malloc/container growth directly
    std::vector<std::string> calls; ///< unqualified callee names
};

/**
 * Merged per-tree call summaries. `blocks` is closed transitively over
 * repo-local calls in finalize(); `allocates` deliberately stays
 * direct-only — a transitive closure would mark nearly every function
 * (anything reaching a compile or setup path) and drown E3L015 in
 * noise, while the hot functions' own direct callees are exactly the
 * steady-state surface the rule is guarding.
 */
class CallSummary
{
  public:
    /** Merge one function's summary (conservative any-of/union). */
    void add(const FunctionSummary &fn);

    /** Close `blocks` over repo-local calls (fixpoint). */
    void finalize();

    /**
     * Does a call to @p name yield a Status/Result? @p memberCall
     * (receiver written as `obj.` / `ptr->`) restricts the answer to
     * member definitions; unqualified calls consult both kinds.
     */
    bool returnsErrorType(const std::string &name,
                          bool memberCall) const;
    bool blocks(const std::string &name) const;
    bool allocates(const std::string &name) const;

  private:
    std::map<std::string, FunctionSummary> byName_;
};

struct FileContext;

/** Recover function definitions and build their CFGs. */
std::vector<FlowFunction> parseFunctions(const FileContext &ctx);

/**
 * Code index of the close matching the open paren/brace/bracket at
 * @p openIdx, or ctx.code.size() when unbalanced.
 */
size_t matchClose(const FileContext &ctx, size_t openIdx);

/** Error-typed (Status/Result) locals declared in @p fn's body. */
std::vector<LocalVar> collectLocals(const FileContext &ctx,
                                    const FlowFunction &fn);

/**
 * Record e3::MutexLock/MutexLockPair declarations at statement level
 * in [stmtBegin, stmtEnd) as lock regions living to @p scopeEnd.
 * Called by the CFG builder, which knows real statement boundaries —
 * so a guard inside a lambda body never leaks a region into the
 * enclosing scope.
 */
void recordLockDecls(const FileContext &ctx, FlowFunction &fn,
                     size_t stmtBegin, size_t stmtEnd,
                     size_t scopeEnd);

/**
 * Is identifier @p name read at any code index CFG-reachable after
 * @p fromIdx (which must lie inside @p fn's body)? An occurrence
 * immediately followed by plain `=` is a write, not a read; code after
 * a `return` in the same block is unreachable and does not count.
 */
bool identifierReadAfter(const FileContext &ctx,
                         const FlowFunction &fn, size_t fromIdx,
                         const std::string &name);

/**
 * Half-open (bodyBegin, bodyEnd) code-index ranges of lambda bodies in
 * @p fn. Lock-scope reasoning treats these as deferred: a call written
 * inside a lambda under a live guard usually runs on another thread
 * (or after the guard died), so E3L014 skips them.
 */
std::vector<std::pair<size_t, size_t>>
lambdaBodies(const FileContext &ctx, const FlowFunction &fn);

/** True when code token @p i directly allocates (new/malloc/growth). */
bool directAllocationAt(const FileContext &ctx, size_t i);

/** True when code token @p i is a directly blocking call. */
bool directBlockingAt(const FileContext &ctx, size_t i);

/** First-pass harvest: one FunctionSummary per definition in @p source. */
std::vector<FunctionSummary>
summarizeSource(const std::string &path, const std::string &source);

/** Everything a rule sees about one file. */
struct FileContext
{
    std::string path; ///< repo-relative, '/'-separated
    /** Full token stream, comments included (for waiver scans). */
    std::vector<Token> tokens;
    /** Indices into tokens with comments filtered out. */
    std::vector<size_t> code;
    /** Recovered function definitions with their CFGs. */
    std::vector<FlowFunction> functions;
    /** Cross-TU call summary; never null inside rule checks. */
    const CallSummary *summary = nullptr;

    const Token &codeTok(size_t i) const { return tokens[code[i]]; }

    /**
     * Lines covered by an `// e3-lint: <token>` waiver comment: the
     * comment's own line, plus the next line when the comment stands
     * alone (so long diagnostics can carry the audit note above them).
     */
    std::set<int> waivedLines(const std::string &waiverToken) const;
};

/** Tokenize + parse @p source into a rule-ready context. */
FileContext buildFileContext(const std::string &path,
                             const std::string &source,
                             const CallSummary *summary);

/** A single lint rule over one file's token stream. */
class Rule
{
  public:
    Rule(std::string id, std::string name, std::string waiver,
         std::string summary)
        : id_(std::move(id)), name_(std::move(name)),
          waiver_(std::move(waiver)), summary_(std::move(summary))
    {
    }
    virtual ~Rule() = default;

    const std::string &id() const { return id_; }
    const std::string &name() const { return name_; }
    /** Waiver token accepted after "e3-lint:". */
    const std::string &waiver() const { return waiver_; }
    const std::string &summary() const { return summary_; }

    /** Append diagnostics; waived lines are filtered by the driver. */
    virtual void check(const FileContext &ctx,
                       std::vector<Diagnostic> &out) const = 0;

  protected:
    Diagnostic
    diag(const FileContext &ctx, int line, std::string message) const
    {
        return Diagnostic{ctx.path, line, id_, name_,
                          std::move(message)};
    }

  private:
    std::string id_, name_, waiver_, summary_;
};

/** All built-in rules, in rule-ID order. */
const std::vector<std::unique_ptr<Rule>> &allRules();

/**
 * Which rules apply to which repo-relative paths. Directives are
 * evaluated in order; the last match wins, so narrow overrides follow
 * broad defaults.
 */
class Policy
{
  public:
    /** Enable/disable @p ruleId under @p pathPrefix ("" = everywhere). */
    void add(const std::string &pathPrefix, const std::string &ruleId,
             bool enabled);

    /** Exclude an entire subtree from linting (e.g. test fixtures). */
    void skipTree(const std::string &pathPrefix);

    bool enabled(const std::string &ruleId,
                 const std::string &path) const;
    bool skipped(const std::string &path) const;

  private:
    struct Directive
    {
        std::string prefix;
        std::string ruleId; ///< empty = every rule
        bool enabled = true;
    };
    std::vector<Directive> directives_;
    std::vector<std::string> skips_;
};

/**
 * The repo's policy: determinism rules scoped to the evolve path
 * (src/neat, src/nn, src/e3, src/runtime, src/persist, src/env),
 * float-equality relaxed under tests/, library-exit rule scoped to
 * src/, and the sanctioned homes of rng primitives exempted.
 */
Policy defaultPolicy();

/**
 * Lint one in-memory source against the policy. When @p summary is
 * null a single-TU summary is built from the file itself — unit tests
 * stay self-contained; the CLI passes the merged two-pass summary.
 */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &source,
                                   const Policy &policy,
                                   const CallSummary *summary = nullptr);

/**
 * Lintable files under @p roots (files or directories), as paths
 * relative to @p rootDir, sorted for deterministic output.
 * Directory walks honour Policy::skipTree; explicitly named files are
 * always included.
 */
std::vector<std::string>
collectSources(const std::string &rootDir,
               const std::vector<std::string> &roots,
               const Policy &policy);

/** Diagnostics as a JSON document for CI annotation. */
std::string toJson(const std::vector<Diagnostic> &diags);

/** Human-readable rule catalog (the --list-rules output). */
std::string ruleCatalog();

} // namespace e3::lint

#endif // E3_TOOLS_LINT_LINT_HH
