/**
 * @file
 * e3_lint — a fast, dependency-free determinism linter for this repo.
 *
 * The platform's headline invariant is that a NEAT run is bit-identical
 * across thread counts, async overlap, and checkpoint/resume. End-to-end
 * trace-equality tests guard the invariant after the fact; this linter
 * guards it at the source: it statically bans the classic ways
 * nondeterminism sneaks into a codebase (wall-clock seeding, libc rand,
 * unordered-container iteration in the evolve path, pointer-keyed
 * ordered containers) plus a handful of general correctness rules
 * (header guards, float equality, library code exiting the process).
 *
 * Design: a lightweight C++ tokenizer (comments, strings — including
 * raw strings — numbers, identifiers, preprocessor directives,
 * multi-char operators) feeds a registry of token-stream rules. A
 * per-directory policy decides which rules apply where (e.g. the
 * unordered-iteration ban only covers determinism-critical
 * directories, float-equality is relaxed under tests/). Individual
 * lines are waived with an audited comment:
 *
 *     // e3-lint: ordered-ok — insertion order is rebuilt by key below
 *
 * A waiver comment covers its own line and, when it stands alone, the
 * line that follows. Every rule has its own waiver token so a waiver
 * never silences more than it names.
 */

#ifndef E3_TOOLS_LINT_LINT_HH
#define E3_TOOLS_LINT_LINT_HH

#include <memory>
#include <set>
#include <string>
#include <vector>

namespace e3::lint {

/** Token categories the rules dispatch on. */
enum class TokKind {
    Identifier, ///< [A-Za-z_][A-Za-z0-9_]*
    Number,     ///< integer or floating literal (suffixes included)
    String,     ///< "..." (verbatim contents) or R"(...)" (collapsed)
    Char,       ///< '...'
    Punct,      ///< single punctuation or multi-char operator
    Directive,  ///< preprocessor keyword: text is e.g. "pragma"
    Comment,    ///< // or block comment, text includes full body
};

/** One lexed token with its 1-based source line. */
struct Token
{
    TokKind kind = TokKind::Punct;
    std::string text;
    int line = 0;
};

/** Tokenize C++ source; never fails (unknown bytes become Punct). */
std::vector<Token> tokenize(const std::string &source);

/** One rule violation, pointing at a file:line. */
struct Diagnostic
{
    std::string file;
    int line = 0;
    std::string ruleId;   ///< e.g. "E3L004"
    std::string ruleName; ///< e.g. "no-unordered-iter"
    std::string message;
};

/** Everything a rule sees about one file. */
struct FileContext
{
    std::string path; ///< repo-relative, '/'-separated
    /** Full token stream, comments included (for waiver scans). */
    std::vector<Token> tokens;
    /** Indices into tokens with comments filtered out. */
    std::vector<size_t> code;

    const Token &codeTok(size_t i) const { return tokens[code[i]]; }

    /**
     * Lines covered by an `// e3-lint: <token>` waiver comment: the
     * comment's own line, plus the next line when the comment stands
     * alone (so long diagnostics can carry the audit note above them).
     */
    std::set<int> waivedLines(const std::string &waiverToken) const;
};

/** A single lint rule over one file's token stream. */
class Rule
{
  public:
    Rule(std::string id, std::string name, std::string waiver,
         std::string summary)
        : id_(std::move(id)), name_(std::move(name)),
          waiver_(std::move(waiver)), summary_(std::move(summary))
    {
    }
    virtual ~Rule() = default;

    const std::string &id() const { return id_; }
    const std::string &name() const { return name_; }
    /** Waiver token accepted after "e3-lint:". */
    const std::string &waiver() const { return waiver_; }
    const std::string &summary() const { return summary_; }

    /** Append diagnostics; waived lines are filtered by the driver. */
    virtual void check(const FileContext &ctx,
                       std::vector<Diagnostic> &out) const = 0;

  protected:
    Diagnostic
    diag(const FileContext &ctx, int line, std::string message) const
    {
        return Diagnostic{ctx.path, line, id_, name_,
                          std::move(message)};
    }

  private:
    std::string id_, name_, waiver_, summary_;
};

/** All built-in rules, in rule-ID order. */
const std::vector<std::unique_ptr<Rule>> &allRules();

/**
 * Which rules apply to which repo-relative paths. Directives are
 * evaluated in order; the last match wins, so narrow overrides follow
 * broad defaults.
 */
class Policy
{
  public:
    /** Enable/disable @p ruleId under @p pathPrefix ("" = everywhere). */
    void add(const std::string &pathPrefix, const std::string &ruleId,
             bool enabled);

    /** Exclude an entire subtree from linting (e.g. test fixtures). */
    void skipTree(const std::string &pathPrefix);

    bool enabled(const std::string &ruleId,
                 const std::string &path) const;
    bool skipped(const std::string &path) const;

  private:
    struct Directive
    {
        std::string prefix;
        std::string ruleId; ///< empty = every rule
        bool enabled = true;
    };
    std::vector<Directive> directives_;
    std::vector<std::string> skips_;
};

/**
 * The repo's policy: determinism rules scoped to the evolve path
 * (src/neat, src/nn, src/e3, src/runtime, src/persist, src/env),
 * float-equality relaxed under tests/, library-exit rule scoped to
 * src/, and the sanctioned homes of rng primitives exempted.
 */
Policy defaultPolicy();

/** Lint one in-memory source against the policy. */
std::vector<Diagnostic> lintSource(const std::string &path,
                                   const std::string &source,
                                   const Policy &policy);

/**
 * Lintable files under @p roots (files or directories), as paths
 * relative to @p rootDir, sorted for deterministic output.
 * Directory walks honour Policy::skipTree; explicitly named files are
 * always included.
 */
std::vector<std::string>
collectSources(const std::string &rootDir,
               const std::vector<std::string> &roots,
               const Policy &policy);

/** Diagnostics as a JSON document for CI annotation. */
std::string toJson(const std::vector<Diagnostic> &diags);

/** Human-readable rule catalog (the --list-rules output). */
std::string ruleCatalog();

} // namespace e3::lint

#endif // E3_TOOLS_LINT_LINT_HH
