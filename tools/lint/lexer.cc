/**
 * @file
 * The e3_lint tokenizer.
 *
 * Deliberately simpler than a real C++ lexer — rules only need to tell
 * identifiers, literals, comments, preprocessor directives and a few
 * multi-char operators apart. It is exact about the things that would
 * otherwise cause false positives: string and character literals
 * (including raw strings and escapes) are swallowed whole so a banned
 * identifier inside a string never fires, and comments are kept as
 * tokens so the waiver scanner can see them.
 */

#include "lint/lint.hh"

#include <cctype>

namespace e3::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
numberChar(char c)
{
    // Permissive: covers digits, hex, binary, exponents, digit
    // separators, and the f/l/u/z suffixes. pp-number style.
    return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
           c == '\'';
}

/** Multi-char operators emitted as single Punct tokens. */
const char *const kOperators[] = {
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "++", "--",
    "+=", "-=", "*=", "/=",
};

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool lineStart = true; // only whitespace seen since the newline

    auto push = [&](TokKind kind, std::string text, int tokLine) {
        out.push_back(Token{kind, std::move(text), tokLine});
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineStart = true;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments (kept: the waiver scanner reads them).
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int tokLine = line;
            size_t j = i;
            while (j < n && src[j] != '\n')
                ++j;
            push(TokKind::Comment, src.substr(i, j - i), tokLine);
            i = j;
            lineStart = false;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int tokLine = line;
            size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            j = j + 1 < n ? j + 2 : n;
            push(TokKind::Comment, src.substr(i, j - i), tokLine);
            i = j;
            lineStart = false;
            continue;
        }

        // Preprocessor directive: '#' first on its line becomes a
        // Directive token carrying the keyword; the rest of the line
        // lexes normally (so `#ifndef GUARD` yields the guard name).
        if (c == '#' && lineStart) {
            size_t j = i + 1;
            while (j < n && (src[j] == ' ' || src[j] == '\t'))
                ++j;
            size_t k = j;
            while (k < n && identChar(src[k]))
                ++k;
            push(TokKind::Directive, src.substr(j, k - j), line);
            i = k;
            lineStart = false;
            continue;
        }

        // Raw string literal: R"delim( ... )delim".
        if (c == 'R' && i + 1 < n && src[i + 1] == '"') {
            size_t j = i + 2;
            std::string delim;
            while (j < n && src[j] != '(' && src[j] != '\n')
                delim += src[j++];
            const std::string close = ")" + delim + "\"";
            const size_t end = src.find(close, j);
            const int tokLine = line;
            const size_t stop =
                end == std::string::npos ? n : end + close.size();
            for (size_t p = i; p < stop; ++p) {
                if (src[p] == '\n')
                    ++line;
            }
            push(TokKind::String, "<raw-string>", tokLine);
            i = stop;
            lineStart = false;
            continue;
        }

        // String / char literals with escapes. String tokens keep
        // their (un-unescaped) contents — the module-dependency rule
        // reads #include paths from them; char literals stay
        // collapsed. Rules match on TokKind, so a banned identifier
        // inside a string still never fires.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int tokLine = line;
            size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                else if (src[j] == '\n')
                    ++line; // tolerate unterminated literals
                ++j;
            }
            const size_t contentEnd = j; // closing quote (or n)
            j = j < n ? j + 1 : n;
            push(quote == '"' ? TokKind::String : TokKind::Char,
                 quote == '"'
                     ? src.substr(i + 1, contentEnd - (i + 1))
                     : std::string("<literal>"),
                 tokLine);
            i = j;
            lineStart = false;
            continue;
        }

        if (identStart(c)) {
            size_t j = i;
            while (j < n && identChar(src[j]))
                ++j;
            push(TokKind::Identifier, src.substr(i, j - i), line);
            i = j;
            lineStart = false;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i;
            while (j < n && numberChar(src[j])) {
                // An exponent sign belongs to the number: 1.5e-3.
                if ((src[j] == 'e' || src[j] == 'E' || src[j] == 'p' ||
                     src[j] == 'P') &&
                    j + 1 < n && (src[j + 1] == '+' || src[j + 1] == '-'))
                    ++j;
                ++j;
            }
            push(TokKind::Number, src.substr(i, j - i), line);
            i = j;
            lineStart = false;
            continue;
        }

        // Multi-char operators, longest match first.
        bool matched = false;
        for (const char *op : kOperators) {
            const size_t len = 2;
            if (i + len <= n && src.compare(i, len, op) == 0) {
                push(TokKind::Punct, op, line);
                i += len;
                matched = true;
                break;
            }
        }
        if (matched) {
            lineStart = false;
            continue;
        }

        push(TokKind::Punct, std::string(1, c), line);
        ++i;
        lineStart = false;
    }
    return out;
}

} // namespace e3::lint
