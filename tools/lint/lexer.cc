/**
 * @file
 * The e3_lint tokenizer.
 *
 * Deliberately simpler than a real C++ lexer — rules only need to tell
 * identifiers, literals, comments, preprocessor directives and a few
 * multi-char operators apart. It is exact about the things that would
 * otherwise cause false positives: string and character literals
 * (including raw strings with encoding prefixes, and escapes) are
 * swallowed whole so a banned identifier inside a string never fires,
 * comments are kept as tokens so the waiver scanner can see them, and
 * line splices (backslash-newline, with or without a carriage return)
 * are honoured at top level, inside // comments, and inside string
 * literals so line numbers stay exact across them.
 *
 * Every token carries a `pp` flag: true from a directive's '#' to the
 * unspliced end of its line. The flow passes (cfg.cc) skip pp tokens —
 * a macro body is not a statement — while directive-matching rules
 * keep dispatching on TokKind::Directive as before.
 */

#include "lint/lint.hh"

#include <cctype>

namespace e3::lint {

namespace {

bool
identStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
identChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool
numberChar(char c)
{
    // Permissive: covers digits, hex, binary, exponents, digit
    // separators, and the f/l/u/z suffixes. pp-number style.
    return std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
           c == '\'';
}

/** Multi-char operators emitted as single Punct tokens. */
const char *const kOperators[] = {
    "==", "!=", "<=", ">=", "&&", "||", "::", "->", "++", "--",
    "+=", "-=", "*=", "/=",
};

/**
 * Length of the line splice at @p i (backslash + optional CR +
 * newline), or 0 when there is none.
 */
size_t
spliceLen(const std::string &src, size_t i)
{
    if (src[i] != '\\')
        return 0;
    if (i + 1 < src.size() && src[i + 1] == '\n')
        return 2;
    if (i + 2 < src.size() && src[i + 1] == '\r' && src[i + 2] == '\n')
        return 3;
    return 0;
}

/**
 * Does a raw string literal start at @p i? Returns the length of the
 * part before the opening '"' — 1 for R", 2 for uR"/UR"/LR",
 * 3 for u8R" — or 0 when this is not a raw string.
 */
size_t
rawPrefixLen(const std::string &src, size_t i)
{
    const size_t n = src.size();
    if (src[i] == 'R' && i + 1 < n && src[i + 1] == '"')
        return 1;
    if ((src[i] == 'u' || src[i] == 'U' || src[i] == 'L') && i + 2 < n &&
        src[i + 1] == 'R' && src[i + 2] == '"')
        return 2;
    if (src[i] == 'u' && i + 3 < n && src[i + 1] == '8' &&
        src[i + 2] == 'R' && src[i + 3] == '"')
        return 3;
    return 0;
}

} // namespace

std::vector<Token>
tokenize(const std::string &src)
{
    std::vector<Token> out;
    const size_t n = src.size();
    size_t i = 0;
    int line = 1;
    bool lineStart = true; // only whitespace seen since the newline
    bool ppMode = false;   // inside a preprocessor directive line

    auto push = [&](TokKind kind, std::string text, int tokLine) {
        out.push_back(Token{kind, std::move(text), tokLine, ppMode});
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            ++i;
            lineStart = true;
            ppMode = false;
            continue;
        }
        // A line splice joins physical lines into one logical line:
        // the directive (and the lineStart state) continues across it.
        if (const size_t splice = spliceLen(src, i)) {
            ++line;
            i += splice;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }

        // Comments (kept: the waiver scanner reads them). A splice at
        // the end of a // comment continues the comment itself.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const int tokLine = line;
            size_t j = i;
            while (j < n && src[j] != '\n') {
                if (const size_t splice = spliceLen(src, j)) {
                    ++line;
                    j += splice;
                    continue;
                }
                ++j;
            }
            push(TokKind::Comment, src.substr(i, j - i), tokLine);
            i = j;
            lineStart = false;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const int tokLine = line;
            size_t j = i + 2;
            while (j + 1 < n && !(src[j] == '*' && src[j + 1] == '/')) {
                if (src[j] == '\n')
                    ++line;
                ++j;
            }
            j = j + 1 < n ? j + 2 : n;
            push(TokKind::Comment, src.substr(i, j - i), tokLine);
            i = j;
            lineStart = false;
            continue;
        }

        // Preprocessor directive: '#' first on its line becomes a
        // Directive token carrying the keyword; the rest of the line
        // lexes normally (so `#ifndef GUARD` yields the guard name)
        // but is flagged pp until the unspliced end of line.
        if (c == '#' && lineStart) {
            size_t j = i + 1;
            while (j < n && (src[j] == ' ' || src[j] == '\t'))
                ++j;
            size_t k = j;
            while (k < n && identChar(src[k]))
                ++k;
            ppMode = true;
            push(TokKind::Directive, src.substr(j, k - j), line);
            i = k;
            lineStart = false;
            continue;
        }

        // Raw string literal: R"delim( ... )delim", with an optional
        // u8/u/U/L encoding prefix. Contents are verbatim — a
        // backslash-newline inside is literal text, not a splice.
        if (const size_t prefix = rawPrefixLen(src, i)) {
            size_t j = i + prefix + 1;
            std::string delim;
            while (j < n && src[j] != '(' && src[j] != '\n')
                delim += src[j++];
            const std::string close = ")" + delim + "\"";
            const size_t end = src.find(close, j);
            const int tokLine = line;
            const size_t stop =
                end == std::string::npos ? n : end + close.size();
            for (size_t p = i; p < stop; ++p) {
                if (src[p] == '\n')
                    ++line;
            }
            push(TokKind::String, "<raw-string>", tokLine);
            i = stop;
            lineStart = false;
            continue;
        }

        // String / char literals with escapes. String tokens keep
        // their (un-unescaped) contents — the module-dependency rule
        // reads #include paths from them; char literals stay
        // collapsed. Rules match on TokKind, so a banned identifier
        // inside a string still never fires. An escaped newline (a
        // splice) still advances the line counter.
        if (c == '"' || c == '\'') {
            const char quote = c;
            const int tokLine = line;
            size_t j = i + 1;
            while (j < n && src[j] != quote) {
                if (src[j] == '\\' && j + 1 < n) {
                    if (const size_t splice = spliceLen(src, j)) {
                        ++line;
                        j += splice;
                        continue;
                    }
                    ++j;
                } else if (src[j] == '\n') {
                    ++line; // tolerate unterminated literals
                }
                ++j;
            }
            const size_t contentEnd = j; // closing quote (or n)
            j = j < n ? j + 1 : n;
            push(quote == '"' ? TokKind::String : TokKind::Char,
                 quote == '"'
                     ? src.substr(i + 1, contentEnd - (i + 1))
                     : std::string("<literal>"),
                 tokLine);
            i = j;
            lineStart = false;
            continue;
        }

        if (identStart(c)) {
            size_t j = i;
            while (j < n && identChar(src[j]))
                ++j;
            push(TokKind::Identifier, src.substr(i, j - i), line);
            i = j;
            lineStart = false;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            size_t j = i;
            while (j < n && numberChar(src[j])) {
                // An exponent sign belongs to the number: 1.5e-3.
                if ((src[j] == 'e' || src[j] == 'E' || src[j] == 'p' ||
                     src[j] == 'P') &&
                    j + 1 < n && (src[j + 1] == '+' || src[j + 1] == '-'))
                    ++j;
                ++j;
            }
            push(TokKind::Number, src.substr(i, j - i), line);
            i = j;
            lineStart = false;
            continue;
        }

        // Multi-char operators, longest match first.
        bool matched = false;
        for (const char *op : kOperators) {
            const size_t len = 2;
            if (i + len <= n && src.compare(i, len, op) == 0) {
                push(TokKind::Punct, op, line);
                i += len;
                matched = true;
                break;
            }
        }
        if (matched) {
            lineStart = false;
            continue;
        }

        push(TokKind::Punct, std::string(1, c), line);
        ++i;
        lineStart = false;
    }
    return out;
}

} // namespace e3::lint
