/**
 * @file
 * The cross-TU call summary: pass one over the tree harvests one
 * FunctionSummary per recovered definition ({returns Status/Result,
 * blocks, allocates, callees}); pass two hands the merged CallSummary
 * to every file's flow rules. Names are unqualified — overloads and
 * same-name members of different classes merge conservatively
 * (any-of for the flags, union for the callees), which over-reports
 * never-fired names rather than missing a real one.
 *
 * `blocks` is transitively closed over repo-local calls in
 * finalize(); `allocates` stays direct-only by design (see lint.hh).
 */

#include "lint/lint.hh"

#include <algorithm>
#include <set>

namespace e3::lint {

namespace {

bool
memberAccessBefore(const FileContext &ctx, size_t i)
{
    return i >= 1 && (isPunctTok(ctx.codeTok(i - 1), ".") ||
                      isPunctTok(ctx.codeTok(i - 1), "->"));
}

bool
callAt(const FileContext &ctx, size_t i)
{
    return i + 1 < ctx.code.size() &&
           ctx.codeTok(i).kind == TokKind::Identifier &&
           isPunctTok(ctx.codeTok(i + 1), "(");
}

bool
inList(const std::string &s, const char *const *names, size_t count)
{
    for (size_t k = 0; k < count; ++k) {
        if (s == names[k])
            return true;
    }
    return false;
}

/** Keywords that look like calls when followed by '('. */
bool
controlName(const std::string &s)
{
    static const char *const kControl[] = {
        "if",     "for",      "while",    "switch", "catch",
        "return", "sizeof",   "alignof",  "decltype", "new",
        "delete", "constexpr", "noexcept", "static_assert",
        "defined", "alignas",
    };
    return inList(s, kControl, sizeof kControl / sizeof *kControl);
}

} // namespace

std::vector<std::pair<size_t, size_t>>
lambdaBodies(const FileContext &ctx, const FlowFunction &fn)
{
    std::vector<std::pair<size_t, size_t>> out;
    for (size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
        if (!isPunctTok(ctx.codeTok(i), "["))
            continue;
        const size_t captureClose = matchClose(ctx, i);
        if (captureClose >= fn.bodyEnd)
            continue;
        size_t j = captureClose + 1;
        // Right after the capture list: a parameter list, the body
        // itself, or a specifier. Anything else (an attribute before a
        // type, an array subscript in an expression) is not a lambda.
        if (j >= fn.bodyEnd)
            break;
        const Token &next = ctx.codeTok(j);
        const bool lambdaish =
            isPunctTok(next, "(") || isPunctTok(next, "{") ||
            isIdentTok(next, "mutable") ||
            isIdentTok(next, "noexcept") || isPunctTok(next, "->");
        if (!lambdaish)
            continue;
        if (isPunctTok(next, "(")) {
            j = matchClose(ctx, j);
            if (j >= fn.bodyEnd)
                break;
            ++j;
        }
        // Skip specifiers / a trailing return type to the body brace —
        // but only over tokens a lambda header can contain, so a plain
        // subscript-then-call (`table[i](x); ...`) never swallows a
        // later unrelated brace.
        size_t limit = 0;
        bool headerish = true;
        while (j < fn.bodyEnd && headerish &&
               !isPunctTok(ctx.codeTok(j), "{") && limit++ < 16) {
            const Token &h = ctx.codeTok(j);
            headerish = h.kind == TokKind::Identifier ||
                        isPunctTok(h, "->") || isPunctTok(h, "::") ||
                        isPunctTok(h, "<") || isPunctTok(h, ">") ||
                        isPunctTok(h, "*") || isPunctTok(h, "&");
            if (headerish)
                ++j;
        }
        if (j >= fn.bodyEnd || !isPunctTok(ctx.codeTok(j), "{"))
            continue;
        const size_t close = matchClose(ctx, j);
        if (close >= fn.bodyEnd)
            break;
        out.emplace_back(j, close);
        i = j; // nested lambdas inside still get their own entries
    }
    return out;
}

bool
directAllocationAt(const FileContext &ctx, size_t i)
{
    const Token &t = ctx.codeTok(i);
    if (t.kind != TokKind::Identifier)
        return false;
    if (t.text == "new") {
        // `operator new` declarations and member accesses named `new`
        // are not allocation expressions.
        return !(i >= 1 && (memberAccessBefore(ctx, i) ||
                            isIdentTok(ctx.codeTok(i - 1),
                                       "operator")));
    }
    if (!callAt(ctx, i))
        return false;
    static const char *const kAllocFns[] = {
        "malloc",      "calloc",      "realloc", "strdup",
        "aligned_alloc", "make_unique", "make_shared",
    };
    if (inList(t.text, kAllocFns, sizeof kAllocFns / sizeof *kAllocFns))
        return true;
    static const char *const kGrowth[] = {
        "push_back", "emplace_back", "emplace", "push_front",
        "resize",    "reserve",      "insert",  "append",
    };
    return memberAccessBefore(ctx, i) &&
           inList(t.text, kGrowth, sizeof kGrowth / sizeof *kGrowth);
}

bool
directBlockingAt(const FileContext &ctx, size_t i)
{
    const Token &t = ctx.codeTok(i);
    if (!callAt(ctx, i))
        return false;
    if (memberAccessBefore(ctx, i) &&
        (t.text == "wait" || t.text == "wait_for" ||
         t.text == "wait_until" || t.text == "join"))
        return true;
    static const char *const kBlocking[] = {
        "sleep_for", "sleep_until", "nanosleep", "usleep",
        "fopen",     "fread",       "fwrite",    "fflush",
        "fsync",     "fclose",      "fgets",     "system",
        "recv",      "send",        "accept",    "connect",
        "poll",      "select",
    };
    return inList(t.text, kBlocking,
                  sizeof kBlocking / sizeof *kBlocking);
}

std::vector<FunctionSummary>
summarizeSource(const std::string &path, const std::string &source)
{
    const FileContext ctx = buildFileContext(path, source, nullptr);
    std::vector<FunctionSummary> out;
    out.reserve(ctx.functions.size());
    for (const FlowFunction &fn : ctx.functions) {
        FunctionSummary s;
        s.name = fn.name;
        s.returnsErrorType = fn.returnsErrorType;
        if (fn.qualifier.empty())
            s.errFree = fn.returnsErrorType;
        else
            s.errMember = fn.returnsErrorType;
        std::set<std::string> callees;
        for (size_t i = fn.bodyBegin; i < fn.bodyEnd; ++i) {
            if (directBlockingAt(ctx, i))
                s.blocks = true;
            if (directAllocationAt(ctx, i))
                s.allocates = true;
            if (callAt(ctx, i) && !controlName(ctx.codeTok(i).text))
                callees.insert(ctx.codeTok(i).text);
        }
        s.calls.assign(callees.begin(), callees.end());
        out.push_back(std::move(s));
    }
    return out;
}

void
CallSummary::add(const FunctionSummary &fn)
{
    auto it = byName_.find(fn.name);
    if (it == byName_.end()) {
        byName_.emplace(fn.name, fn);
        return;
    }
    FunctionSummary &merged = it->second;
    merged.returnsErrorType =
        merged.returnsErrorType || fn.returnsErrorType;
    merged.errFree = merged.errFree || fn.errFree;
    merged.errMember = merged.errMember || fn.errMember;
    merged.blocks = merged.blocks || fn.blocks;
    // `allocates` merges all-of, unlike the any-of flags: E3L015 fires
    // on a callee only when EVERY definition of that name allocates.
    // Common member names (add, record) collide across classes, and
    // any-of would flag every innocent `agg.add(...)` on the hot path;
    // a collision voids the signal instead of flooding it.
    merged.allocates = merged.allocates && fn.allocates;
    std::set<std::string> callees(merged.calls.begin(),
                                  merged.calls.end());
    callees.insert(fn.calls.begin(), fn.calls.end());
    merged.calls.assign(callees.begin(), callees.end());
}

void
CallSummary::finalize()
{
    bool changed = true;
    while (changed) {
        changed = false;
        for (auto &entry : byName_) {
            FunctionSummary &fn = entry.second;
            if (fn.blocks)
                continue;
            for (const std::string &callee : fn.calls) {
                const auto it = byName_.find(callee);
                if (it != byName_.end() && it->second.blocks) {
                    fn.blocks = true;
                    changed = true;
                    break;
                }
            }
        }
    }
}

bool
CallSummary::returnsErrorType(const std::string &name,
                              bool memberCall) const
{
    const auto it = byName_.find(name);
    if (it == byName_.end())
        return false;
    // `obj.name(...)` can only reach a member; an unqualified call may
    // be a free function or an implicit-this member, so ask both.
    return memberCall ? it->second.errMember
                      : it->second.errFree || it->second.errMember;
}

bool
CallSummary::blocks(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it != byName_.end() && it->second.blocks;
}

bool
CallSummary::allocates(const std::string &name) const
{
    const auto it = byName_.find(name);
    return it != byName_.end() && it->second.allocates;
}

} // namespace e3::lint
