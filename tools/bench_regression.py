#!/usr/bin/env python3
"""Guard the batched-inference speedup recorded by bench/micro_kernels.

Compares a fresh ``bench_micro_kernels`` JSON run against the committed
``BENCH_micro_kernels.json`` baseline. Raw throughput is not portable
across machines (CI runners differ from the box that recorded the
baseline), so the guarded quantity is the *speedup ratio* of each
batched benchmark over its per-genome twin within the same run:

    ratio = items_per_second(batched) / items_per_second(per-genome)

The job fails when a batched kernel's ratio drops more than the
tolerance (default 20%) below the baseline's ratio — i.e. when a change
erodes what the batch engine buys over the per-genome path, regardless
of how fast the runner happens to be.

Serve benchmarks (``bench_serve_loadtest`` JSON, detected by the
``"bench": "serve_loadtest"`` tag) are guarded the same way, on two
within-run ratios:

    goodput  = ok_per_second / offered rate    (must not sag)
    tail     = p99_ms / p50_ms                 (must not balloon)

Usage:
    bench_regression.py BASELINE.json NEW.json [--tolerance 0.2]
        [--tail-tolerance 0.5]
"""

import argparse
import json
import sys

# (label, per-genome benchmark, batched benchmark, guarded) twins
# measured by bench/micro_kernels.cc. items_per_second counts
# individual inferences on both sides, so the ratio is the
# population-inference speedup. The generation-grain pair is printed
# but not guarded: it is dominated by compile cost shared by both
# paths, so its ratio sits near 1x where run-to-run noise exceeds any
# real regression signal.
PAIRS = [
    ("kernel pop=128", "BM_PopulationInferenceKernel/128",
     "BM_PopulationInferenceKernelBatched/128", True),
    ("kernel pop=256", "BM_PopulationInferenceKernel/256",
     "BM_PopulationInferenceKernelBatched/256", True),
    ("sigmoid pop=128", "BM_PopulationInference/128",
     "BM_PopulationInferenceBatched/128", True),
    ("sigmoid pop=256", "BM_PopulationInference/256",
     "BM_PopulationInferenceBatched/256", True),
    ("generation grain", "BM_GenerationInferencePerGenome",
     "BM_GenerationInferenceBatched", False),
]


def load_items_per_second(path):
    with open(path) as f:
        report = json.load(f)
    rates = {}
    for bench in report.get("benchmarks", []):
        rate = bench.get("items_per_second")
        if rate:
            rates[bench["name"]] = float(rate)
    if not rates:
        sys.exit(f"error: {path} has no items_per_second entries")
    return rates


def ratio(rates, per_genome, batched):
    if per_genome not in rates or batched not in rates:
        return None
    return rates[batched] / rates[per_genome]


def serve_ratios(report):
    """(goodput fraction, p99/p50 tail ratio) of a serve-bench run."""
    client = report["client"]
    config = report["config"]
    offered = config["rate_per_connection"] * config["connections"]
    latency = client["latency"]
    return (client["ok_per_second"] / offered,
            latency["p99_ms"] / latency["p50_ms"])


def check_serve(base, fresh, tolerance, tail_tolerance):
    """Guard a serve_loadtest pair; returns failure strings."""
    base_goodput, base_tail = serve_ratios(base)
    fresh_goodput, fresh_tail = serve_ratios(fresh)
    failures = []

    goodput_floor = base_goodput * (1.0 - tolerance)
    status = "ok" if fresh_goodput >= goodput_floor else "REGRESSION"
    print(f"{'serve goodput':<18} {base_goodput:>8.2f}x "
          f"{fresh_goodput:>8.2f}x {goodput_floor:>6.2f}x  {status}")
    if fresh_goodput < goodput_floor:
        failures.append(
            f"serve goodput: {fresh_goodput:.2f} of offered QPS fell "
            f"below {goodput_floor:.2f} (baseline {base_goodput:.2f} - "
            f"{tolerance:.0%})")

    tail_ceiling = base_tail * (1.0 + tail_tolerance)
    status = "ok" if fresh_tail <= tail_ceiling else "REGRESSION"
    print(f"{'serve p99/p50':<18} {base_tail:>8.2f}x "
          f"{fresh_tail:>8.2f}x {tail_ceiling:>6.2f}x  {status}")
    if fresh_tail > tail_ceiling:
        failures.append(
            f"serve tail: p99/p50 {fresh_tail:.2f}x grew past "
            f"{tail_ceiling:.2f}x (baseline {base_tail:.2f}x + "
            f"{tail_tolerance:.0%})")

    for counter in ("decode_errors", "unanswered"):
        if fresh["client"][counter]:
            failures.append(
                f"serve: {fresh['client'][counter]} {counter}")
    if fresh["server"]["protocol_errors"]:
        failures.append(
            f"serve: {fresh['server']['protocol_errors']} "
            "protocol errors")
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="committed baseline JSON")
    parser.add_argument("fresh", help="JSON from the current build")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional ratio drop "
                             "(default 0.2 = 20%%)")
    parser.add_argument("--tail-tolerance", type=float, default=0.5,
                        help="allowed fractional p99/p50 growth for "
                             "serve benches (default 0.5 = 50%%)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        base_report = json.load(f)
    if base_report.get("bench") == "serve_loadtest":
        with open(args.fresh) as f:
            fresh_report = json.load(f)
        if fresh_report.get("bench") != "serve_loadtest":
            sys.exit(f"error: {args.fresh} is not a serve_loadtest "
                     "report")
        print(f"{'pair':<18} {'baseline':>9} {'current':>9} "
              f"{'limit':>7}")
        failures = check_serve(base_report, fresh_report,
                               args.tolerance, args.tail_tolerance)
        if failures:
            print("\nbench regression:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print("\nall serve ratios within tolerance")
        return 0

    base = load_items_per_second(args.baseline)
    fresh = load_items_per_second(args.fresh)

    failures = []
    print(f"{'pair':<18} {'baseline':>9} {'current':>9} {'floor':>7}")
    for label, per_genome, batched, guarded in PAIRS:
        base_ratio = ratio(base, per_genome, batched)
        fresh_ratio = ratio(fresh, per_genome, batched)
        if base_ratio is None:
            # The baseline predates this pair; nothing to guard yet.
            continue
        if fresh_ratio is None:
            if guarded:
                failures.append(
                    f"{label}: benchmarks missing from fresh run")
            continue
        if not guarded:
            print(f"{label:<18} {base_ratio:>8.2f}x {fresh_ratio:>8.2f}x "
                  f"{'—':>7}  info only")
            continue
        floor = base_ratio * (1.0 - args.tolerance)
        status = "ok" if fresh_ratio >= floor else "REGRESSION"
        print(f"{label:<18} {base_ratio:>8.2f}x {fresh_ratio:>8.2f}x "
              f"{floor:>6.2f}x  {status}")
        if fresh_ratio < floor:
            failures.append(
                f"{label}: batched speedup {fresh_ratio:.2f}x fell below "
                f"{floor:.2f}x (baseline {base_ratio:.2f}x - "
                f"{args.tolerance:.0%})")

    if failures:
        print("\nbench regression:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nall batched speedup ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
