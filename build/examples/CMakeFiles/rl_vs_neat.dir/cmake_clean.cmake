file(REMOVE_RECURSE
  "CMakeFiles/rl_vs_neat.dir/rl_vs_neat.cpp.o"
  "CMakeFiles/rl_vs_neat.dir/rl_vs_neat.cpp.o.d"
  "rl_vs_neat"
  "rl_vs_neat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rl_vs_neat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
