# Empty dependencies file for rl_vs_neat.
# This may be replaced when dependencies are built.
