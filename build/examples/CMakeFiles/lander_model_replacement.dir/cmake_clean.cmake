file(REMOVE_RECURSE
  "CMakeFiles/lander_model_replacement.dir/lander_model_replacement.cpp.o"
  "CMakeFiles/lander_model_replacement.dir/lander_model_replacement.cpp.o.d"
  "lander_model_replacement"
  "lander_model_replacement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lander_model_replacement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
