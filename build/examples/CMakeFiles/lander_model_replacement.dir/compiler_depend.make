# Empty compiler generated dependencies file for lander_model_replacement.
# This may be replaced when dependencies are built.
