file(REMOVE_RECURSE
  "CMakeFiles/recurrent_memory.dir/recurrent_memory.cpp.o"
  "CMakeFiles/recurrent_memory.dir/recurrent_memory.cpp.o.d"
  "recurrent_memory"
  "recurrent_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recurrent_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
