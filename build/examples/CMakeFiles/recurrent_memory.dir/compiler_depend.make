# Empty compiler generated dependencies file for recurrent_memory.
# This may be replaced when dependencies are built.
