# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_env[1]_include.cmake")
include("/root/repo/build/tests/test_nn[1]_include.cmake")
include("/root/repo/build/tests/test_neat[1]_include.cmake")
include("/root/repo/build/tests/test_mlp[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_inax[1]_include.cmake")
include("/root/repo/build/tests/test_e3[1]_include.cmake")
include("/root/repo/build/tests/test_properties[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
add_test(cli.list_envs "/root/repo/build/tools/e3_cli" "list-envs")
set_tests_properties(cli.list_envs PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;85;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.run_solves_cartpole "/root/repo/build/tools/e3_cli" "run" "--env" "cartpole" "--backend" "inax" "--generations" "25" "--pop" "150" "--episodes" "3" "--seed" "1")
set_tests_properties(cli.run_solves_cartpole PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;86;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.run_cpu_backend "/root/repo/build/tools/e3_cli" "run" "--env" "cartpole" "--backend" "cpu" "--generations" "10" "--pop" "100" "--seed" "1")
set_tests_properties(cli.run_cpu_backend PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;89;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.rejects_unknown_option "/root/repo/build/tools/e3_cli" "run" "--env" "cartpole" "--bogus" "1")
set_tests_properties(cli.rejects_unknown_option PROPERTIES  WILL_FAIL "ON" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;92;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.rejects_unknown_env "/root/repo/build/tools/e3_cli" "run" "--env" "atari_pong")
set_tests_properties(cli.rejects_unknown_env PROPERTIES  WILL_FAIL "ON" _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;95;add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(cli.save_then_replay "sh" "-c" "/root/repo/build/tools/e3_cli run --env cartpole --backend cpu               --generations 25 --pop 150 --seed 1               --save /root/repo/build/tests/champ.genome &&           /root/repo/build/tools/e3_cli replay --env cartpole               --genome /root/repo/build/tests/champ.genome               --episodes 2 --seed 3")
set_tests_properties(cli.save_then_replay PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;98;add_test;/root/repo/tests/CMakeLists.txt;0;")
