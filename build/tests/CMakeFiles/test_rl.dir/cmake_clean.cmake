file(REMOVE_RECURSE
  "CMakeFiles/test_rl.dir/test_gae.cc.o"
  "CMakeFiles/test_rl.dir/test_gae.cc.o.d"
  "CMakeFiles/test_rl.dir/test_policy.cc.o"
  "CMakeFiles/test_rl.dir/test_policy.cc.o.d"
  "CMakeFiles/test_rl.dir/test_rl_learning.cc.o"
  "CMakeFiles/test_rl.dir/test_rl_learning.cc.o.d"
  "CMakeFiles/test_rl.dir/test_rollout.cc.o"
  "CMakeFiles/test_rl.dir/test_rollout.cc.o.d"
  "test_rl"
  "test_rl.pdb"
  "test_rl[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
