file(REMOVE_RECURSE
  "CMakeFiles/test_mlp.dir/test_distributions.cc.o"
  "CMakeFiles/test_mlp.dir/test_distributions.cc.o.d"
  "CMakeFiles/test_mlp.dir/test_mlp_backprop.cc.o"
  "CMakeFiles/test_mlp.dir/test_mlp_backprop.cc.o.d"
  "CMakeFiles/test_mlp.dir/test_optimizer.cc.o"
  "CMakeFiles/test_mlp.dir/test_optimizer.cc.o.d"
  "CMakeFiles/test_mlp.dir/test_tensor.cc.o"
  "CMakeFiles/test_mlp.dir/test_tensor.cc.o.d"
  "test_mlp"
  "test_mlp.pdb"
  "test_mlp[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
