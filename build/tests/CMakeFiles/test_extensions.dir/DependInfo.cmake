
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_batching.cc" "tests/CMakeFiles/test_extensions.dir/test_batching.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_batching.cc.o.d"
  "/root/repo/tests/test_config_io.cc" "tests/CMakeFiles/test_extensions.dir/test_config_io.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_config_io.cc.o.d"
  "/root/repo/tests/test_dataflow.cc" "tests/CMakeFiles/test_extensions.dir/test_dataflow.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_dataflow.cc.o.d"
  "/root/repo/tests/test_quantize.cc" "tests/CMakeFiles/test_extensions.dir/test_quantize.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_quantize.cc.o.d"
  "/root/repo/tests/test_serialize.cc" "tests/CMakeFiles/test_extensions.dir/test_serialize.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_serialize.cc.o.d"
  "/root/repo/tests/test_zero_skip.cc" "tests/CMakeFiles/test_extensions.dir/test_zero_skip.cc.o" "gcc" "tests/CMakeFiles/test_extensions.dir/test_zero_skip.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_neat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_inax.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
