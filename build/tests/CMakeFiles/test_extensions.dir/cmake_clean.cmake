file(REMOVE_RECURSE
  "CMakeFiles/test_extensions.dir/test_batching.cc.o"
  "CMakeFiles/test_extensions.dir/test_batching.cc.o.d"
  "CMakeFiles/test_extensions.dir/test_config_io.cc.o"
  "CMakeFiles/test_extensions.dir/test_config_io.cc.o.d"
  "CMakeFiles/test_extensions.dir/test_dataflow.cc.o"
  "CMakeFiles/test_extensions.dir/test_dataflow.cc.o.d"
  "CMakeFiles/test_extensions.dir/test_quantize.cc.o"
  "CMakeFiles/test_extensions.dir/test_quantize.cc.o.d"
  "CMakeFiles/test_extensions.dir/test_serialize.cc.o"
  "CMakeFiles/test_extensions.dir/test_serialize.cc.o.d"
  "CMakeFiles/test_extensions.dir/test_zero_skip.cc.o"
  "CMakeFiles/test_extensions.dir/test_zero_skip.cc.o.d"
  "test_extensions"
  "test_extensions.pdb"
  "test_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
