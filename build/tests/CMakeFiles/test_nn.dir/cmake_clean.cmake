file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/test_activations.cc.o"
  "CMakeFiles/test_nn.dir/test_activations.cc.o.d"
  "CMakeFiles/test_nn.dir/test_dense_equivalent.cc.o"
  "CMakeFiles/test_nn.dir/test_dense_equivalent.cc.o.d"
  "CMakeFiles/test_nn.dir/test_layering.cc.o"
  "CMakeFiles/test_nn.dir/test_layering.cc.o.d"
  "CMakeFiles/test_nn.dir/test_net_stats.cc.o"
  "CMakeFiles/test_nn.dir/test_net_stats.cc.o.d"
  "CMakeFiles/test_nn.dir/test_network.cc.o"
  "CMakeFiles/test_nn.dir/test_network.cc.o.d"
  "CMakeFiles/test_nn.dir/test_recurrent.cc.o"
  "CMakeFiles/test_nn.dir/test_recurrent.cc.o.d"
  "test_nn"
  "test_nn.pdb"
  "test_nn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
