
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_box2d_substitutes.cc" "tests/CMakeFiles/test_env.dir/test_box2d_substitutes.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_box2d_substitutes.cc.o.d"
  "/root/repo/tests/test_catch_game.cc" "tests/CMakeFiles/test_env.dir/test_catch_game.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_catch_game.cc.o.d"
  "/root/repo/tests/test_classic_control.cc" "tests/CMakeFiles/test_env.dir/test_classic_control.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_classic_control.cc.o.d"
  "/root/repo/tests/test_env_registry.cc" "tests/CMakeFiles/test_env.dir/test_env_registry.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_env_registry.cc.o.d"
  "/root/repo/tests/test_spaces.cc" "tests/CMakeFiles/test_env.dir/test_spaces.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_spaces.cc.o.d"
  "/root/repo/tests/test_vector_env.cc" "tests/CMakeFiles/test_env.dir/test_vector_env.cc.o" "gcc" "tests/CMakeFiles/test_env.dir/test_vector_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_neat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_inax.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
