file(REMOVE_RECURSE
  "CMakeFiles/test_env.dir/test_box2d_substitutes.cc.o"
  "CMakeFiles/test_env.dir/test_box2d_substitutes.cc.o.d"
  "CMakeFiles/test_env.dir/test_catch_game.cc.o"
  "CMakeFiles/test_env.dir/test_catch_game.cc.o.d"
  "CMakeFiles/test_env.dir/test_classic_control.cc.o"
  "CMakeFiles/test_env.dir/test_classic_control.cc.o.d"
  "CMakeFiles/test_env.dir/test_env_registry.cc.o"
  "CMakeFiles/test_env.dir/test_env_registry.cc.o.d"
  "CMakeFiles/test_env.dir/test_spaces.cc.o"
  "CMakeFiles/test_env.dir/test_spaces.cc.o.d"
  "CMakeFiles/test_env.dir/test_vector_env.cc.o"
  "CMakeFiles/test_env.dir/test_vector_env.cc.o.d"
  "test_env"
  "test_env.pdb"
  "test_env[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
