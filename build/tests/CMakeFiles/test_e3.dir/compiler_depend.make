# Empty compiler generated dependencies file for test_e3.
# This may be replaced when dependencies are built.
