file(REMOVE_RECURSE
  "CMakeFiles/test_e3.dir/test_energy_resources.cc.o"
  "CMakeFiles/test_e3.dir/test_energy_resources.cc.o.d"
  "CMakeFiles/test_e3.dir/test_integration.cc.o"
  "CMakeFiles/test_e3.dir/test_integration.cc.o.d"
  "CMakeFiles/test_e3.dir/test_platform.cc.o"
  "CMakeFiles/test_e3.dir/test_platform.cc.o.d"
  "CMakeFiles/test_e3.dir/test_suite_solve.cc.o"
  "CMakeFiles/test_e3.dir/test_suite_solve.cc.o.d"
  "CMakeFiles/test_e3.dir/test_synthetic.cc.o"
  "CMakeFiles/test_e3.dir/test_synthetic.cc.o.d"
  "CMakeFiles/test_e3.dir/test_timing_models.cc.o"
  "CMakeFiles/test_e3.dir/test_timing_models.cc.o.d"
  "test_e3"
  "test_e3.pdb"
  "test_e3[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_e3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
