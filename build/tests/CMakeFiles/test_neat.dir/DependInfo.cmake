
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_crossover.cc" "tests/CMakeFiles/test_neat.dir/test_crossover.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_crossover.cc.o.d"
  "/root/repo/tests/test_genes.cc" "tests/CMakeFiles/test_neat.dir/test_genes.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_genes.cc.o.d"
  "/root/repo/tests/test_genome.cc" "tests/CMakeFiles/test_neat.dir/test_genome.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_genome.cc.o.d"
  "/root/repo/tests/test_mutation.cc" "tests/CMakeFiles/test_neat.dir/test_mutation.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_mutation.cc.o.d"
  "/root/repo/tests/test_neat_xor.cc" "tests/CMakeFiles/test_neat.dir/test_neat_xor.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_neat_xor.cc.o.d"
  "/root/repo/tests/test_population.cc" "tests/CMakeFiles/test_neat.dir/test_population.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_population.cc.o.d"
  "/root/repo/tests/test_reporter.cc" "tests/CMakeFiles/test_neat.dir/test_reporter.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_reporter.cc.o.d"
  "/root/repo/tests/test_reproduction.cc" "tests/CMakeFiles/test_neat.dir/test_reproduction.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_reproduction.cc.o.d"
  "/root/repo/tests/test_species.cc" "tests/CMakeFiles/test_neat.dir/test_species.cc.o" "gcc" "tests/CMakeFiles/test_neat.dir/test_species.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_rl.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_neat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_inax.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
