# Empty compiler generated dependencies file for test_neat.
# This may be replaced when dependencies are built.
