file(REMOVE_RECURSE
  "CMakeFiles/test_neat.dir/test_crossover.cc.o"
  "CMakeFiles/test_neat.dir/test_crossover.cc.o.d"
  "CMakeFiles/test_neat.dir/test_genes.cc.o"
  "CMakeFiles/test_neat.dir/test_genes.cc.o.d"
  "CMakeFiles/test_neat.dir/test_genome.cc.o"
  "CMakeFiles/test_neat.dir/test_genome.cc.o.d"
  "CMakeFiles/test_neat.dir/test_mutation.cc.o"
  "CMakeFiles/test_neat.dir/test_mutation.cc.o.d"
  "CMakeFiles/test_neat.dir/test_neat_xor.cc.o"
  "CMakeFiles/test_neat.dir/test_neat_xor.cc.o.d"
  "CMakeFiles/test_neat.dir/test_population.cc.o"
  "CMakeFiles/test_neat.dir/test_population.cc.o.d"
  "CMakeFiles/test_neat.dir/test_reporter.cc.o"
  "CMakeFiles/test_neat.dir/test_reporter.cc.o.d"
  "CMakeFiles/test_neat.dir/test_reproduction.cc.o"
  "CMakeFiles/test_neat.dir/test_reproduction.cc.o.d"
  "CMakeFiles/test_neat.dir/test_species.cc.o"
  "CMakeFiles/test_neat.dir/test_species.cc.o.d"
  "test_neat"
  "test_neat.pdb"
  "test_neat[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_neat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
