# Empty compiler generated dependencies file for test_inax.
# This may be replaced when dependencies are built.
