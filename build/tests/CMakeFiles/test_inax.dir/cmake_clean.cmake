file(REMOVE_RECURSE
  "CMakeFiles/test_inax.dir/test_accelerator.cc.o"
  "CMakeFiles/test_inax.dir/test_accelerator.cc.o.d"
  "CMakeFiles/test_inax.dir/test_dma.cc.o"
  "CMakeFiles/test_inax.dir/test_dma.cc.o.d"
  "CMakeFiles/test_inax.dir/test_pe_schedule.cc.o"
  "CMakeFiles/test_inax.dir/test_pe_schedule.cc.o.d"
  "CMakeFiles/test_inax.dir/test_systolic.cc.o"
  "CMakeFiles/test_inax.dir/test_systolic.cc.o.d"
  "CMakeFiles/test_inax.dir/test_utilization.cc.o"
  "CMakeFiles/test_inax.dir/test_utilization.cc.o.d"
  "test_inax"
  "test_inax.pdb"
  "test_inax[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
