# Empty dependencies file for e3_cli.
# This may be replaced when dependencies are built.
