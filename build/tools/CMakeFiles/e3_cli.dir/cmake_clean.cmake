file(REMOVE_RECURSE
  "CMakeFiles/e3_cli.dir/e3_cli.cc.o"
  "CMakeFiles/e3_cli.dir/e3_cli.cc.o.d"
  "e3_cli"
  "e3_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
