# Empty dependencies file for bench_table5_complexity.
# This may be replaced when dependencies are built.
