file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_complexity.dir/table5_complexity.cc.o"
  "CMakeFiles/bench_table5_complexity.dir/table5_complexity.cc.o.d"
  "bench_table5_complexity"
  "bench_table5_complexity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_complexity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
