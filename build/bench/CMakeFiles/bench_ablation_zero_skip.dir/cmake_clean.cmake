file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_zero_skip.dir/ablation_zero_skip.cc.o"
  "CMakeFiles/bench_ablation_zero_skip.dir/ablation_zero_skip.cc.o.d"
  "bench_ablation_zero_skip"
  "bench_ablation_zero_skip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_zero_skip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
