file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_rl_profile.dir/fig3_rl_profile.cc.o"
  "CMakeFiles/bench_fig3_rl_profile.dir/fig3_rl_profile.cc.o.d"
  "bench_fig3_rl_profile"
  "bench_fig3_rl_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_rl_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
