file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_pu_parallelism.dir/fig7_pu_parallelism.cc.o"
  "CMakeFiles/bench_fig7_pu_parallelism.dir/fig7_pu_parallelism.cc.o.d"
  "bench_fig7_pu_parallelism"
  "bench_fig7_pu_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_pu_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
