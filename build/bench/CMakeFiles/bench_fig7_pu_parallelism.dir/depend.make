# Empty dependencies file for bench_fig7_pu_parallelism.
# This may be replaced when dependencies are built.
