# Empty dependencies file for bench_fig4_irregularity.
# This may be replaced when dependencies are built.
