file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_irregularity.dir/fig4_irregularity.cc.o"
  "CMakeFiles/bench_fig4_irregularity.dir/fig4_irregularity.cc.o.d"
  "bench_fig4_irregularity"
  "bench_fig4_irregularity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_irregularity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
