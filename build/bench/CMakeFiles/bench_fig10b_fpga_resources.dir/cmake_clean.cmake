file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10b_fpga_resources.dir/fig10b_fpga_resources.cc.o"
  "CMakeFiles/bench_fig10b_fpga_resources.dir/fig10b_fpga_resources.cc.o.d"
  "bench_fig10b_fpga_resources"
  "bench_fig10b_fpga_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10b_fpga_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
