# Empty dependencies file for bench_fig10b_fpga_resources.
# This may be replaced when dependencies are built.
