# Empty dependencies file for bench_ablation_neat.
# This may be replaced when dependencies are built.
