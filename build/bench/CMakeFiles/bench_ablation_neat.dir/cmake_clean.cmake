file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_neat.dir/ablation_neat.cc.o"
  "CMakeFiles/bench_ablation_neat.dir/ablation_neat.cc.o.d"
  "bench_ablation_neat"
  "bench_ablation_neat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_neat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
