file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_overhead.dir/table4_overhead.cc.o"
  "CMakeFiles/bench_table4_overhead.dir/table4_overhead.cc.o.d"
  "bench_table4_overhead"
  "bench_table4_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
