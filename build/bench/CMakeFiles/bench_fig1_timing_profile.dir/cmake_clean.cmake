file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_timing_profile.dir/fig1_timing_profile.cc.o"
  "CMakeFiles/bench_fig1_timing_profile.dir/fig1_timing_profile.cc.o.d"
  "bench_fig1_timing_profile"
  "bench_fig1_timing_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_timing_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
