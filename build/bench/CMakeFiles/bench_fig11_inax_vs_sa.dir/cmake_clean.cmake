file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_inax_vs_sa.dir/fig11_inax_vs_sa.cc.o"
  "CMakeFiles/bench_fig11_inax_vs_sa.dir/fig11_inax_vs_sa.cc.o.d"
  "bench_fig11_inax_vs_sa"
  "bench_fig11_inax_vs_sa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_inax_vs_sa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
