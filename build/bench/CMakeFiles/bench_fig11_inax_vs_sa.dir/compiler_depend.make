# Empty compiler generated dependencies file for bench_fig11_inax_vs_sa.
# This may be replaced when dependencies are built.
