# Empty compiler generated dependencies file for bench_fig6_pe_parallelism.
# This may be replaced when dependencies are built.
