file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_pe_parallelism.dir/fig6_pe_parallelism.cc.o"
  "CMakeFiles/bench_fig6_pe_parallelism.dir/fig6_pe_parallelism.cc.o.d"
  "bench_fig6_pe_parallelism"
  "bench_fig6_pe_parallelism.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_pe_parallelism.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
