file(REMOVE_RECURSE
  "CMakeFiles/e3_nn.dir/nn/activations.cc.o"
  "CMakeFiles/e3_nn.dir/nn/activations.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/aggregations.cc.o"
  "CMakeFiles/e3_nn.dir/nn/aggregations.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/dense_equivalent.cc.o"
  "CMakeFiles/e3_nn.dir/nn/dense_equivalent.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/layering.cc.o"
  "CMakeFiles/e3_nn.dir/nn/layering.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/net_stats.cc.o"
  "CMakeFiles/e3_nn.dir/nn/net_stats.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/network.cc.o"
  "CMakeFiles/e3_nn.dir/nn/network.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/quantize.cc.o"
  "CMakeFiles/e3_nn.dir/nn/quantize.cc.o.d"
  "CMakeFiles/e3_nn.dir/nn/recurrent.cc.o"
  "CMakeFiles/e3_nn.dir/nn/recurrent.cc.o.d"
  "libe3_nn.a"
  "libe3_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
