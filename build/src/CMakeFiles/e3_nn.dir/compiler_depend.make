# Empty compiler generated dependencies file for e3_nn.
# This may be replaced when dependencies are built.
