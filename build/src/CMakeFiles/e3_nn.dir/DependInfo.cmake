
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cc" "src/CMakeFiles/e3_nn.dir/nn/activations.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/activations.cc.o.d"
  "/root/repo/src/nn/aggregations.cc" "src/CMakeFiles/e3_nn.dir/nn/aggregations.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/aggregations.cc.o.d"
  "/root/repo/src/nn/dense_equivalent.cc" "src/CMakeFiles/e3_nn.dir/nn/dense_equivalent.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/dense_equivalent.cc.o.d"
  "/root/repo/src/nn/layering.cc" "src/CMakeFiles/e3_nn.dir/nn/layering.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/layering.cc.o.d"
  "/root/repo/src/nn/net_stats.cc" "src/CMakeFiles/e3_nn.dir/nn/net_stats.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/net_stats.cc.o.d"
  "/root/repo/src/nn/network.cc" "src/CMakeFiles/e3_nn.dir/nn/network.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/network.cc.o.d"
  "/root/repo/src/nn/quantize.cc" "src/CMakeFiles/e3_nn.dir/nn/quantize.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/quantize.cc.o.d"
  "/root/repo/src/nn/recurrent.cc" "src/CMakeFiles/e3_nn.dir/nn/recurrent.cc.o" "gcc" "src/CMakeFiles/e3_nn.dir/nn/recurrent.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
