file(REMOVE_RECURSE
  "libe3_nn.a"
)
