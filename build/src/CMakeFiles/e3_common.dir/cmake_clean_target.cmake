file(REMOVE_RECURSE
  "libe3_common.a"
)
