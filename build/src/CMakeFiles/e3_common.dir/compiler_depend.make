# Empty compiler generated dependencies file for e3_common.
# This may be replaced when dependencies are built.
