file(REMOVE_RECURSE
  "CMakeFiles/e3_common.dir/common/csv.cc.o"
  "CMakeFiles/e3_common.dir/common/csv.cc.o.d"
  "CMakeFiles/e3_common.dir/common/ini.cc.o"
  "CMakeFiles/e3_common.dir/common/ini.cc.o.d"
  "CMakeFiles/e3_common.dir/common/logging.cc.o"
  "CMakeFiles/e3_common.dir/common/logging.cc.o.d"
  "CMakeFiles/e3_common.dir/common/rng.cc.o"
  "CMakeFiles/e3_common.dir/common/rng.cc.o.d"
  "CMakeFiles/e3_common.dir/common/stats.cc.o"
  "CMakeFiles/e3_common.dir/common/stats.cc.o.d"
  "CMakeFiles/e3_common.dir/common/table.cc.o"
  "CMakeFiles/e3_common.dir/common/table.cc.o.d"
  "CMakeFiles/e3_common.dir/common/timing.cc.o"
  "CMakeFiles/e3_common.dir/common/timing.cc.o.d"
  "libe3_common.a"
  "libe3_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
