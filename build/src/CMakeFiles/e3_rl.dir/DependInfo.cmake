
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rl/a2c.cc" "src/CMakeFiles/e3_rl.dir/rl/a2c.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/a2c.cc.o.d"
  "/root/repo/src/rl/gae.cc" "src/CMakeFiles/e3_rl.dir/rl/gae.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/gae.cc.o.d"
  "/root/repo/src/rl/on_policy.cc" "src/CMakeFiles/e3_rl.dir/rl/on_policy.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/on_policy.cc.o.d"
  "/root/repo/src/rl/policy.cc" "src/CMakeFiles/e3_rl.dir/rl/policy.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/policy.cc.o.d"
  "/root/repo/src/rl/ppo2.cc" "src/CMakeFiles/e3_rl.dir/rl/ppo2.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/ppo2.cc.o.d"
  "/root/repo/src/rl/rl_profile.cc" "src/CMakeFiles/e3_rl.dir/rl/rl_profile.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/rl_profile.cc.o.d"
  "/root/repo/src/rl/rollout.cc" "src/CMakeFiles/e3_rl.dir/rl/rollout.cc.o" "gcc" "src/CMakeFiles/e3_rl.dir/rl/rollout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_mlp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
