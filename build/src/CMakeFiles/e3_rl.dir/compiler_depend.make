# Empty compiler generated dependencies file for e3_rl.
# This may be replaced when dependencies are built.
