file(REMOVE_RECURSE
  "libe3_rl.a"
)
