file(REMOVE_RECURSE
  "CMakeFiles/e3_rl.dir/rl/a2c.cc.o"
  "CMakeFiles/e3_rl.dir/rl/a2c.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/gae.cc.o"
  "CMakeFiles/e3_rl.dir/rl/gae.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/on_policy.cc.o"
  "CMakeFiles/e3_rl.dir/rl/on_policy.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/policy.cc.o"
  "CMakeFiles/e3_rl.dir/rl/policy.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/ppo2.cc.o"
  "CMakeFiles/e3_rl.dir/rl/ppo2.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/rl_profile.cc.o"
  "CMakeFiles/e3_rl.dir/rl/rl_profile.cc.o.d"
  "CMakeFiles/e3_rl.dir/rl/rollout.cc.o"
  "CMakeFiles/e3_rl.dir/rl/rollout.cc.o.d"
  "libe3_rl.a"
  "libe3_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
