
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/env/acrobot.cc" "src/CMakeFiles/e3_env.dir/env/acrobot.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/acrobot.cc.o.d"
  "/root/repo/src/env/bipedal_walker.cc" "src/CMakeFiles/e3_env.dir/env/bipedal_walker.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/bipedal_walker.cc.o.d"
  "/root/repo/src/env/cartpole.cc" "src/CMakeFiles/e3_env.dir/env/cartpole.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/cartpole.cc.o.d"
  "/root/repo/src/env/catch_game.cc" "src/CMakeFiles/e3_env.dir/env/catch_game.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/catch_game.cc.o.d"
  "/root/repo/src/env/env_registry.cc" "src/CMakeFiles/e3_env.dir/env/env_registry.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/env_registry.cc.o.d"
  "/root/repo/src/env/lunar_lander.cc" "src/CMakeFiles/e3_env.dir/env/lunar_lander.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/lunar_lander.cc.o.d"
  "/root/repo/src/env/mountain_car.cc" "src/CMakeFiles/e3_env.dir/env/mountain_car.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/mountain_car.cc.o.d"
  "/root/repo/src/env/mountain_car_continuous.cc" "src/CMakeFiles/e3_env.dir/env/mountain_car_continuous.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/mountain_car_continuous.cc.o.d"
  "/root/repo/src/env/pendulum.cc" "src/CMakeFiles/e3_env.dir/env/pendulum.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/pendulum.cc.o.d"
  "/root/repo/src/env/space.cc" "src/CMakeFiles/e3_env.dir/env/space.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/space.cc.o.d"
  "/root/repo/src/env/vector_env.cc" "src/CMakeFiles/e3_env.dir/env/vector_env.cc.o" "gcc" "src/CMakeFiles/e3_env.dir/env/vector_env.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
