file(REMOVE_RECURSE
  "CMakeFiles/e3_env.dir/env/acrobot.cc.o"
  "CMakeFiles/e3_env.dir/env/acrobot.cc.o.d"
  "CMakeFiles/e3_env.dir/env/bipedal_walker.cc.o"
  "CMakeFiles/e3_env.dir/env/bipedal_walker.cc.o.d"
  "CMakeFiles/e3_env.dir/env/cartpole.cc.o"
  "CMakeFiles/e3_env.dir/env/cartpole.cc.o.d"
  "CMakeFiles/e3_env.dir/env/catch_game.cc.o"
  "CMakeFiles/e3_env.dir/env/catch_game.cc.o.d"
  "CMakeFiles/e3_env.dir/env/env_registry.cc.o"
  "CMakeFiles/e3_env.dir/env/env_registry.cc.o.d"
  "CMakeFiles/e3_env.dir/env/lunar_lander.cc.o"
  "CMakeFiles/e3_env.dir/env/lunar_lander.cc.o.d"
  "CMakeFiles/e3_env.dir/env/mountain_car.cc.o"
  "CMakeFiles/e3_env.dir/env/mountain_car.cc.o.d"
  "CMakeFiles/e3_env.dir/env/mountain_car_continuous.cc.o"
  "CMakeFiles/e3_env.dir/env/mountain_car_continuous.cc.o.d"
  "CMakeFiles/e3_env.dir/env/pendulum.cc.o"
  "CMakeFiles/e3_env.dir/env/pendulum.cc.o.d"
  "CMakeFiles/e3_env.dir/env/space.cc.o"
  "CMakeFiles/e3_env.dir/env/space.cc.o.d"
  "CMakeFiles/e3_env.dir/env/vector_env.cc.o"
  "CMakeFiles/e3_env.dir/env/vector_env.cc.o.d"
  "libe3_env.a"
  "libe3_env.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_env.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
