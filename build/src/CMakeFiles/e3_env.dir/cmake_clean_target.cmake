file(REMOVE_RECURSE
  "libe3_env.a"
)
