# Empty compiler generated dependencies file for e3_env.
# This may be replaced when dependencies are built.
