
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/e3/cpu_backend.cc" "src/CMakeFiles/e3_platform.dir/e3/cpu_backend.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/cpu_backend.cc.o.d"
  "/root/repo/src/e3/energy_model.cc" "src/CMakeFiles/e3_platform.dir/e3/energy_model.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/energy_model.cc.o.d"
  "/root/repo/src/e3/experiment.cc" "src/CMakeFiles/e3_platform.dir/e3/experiment.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/experiment.cc.o.d"
  "/root/repo/src/e3/fpga_resources.cc" "src/CMakeFiles/e3_platform.dir/e3/fpga_resources.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/fpga_resources.cc.o.d"
  "/root/repo/src/e3/gpu_backend.cc" "src/CMakeFiles/e3_platform.dir/e3/gpu_backend.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/gpu_backend.cc.o.d"
  "/root/repo/src/e3/inax_backend.cc" "src/CMakeFiles/e3_platform.dir/e3/inax_backend.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/inax_backend.cc.o.d"
  "/root/repo/src/e3/platform.cc" "src/CMakeFiles/e3_platform.dir/e3/platform.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/platform.cc.o.d"
  "/root/repo/src/e3/synthetic.cc" "src/CMakeFiles/e3_platform.dir/e3/synthetic.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/synthetic.cc.o.d"
  "/root/repo/src/e3/timing_model.cc" "src/CMakeFiles/e3_platform.dir/e3/timing_model.cc.o" "gcc" "src/CMakeFiles/e3_platform.dir/e3/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_neat.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_env.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_inax.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
