src/CMakeFiles/e3_platform.dir/e3/energy_model.cc.o: \
 /root/repo/src/e3/energy_model.cc /usr/include/stdc-predef.h \
 /root/repo/src/e3/energy_model.hh
