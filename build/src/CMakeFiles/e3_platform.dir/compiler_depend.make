# Empty compiler generated dependencies file for e3_platform.
# This may be replaced when dependencies are built.
