file(REMOVE_RECURSE
  "CMakeFiles/e3_platform.dir/e3/cpu_backend.cc.o"
  "CMakeFiles/e3_platform.dir/e3/cpu_backend.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/energy_model.cc.o"
  "CMakeFiles/e3_platform.dir/e3/energy_model.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/experiment.cc.o"
  "CMakeFiles/e3_platform.dir/e3/experiment.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/fpga_resources.cc.o"
  "CMakeFiles/e3_platform.dir/e3/fpga_resources.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/gpu_backend.cc.o"
  "CMakeFiles/e3_platform.dir/e3/gpu_backend.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/inax_backend.cc.o"
  "CMakeFiles/e3_platform.dir/e3/inax_backend.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/platform.cc.o"
  "CMakeFiles/e3_platform.dir/e3/platform.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/synthetic.cc.o"
  "CMakeFiles/e3_platform.dir/e3/synthetic.cc.o.d"
  "CMakeFiles/e3_platform.dir/e3/timing_model.cc.o"
  "CMakeFiles/e3_platform.dir/e3/timing_model.cc.o.d"
  "libe3_platform.a"
  "libe3_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
