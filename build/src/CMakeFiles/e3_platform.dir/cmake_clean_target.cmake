file(REMOVE_RECURSE
  "libe3_platform.a"
)
