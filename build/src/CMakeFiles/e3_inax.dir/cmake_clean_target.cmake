file(REMOVE_RECURSE
  "libe3_inax.a"
)
