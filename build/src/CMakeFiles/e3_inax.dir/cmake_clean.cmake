file(REMOVE_RECURSE
  "CMakeFiles/e3_inax.dir/inax/dataflow.cc.o"
  "CMakeFiles/e3_inax.dir/inax/dataflow.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/dma.cc.o"
  "CMakeFiles/e3_inax.dir/inax/dma.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/hw_config.cc.o"
  "CMakeFiles/e3_inax.dir/inax/hw_config.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/inax.cc.o"
  "CMakeFiles/e3_inax.dir/inax/inax.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/pe.cc.o"
  "CMakeFiles/e3_inax.dir/inax/pe.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/pu.cc.o"
  "CMakeFiles/e3_inax.dir/inax/pu.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/schedule.cc.o"
  "CMakeFiles/e3_inax.dir/inax/schedule.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/systolic.cc.o"
  "CMakeFiles/e3_inax.dir/inax/systolic.cc.o.d"
  "CMakeFiles/e3_inax.dir/inax/utilization.cc.o"
  "CMakeFiles/e3_inax.dir/inax/utilization.cc.o.d"
  "libe3_inax.a"
  "libe3_inax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_inax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
