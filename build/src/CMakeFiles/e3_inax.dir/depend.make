# Empty dependencies file for e3_inax.
# This may be replaced when dependencies are built.
