
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/inax/dataflow.cc" "src/CMakeFiles/e3_inax.dir/inax/dataflow.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/dataflow.cc.o.d"
  "/root/repo/src/inax/dma.cc" "src/CMakeFiles/e3_inax.dir/inax/dma.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/dma.cc.o.d"
  "/root/repo/src/inax/hw_config.cc" "src/CMakeFiles/e3_inax.dir/inax/hw_config.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/hw_config.cc.o.d"
  "/root/repo/src/inax/inax.cc" "src/CMakeFiles/e3_inax.dir/inax/inax.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/inax.cc.o.d"
  "/root/repo/src/inax/pe.cc" "src/CMakeFiles/e3_inax.dir/inax/pe.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/pe.cc.o.d"
  "/root/repo/src/inax/pu.cc" "src/CMakeFiles/e3_inax.dir/inax/pu.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/pu.cc.o.d"
  "/root/repo/src/inax/schedule.cc" "src/CMakeFiles/e3_inax.dir/inax/schedule.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/schedule.cc.o.d"
  "/root/repo/src/inax/systolic.cc" "src/CMakeFiles/e3_inax.dir/inax/systolic.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/systolic.cc.o.d"
  "/root/repo/src/inax/utilization.cc" "src/CMakeFiles/e3_inax.dir/inax/utilization.cc.o" "gcc" "src/CMakeFiles/e3_inax.dir/inax/utilization.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
