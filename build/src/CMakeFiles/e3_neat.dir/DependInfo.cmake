
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/neat/config.cc" "src/CMakeFiles/e3_neat.dir/neat/config.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/config.cc.o.d"
  "/root/repo/src/neat/config_io.cc" "src/CMakeFiles/e3_neat.dir/neat/config_io.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/config_io.cc.o.d"
  "/root/repo/src/neat/crossover.cc" "src/CMakeFiles/e3_neat.dir/neat/crossover.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/crossover.cc.o.d"
  "/root/repo/src/neat/distance_cache.cc" "src/CMakeFiles/e3_neat.dir/neat/distance_cache.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/distance_cache.cc.o.d"
  "/root/repo/src/neat/genes.cc" "src/CMakeFiles/e3_neat.dir/neat/genes.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/genes.cc.o.d"
  "/root/repo/src/neat/genome.cc" "src/CMakeFiles/e3_neat.dir/neat/genome.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/genome.cc.o.d"
  "/root/repo/src/neat/innovation.cc" "src/CMakeFiles/e3_neat.dir/neat/innovation.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/innovation.cc.o.d"
  "/root/repo/src/neat/mutation.cc" "src/CMakeFiles/e3_neat.dir/neat/mutation.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/mutation.cc.o.d"
  "/root/repo/src/neat/population.cc" "src/CMakeFiles/e3_neat.dir/neat/population.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/population.cc.o.d"
  "/root/repo/src/neat/reporter.cc" "src/CMakeFiles/e3_neat.dir/neat/reporter.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/reporter.cc.o.d"
  "/root/repo/src/neat/reproduction.cc" "src/CMakeFiles/e3_neat.dir/neat/reproduction.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/reproduction.cc.o.d"
  "/root/repo/src/neat/serialize.cc" "src/CMakeFiles/e3_neat.dir/neat/serialize.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/serialize.cc.o.d"
  "/root/repo/src/neat/species.cc" "src/CMakeFiles/e3_neat.dir/neat/species.cc.o" "gcc" "src/CMakeFiles/e3_neat.dir/neat/species.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/e3_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
