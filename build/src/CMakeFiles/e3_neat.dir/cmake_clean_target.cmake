file(REMOVE_RECURSE
  "libe3_neat.a"
)
