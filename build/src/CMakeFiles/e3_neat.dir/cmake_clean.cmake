file(REMOVE_RECURSE
  "CMakeFiles/e3_neat.dir/neat/config.cc.o"
  "CMakeFiles/e3_neat.dir/neat/config.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/config_io.cc.o"
  "CMakeFiles/e3_neat.dir/neat/config_io.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/crossover.cc.o"
  "CMakeFiles/e3_neat.dir/neat/crossover.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/distance_cache.cc.o"
  "CMakeFiles/e3_neat.dir/neat/distance_cache.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/genes.cc.o"
  "CMakeFiles/e3_neat.dir/neat/genes.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/genome.cc.o"
  "CMakeFiles/e3_neat.dir/neat/genome.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/innovation.cc.o"
  "CMakeFiles/e3_neat.dir/neat/innovation.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/mutation.cc.o"
  "CMakeFiles/e3_neat.dir/neat/mutation.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/population.cc.o"
  "CMakeFiles/e3_neat.dir/neat/population.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/reporter.cc.o"
  "CMakeFiles/e3_neat.dir/neat/reporter.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/reproduction.cc.o"
  "CMakeFiles/e3_neat.dir/neat/reproduction.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/serialize.cc.o"
  "CMakeFiles/e3_neat.dir/neat/serialize.cc.o.d"
  "CMakeFiles/e3_neat.dir/neat/species.cc.o"
  "CMakeFiles/e3_neat.dir/neat/species.cc.o.d"
  "libe3_neat.a"
  "libe3_neat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_neat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
