# Empty compiler generated dependencies file for e3_neat.
# This may be replaced when dependencies are built.
