# Empty dependencies file for e3_mlp.
# This may be replaced when dependencies are built.
