file(REMOVE_RECURSE
  "libe3_mlp.a"
)
