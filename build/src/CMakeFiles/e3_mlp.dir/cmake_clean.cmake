file(REMOVE_RECURSE
  "CMakeFiles/e3_mlp.dir/mlp/distributions.cc.o"
  "CMakeFiles/e3_mlp.dir/mlp/distributions.cc.o.d"
  "CMakeFiles/e3_mlp.dir/mlp/mlp.cc.o"
  "CMakeFiles/e3_mlp.dir/mlp/mlp.cc.o.d"
  "CMakeFiles/e3_mlp.dir/mlp/optimizer.cc.o"
  "CMakeFiles/e3_mlp.dir/mlp/optimizer.cc.o.d"
  "CMakeFiles/e3_mlp.dir/mlp/tensor.cc.o"
  "CMakeFiles/e3_mlp.dir/mlp/tensor.cc.o.d"
  "libe3_mlp.a"
  "libe3_mlp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/e3_mlp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
