
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mlp/distributions.cc" "src/CMakeFiles/e3_mlp.dir/mlp/distributions.cc.o" "gcc" "src/CMakeFiles/e3_mlp.dir/mlp/distributions.cc.o.d"
  "/root/repo/src/mlp/mlp.cc" "src/CMakeFiles/e3_mlp.dir/mlp/mlp.cc.o" "gcc" "src/CMakeFiles/e3_mlp.dir/mlp/mlp.cc.o.d"
  "/root/repo/src/mlp/optimizer.cc" "src/CMakeFiles/e3_mlp.dir/mlp/optimizer.cc.o" "gcc" "src/CMakeFiles/e3_mlp.dir/mlp/optimizer.cc.o.d"
  "/root/repo/src/mlp/tensor.cc" "src/CMakeFiles/e3_mlp.dir/mlp/tensor.cc.o" "gcc" "src/CMakeFiles/e3_mlp.dir/mlp/tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/e3_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
