/**
 * @file
 * Open-loop load test for the champion-serving inference server.
 *
 * Builds three synthetic champions (CartPole, LunarLander, Pendulum)
 * as real checkpoint directories, brings up a ChampionServer on an
 * ephemeral loopback port, then drives it over TCP: each of
 * --connections client connections issues requests at a fixed
 * --rate (requests/second, open loop — the schedule does not wait for
 * responses), mixing the three champions round-robin. Client-side
 * latency is measured send-to-response per request.
 *
 * Emits a JSON summary (default BENCH_serve.json) with client and
 * server percentiles, QPS, batching and cache statistics. Exits
 * non-zero if any response failed to decode or any request was
 * answered with an unexpected status, so CI can gate on the exit
 * code alone.
 */

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"
#include "common/thread_annotations.hh"
#include "env/env_registry.hh"
#include "neat/population.hh"
#include "persist/checkpoint.hh"
#include "serve/latency.hh"
#include "serve/protocol.hh"
#include "serve/server.hh"

using namespace e3;
using namespace e3::serve;

namespace {

struct LoadOptions
{
    double seconds = 2.0;
    double ratePerConnection = 2000.0; // requests/second, open loop
    size_t connections = 4;
    size_t batch = 16;
    size_t threads = 2;
    size_t cache = 2; // < champion count, so the LRU path is exercised
    std::string out = "BENCH_serve.json";
};

LoadOptions
parseArgs(int argc, char **argv)
{
    LoadOptions opt;
    for (int i = 1; i < argc; ++i) {
        const std::string key = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                e3_fatal(key, " needs a value");
            return argv[++i];
        };
        if (key == "--seconds")
            opt.seconds = std::stod(value());
        else if (key == "--rate")
            opt.ratePerConnection = std::stod(value());
        else if (key == "--connections")
            opt.connections = std::stoul(value());
        else if (key == "--batch")
            opt.batch = std::stoul(value());
        else if (key == "--threads")
            opt.threads = std::stoul(value());
        else if (key == "--cache")
            opt.cache = std::stoul(value());
        else if (key == "--out")
            opt.out = value();
        else
            e3_fatal("unknown option ", key,
                     " (--seconds s | --rate r | --connections n | "
                     "--batch n | --threads n | --cache n | --out f)");
    }
    return opt;
}

/** Deterministic stand-in fitness: a pure function of the genome. */
void
assignFitness(Population &pop)
{
    for (auto &[key, genome] : pop.genomes())
        genome.fitness = 0.125 * key +
                         static_cast<double>(genome.nodes.size());
}

/**
 * Evolve a tiny population against @p envName's interface and write
 * its champion as a checkpoint directory the server can load. The
 * traffic mix needs champions with distinct interfaces and network
 * sizes, not strong policies, so a few stand-in generations suffice.
 */
std::string
makeChampionDir(const std::string &root, const std::string &envName,
                uint64_t seed)
{
    const EnvSpec *spec = findEnvSpec(envName);
    if (!spec)
        e3_fatal("unknown environment ", envName);
    NeatConfig cfg = NeatConfig::forTask(
        spec->numInputs, spec->numOutputs, spec->requiredFitness);
    cfg.populationSize = 32;
    Population pop(cfg, seed);
    for (int gen = 0; gen < 5; ++gen) {
        assignFitness(pop);
        pop.advance();
    }
    assignFitness(pop);

    persist::Checkpoint ck;
    ck.configHash =
        persist::fingerprint("serve-loadtest;" + envName);
    ck.generation = 5;
    ck.bestFitness = pop.best().fitness;
    ck.champion = pop.best();
    ck.population = pop.saveState();

    const std::string dir = root + "/" + envName;
    std::filesystem::remove_all(dir);
    assertOk(persist::writeCheckpoint(dir, ck, 1, nullptr));
    return dir;
}

/** Per-connection traffic driver: open-loop sender + response reader. */
class LoadConnection
{
  public:
    LoadConnection(uint16_t port, size_t index,
                   const std::vector<ChampionInfo> &champions)
        : index_(index), champions_(champions)
    {
        fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd_ < 0)
            e3_fatal("socket: ", std::strerror(errno));
        const int one = 1;
        ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        sockaddr_in addr{};
        addr.sin_family = AF_INET;
        addr.sin_port = htons(port);
        addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
        if (::connect(fd_, reinterpret_cast<sockaddr *>(&addr),
                      sizeof addr) != 0)
            e3_fatal("connect: ", std::strerror(errno));
    }

    ~LoadConnection()
    {
        if (fd_ >= 0)
            ::close(fd_);
    }

    void
    start(double seconds, double rate)
    {
        // Load-generator threads, joined in finish(); the bench
        // driver owns their lifetime.
        // e3-lint: raw-thread-ok
        reader_ = std::thread([this] { readLoop(); });
        sender_ = std::thread( // e3-lint: raw-thread-ok
            [this, seconds, rate] { sendLoop(seconds, rate); });
    }

    /** Join the sender, wait for in-flight responses, stop reading. */
    void
    finish()
    {
        sender_.join();
        // Grace period for responses already in flight.
        const auto deadline = std::chrono::steady_clock::now() +
                              std::chrono::seconds(2);
        while (received_.load() < sent_.load() &&
               std::chrono::steady_clock::now() < deadline)
            std::this_thread::sleep_for(std::chrono::milliseconds(5));
        ::shutdown(fd_, SHUT_RDWR);
        reader_.join();
    }

    uint64_t sent() const { return sent_.load(); }
    uint64_t ok() const { return ok_.load(); }
    uint64_t overloaded() const { return overloaded_.load(); }
    uint64_t otherStatus() const { return otherStatus_.load(); }
    uint64_t decodeErrors() const { return decodeErrors_.load(); }
    uint64_t unanswered() const
    {
        return sent_.load() - received_.load();
    }

    /** Copy of the retained samples (taken under the lock). */
    std::vector<double>
    latencies() const
    {
        e3::MutexLock lock(mutex_);
        return latencies_;
    }

  private:
    void
    sendLoop(double seconds, double rate)
    {
        const auto start = std::chrono::steady_clock::now();
        const auto end =
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double>(seconds));
        uint64_t seq = 0;
        while (true) {
            // Open loop: request k is due at start + k/rate,
            // regardless of how fast responses come back.
            const auto due =
                start + std::chrono::duration_cast<
                            std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(
                                static_cast<double>(seq) / rate));
            if (due >= end)
                break;
            std::this_thread::sleep_until(due);

            const ChampionInfo &champion =
                champions_[seq % champions_.size()];
            InferRequest req;
            req.requestId = (static_cast<uint64_t>(index_) << 32) | seq;
            req.fingerprint = champion.fingerprint;
            req.observation.resize(champion.numInputs);
            for (size_t i = 0; i < champion.numInputs; ++i)
                req.observation[i] =
                    0.01 * static_cast<double>((seq + i) % 100) - 0.5;

            const std::string wire = frame(encodeRequest(req));
            {
                e3::MutexLock lock(mutex_);
                sendTimes_[req.requestId] =
                    std::chrono::steady_clock::now();
            }
            size_t off = 0;
            while (off < wire.size()) {
                const ssize_t n = ::send(fd_, wire.data() + off,
                                         wire.size() - off,
                                         MSG_NOSIGNAL);
                if (n <= 0)
                    return; // server hung up; reader reports the rest
                off += static_cast<size_t>(n);
            }
            ++sent_;
            ++seq;
        }
    }

    void
    readLoop()
    {
        FrameReader frames;
        char buf[8192];
        while (true) {
            const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
            if (n <= 0)
                return;
            frames.feed(buf, static_cast<size_t>(n));
            while (true) {
                std::string payload;
                Result<bool> got = frames.next(payload);
                if (!got.ok()) {
                    ++decodeErrors_;
                    return;
                }
                if (!*got)
                    break;
                handleResponse(payload);
            }
        }
    }

    void
    handleResponse(const std::string &payload)
    {
        const auto now = std::chrono::steady_clock::now();
        Result<InferResponse> resp = decodeResponse(payload);
        if (!resp.ok()) {
            ++decodeErrors_;
            return;
        }
        ++received_;
        switch (resp->status) {
        case StatusCode::Ok:
            ++ok_;
            break;
        case StatusCode::Overloaded:
            ++overloaded_;
            break;
        default:
            ++otherStatus_;
            break;
        }
        e3::MutexLock lock(mutex_);
        auto it = sendTimes_.find(resp->requestId);
        if (it == sendTimes_.end()) {
            ++decodeErrors_; // response to a request we never sent
            return;
        }
        if (resp->status == StatusCode::Ok)
            latencies_.push_back(
                std::chrono::duration<double>(now - it->second)
                    .count());
        sendTimes_.erase(it);
    }

    int fd_ = -1;
    size_t index_;
    const std::vector<ChampionInfo> &champions_;
    std::thread sender_; // e3-lint: raw-thread-ok
    std::thread reader_; // e3-lint: raw-thread-ok
    mutable e3::Mutex mutex_;
    std::unordered_map<uint64_t,
                       std::chrono::steady_clock::time_point>
        sendTimes_ E3_GUARDED_BY(mutex_);
    std::vector<double> latencies_ E3_GUARDED_BY(mutex_);
    std::atomic<uint64_t> sent_{0};
    std::atomic<uint64_t> received_{0};
    std::atomic<uint64_t> ok_{0};
    std::atomic<uint64_t> overloaded_{0};
    std::atomic<uint64_t> otherStatus_{0};
    std::atomic<uint64_t> decodeErrors_{0};
};

std::string
jsonLatency(const std::vector<double> &samples)
{
    char buf[256];
    std::snprintf(
        buf, sizeof buf,
        "{\"p50_ms\": %.4f, \"p95_ms\": %.4f, \"p99_ms\": %.4f, "
        "\"max_ms\": %.4f, \"samples\": %zu}",
        percentile(samples, 0.50) * 1e3,
        percentile(samples, 0.95) * 1e3,
        percentile(samples, 0.99) * 1e3,
        samples.empty()
            ? 0.0
            : *std::max_element(samples.begin(), samples.end()) * 1e3,
        samples.size());
    return buf;
}

} // namespace

int
main(int argc, char **argv)
{
    const LoadOptions opt = parseArgs(argc, argv);

    const std::string root =
        std::filesystem::temp_directory_path().string() +
        "/e3_serve_loadtest";
    std::filesystem::create_directories(root);

    ServeOptions serveOpt;
    serveOpt.sources = {
        {makeChampionDir(root, "cartpole", 11), "cartpole"},
        {makeChampionDir(root, "lunar_lander", 12), "lunar_lander"},
        {makeChampionDir(root, "pendulum", 13), "pendulum"},
    };
    serveOpt.cacheCapacity = opt.cache;
    serveOpt.maxBatchSize = opt.batch;
    serveOpt.threads = opt.threads;
    Result<std::unique_ptr<ChampionServer>> created =
        ChampionServer::create(serveOpt);
    if (!created.ok())
        e3_fatal("server: ", created.message());
    ChampionServer &server = **created;
    assertOk(server.listen(0));

    std::printf("serve_loadtest: %zu connections x %.0f req/s for "
                "%.1f s against 127.0.0.1:%u\n",
                opt.connections, opt.ratePerConnection, opt.seconds,
                server.port());
    for (const ChampionInfo &c : server.champions())
        std::printf("  champion %016" PRIx64 "  %-14s %zu->%zu\n",
                    c.fingerprint, c.envName.c_str(), c.numInputs,
                    c.numOutputs);

    const auto wallStart = std::chrono::steady_clock::now();
    std::vector<std::unique_ptr<LoadConnection>> conns;
    for (size_t i = 0; i < opt.connections; ++i)
        conns.push_back(std::make_unique<LoadConnection>(
            server.port(), i, server.champions()));
    for (auto &conn : conns)
        conn->start(opt.seconds, opt.ratePerConnection);
    for (auto &conn : conns)
        conn->finish();
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wallStart)
            .count();

    uint64_t sent = 0, ok = 0, overloaded = 0, otherStatus = 0,
             decodeErrors = 0, unanswered = 0;
    std::vector<double> clientLatencies;
    for (const auto &conn : conns) {
        sent += conn->sent();
        ok += conn->ok();
        overloaded += conn->overloaded();
        otherStatus += conn->otherStatus();
        decodeErrors += conn->decodeErrors();
        unanswered += conn->unanswered();
        const std::vector<double> connLatencies = conn->latencies();
        clientLatencies.insert(clientLatencies.end(),
                               connLatencies.begin(),
                               connLatencies.end());
    }

    server.stop();
    const ServerCounters counters = server.counters();
    const BatcherStats batcher = server.batcherStats();
    const LatencySummary serverLatency = server.latency();

    const double qps = wall > 0.0 ? static_cast<double>(ok) / wall : 0.0;
    std::printf("client: sent %" PRIu64 "  ok %" PRIu64
                "  overloaded %" PRIu64 "  other %" PRIu64
                "  decode-errors %" PRIu64 "  unanswered %" PRIu64 "\n",
                sent, ok, overloaded, otherStatus, decodeErrors,
                unanswered);
    std::printf("client: %.0f ok/s  p50 %.3f ms  p95 %.3f ms  "
                "p99 %.3f ms\n",
                qps, percentile(clientLatencies, 0.50) * 1e3,
                percentile(clientLatencies, 0.95) * 1e3,
                percentile(clientLatencies, 0.99) * 1e3);
    std::printf("server: %" PRIu64 " batches  max batch %zu  cache "
                "hits %" PRIu64 " misses %" PRIu64 " evictions %" PRIu64
                "\n",
                batcher.batches, batcher.maxBatchSize,
                server.cache().hits(), server.cache().misses(),
                server.cache().evictions());

    std::ofstream out(opt.out);
    if (!out)
        e3_fatal("cannot write ", opt.out);
    char line[512];
    out << "{\n  \"bench\": \"serve_loadtest\",\n";
    std::snprintf(line, sizeof line,
                  "  \"config\": {\"seconds\": %.2f, \"rate_per_"
                  "connection\": %.0f, \"connections\": %zu, "
                  "\"batch\": %zu, \"threads\": %zu, \"cache\": %zu},\n",
                  opt.seconds, opt.ratePerConnection, opt.connections,
                  opt.batch, opt.threads, opt.cache);
    out << line;
    out << "  \"champions\": [";
    for (size_t i = 0; i < server.champions().size(); ++i) {
        const ChampionInfo &c = server.champions()[i];
        std::snprintf(line, sizeof line,
                      "%s{\"env\": \"%s\", \"fingerprint\": "
                      "\"%016" PRIx64 "\"}",
                      i ? ", " : "", c.envName.c_str(), c.fingerprint);
        out << line;
    }
    out << "],\n";
    std::snprintf(line, sizeof line,
                  "  \"client\": {\"sent\": %" PRIu64 ", \"ok\": %" PRIu64
                  ", \"overloaded\": %" PRIu64 ", \"other_status\": "
                  "%" PRIu64 ", \"decode_errors\": %" PRIu64
                  ", \"unanswered\": %" PRIu64 ", \"ok_per_second\": "
                  "%.1f, \"latency\": %s},\n",
                  sent, ok, overloaded, otherStatus, decodeErrors,
                  unanswered, qps,
                  jsonLatency(clientLatencies).c_str());
    out << line;
    std::snprintf(
        line, sizeof line,
        "  \"server\": {\"requests\": %" PRIu64 ", \"ok\": %" PRIu64
        ", \"protocol_errors\": %" PRIu64 ", \"batches\": %" PRIu64
        ", \"max_batch\": %zu, \"cache_hits\": %" PRIu64
        ", \"cache_misses\": %" PRIu64 ", \"cache_evictions\": "
        "%" PRIu64 ",\n",
        counters.requests, counters.ok, counters.protocolErrors,
        batcher.batches, batcher.maxBatchSize, server.cache().hits(),
        server.cache().misses(), server.cache().evictions());
    out << line;
    std::snprintf(line, sizeof line,
                  "    \"latency_p50_ms\": %.4f, \"latency_p99_ms\": "
                  "%.4f, \"latency_samples\": %zu}\n}\n",
                  serverLatency.p50 * 1e3, serverLatency.p99 * 1e3,
                  serverLatency.count);
    out << line;
    out.close();
    std::printf("wrote %s\n", opt.out.c_str());

    // Gate for CI: every response decoded, every request answered with
    // an expected status (Ok, or Overloaded under admission control),
    // and latency percentiles actually measured.
    if (decodeErrors > 0 || otherStatus > 0 || unanswered > 0) {
        std::fprintf(stderr,
                     "FAIL: protocol errors or unanswered requests\n");
        return 1;
    }
    if (ok == 0 || clientLatencies.empty()) {
        std::fprintf(stderr, "FAIL: no successful requests measured\n");
        return 1;
    }
    return 0;
}
