/**
 * @file
 * Ablation: PE dataflow choice (paper Sec. IV-E's analysis, made
 * quantitative).
 *
 * For evolved populations we compare output-stationary (the paper's
 * choice) against input-stationary and weight-stationary on two axes:
 * the partial-sum storage the hardware must *provision* (worst case)
 * vs what is actually live, and single-inference latency. Expected
 * shape: OS needs exactly numPEs accumulators; IS/WS must provision
 * one per node — resources idle most of the time — without a
 * compensating latency win.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "e3/experiment.hh"
#include "inax/dataflow.hh"

using namespace e3;

int
main()
{
    std::cout << "Ablation: dataflow choice on evolved populations "
                 "(per-individual averages, PE=4)\n\n";

    InaxConfig cfg;
    cfg.numPEs = 4;

    TextTable table("Dataflow requirements (suite averages)");
    table.header({"dataflow", "provisioned psums", "peak live psums",
                  "buffer words", "inference cycles"});

    Distribution accOs, accIs, accWs;
    Distribution liveOs, liveIs, liveWs;
    Distribution bufOs, bufIs, bufWs;
    Distribution cycOs, cycIs, cycWs;

    for (const auto &spec : envSuite()) {
        const auto population =
            evolvedPopulation(spec.name, 15, 60, 888);
        for (const auto &def : population) {
            const auto os = analyzeOutputStationary(def, cfg);
            const auto is = analyzeInputStationary(def, cfg);
            const auto ws = analyzeWeightStationary(def, cfg);
            accOs.add(static_cast<double>(os.accumulators));
            accIs.add(static_cast<double>(is.accumulators));
            accWs.add(static_cast<double>(ws.accumulators));
            liveOs.add(static_cast<double>(os.peakLiveAccumulators));
            liveIs.add(static_cast<double>(is.peakLiveAccumulators));
            liveWs.add(static_cast<double>(ws.peakLiveAccumulators));
            bufOs.add(static_cast<double>(os.bufferWords));
            bufIs.add(static_cast<double>(is.bufferWords));
            bufWs.add(static_cast<double>(ws.bufferWords));
            cycOs.add(static_cast<double>(os.inferenceCycles));
            cycIs.add(static_cast<double>(is.inferenceCycles));
            cycWs.add(static_cast<double>(ws.inferenceCycles));
        }
    }

    auto row = [&](const char *name, const Distribution &acc,
                   const Distribution &live, const Distribution &buf,
                   const Distribution &cyc) {
        table.row({name, TextTable::num(acc.mean(), 1),
                   TextTable::num(live.mean(), 1),
                   TextTable::num(buf.mean(), 1),
                   TextTable::num(cyc.mean(), 1)});
    };
    row("output-stationary", accOs, liveOs, bufOs, cycOs);
    row("input-stationary", accIs, liveIs, bufIs, cycIs);
    row("weight-stationary", accWs, liveWs, bufWs, cycWs);
    std::cout << table << '\n';

    const double overProvisionIs =
        accIs.mean() / std::max(liveIs.mean(), 1.0);
    std::printf("IS/WS provision for the PU's supported capacity (%zu "
                "nodes) — %.0fx their peak live partial sums on this "
                "workload; OS provisions exactly its PE count (%zu).\n",
                cfg.maxSupportedNodes, overProvisionIs, cfg.numPEs);
    std::printf("Shape check: OS needs far fewer provisioned "
                "accumulators than IS/WS (paper Sec. IV-E) without a "
                "large latency penalty: %s\n",
                accOs.mean() * 5 < accIs.mean() &&
                        accOs.mean() * 5 < accWs.mean() &&
                        cycOs.mean() < 3.0 * cycIs.mean()
                    ? "PASS"
                    : "DIVERGES");
    return 0;
}
