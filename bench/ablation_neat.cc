/**
 * @file
 * Ablation: NEAT's algorithmic ingredients. The paper leans on two
 * mechanisms — crossover between elite parents (rate 0.5) and
 * speciation ("it protects the young individuals from elimination
 * before well-evolved"). We switch each off and compare solve rate
 * and generations-to-solve on two structurally non-trivial tasks,
 * over several seeds.
 */

#include <cstdio>
#include <iostream>

#include "common/stats.hh"
#include "common/table.hh"
#include "env/vector_env.hh"
#include "neat/population.hh"

using namespace e3;

namespace {

struct Outcome
{
    int solvedRuns = 0;
    Distribution generations; ///< over solved runs only
};

Outcome
runConfig(const std::string &envName, bool crossover,
          bool speciation, const std::vector<uint64_t> &seeds,
          int maxGenerations)
{
    const EnvSpec &spec = envSpec(envName);
    Outcome outcome;
    for (uint64_t seed : seeds) {
        NeatConfig cfg = NeatConfig::forTask(
            spec.numInputs, spec.numOutputs, spec.requiredFitness);
        cfg.populationSize = 150;
        if (!crossover)
            cfg.crossoverRate = 0.0;
        if (!speciation) {
            // One giant species: nothing is protected.
            cfg.compatibilityThreshold = 1e9;
        }

        Population pop(cfg, seed);
        for (int gen = 0; gen < maxGenerations; ++gen) {
            const size_t n = pop.genomes().size();
            std::vector<int> keys;
            std::vector<FeedForwardNetwork> nets;
            for (const auto &[key, genome] : pop.genomes()) {
                keys.push_back(key);
                nets.push_back(FeedForwardNetwork::create(
                    genome.toNetworkDef(cfg)));
            }
            VectorEnv venv(spec, n, seed * 31 + gen);
            venv.resetAll();
            while (!venv.allDone()) {
                std::vector<Action> actions(n);
                for (size_t i = 0; i < n; ++i) {
                    actions[i] =
                        venv.done(i)
                            ? Action(spec.numOutputs, 0.0)
                            : decodeAction(spec,
                                           nets[i].activate(
                                               venv.observation(i)));
                }
                venv.stepAll(actions);
            }
            for (size_t i = 0; i < n; ++i)
                pop.genomes().at(keys[i]).fitness = venv.fitness(i);

            if (pop.solved()) {
                ++outcome.solvedRuns;
                outcome.generations.add(gen);
                break;
            }
            pop.advance();
        }
    }
    return outcome;
}

} // namespace

int
main()
{
    std::cout << "Ablation: NEAT with crossover / speciation switched "
                 "off (5 seeds per cell)\n\n";

    const std::vector<uint64_t> seeds{11, 22, 33, 44, 55};
    const struct
    {
        const char *env;
        int budget;
    } tasks[] = {{"mountain_car", 80}, {"pendulum", 120}};

    TextTable table("Solve statistics");
    table.header({"env", "config", "solved", "mean gens (solved)"});

    int fullSolved = 0;
    int ablatedSolvedWorst = 1 << 20;
    for (const auto &task : tasks) {
        const struct
        {
            const char *name;
            bool crossover, speciation;
        } configs[] = {
            {"full NEAT", true, true},
            {"no crossover", false, true},
            {"no speciation", true, false},
            {"neither", false, false},
        };
        for (const auto &c : configs) {
            const Outcome o =
                runConfig(task.env, c.crossover, c.speciation, seeds,
                          task.budget);
            if (std::string(c.name) == "full NEAT")
                fullSolved += o.solvedRuns;
            else
                ablatedSolvedWorst =
                    std::min(ablatedSolvedWorst, o.solvedRuns);
            table.row(
                {task.env, c.name,
                 TextTable::num(static_cast<long long>(o.solvedRuns)) +
                     "/" +
                     TextTable::num(
                         static_cast<long long>(seeds.size())),
                 o.generations.count() > 0
                     ? TextTable::num(o.generations.mean(), 1)
                     : "-"});
        }
    }
    std::cout << table << '\n';

    std::printf("Shape check: full NEAT solves at least as reliably "
                "as the weakest ablation: %s\n",
                fullSolved >= ablatedSolvedWorst ? "PASS"
                                                 : "DIVERGES");
    return 0;
}
