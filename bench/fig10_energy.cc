/**
 * @file
 * Fig. 10(a): normalized energy expense of the three platforms.
 *
 * Paper reference: E3-GPU consumes ~71x the energy of E3-CPU; E3-INAX
 * cuts energy by ~97% versus E3-CPU. Energy = component power x busy
 * time (CPU powered throughout as the master; accelerators only while
 * evaluating).
 */

#include <cstdio>
#include <iostream>

#include "common/table.hh"
#include "e3/energy_model.hh"
#include "e3/experiment.hh"

using namespace e3;

int
main()
{
    std::cout << "Fig. 10(a) reproduction: normalized energy across "
                 "the suite\n\n";

    const PowerModel power;
    ExperimentOptions opt;
    opt.episodesPerEval = 3;

    TextTable table("Energy (joules, normalized to E3-CPU)");
    table.header({"env", "E3-CPU(J)", "E3-GPU(J)", "E3-INAX(J)",
                  "GPU ratio", "INAX reduction"});

    double gpuRatioSum = 0.0;
    double inaxSavingSum = 0.0;
    size_t count = 0;
    for (const auto &spec : envSuite()) {
        ExperimentOptions o = opt;
        o.maxGenerations = suiteGenerationBudget(spec.name);
        const RunResult cpu =
            runExperiment(spec.name, BackendKind::Cpu, o);
        const RunResult gpu =
            runExperiment(spec.name, BackendKind::Gpu, o);
        const RunResult inax =
            runExperiment(spec.name, BackendKind::Inax, o);

        const double cpuJ = power.joules(cpu.energyInput);
        const double gpuJ = power.joules(gpu.energyInput);
        const double inaxJ = power.joules(inax.energyInput);

        const double gpuRatio = gpuJ / cpuJ;
        const double saving = 1.0 - inaxJ / cpuJ;
        gpuRatioSum += gpuRatio;
        inaxSavingSum += saving;
        ++count;

        table.row({spec.name, TextTable::num(cpuJ, 1),
                   TextTable::num(gpuJ, 0), TextTable::num(inaxJ, 2),
                   TextTable::num(gpuRatio, 1) + "x",
                   TextTable::pct(saving)});
    }
    std::cout << table << '\n';

    const double n = static_cast<double>(count);
    std::printf("Average: E3-GPU consumes %.0fx the energy of E3-CPU "
                "(paper ~71x); E3-INAX saves %.1f%% (paper ~97%%)\n",
                gpuRatioSum / n, 100.0 * inaxSavingSum / n);
    std::printf("Shape check: GPU >> CPU and INAX saves >90%%: %s\n",
                gpuRatioSum / n > 10.0 && inaxSavingSum / n > 0.90
                    ? "PASS"
                    : "DIVERGES");
    return 0;
}
